//! Quickstart: write an optimization, prove it sound once and for all,
//! then run it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cobalt::dsl::LabelEnv;
use cobalt::engine::{AnalyzedProc, Engine};
use cobalt::il::{parse_program, pretty_program, Interp};
use cobalt::verify::{SemanticMeanings, Verifier};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // The paper's Example 1: constant propagation, written in Cobalt as
    //   stmt(Y := C) followed by ¬mayDef(Y)
    //   until X := Y ⇒ X := C
    //   with witness η(Y) = C
    let const_prop = cobalt::opts::const_prop();

    // 1. Prove it sound — this discharges the F1/F2/F3 obligations of
    //    paper §4.2 with the automatic theorem prover. The proof is
    //    once-and-for-all: it holds for *every* input program.
    let verifier = Verifier::new(LabelEnv::standard(), SemanticMeanings::standard());
    let report = verifier.verify_optimization(&const_prop)?;
    println!("{}", report.summary());
    assert!(report.all_proved());

    // 2. Run it. Optimizations written in Cobalt are directly
    //    executable by the dataflow engine of paper §5.2.
    let prog = parse_program(
        "proc main(x) {
            decl a;
            decl b;
            decl c;
            a := 2;
            b := 3;
            c := a;
            c := c + b;
            return c;
         }",
    )?;
    println!("before:\n{}", pretty_program(&prog));

    let engine = Engine::new(LabelEnv::standard());
    let ap = AnalyzedProc::new(prog.main().unwrap().clone())?;
    let (optimized, applied) = engine.apply(&ap, &const_prop)?;
    let optimized = prog.with_proc_replaced(optimized);
    println!("after {} rewrites:\n{}", applied.len(), pretty_program(&optimized));

    // 3. Same behaviour, by construction (and by test).
    for arg in [0, 1, 42] {
        assert_eq!(Interp::new(&prog).run(arg)?, Interp::new(&optimized).run(arg)?);
    }
    println!("behaviour preserved on sample inputs ✓");
    Ok(())
}
