//! The debugging story of paper §6: a plausible-but-unsound
//! redundant-load elimination is rejected by the checker with a
//! counterexample context; the engine shows the miscompilation it would
//! have caused; the taint-aware fix verifies.
//!
//! ```sh
//! cargo run --example debugging
//! ```

use cobalt::dsl::LabelEnv;
use cobalt::engine::{AnalyzedProc, Engine};
use cobalt::il::{pretty_program, Interp, Program};
use cobalt::verify::{SemanticMeanings, Verifier};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let verifier = Verifier::new(LabelEnv::standard(), SemanticMeanings::standard());

    // The buggy version excludes pointer stores from the witnessing
    // region but forgets that a direct assignment `y := …` can change
    // `*p` when p points to y.
    let buggy = cobalt::opts::buggy::load_elim_no_alias();
    let report = verifier.verify_optimization(&buggy)?;
    println!("{}", report.summary());
    assert!(!report.all_proved());
    for o in report.outcomes.iter().filter(|o| !o.proved).take(2) {
        println!("  rejected obligation {}:", o.id);
        for line in o.detail.split("; ").take(3) {
            println!("    {line}");
        }
    }

    // What would have gone wrong: the engine happily applies the buggy
    // rule and miscompiles this program.
    let prog = cobalt::opts::buggy::counterexample_program();
    println!("\ncounterexample program:\n{}", pretty_program(&prog));
    let engine = Engine::new(LabelEnv::standard());
    let ap = AnalyzedProc::new(prog.main().unwrap().clone())?;
    let (bad, _) = engine.apply(&ap, &buggy)?;
    let bad_prog = Program::new(vec![bad]);
    let before = Interp::new(&prog).run(0)?;
    let after = Interp::new(&bad_prog).run(0)?;
    println!("original returns {before}, miscompiled returns {after}");
    assert_ne!(before, after);

    // The fix: use unchanged(*P), which consults the taintedness
    // analysis — exactly the paper's resolution.
    let fixed = cobalt::opts::load_elim();
    let report = verifier.verify_optimization(&fixed)?;
    println!("\n{}", report.summary());
    assert!(report.all_proved());
    println!("the taint-aware version is machine-proven sound ✓");
    Ok(())
}
