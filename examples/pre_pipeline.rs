//! Partial redundancy elimination as in paper §2.3: a backward
//! code-duplication pass with a profitability heuristic, followed by
//! CSE, self-assignment removal, and dead-assignment elimination.
//!
//! ```sh
//! cargo run --example pre_pipeline
//! ```

use cobalt::dsl::LabelEnv;
use cobalt::engine::Engine;
use cobalt::il::{parse_program, pretty_program, Interp};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // The paper's motivating fragment: x := a + b after the merge is
    // redundant only when the true leg was taken.
    let prog = parse_program(
        "proc main(q) {
            decl a;
            decl b;
            decl x;
            b := q + 1;
            if q goto 5 else 8;
            a := 2;
            x := a + b;
            if 1 goto 9 else 9;
            skip;
            x := a + b;
            return x;
         }",
    )?;
    println!("original (x := a + b at node 9 is partially redundant):");
    println!("{}", pretty_program(&prog));

    let engine = Engine::new(LabelEnv::standard());
    let mut current = prog.clone();
    for pass in cobalt::opts::pre_pipeline() {
        let (next, n) = engine.optimize_program(&current, &[], std::slice::from_ref(&pass), 1)?;
        if n > 0 {
            println!("after {} ({} rewrites):\n{}", pass.name, n, pretty_program(&next));
        } else {
            println!("{}: no change", pass.name);
        }
        current = next;
    }

    for q in [0, 1, 5] {
        assert_eq!(Interp::new(&prog).run(q)?, Interp::new(&current).run(q)?);
    }
    println!("behaviour preserved ✓");
    Ok(())
}
