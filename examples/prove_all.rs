//! Experiment E1: the paper's proof-time table.
//!
//! §5.1: "We have implemented and automatically proven sound a dozen
//! Cobalt optimizations and analyses. On a modern workstation, the time
//! taken by Simplify to discharge the optimization-specific obligations
//! ranges from 3 to 104 seconds, with an average of 28 seconds."
//!
//! This binary regenerates that table for our reproduction.
//!
//! ```sh
//! cargo run --release --example prove_all
//! ```

use cobalt::dsl::LabelEnv;
use cobalt::verify::{Report, SemanticMeanings, Verifier};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let verifier = Verifier::new(LabelEnv::standard(), SemanticMeanings::standard());
    let mut rows: Vec<(String, usize, usize, u32, f64)> = Vec::new();
    let mut push = |report: &Report| {
        // The one-line summary names any failing obligation ids.
        println!("  {}", report.summary());
        let proved = report.outcomes.iter().filter(|o| o.proved).count();
        rows.push((
            report.name.clone(),
            proved,
            report.outcomes.len(),
            report.total_attempts(),
            report.elapsed.as_secs_f64() * 1e3,
        ));
    };

    for analysis in cobalt::opts::all_analyses() {
        let report = verifier.verify_analysis(&analysis)?;
        assert!(report.all_proved(), "{}", report.summary());
        push(&report);
    }
    for opt in cobalt::opts::all_optimizations() {
        let report = verifier.verify_optimization(&opt)?;
        assert!(report.all_proved(), "{}", report.summary());
        push(&report);
    }

    println!();
    println!("Table 1: automatic soundness proofs of the optimization suite");
    println!(
        "{:<22} {:>12} {:>10} {:>12}",
        "optimization", "obligations", "attempts", "time (ms)"
    );
    println!("{}", "-".repeat(60));
    for (name, proved, total, attempts, ms) in &rows {
        assert_eq!(proved, total);
        println!("{name:<22} {total:>12} {attempts:>10} {ms:>12.2}");
    }
    println!("{}", "-".repeat(60));
    let times: Vec<f64> = rows.iter().map(|r| r.4).collect();
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    let avg = times.iter().sum::<f64>() / times.len() as f64;
    let total_obls: usize = rows.iter().map(|r| r.2).sum();
    println!(
        "{} entries, {} obligations; time range {:.2}–{:.2} ms, average {:.2} ms",
        rows.len(),
        total_obls,
        min,
        max,
        avg
    );
    println!(
        "(paper, Simplify on 2003 hardware: range 3–104 s, average 28 s; \
         the shape — all proven, >10x spread — is reproduced)"
    );
    Ok(())
}
