//! Experiment E1: the paper's proof-time table.
//!
//! §5.1: "We have implemented and automatically proven sound a dozen
//! Cobalt optimizations and analyses. On a modern workstation, the time
//! taken by Simplify to discharge the optimization-specific obligations
//! ranges from 3 to 104 seconds, with an average of 28 seconds."
//!
//! This binary regenerates that table for our reproduction.
//!
//! ```sh
//! cargo run --release --example prove_all
//! ```
//!
//! Set `COBALT_JOURNAL=<path>` to run through a resumable proof journal
//! (DESIGN.md §10): the first run proves everything and caches it, and
//! subsequent runs replay cached outcomes — the `cached` column shows
//! how many obligations each entry reused.
//!
//! Set `COBALT_JOBS=N` to discharge each report's obligations across N
//! supervised workers (DESIGN.md §11). A `BENCH_JSON` line records the
//! whole-registry wall clock and obligations/sec, so before/after
//! comparisons of the parallel speedup are one grep away.
//!
//! Set `COBALT_BANK_MODE=fresh` to fall back to the
//! fresh-bank-per-obligation oracle (`shared`, the default, interns
//! each rule's vocabulary once; see DESIGN.md §12) — useful for
//! measuring what the batch-shared bank buys.

use cobalt::dsl::LabelEnv;
use cobalt::verify::{BankMode, Report, ResumeMode, SemanticMeanings, Session, Verifier};
use cobalt_support::bench::{Stats, Throughput};
use std::error::Error;
use std::time::Instant;

fn main() -> Result<(), Box<dyn Error>> {
    let jobs: usize = std::env::var("COBALT_JOBS")
        .ok()
        .map(|v| v.trim().parse())
        .transpose()
        .map_err(|e| format!("COBALT_JOBS: {e}"))?
        .unwrap_or(1)
        .max(1);
    let bank_mode = match std::env::var("COBALT_BANK_MODE").as_deref() {
        Ok("fresh") => BankMode::PerObligation,
        Ok("shared") | Err(_) => BankMode::BatchShared,
        Ok(other) => return Err(format!("COBALT_BANK_MODE: unknown mode `{other}`").into()),
    };
    let verifier = Verifier::new(LabelEnv::standard(), SemanticMeanings::standard())
        .with_jobs(jobs)
        .with_bank_mode(bank_mode);
    let mut session = match std::env::var("COBALT_JOURNAL") {
        Ok(path) => {
            println!("journaling to {path} (cached outcomes replay on rerun)");
            Session::with_journal(verifier, &path, ResumeMode::Resume)?
        }
        Err(_) => Session::new(verifier),
    };

    let mut rows: Vec<(String, usize, usize, usize, u32, f64)> = Vec::new();
    let mut push = |report: &Report| {
        // The one-line summary names any failing obligation ids.
        println!("  {}", report.summary());
        let proved = report.outcomes.iter().filter(|o| o.proved).count();
        rows.push((
            report.name.clone(),
            proved,
            report.outcomes.len(),
            report.cached_count(),
            report.total_attempts(),
            report.elapsed.as_secs_f64() * 1e3,
        ));
    };

    let wall_start = Instant::now();
    for analysis in cobalt::opts::all_analyses() {
        let report = session.verify_analysis(&analysis)?;
        assert!(report.all_proved(), "{}", report.summary());
        push(&report);
    }
    for opt in cobalt::opts::all_optimizations() {
        let report = session.verify_optimization(&opt)?;
        assert!(report.all_proved(), "{}", report.summary());
        push(&report);
    }
    let wall = wall_start.elapsed();
    session.finish();
    if let Some(reason) = session.degraded() {
        println!("note: journaling disabled mid-run ({reason})");
    }

    println!();
    println!("Table 1: automatic soundness proofs of the optimization suite");
    println!(
        "{:<22} {:>12} {:>8} {:>8} {:>10} {:>12}",
        "optimization", "obligations", "cached", "fresh", "attempts", "time (ms)"
    );
    println!("{}", "-".repeat(78));
    for (name, proved, total, cached, attempts, ms) in &rows {
        assert_eq!(proved, total);
        let fresh = total - cached;
        println!("{name:<22} {total:>12} {cached:>8} {fresh:>8} {attempts:>10} {ms:>12.2}");
    }
    println!("{}", "-".repeat(78));
    let times: Vec<f64> = rows.iter().map(|r| r.5).collect();
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    let avg = times.iter().sum::<f64>() / times.len() as f64;
    let total_obls: usize = rows.iter().map(|r| r.2).sum();
    let total_cached: usize = rows.iter().map(|r| r.3).sum();
    println!(
        "{} entries, {} obligations ({} cached); time range {:.2}–{:.2} ms, average {:.2} ms",
        rows.len(),
        total_obls,
        total_cached,
        min,
        max,
        avg
    );
    println!(
        "(paper, Simplify on 2003 hardware: range 3–104 s, average 28 s; \
         the shape — all proven, >10x spread — is reproduced)"
    );
    // One datapoint for the whole registry: wall clock + throughput at
    // this worker count, in the harness's BENCH_JSON format.
    Stats::single(
        &format!("prove_all/registry/jobs={jobs}"),
        wall,
        Some(Throughput::Elements(total_obls as u64)),
    )
    .emit();
    Ok(())
}
