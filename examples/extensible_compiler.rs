//! The extensible-compiler scenario from the paper's introduction: a
//! *user* contributes optimizations, and the compiler protects itself
//! by verifying them before enabling them. "Any bugs in the resulting
//! extended compiler can be blamed on other aspects of the compiler's
//! implementation, not on the user's optimizations."
//!
//! ```sh
//! cargo run --example extensible_compiler
//! ```

use cobalt::dsl::{
    BasePat, ConstPat, Direction, ExprPat, ForwardWitness, Guard, GuardSpec, LabelArgPat,
    LabelEnv, LhsPat, Optimization, RegionGuard, StmtPat, TransformPattern, VarPat, Witness,
};
use cobalt::engine::Engine;
use cobalt::il::{parse_program, pretty_program};
use cobalt::verify::{SemanticMeanings, Verifier};
use std::error::Error;

/// A user-contributed optimization: zero propagation, a specialization
/// of constant propagation to the constant 0.
fn user_zero_prop() -> Optimization {
    Optimization::new(
        "user_zero_prop",
        TransformPattern {
            direction: Direction::Forward,
            guard: GuardSpec::Region(RegionGuard {
                psi1: Guard::Stmt(StmtPat::Assign(
                    LhsPat::Var(VarPat::pat("Y")),
                    ExprPat::Base(BasePat::Const(ConstPat::Concrete(0))),
                )),
                psi2: Guard::not_label("mayDef", vec![LabelArgPat::Var(VarPat::pat("Y"))]),
            }),
            from: StmtPat::Assign(
                LhsPat::Var(VarPat::pat("X")),
                ExprPat::Base(BasePat::Var(VarPat::pat("Y"))),
            ),
            to: StmtPat::Assign(
                LhsPat::Var(VarPat::pat("X")),
                ExprPat::Base(BasePat::Const(ConstPat::Concrete(0))),
            ),
            where_clause: Guard::True,
            witness: Witness::Forward(ForwardWitness::VarEqConst(
                VarPat::pat("Y"),
                ConstPat::Concrete(0),
            )),
        },
    )
}

/// A buggy user optimization: the same rule but with a careless guard
/// that forgets redefinitions of `Y` kill the fact.
fn user_zero_prop_broken() -> Optimization {
    let mut opt = user_zero_prop();
    opt.name = "user_zero_prop_broken".into();
    if let GuardSpec::Region(rg) = &mut opt.pattern.guard {
        rg.psi2 = Guard::True; // anything is "innocuous" — unsound!
    }
    opt
}

fn main() -> Result<(), Box<dyn Error>> {
    let verifier = Verifier::new(LabelEnv::standard(), SemanticMeanings::standard());
    let engine = Engine::new(LabelEnv::standard());

    // The extension point: verify-then-enable.
    let mut enabled = Vec::new();
    for candidate in [user_zero_prop(), user_zero_prop_broken()] {
        let report = verifier.verify_optimization(&candidate)?;
        if report.all_proved() {
            println!("{}: verified, enabling ({})", candidate.name, report.summary());
            enabled.push(candidate);
        } else {
            println!(
                "{}: REJECTED ({} failed obligations, e.g. {})",
                candidate.name,
                report.failures().len(),
                report.failures().first().unwrap_or(&"?")
            );
        }
    }
    assert_eq!(enabled.len(), 1, "only the sound extension is enabled");

    // Run the extended compiler.
    let prog = parse_program(
        "proc main(x) {
            decl z;
            decl a;
            z := 0;
            a := z;
            a := a + x;
            return a;
         }",
    )?;
    let (optimized, n) = engine.optimize_program(&prog, &[], &enabled, 2)?;
    println!("\nextended compiler applied {n} rewrites:");
    println!("{}", pretty_program(&optimized));
    assert_eq!(optimized.main().unwrap().stmts[3].to_string(), "a := 0");
    Ok(())
}
