#!/usr/bin/env bash
# Tier-1 verification, run fully offline to prove the workspace is
# hermetic (no external registry dependencies; see DESIGN.md).
#
# Usage: scripts/verify.sh [--benches]
#   --benches   additionally smoke-run every benchmark in fast mode
#               (COBALT_BENCH_FAST=1) to check the timing harness.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "== robustness stage (bounded)"
COBALT="target/release/cobalt"

# Degenerate/bounded limits: a severely capped run must finish quickly
# and exit 0 (all proved anyway) or 3 (resource-limited) — never hang,
# crash, or claim unsoundness (2).
set +e
"$COBALT" verify --timeout 5 --max-splits 10 >/dev/null 2>&1
code=$?
set -e
if [[ $code -ne 0 && $code -ne 3 ]]; then
    echo "robustness: capped verify exited $code (want 0 or 3)"; exit 1
fi

# Deadline exit code: --timeout 0 must exit 3 (resource-limited).
set +e
"$COBALT" verify --timeout 0 >/dev/null 2>&1
code=$?
set -e
if [[ $code -ne 3 ]]; then
    echo "robustness: verify --timeout 0 exited $code (want 3)"; exit 1
fi

# Fault-injection smoke through the env-var path: an injected prover
# panic is isolated to one obligation (exit 2, completed report), and
# an injected pass panic is skipped by the resilient pipeline (exit 0,
# degraded report).
set +e
COBALT_FAULTS=checker.obligation:panic@1 "$COBALT" verify >/dev/null 2>&1
code=$?
set -e
if [[ $code -ne 2 ]]; then
    echo "robustness: fault-injected verify exited $code (want 2)"; exit 1
fi
out=$(COBALT_FAULTS=engine.pass:panic@1 "$COBALT" optimize --resilient examples/programs/redundant.il 2>&1)
if ! grep -q "degraded" <<<"$out"; then
    echo "robustness: resilient optimize did not report degradation:"; echo "$out"; exit 1
fi

echo "== lint stage"

# The built-in registry and every example program must be lint-clean.
"$COBALT" lint >/dev/null
"$COBALT" lint examples/programs/*.il >/dev/null

# Exit-code contract: a structurally broken program must exit 4, and
# the JSON report must be one object per line on stdout.
bad_il=$(mktemp /tmp/cobalt_lint_bad_XXXXXX.il)
printf 'proc main(x) { if x goto 9 else 1; return x; }\n' >"$bad_il"
set +e
"$COBALT" lint "$bad_il" >/dev/null 2>&1
code=$?
set -e
if [[ $code -ne 4 ]]; then
    echo "lint: broken program exited $code (want 4)"; rm -f "$bad_il"; exit 1
fi
set +e
json=$("$COBALT" lint "$bad_il" --json 2>/dev/null)
code=$?
set -e
rm -f "$bad_il"
if [[ $code -ne 4 ]]; then
    echo "lint: --json on broken program exited $code (want 4)"; exit 1
fi
while IFS= read -r line; do
    case "$line" in
        '{"code":"'*'}') ;;
        *) echo "lint: not a JSON object line: $line"; exit 1 ;;
    esac
done <<<"$json"

# An injected lint fault must surface as CL000 and fail the run.
set +e
COBALT_FAULTS=lint.rule:fail@1 "$COBALT" lint >/dev/null 2>&1
code=$?
set -e
if [[ $code -ne 4 ]]; then
    echo "lint: fault-injected lint exited $code (want 4)"; exit 1
fi

echo "== journal stage (crash-safe resume)"

# Interrupted run: a tight report deadline kills the suite mid-way
# (exit 3, resource-limited) but journals whatever did prove.
journal=$(mktemp -u /tmp/cobalt_verify_journal_XXXXXX.cobj)
set +e
"$COBALT" verify --journal "$journal" --timeout 0.002 >/dev/null 2>&1
code=$?
set -e
if [[ $code -ne 3 ]]; then
    echo "journal: interrupted verify exited $code (want 3)"; rm -f "$journal"; exit 1
fi
if [[ ! -s "$journal" ]]; then
    echo "journal: interrupted run left no journal file"; rm -f "$journal"; exit 1
fi

# Resume: the rerun replays the cached proofs and proves only the
# remainder — it must succeed outright and say so.
set +e
out=$("$COBALT" verify --journal "$journal" --resume 2>&1)
code=$?
set -e
if [[ $code -ne 0 ]]; then
    echo "journal: resumed verify exited $code (want 0):"; echo "$out"; rm -f "$journal"; exit 1
fi
# A third run must be fully warm: no report may show a nonzero fresh
# count.
set +e
out=$("$COBALT" verify --journal "$journal" --resume 2>&1)
code=$?
set -e
if [[ $code -ne 0 ]]; then
    echo "journal: warm verify exited $code (want 0)"; rm -f "$journal"; exit 1
fi
if ! grep -q "cached" <<<"$out"; then
    echo "journal: warm verify reported no cached obligations:"; echo "$out"; rm -f "$journal"; exit 1
fi
if grep -qE '\([0-9]+ cached, [1-9][0-9]* fresh\)' <<<"$out"; then
    echo "journal: warm verify still proved fresh obligations:"; echo "$out"; rm -f "$journal"; exit 1
fi
rm -f "$journal"

# Graceful degradation: an injected journal write failure must not
# change the verdict — the run completes uncached (exit 0) and says
# journaling was disabled.
journal=$(mktemp -u /tmp/cobalt_verify_journal_XXXXXX.cobj)
set +e
out=$(COBALT_FAULTS=journal.write:fail@1 "$COBALT" verify --journal "$journal" 2>&1)
code=$?
set -e
rm -f "$journal"
if [[ $code -ne 0 ]]; then
    echo "journal: write-fault verify exited $code (want 0):"; echo "$out"; exit 1
fi
if ! grep -q "journaling disabled" <<<"$out"; then
    echo "journal: write-fault verify did not report degradation:"; echo "$out"; exit 1
fi

echo "== parallel stage (supervised discharge)"

# Determinism: the full registry verified at --jobs 1 and --jobs 4 must
# produce byte-identical output once per-report wall-clock times are
# normalized away. (Verdicts, ids, order, attempt counts — everything
# observable except speed.)
normalize_times() { sed -E 's/ in [0-9]+(\.[0-9]+)?(ns|µs|ms|s)//g'; }
seq_out=$("$COBALT" verify 2>&1 | normalize_times)
par_out=$("$COBALT" verify --jobs 4 2>&1 | normalize_times)
if [[ "$seq_out" != "$par_out" ]]; then
    echo "parallel: --jobs 4 output diverged from --jobs 1:"
    diff <(echo "$seq_out") <(echo "$par_out") || true
    exit 1
fi
# And COBALT_JOBS is the same knob.
env_out=$(COBALT_JOBS=4 "$COBALT" verify 2>&1 | normalize_times)
if [[ "$seq_out" != "$env_out" ]]; then
    echo "parallel: COBALT_JOBS=4 output diverged from --jobs 1"; exit 1
fi
# A bad jobs value is a typed CLI error (exit 1), not a panic.
set +e
"$COBALT" verify --jobs 0 >/dev/null 2>&1
code=$?
set -e
if [[ $code -ne 1 ]]; then
    echo "parallel: verify --jobs 0 exited $code (want 1)"; exit 1
fi

# A worker panic injected mid-batch is retried by the pool supervisor:
# same verdict, exit 0.
set +e
COBALT_FAULTS=pool.task:panic@3 "$COBALT" verify --jobs 4 >/dev/null 2>&1
code=$?
set -e
if [[ $code -ne 0 ]]; then
    echo "parallel: worker-panic verify exited $code (want 0)"; exit 1
fi

# Two concurrent processes sharing one journal: the advisory lock
# serializes or degrades them, but both must exit 0.
journal=$(mktemp -u /tmp/cobalt_verify_journal_XXXXXX.cobj)
"$COBALT" verify --jobs 2 --journal "$journal" >/tmp/cobalt_par_a.$$ 2>&1 &
pid_a=$!
"$COBALT" verify --jobs 2 --journal "$journal" >/tmp/cobalt_par_b.$$ 2>&1 &
pid_b=$!
set +e
wait "$pid_a"; code_a=$?
wait "$pid_b"; code_b=$?
set -e
if [[ $code_a -ne 0 || $code_b -ne 0 ]]; then
    echo "parallel: concurrent journaled verifies exited $code_a/$code_b (want 0/0)"
    cat /tmp/cobalt_par_a.$$ /tmp/cobalt_par_b.$$
    rm -f "$journal" /tmp/cobalt_par_a.$$ /tmp/cobalt_par_b.$$
    exit 1
fi
rm -f /tmp/cobalt_par_a.$$ /tmp/cobalt_par_b.$$

# Lock-contention timeout: an injected journal.lock fault degrades to
# uncached verification — exit 0 with the "journaling disabled" note,
# never a hard failure.
set +e
out=$(COBALT_FAULTS=journal.lock:fail@1 "$COBALT" verify --jobs 4 --journal "$journal" 2>&1)
code=$?
set -e
rm -f "$journal"
if [[ $code -ne 0 ]]; then
    echo "parallel: lock-fault verify exited $code (want 0):"; echo "$out"; exit 1
fi
if ! grep -q "journaling disabled" <<<"$out"; then
    echo "parallel: lock-fault verify did not report degradation:"; echo "$out"; exit 1
fi

echo "== engine stage (governed, parallel, journaled optimize)"

# A small multi-procedure program with a loop, so per-procedure
# fixpoints do real work under --jobs and --timeout.
engine_prog=$(mktemp /tmp/cobalt_engine_prog_XXXXXX.il)
cat >"$engine_prog" <<'EOF'
proc main(x) {
    decl i;
    decl s;
    i := x;
    s := 0;
    if i goto 5 else 8;
    s := s + i;
    i := i - 1;
    if i goto 5 else 8;
    return s;
}
proc helper(n) {
    decl a;
    decl c;
    a := 2;
    c := a;
    return c;
}
EOF

# Determinism: optimized bytes at --jobs 1 and --jobs 4 must be
# identical — no normalization, the engine reports carry no timestamps.
opt_seq=$("$COBALT" optimize "$engine_prog" --jobs 1 2>&1)
opt_par=$("$COBALT" optimize "$engine_prog" --jobs 4 2>&1)
if [[ "$opt_seq" != "$opt_par" ]]; then
    echo "engine: optimize --jobs 4 output diverged from --jobs 1:"
    diff <(echo "$opt_seq") <(echo "$opt_par") || true
    rm -f "$engine_prog"; exit 1
fi

# Resource governance: an already-expired deadline must exit 3 (the
# printed program is unoptimized but correct), never hang or crash.
set +e
"$COBALT" optimize "$engine_prog" --timeout 0 --resilient >/dev/null 2>&1
code=$?
set -e
if [[ $code -ne 3 ]]; then
    echo "engine: optimize --timeout 0 exited $code (want 3)"; rm -f "$engine_prog"; exit 1
fi

# Fault injection: an injected fixpoint failure quarantines the pass —
# exit 0 with a degradation note, not a hard failure.
set +e
out=$(COBALT_FAULTS=engine.fixpoint:fail@1 "$COBALT" optimize "$engine_prog" --resilient 2>&1)
code=$?
set -e
if [[ $code -ne 0 ]]; then
    echo "engine: fixpoint-fault optimize exited $code (want 0):"; echo "$out"; rm -f "$engine_prog"; exit 1
fi
if ! grep -q "degraded" <<<"$out"; then
    echo "engine: fixpoint-fault optimize did not report degradation:"; echo "$out"; rm -f "$engine_prog"; exit 1
fi

# Crash-safe journaling: a cold journaled run completes and records
# every procedure; the warm rerun replays them as cached with
# byte-identical program text (the resume path a killed run takes).
engine_journal=$(mktemp -u /tmp/cobalt_engine_journal_XXXXXX.cobj)
cold=$("$COBALT" optimize "$engine_prog" --journal "$engine_journal" 2>&1)
if [[ ! -s "$engine_journal" ]]; then
    echo "engine: journaled optimize left no journal file"; rm -f "$engine_prog" "$engine_journal"; exit 1
fi
warm=$("$COBALT" optimize "$engine_prog" --journal "$engine_journal" 2>&1)
if ! grep -q "procs cached" <<<"$warm"; then
    echo "engine: warm optimize replayed nothing:"; echo "$warm"; rm -f "$engine_prog" "$engine_journal"; exit 1
fi
if [[ "$(grep -v '^//' <<<"$cold")" != "$(grep -v '^//' <<<"$warm")" ]]; then
    echo "engine: warm optimize program text diverged from cold run"
    diff <(echo "$cold") <(echo "$warm") || true
    rm -f "$engine_prog" "$engine_journal"; exit 1
fi

# Journal trouble must degrade, not fail: an injected engine.journal
# fault leaves exit 0 with the "journaling disabled" note.
set +e
out=$(COBALT_FAULTS=engine.journal:fail@1 "$COBALT" optimize "$engine_prog" --journal "$engine_journal" 2>&1)
code=$?
set -e
rm -f "$engine_prog" "$engine_journal"
if [[ $code -ne 0 ]]; then
    echo "engine: journal-fault optimize exited $code (want 0):"; echo "$out"; exit 1
fi
if ! grep -q "journaling disabled" <<<"$out"; then
    echo "engine: journal-fault optimize did not report degradation:"; echo "$out"; exit 1
fi

echo "== serve stage (daemon, shared cache, drain)"

# A daemon with a proof-cache journal, hammered by concurrent clients:
# every client must exit 0, the daemon payload must be byte-identical
# to the one-shot CLI (normalized for wall-clock), and a warm replay
# must be byte-identical to the cold serve.
serve_port=$(mktemp -u /tmp/cobalt_serve_port_XXXXXX)
serve_journal=$(mktemp -u /tmp/cobalt_serve_journal_XXXXXX.cobj)
"$COBALT" serve --port-file "$serve_port" --journal "$serve_journal" --jobs 2 \
    >/tmp/cobalt_serve_log.$$ 2>&1 &
serve_pid=$!
for _ in $(seq 1 200); do [[ -s "$serve_port" ]] && break; sleep 0.05; done
if [[ ! -s "$serve_port" ]]; then
    echo "serve: daemon never wrote its port file"; cat /tmp/cobalt_serve_log.$$; exit 1
fi
"$COBALT" client verify --port-file "$serve_port" >/tmp/cobalt_serve_a.$$ 2>&1 &
pid_a=$!
"$COBALT" client verify --port-file "$serve_port" >/tmp/cobalt_serve_b.$$ 2>&1 &
pid_b=$!
set +e
wait "$pid_a"; code_a=$?
wait "$pid_b"; code_b=$?
set -e
if [[ $code_a -ne 0 || $code_b -ne 0 ]]; then
    echo "serve: concurrent clients exited $code_a/$code_b (want 0/0)"
    cat /tmp/cobalt_serve_a.$$ /tmp/cobalt_serve_b.$$; exit 1
fi
if [[ "$(cat /tmp/cobalt_serve_a.$$)" != "$seq_out" ]]; then
    echo "serve: daemon payload diverged from one-shot CLI verify:"
    diff <(echo "$seq_out") /tmp/cobalt_serve_a.$$ || true
    exit 1
fi
warm_serve=$("$COBALT" client verify --port-file "$serve_port" 2>&1)
if [[ "$warm_serve" != "$(cat /tmp/cobalt_serve_a.$$)" ]]; then
    echo "serve: warm cache replay diverged from the cold serve"
    diff /tmp/cobalt_serve_a.$$ <(echo "$warm_serve") || true
    exit 1
fi
rm -f /tmp/cobalt_serve_a.$$ /tmp/cobalt_serve_b.$$

# Graceful drain: an in-band shutdown must report the drain and the
# daemon process must exit 0 with a compacted journal left behind.
out=$("$COBALT" client shutdown --port-file "$serve_port" 2>&1)
if ! grep -q "draining" <<<"$out"; then
    echo "serve: shutdown did not report draining: $out"; exit 1
fi
set +e
wait "$serve_pid"; code=$?
set -e
if [[ $code -ne 0 ]]; then
    echo "serve: drained daemon exited $code (want 0):"; cat /tmp/cobalt_serve_log.$$; exit 1
fi
if [[ ! -s "$serve_journal" ]]; then
    echo "serve: drained daemon left no proof-cache journal"; exit 1
fi
rm -f "$serve_port" "$serve_journal" /tmp/cobalt_serve_log.$$

# Overload smoke: a one-slot queue behind a deliberately slow prover
# must answer the overflow client with a typed shed (exit 3 after
# retries), never a hang or a protocol error.
rm -f "$serve_port"
COBALT_FAULTS=checker.obligation:delay_ms@10 \
    "$COBALT" serve --port-file "$serve_port" --queue 1 --jobs 1 \
    >/tmp/cobalt_serve_log.$$ 2>&1 &
serve_pid=$!
for _ in $(seq 1 200); do [[ -s "$serve_port" ]] && break; sleep 0.05; done
"$COBALT" client verify --port-file "$serve_port" >/dev/null 2>&1 &
pid_a=$!
"$COBALT" client verify --port-file "$serve_port" >/dev/null 2>&1 &
pid_b=$!
sleep 0.4
set +e
out=$("$COBALT" client verify --port-file "$serve_port" --retries 0 2>&1)
code=$?
set -e
if [[ $code -ne 3 ]]; then
    echo "serve: overflow client exited $code (want 3, shed): $out"; exit 1
fi
set +e
wait "$pid_a"; wait "$pid_b"
set -e
"$COBALT" client shutdown --port-file "$serve_port" >/dev/null 2>&1
set +e
wait "$serve_pid"; code=$?
set -e
if [[ $code -ne 0 ]]; then
    echo "serve: overloaded daemon drained with exit $code (want 0)"; exit 1
fi
rm -f "$serve_port" /tmp/cobalt_serve_log.$$

# Cache-fault smoke: a broken proof-cache journal must degrade to
# uncached service (verdicts unchanged, exit 0) with a visible note —
# never change an answer.
rm -f "$serve_port"
serve_journal=$(mktemp -u /tmp/cobalt_serve_journal_XXXXXX.cobj)
COBALT_FAULTS=serve.cache:fail@1 \
    "$COBALT" serve --port-file "$serve_port" --journal "$serve_journal" \
    >/tmp/cobalt_serve_log.$$ 2>&1 &
serve_pid=$!
for _ in $(seq 1 200); do [[ -s "$serve_port" ]] && break; sleep 0.05; done
set +e
out=$("$COBALT" client verify --port-file "$serve_port" 2>&1)
code=$?
set -e
if [[ $code -ne 0 ]]; then
    echo "serve: cache-fault verify exited $code (want 0):"; echo "$out"; exit 1
fi
if ! grep -q "degraded" <<<"$out"; then
    echo "serve: cache-fault daemon did not report degradation:"; echo "$out"; exit 1
fi
"$COBALT" client shutdown --port-file "$serve_port" >/dev/null 2>&1
set +e
wait "$serve_pid"
set -e
rm -f "$serve_port" "$serve_journal" /tmp/cobalt_serve_log.$$

echo "== perf stage (prover_speed trajectory)"

# The raw-speed trajectory datapoint (ISSUE 6, BENCH_*.json): run the
# prover_speed bench at one worker in fast mode and check it emits a
# well-formed BENCH_JSON record. No threshold gating — the stage fails
# only if the bench harness itself errors; the numbers are for the
# committed per-PR trajectory, not for pass/fail.
bench_json=$(mktemp -u /tmp/cobalt_bench_json_XXXXXX)
set +e
COBALT_BENCH_FAST=1 COBALT_BENCH_JSON="$bench_json" \
    cargo bench --offline -p cobalt-bench --bench prover_speed >/dev/null 2>&1
code=$?
set -e
if [[ $code -ne 0 ]]; then
    echo "perf: prover_speed bench harness exited $code"; rm -f "$bench_json"; exit 1
fi
if ! grep -q '"name":"prover_speed/registry_shared/jobs=1"' "$bench_json"; then
    echo "perf: prover_speed emitted no registry_shared datapoint:"
    cat "$bench_json" 2>/dev/null; rm -f "$bench_json"; exit 1
fi
grep 'registry_' "$bench_json" | sed 's/^/  /'
rm -f "$bench_json"

if [[ "${1:-}" == "--benches" ]]; then
    for bench in proof_times engine_scaling tv_vs_proof prover_ablation prover_speed serve_load; do
        echo "== cargo bench --bench ${bench} (fast mode)"
        COBALT_BENCH_FAST=1 cargo bench --offline -p cobalt-bench --bench "${bench}"
    done
fi

echo "verify: OK"
