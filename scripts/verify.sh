#!/usr/bin/env bash
# Tier-1 verification, run fully offline to prove the workspace is
# hermetic (no external registry dependencies; see DESIGN.md).
#
# Usage: scripts/verify.sh [--benches]
#   --benches   additionally smoke-run every benchmark in fast mode
#               (COBALT_BENCH_FAST=1) to check the timing harness.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline --workspace"
cargo test -q --offline --workspace

if [[ "${1:-}" == "--benches" ]]; then
    for bench in proof_times engine_scaling tv_vs_proof prover_ablation; do
        echo "== cargo bench --bench ${bench} (fast mode)"
        COBALT_BENCH_FAST=1 cargo bench --offline -p cobalt-bench --bench "${bench}"
    done
fi

echo "verify: OK"
