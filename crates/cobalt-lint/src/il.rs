//! The IL linter: structural checks over `cobalt-il` procedures and
//! programs, emitting `IL0xx` diagnostics (registry in DESIGN.md §9).
//!
//! Branch-target and fall-through problems (IL001/IL002) are detected
//! directly from the statement list so they are reported even when the
//! CFG cannot be built; the CFG-based checks (reachability, definite
//! assignment) run only on procedures whose CFG constructs.

use crate::diag::{Diagnostic, Diagnostics, Location};
use cobalt_il::{Cfg, Expr, Lhs, Proc, Program, Stmt, Var};
use std::collections::{BTreeMap, BTreeSet};

fn loc(proc: &Proc, index: Option<usize>) -> Location {
    Location::Il {
        proc: proc.name.to_string(),
        index,
    }
}

/// Lints one procedure.
pub fn lint_proc(proc: &Proc, diags: &mut Diagnostics) {
    let n = proc.stmts.len();

    // IL001: branch targets must be in range.
    let mut structurally_sound = true;
    for (i, s) in proc.stmts.iter().enumerate() {
        if let Stmt::If {
            then_target,
            else_target,
            ..
        } = s
        {
            for &t in [then_target, else_target] {
                if t >= n {
                    structurally_sound = false;
                    diags.push(
                        Diagnostic::error(
                            "IL001",
                            loc(proc, Some(i)),
                            format!("branch target {t} is out of range (procedure has {n} statements)"),
                        )
                        .with_suggestion("branch targets are 0-based statement indices"),
                    );
                }
            }
        }
    }

    // IL002: control must not fall off the end.
    if n == 0 || !matches!(proc.stmts[n - 1], Stmt::Return(_)) {
        structurally_sound = false;
        diags.push(
            Diagnostic::error(
                "IL002",
                loc(proc, n.checked_sub(1)),
                "procedure does not end in `return`; control can fall off the end",
            )
            .with_suggestion("add a trailing `return <var>;`"),
        );
    }

    // IL005: a pointer assigned `&x` but never dereferenced suggests a
    // dead address-of (statement-list scan; no CFG needed).
    let mut taken: BTreeMap<&Var, usize> = BTreeMap::new();
    let mut derefed: BTreeSet<&Var> = BTreeSet::new();
    for (i, s) in proc.stmts.iter().enumerate() {
        if let Stmt::Assign(lhs, e) = s {
            if let (Lhs::Var(p), Expr::AddrOf(_)) = (lhs, e) {
                taken.entry(p).or_insert(i);
            }
            if let Lhs::Deref(p) = lhs {
                derefed.insert(p);
            }
            if let Expr::Deref(p) = e {
                derefed.insert(p);
            }
        }
    }
    for (p, i) in taken {
        if !derefed.contains(p) {
            diags.push(
                Diagnostic::warning(
                    "IL005",
                    loc(proc, Some(i)),
                    format!("`{p}` holds an address but is never dereferenced"),
                )
                .with_suggestion(
                    "taking an address taints its target for the pointer analysis; \
                     drop the `&` if the indirection is unused",
                ),
            );
        }
    }

    // The remaining checks need a CFG.
    if !structurally_sound {
        return;
    }
    let Ok(cfg) = Cfg::new(proc) else {
        return;
    };

    // IL003: unreachable statements.
    let reachable: BTreeSet<usize> = cfg.reachable().into_iter().collect();
    for i in 0..n {
        if !reachable.contains(&i) {
            diags.push(
                Diagnostic::warning(
                    "IL003",
                    loc(proc, Some(i)),
                    format!("statement {i} (`{}`) is unreachable", proc.stmts[i]),
                )
                .with_suggestion("delete it or fix the branch structure"),
            );
        }
    }

    // IL004: use before definite assignment, by forward dataflow over
    // the CFG: in[entry] = {param}; transfer adds the syntactic def
    // (`decl` initializes to 0, so it counts); merge is intersection.
    // Unvisited nodes start at ⊤ so loop back-edges do not poison the
    // meet (cf. `fib.il`).
    let all_vars: BTreeSet<Var> = proc.variables().into_iter().collect();
    let top = all_vars.clone();
    let mut input: Vec<Option<BTreeSet<Var>>> = vec![None; n];
    let entry_in: BTreeSet<Var> = [proc.param.clone()].into_iter().collect();
    input[cfg.entry()] = Some(entry_in);
    let mut work: Vec<usize> = vec![cfg.entry()];
    while let Some(i) = work.pop() {
        let in_i = input[i].clone().unwrap_or_else(|| top.clone());
        let mut out = in_i;
        if let Some(v) = proc.stmts[i].syntactic_def() {
            out.insert(v.clone());
        }
        for &s in cfg.successors(i) {
            let merged = match &input[s] {
                None => out.clone(),
                Some(prev) => prev.intersection(&out).cloned().collect(),
            };
            if input[s].as_ref() != Some(&merged) {
                input[s] = Some(merged);
                work.push(s);
            }
        }
    }
    for &i in &reachable {
        let Some(in_i) = &input[i] else { continue };
        for v in proc.stmts[i].read_vars() {
            if !in_i.contains(v) {
                diags.push(
                    Diagnostic::warning(
                        "IL004",
                        loc(proc, Some(i)),
                        format!("`{v}` may be read before it is assigned"),
                    )
                    .with_suggestion(format!("declare or assign `{v}` on every path to here")),
                );
            }
        }
    }
}

/// Lints a whole program: every procedure, plus the cross-procedure
/// checks (IL006 unknown callee, IL007 duplicate declaration). A
/// missing `main` is deliberately *not* a lint — fixtures and library
/// fragments are legitimate lint inputs.
pub fn lint_program(prog: &Program, diags: &mut Diagnostics) {
    for p in &prog.procs {
        lint_proc(p, diags);

        // IL007: duplicate `decl` of the same local.
        let mut declared: BTreeSet<&Var> = BTreeSet::new();
        for (i, s) in p.stmts.iter().enumerate() {
            if let Stmt::Decl(v) = s {
                if !declared.insert(v) {
                    diags.push(Diagnostic::error(
                        "IL007",
                        loc(p, Some(i)),
                        format!("`{v}` is declared more than once"),
                    ));
                }
            }
        }

        // IL006: every callee must exist.
        for (i, s) in p.stmts.iter().enumerate() {
            if let Stmt::Call { proc: callee, .. } = s {
                if prog.proc(callee).is_none() {
                    diags.push(
                        Diagnostic::error(
                            "IL006",
                            loc(p, Some(i)),
                            format!("call to unknown procedure `{callee}`"),
                        )
                        .with_suggestion("define the procedure or fix the name"),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobalt_il::parse_program;

    fn lint_src(src: &str) -> Diagnostics {
        let prog = parse_program(src).expect("fixture parses");
        let mut diags = Diagnostics::new();
        lint_program(&prog, &mut diags);
        diags
    }

    fn codes(diags: &Diagnostics) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn il001_dangling_branch_target() {
        let diags = lint_src("proc main(x) { if x goto 9 else 1; return x; }");
        assert!(codes(&diags).contains(&"IL001"), "{}", diags.render_human());
        assert!(diags.has_errors());
    }

    #[test]
    fn il002_missing_return() {
        let diags = lint_src("proc main(x) { x := 1; skip; }");
        assert!(codes(&diags).contains(&"IL002"), "{}", diags.render_human());
    }

    #[test]
    fn il003_unreachable_statement() {
        let diags = lint_src("proc main(x) { if x goto 3 else 3; skip; skip; return x; }");
        let il003 = diags.iter().filter(|d| d.code == "IL003").count();
        assert_eq!(il003, 2, "{}", diags.render_human());
        assert!(!diags.has_errors(), "unreachable code is a warning");
    }

    #[test]
    fn il004_use_before_def_on_one_path() {
        // `y` is assigned only on the then-path but read afterward.
        let diags = lint_src(
            "proc main(x) { decl y; decl z; if x goto 3 else 4; z := 1; y := z + 1; return y; }",
        );
        // z is read at 4 but only assigned on the path through 3.
        let msgs: Vec<_> = diags
            .iter()
            .filter(|d| d.code == "IL004")
            .map(|d| d.message.clone())
            .collect();
        assert!(msgs.is_empty(), "decl initializes to 0: {msgs:?}");

        let diags = lint_src("proc main(x) { y := q + 1; return y; }");
        let msgs: Vec<_> = diags
            .iter()
            .filter(|d| d.code == "IL004")
            .map(|d| d.message.clone())
            .collect();
        assert_eq!(msgs.len(), 1, "{}", diags.render_human());
        assert!(msgs[0].contains("`q`"), "{msgs:?}");
    }

    #[test]
    fn il004_loop_back_edge_converges_clean() {
        // The fib.il shape: a loop whose body reads variables defined
        // before entry must not be flagged.
        let fib = std::fs::read_to_string(
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/programs/fib.il"),
        )
        .expect("fib.il present");
        let diags = lint_src(&fib);
        assert!(diags.is_empty(), "{}", diags.render_human());
    }

    #[test]
    fn il005_address_taken_never_dereferenced() {
        let diags = lint_src("proc main(x) { decl y; decl p; p := &y; return x; }");
        assert!(codes(&diags).contains(&"IL005"), "{}", diags.render_human());
        assert!(!diags.has_errors());

        // A dereference anywhere clears the warning (pointers.il shape).
        let diags =
            lint_src("proc main(x) { decl y; decl p; decl a; p := &y; a := *p; return a; }");
        assert!(!codes(&diags).contains(&"IL005"), "{}", diags.render_human());
    }

    #[test]
    fn il006_unknown_callee() {
        let diags = lint_src("proc main(x) { y := missing(1); return y; }");
        assert!(codes(&diags).contains(&"IL006"), "{}", diags.render_human());
    }

    #[test]
    fn il007_duplicate_decl() {
        let diags = lint_src("proc main(x) { decl y; decl y; return x; }");
        assert!(codes(&diags).contains(&"IL007"), "{}", diags.render_human());
    }

    #[test]
    fn example_programs_are_clean() {
        for name in ["fib.il", "pointers.il", "redundant.il"] {
            let src = std::fs::read_to_string(format!(
                "{}/../../examples/programs/{name}",
                env!("CARGO_MANIFEST_DIR")
            ))
            .expect("example present");
            let diags = lint_src(&src);
            assert!(diags.is_empty(), "{name}: {}", diags.render_human());
        }
    }
}
