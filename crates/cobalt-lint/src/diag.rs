//! The diagnostics core: codes, severities, locations, and a sink.
//!
//! Every lint produces a [`Diagnostic`] with a registered code
//! (`CL0xx` for rule lints, `IL0xx` for IL lints; see DESIGN.md §9 for
//! the registry). A [`Diagnostics`] sink collects them, renders them
//! for humans, and serializes them as one-line JSON records mirroring
//! the `BENCH_JSON` convention (hand-rolled, no external serializer).

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not definitely wrong; does not gate the prover.
    Warning,
    /// Definitely malformed; gates the prover and fails `cobalt lint`.
    Error,
}

impl Severity {
    /// The lowercase name used in human and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// A part of a named rule or analysis (`psi1`, `from`, `witness`, …).
    Rule {
        /// The rule or analysis name.
        rule: String,
        /// The syntactic part the diagnostic is about.
        part: String,
    },
    /// A statement (or the whole body) of an IL procedure.
    Il {
        /// The procedure name.
        proc: String,
        /// The statement index, if the diagnostic is node-specific.
        index: Option<usize>,
    },
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Rule { rule, part } => write!(f, "{rule}/{part}"),
            Location::Il { proc, index: Some(i) } => write!(f, "{proc}:{i}"),
            Location::Il { proc, index: None } => write!(f, "{proc}"),
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The registered code, e.g. `"CL001"` or `"IL003"`.
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// What is wrong, in one sentence.
    pub message: String,
    /// Where.
    pub location: Location,
    /// An optional remediation hint.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// A new error diagnostic.
    pub fn error(code: &'static str, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            location,
            suggestion: None,
        }
    }

    /// A new warning diagnostic.
    pub fn warning(code: &'static str, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            location,
            suggestion: None,
        }
    }

    /// Attaches a remediation hint.
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }

    /// One-line JSON record (hermetic hand-rolled serialization, same
    /// style as the bench harness's `BENCH_JSON` lines).
    pub fn json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"code\":\"{}\",\"severity\":\"{}\"",
            self.code, self.severity
        ));
        match &self.location {
            Location::Rule { rule, part } => out.push_str(&format!(
                ",\"rule\":\"{}\",\"part\":\"{}\"",
                json_escape(rule),
                json_escape(part)
            )),
            Location::Il { proc, index } => {
                out.push_str(&format!(",\"proc\":\"{}\"", json_escape(proc)));
                if let Some(i) = index {
                    out.push_str(&format!(",\"index\":{i}"));
                }
            }
        }
        out.push_str(&format!(",\"message\":\"{}\"", json_escape(&self.message)));
        if let Some(s) = &self.suggestion {
            out.push_str(&format!(",\"suggestion\":\"{}\"", json_escape(s)));
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.location, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, " (hint: {s})")?;
        }
        Ok(())
    }
}

/// Escapes a string for inclusion in a JSON string literal. Shared by
/// every hand-rolled JSON emitter in the workspace (lint diagnostics,
/// engine pipeline reports) so escaping rules cannot drift.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A sink of diagnostics with severity accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty sink.
    pub fn new() -> Self {
        Diagnostics::default()
    }

    /// Records one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Absorbs another sink's diagnostics.
    pub fn absorb(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// All diagnostics, in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.items.len() - self.error_count()
    }

    /// Whether any error-severity diagnostic was recorded.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Whether the run fails under the given threshold: errors always
    /// fail; warnings fail only when `deny_warnings` is set (the CLI's
    /// `--deny warn`).
    pub fn is_failing(&self, deny_warnings: bool) -> bool {
        self.has_errors() || (deny_warnings && !self.is_empty())
    }

    /// Human rendering, one line per diagnostic plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "lint: {} error(s), {} warning(s)\n",
            self.error_count(),
            self.warning_count()
        ));
        out
    }

    /// Machine rendering: one JSON record per line.
    pub fn json_lines(&self) -> String {
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&d.json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule_loc() -> Location {
        Location::Rule {
            rule: "const_prop".into(),
            part: "to".into(),
        }
    }

    #[test]
    fn severity_ordering_and_names() {
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn human_rendering_includes_code_and_location() {
        let d = Diagnostic::error("CL001", rule_loc(), "unbound pattern variable `C`")
            .with_suggestion("bind `C` in psi1 or from");
        let s = d.to_string();
        assert!(s.contains("error[CL001]"), "{s}");
        assert!(s.contains("const_prop/to"), "{s}");
        assert!(s.contains("hint:"), "{s}");
    }

    #[test]
    fn json_record_shape_and_escaping() {
        let d = Diagnostic::warning(
            "IL003",
            Location::Il {
                proc: "main".into(),
                index: Some(3),
            },
            "unreachable \"statement\"\n",
        );
        let j = d.json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"code\":\"IL003\""), "{j}");
        assert!(j.contains("\"severity\":\"warning\""), "{j}");
        assert!(j.contains("\"proc\":\"main\""), "{j}");
        assert!(j.contains("\"index\":3"), "{j}");
        assert!(j.contains("\\\"statement\\\""), "{j}");
        assert!(j.contains("\\n"), "{j}");
        assert!(!j.contains('\n'), "must be one line: {j}");
    }

    #[test]
    fn sink_accounting_and_thresholds() {
        let mut ds = Diagnostics::new();
        assert!(ds.is_empty() && !ds.is_failing(true));
        ds.push(Diagnostic::warning("IL005", rule_loc(), "w"));
        assert!(!ds.has_errors());
        assert!(!ds.is_failing(false));
        assert!(ds.is_failing(true), "--deny warn promotes warnings");
        ds.push(Diagnostic::error("CL001", rule_loc(), "e"));
        assert_eq!((ds.error_count(), ds.warning_count()), (1, 1));
        assert!(ds.is_failing(false));
        let human = ds.render_human();
        assert!(human.contains("1 error(s), 1 warning(s)"), "{human}");
        assert_eq!(ds.json_lines().lines().count(), 2);
    }

    #[test]
    fn absorb_merges_in_order() {
        let mut a = Diagnostics::new();
        a.push(Diagnostic::error("CL001", rule_loc(), "first"));
        let mut b = Diagnostics::new();
        b.push(Diagnostic::error("CL002", rule_loc(), "second"));
        a.absorb(b);
        let codes: Vec<_> = a.iter().map(|d| d.code).collect();
        assert_eq!(codes, ["CL001", "CL002"]);
    }
}
