//! # cobalt-lint
//!
//! Static analysis for Cobalt: a diagnostics core plus two linters —
//! one over `cobalt-dsl` rule ASTs (`CL0xx` codes) and one over
//! `cobalt-il` programs (`IL0xx` codes). The linters are cheap,
//! total, and purely syntactic/dataflow-level; anything requiring
//! semantic reasoning about executions stays the prover's job
//! (`cobalt-verify`). See DESIGN.md §9 for the code registry and the
//! division of labor.
//!
//! Three consumers:
//! - `cobalt lint` (CLI): human or JSON-lines output, exit code 4 on
//!   lint errors;
//! - the pre-verification gate in `cobalt-verify::checker`: rejects
//!   structurally malformed rules before any prover obligation;
//! - the opt-in pre-pass in `cobalt-engine`'s resilient pipeline:
//!   quarantines lint-rejected rules as typed pass failures.
//!
//! The rule linter exposes a `lint.rule` fault point
//! (`cobalt-support::fault`); an injected `fail` surfaces as a `CL000`
//! diagnostic, an injected `panic` is isolated by the callers above.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod il;
pub mod rule;
pub mod vacuous;

pub use diag::{json_escape, Diagnostic, Diagnostics, Location, Severity};
pub use il::{lint_proc, lint_program};
pub use rule::{lint_analysis, lint_optimization, LintContext, RuleLintOptions};
pub use vacuous::is_propositionally_vacuous;
