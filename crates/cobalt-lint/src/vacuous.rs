//! The CL008 guard-contradiction quick-check.
//!
//! Guards are abstracted propositionally: each atomic guard (statement
//! pattern, label, equality, `unchanged`, …) becomes an opaque boolean
//! variable keyed by its canonical (structural) form, so two
//! syntactically identical atoms share one variable. The boolean
//! skeleton then goes to the in-tree `cobalt-logic` solver under a
//! small [`Limits`]/[`Budget`]: if `¬guard` is *proved* valid, the
//! guard is propositionally unsatisfiable and the rule can never fire.
//!
//! This is a sound under-approximation of vacuity at the boolean
//! level: `Unknown` (including a blown budget) reports nothing.

use cobalt_dsl::Guard;
use cobalt_logic::solver::{Budget, Limits, Outcome, ProofTask, Solver};
use cobalt_logic::{Formula, TermBank};
use std::collections::HashMap;
use std::time::Duration;

/// Translates a guard into its propositional skeleton, interning one
/// nullary predicate symbol per distinct atomic guard.
fn encode(g: &Guard, bank: &mut TermBank, atoms: &mut HashMap<String, Formula>) -> Formula {
    match g {
        Guard::True => Formula::True,
        Guard::False => Formula::False,
        Guard::Not(inner) => Formula::Not(Box::new(encode(inner, bank, atoms))),
        Guard::And(gs) => Formula::And(gs.iter().map(|g| encode(g, bank, atoms)).collect()),
        Guard::Or(gs) => Formula::Or(gs.iter().map(|g| encode(g, bank, atoms)).collect()),
        atom => {
            // `Guard` derives a structural `Debug`, which is a faithful
            // canonical key for atom identity.
            let key = format!("{atom:?}");
            if let Some(f) = atoms.get(&key) {
                return f.clone();
            }
            let sym = format!("atom_{}", atoms.len());
            let t = bank.app0(&sym);
            let f = Formula::Holds(t);
            atoms.insert(key, f.clone());
            f
        }
    }
}

/// Whether `g` is unsatisfiable at the propositional level, within
/// `deadline`. Budget exhaustion and open branches both answer `false`
/// — the check only reports what it can prove.
pub fn is_propositionally_vacuous(g: &Guard, deadline: Duration) -> bool {
    // Fast path: no point spinning up a solver for `true`-ish guards.
    if matches!(g, Guard::True) {
        return false;
    }
    if matches!(g, Guard::False) {
        return true;
    }
    let mut solver = Solver::new();
    let mut atoms = HashMap::new();
    let encoded = encode(g, &mut solver.bank, &mut atoms);
    solver.set_limits(Limits {
        max_splits: 256,
        max_inst_rounds: 1,
        max_terms: 4_096,
        deadline: Some(deadline),
    });
    solver.set_budget(Budget::with_deadline(deadline));
    let task = ProofTask {
        hypotheses: vec![],
        goal: encoded.negate(),
    };
    matches!(solver.prove(&task), Outcome::Proved { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobalt_dsl::{StmtPat, VarPat};

    fn atom() -> Guard {
        Guard::Stmt(StmtPat::Decl(VarPat::pat("X")))
    }

    const DL: Duration = Duration::from_millis(500);

    #[test]
    fn contradiction_is_vacuous() {
        let g = Guard::And(vec![atom(), Guard::Not(Box::new(atom()))]);
        assert!(is_propositionally_vacuous(&g, DL));
    }

    #[test]
    fn satisfiable_guard_is_not_vacuous() {
        let g = Guard::And(vec![atom(), Guard::Stmt(StmtPat::Skip)]);
        assert!(!is_propositionally_vacuous(&g, DL));
    }

    #[test]
    fn distinct_atoms_are_independent() {
        // a ∧ ¬b is satisfiable even though both are Stmt guards.
        let g = Guard::And(vec![
            atom(),
            Guard::Not(Box::new(Guard::Stmt(StmtPat::Skip))),
        ]);
        assert!(!is_propositionally_vacuous(&g, DL));
    }

    #[test]
    fn nested_contradiction_through_de_morgan() {
        // ¬(a ∨ ¬a) is unsatisfiable.
        let g = Guard::Not(Box::new(Guard::Or(vec![
            atom(),
            Guard::Not(Box::new(atom())),
        ])));
        assert!(is_propositionally_vacuous(&g, DL));
    }

    #[test]
    fn constant_guards_short_circuit() {
        assert!(is_propositionally_vacuous(&Guard::False, DL));
        assert!(!is_propositionally_vacuous(&Guard::True, DL));
    }

    #[test]
    fn zero_budget_reports_nothing() {
        let g = Guard::And(vec![atom(), Guard::Not(Box::new(atom()))]);
        assert!(!is_propositionally_vacuous(&g, Duration::ZERO));
    }
}
