//! The rule linter: structural well-formedness checks over `cobalt-dsl`
//! ASTs, emitting `CL0xx` diagnostics (registry in DESIGN.md §9).
//!
//! The linter understands the engine's binding discipline: at apply
//! time a rewrite's substitution carries every variable matched by the
//! positive statement patterns of `ψ1`, every non-statement pattern
//! variable of `ψ1` (enumerated over the procedure domain by
//! [`Guard::solve`]), and every variable bound by matching `from`.
//! Statement patterns under negation or inside `case` arms never
//! contribute bindings — a template or witness variable whose only
//! occurrence is there can never be instantiated.

use crate::diag::{Diagnostic, Diagnostics, Location};
use crate::vacuous;
use cobalt_dsl::{
    BackwardWitness, BasePat, ConstPat, Direction, ExprPat, ForwardWitness, Guard, GuardSpec,
    LabelArgPat, LabelEnv, LhsPat, Optimization, PureAnalysis, StmtPat, VarPat, Witness,
};
use cobalt_support::fault;
use std::collections::BTreeSet;
use std::time::Duration;

/// Options for a rule-lint run.
#[derive(Debug, Clone)]
pub struct RuleLintOptions {
    /// Run the budgeted solver-backed guard-contradiction quick-check
    /// (CL008). Off in the checker's fast pre-verification gate, on in
    /// `cobalt lint`.
    pub vacuous_check: bool,
    /// Wall-clock budget for one CL008 quick-check.
    pub vacuous_deadline: Duration,
}

impl Default for RuleLintOptions {
    fn default() -> Self {
        RuleLintOptions {
            vacuous_check: true,
            vacuous_deadline: Duration::from_millis(50),
        }
    }
}

impl RuleLintOptions {
    /// Structural checks only: no solver, suitable for a <1ms gate.
    pub fn structural() -> Self {
        RuleLintOptions {
            vacuous_check: false,
            ..RuleLintOptions::default()
        }
    }
}

/// What the linter knows about labels: the definition environment plus
/// the names attached semantically by pure analyses.
#[derive(Debug, Clone)]
pub struct LintContext<'a> {
    env: &'a LabelEnv,
    semantic: BTreeSet<String>,
}

impl<'a> LintContext<'a> {
    /// A context over `env`; the built-in semantic label `notTainted`
    /// (paper §2.4) is always known.
    pub fn new(env: &'a LabelEnv) -> Self {
        let mut semantic = BTreeSet::new();
        semantic.insert("notTainted".to_string());
        LintContext { env, semantic }
    }

    /// Also treat every label defined by `analyses` as known.
    pub fn with_analyses(mut self, analyses: &[PureAnalysis]) -> Self {
        for a in analyses {
            self.semantic.insert(a.defines.0.to_string());
        }
        self
    }
}

/// Variable occurrences collected from a guard, split by how the
/// engine's solve/eval discipline treats them.
#[derive(Debug, Default)]
struct GuardVars {
    /// Statement-pattern variables in positive, non-`case` positions:
    /// these bind by matching.
    positive_binders: BTreeSet<String>,
    /// Statement-pattern variables that can never bind: under a
    /// negation or inside a `case` arm.
    local_binders: BTreeSet<String>,
    /// Non-statement pattern variables (label arguments, equality
    /// operands, `unchanged` operands): `solve` enumerates these over
    /// the procedure domain, so they are bound in every fact.
    uses: BTreeSet<String>,
}

fn var_pat(out: &mut BTreeSet<String>, vp: &VarPat) {
    if let VarPat::Pat(p) = vp {
        out.insert(p.as_str().to_string());
    }
}

fn const_pat(out: &mut BTreeSet<String>, cp: &ConstPat) {
    if let ConstPat::Pat(p) = cp {
        out.insert(p.as_str().to_string());
    }
}

fn base_pat(out: &mut BTreeSet<String>, bp: &BasePat) {
    match bp {
        BasePat::Var(v) => var_pat(out, v),
        BasePat::Const(c) => const_pat(out, c),
    }
}

fn expr_pat(out: &mut BTreeSet<String>, ep: &ExprPat) {
    match ep {
        ExprPat::Pat(p) | ExprPat::Fold(p) => {
            out.insert(p.as_str().to_string());
        }
        ExprPat::Any => {}
        ExprPat::Base(b) => base_pat(out, b),
        ExprPat::Deref(v) | ExprPat::AddrOf(v) => var_pat(out, v),
        ExprPat::Op(_, args) => {
            for a in args {
                base_pat(out, a);
            }
        }
    }
}

/// All pattern variables of a statement pattern, of every fragment kind.
fn stmt_pat_vars(out: &mut BTreeSet<String>, sp: &StmtPat) {
    match sp {
        StmtPat::Any | StmtPat::Skip | StmtPat::ReturnAny => {}
        StmtPat::Decl(v) | StmtPat::New(v) | StmtPat::Return(v) => var_pat(out, v),
        StmtPat::Assign(lhs, e) => {
            match lhs {
                LhsPat::Var(v) | LhsPat::Deref(v) => var_pat(out, v),
                LhsPat::Any => {}
            }
            expr_pat(out, e);
        }
        StmtPat::Call { dst, proc, arg } => {
            var_pat(out, dst);
            if let cobalt_dsl::ProcPat::Pat(p) = proc {
                out.insert(p.as_str().to_string());
            }
            base_pat(out, arg);
        }
        StmtPat::If {
            cond,
            then_target,
            else_target,
        } => {
            base_pat(out, cond);
            for t in [then_target, else_target] {
                if let cobalt_dsl::IdxPat::Pat(p) = t {
                    out.insert(p.as_str().to_string());
                }
            }
        }
    }
}

/// Whether a statement pattern contains a wildcard that cannot be
/// instantiated as a template (`...`, `return ...`).
fn stmt_pat_has_wildcard(sp: &StmtPat) -> bool {
    match sp {
        StmtPat::Any | StmtPat::ReturnAny => true,
        StmtPat::Assign(lhs, e) => {
            matches!(lhs, LhsPat::Any) || matches!(e, ExprPat::Any)
        }
        _ => false,
    }
}

/// Whether a statement pattern contains `fold(_)`, which never matches
/// any concrete statement ([`ExprPat::Fold`] is template-only).
fn stmt_pat_has_fold(sp: &StmtPat) -> bool {
    matches!(sp, StmtPat::Assign(_, ExprPat::Fold(_)))
}

/// Whether any statement pattern inside the guard contains `fold(_)`.
fn guard_has_fold(g: &Guard) -> bool {
    match g {
        Guard::Stmt(sp) => stmt_pat_has_fold(sp),
        Guard::Not(inner) => guard_has_fold(inner),
        Guard::And(gs) | Guard::Or(gs) => gs.iter().any(guard_has_fold),
        Guard::CaseStmt { arms, default } => {
            arms.iter()
                .any(|(pat, g)| stmt_pat_has_fold(pat) || guard_has_fold(g))
                || guard_has_fold(default)
        }
        _ => false,
    }
}

fn collect_guard(g: &Guard, positive: bool, in_arm: bool, acc: &mut GuardVars) {
    match g {
        Guard::True | Guard::False => {}
        Guard::Not(inner) => collect_guard(inner, false, in_arm, acc),
        Guard::And(gs) | Guard::Or(gs) => {
            for g in gs {
                collect_guard(g, positive, in_arm, acc);
            }
        }
        Guard::Stmt(sp) => {
            let sink = if positive && !in_arm {
                &mut acc.positive_binders
            } else {
                &mut acc.local_binders
            };
            stmt_pat_vars(sink, sp);
        }
        Guard::Label(_, args) => {
            let mut vs = Vec::new();
            for a in args {
                a.pattern_vars(&mut vs);
                // `pattern_vars` only reports top-level pattern
                // variables; compound expression arguments may mention
                // more.
                if let LabelArgPat::Expr(e) = a {
                    expr_pat(&mut acc.uses, e);
                }
            }
            for (p, _) in vs {
                acc.uses.insert(p.as_str().to_string());
            }
        }
        Guard::SyntacticDef(v) | Guard::SyntacticUse(v) => var_pat(&mut acc.uses, v),
        Guard::Unchanged(e) => expr_pat(&mut acc.uses, e),
        Guard::ConstEq(a, b) => {
            const_pat(&mut acc.uses, a);
            const_pat(&mut acc.uses, b);
        }
        Guard::VarEq(a, b) => {
            var_pat(&mut acc.uses, a);
            var_pat(&mut acc.uses, b);
        }
        Guard::CaseStmt { arms, default } => {
            for (pat, g) in arms {
                stmt_pat_vars(&mut acc.local_binders, pat);
                collect_guard(g, positive, true, acc);
            }
            collect_guard(default, positive, true, acc);
        }
    }
}

/// Pattern variables a witness refers to.
fn witness_vars(out: &mut BTreeSet<String>, w: &Witness) {
    match w {
        Witness::Forward(fw) => forward_witness_vars(out, fw),
        Witness::Backward(bw) => match bw {
            BackwardWitness::Identical => {}
            BackwardWitness::AgreeExcept(v) => var_pat(out, v),
        },
    }
}

fn forward_witness_vars(out: &mut BTreeSet<String>, w: &ForwardWitness) {
    match w {
        ForwardWitness::True => {}
        ForwardWitness::VarEqConst(v, c) => {
            var_pat(out, v);
            const_pat(out, c);
        }
        ForwardWitness::VarEqVar(a, b) => {
            var_pat(out, a);
            var_pat(out, b);
        }
        ForwardWitness::VarEqExpr(v, e) => {
            var_pat(out, v);
            expr_pat(out, e);
        }
        ForwardWitness::NotPointedTo(v) => var_pat(out, v),
        ForwardWitness::And(ws) => {
            for w in ws {
                forward_witness_vars(out, w);
            }
        }
    }
}

/// All `case` constructs in a guard, for the arm-reachability check.
fn case_stmts<'g>(g: &'g Guard, out: &mut Vec<&'g Guard>) {
    match g {
        Guard::Not(inner) => case_stmts(inner, out),
        Guard::And(gs) | Guard::Or(gs) => {
            for g in gs {
                case_stmts(g, out);
            }
        }
        Guard::CaseStmt { arms, default } => {
            out.push(g);
            for (_, g) in arms {
                case_stmts(g, out);
            }
            case_stmts(default, out);
        }
        _ => {}
    }
}

/// Conservative subsumption between statement patterns: `true` only if
/// every statement matched by `b` is also matched by `a` (so an arm
/// with pattern `b` after an arm with pattern `a` is unreachable).
/// Nonlinear patterns (repeated variables) are never reported.
fn pat_subsumes(a: &StmtPat, b: &StmtPat) -> bool {
    // A repeated variable constrains matching position-dependently, so
    // position-wise subsumption would be unsound; bail out.
    let mut occurrences = Vec::new();
    stmt_pat_var_list(a, &mut occurrences);
    let distinct: BTreeSet<&String> = occurrences.iter().collect();
    if distinct.len() != occurrences.len() {
        return false;
    }
    subsumes_inner(a, b)
}

/// Every pattern-variable occurrence in `sp`, in order, with repeats.
fn stmt_pat_var_list(sp: &StmtPat, out: &mut Vec<String>) {
    let var = |out: &mut Vec<String>, vp: &VarPat| {
        if let VarPat::Pat(p) = vp {
            out.push(p.as_str().to_string());
        }
    };
    let base = |out: &mut Vec<String>, bp: &BasePat| match bp {
        BasePat::Var(VarPat::Pat(p)) | BasePat::Const(ConstPat::Pat(p)) => {
            out.push(p.as_str().to_string());
        }
        _ => {}
    };
    match sp {
        StmtPat::Any | StmtPat::Skip | StmtPat::ReturnAny => {}
        StmtPat::Decl(v) | StmtPat::New(v) | StmtPat::Return(v) => var(out, v),
        StmtPat::Assign(lhs, e) => {
            match lhs {
                LhsPat::Var(v) | LhsPat::Deref(v) => var(out, v),
                LhsPat::Any => {}
            }
            match e {
                ExprPat::Pat(p) | ExprPat::Fold(p) => out.push(p.as_str().to_string()),
                ExprPat::Any => {}
                ExprPat::Base(b) => base(out, b),
                ExprPat::Deref(v) | ExprPat::AddrOf(v) => var(out, v),
                ExprPat::Op(_, args) => {
                    for a in args {
                        base(out, a);
                    }
                }
            }
        }
        StmtPat::Call { dst, proc, arg } => {
            var(out, dst);
            if let cobalt_dsl::ProcPat::Pat(p) = proc {
                out.push(p.as_str().to_string());
            }
            base(out, arg);
        }
        StmtPat::If {
            cond,
            then_target,
            else_target,
        } => {
            base(out, cond);
            for t in [then_target, else_target] {
                if let cobalt_dsl::IdxPat::Pat(p) = t {
                    out.push(p.as_str().to_string());
                }
            }
        }
    }
}

fn subsumes_inner(a: &StmtPat, b: &StmtPat) -> bool {
    match (a, b) {
        (StmtPat::Any, _) => true,
        (StmtPat::ReturnAny, StmtPat::Return(_) | StmtPat::ReturnAny) => true,
        (StmtPat::Skip, StmtPat::Skip) => true,
        (StmtPat::Decl(x), StmtPat::Decl(y))
        | (StmtPat::New(x), StmtPat::New(y))
        | (StmtPat::Return(x), StmtPat::Return(y)) => var_subsumes(x, y),
        (StmtPat::Assign(l1, e1), StmtPat::Assign(l2, e2)) => {
            lhs_subsumes(l1, l2) && expr_subsumes(e1, e2)
        }
        (
            StmtPat::Call {
                dst: d1,
                proc: p1,
                arg: a1,
            },
            StmtPat::Call {
                dst: d2,
                proc: p2,
                arg: a2,
            },
        ) => var_subsumes(d1, d2) && proc_subsumes(p1, p2) && base_subsumes(a1, a2),
        (
            StmtPat::If {
                cond: c1,
                then_target: t1,
                else_target: e1,
            },
            StmtPat::If {
                cond: c2,
                then_target: t2,
                else_target: e2,
            },
        ) => base_subsumes(c1, c2) && idx_subsumes(t1, t2) && idx_subsumes(e1, e2),
        _ => false,
    }
}

fn var_subsumes(a: &VarPat, b: &VarPat) -> bool {
    match (a, b) {
        (VarPat::Pat(_), _) => true,
        (VarPat::Concrete(x), VarPat::Concrete(y)) => x == y,
        _ => false,
    }
}

fn proc_subsumes(a: &cobalt_dsl::ProcPat, b: &cobalt_dsl::ProcPat) -> bool {
    use cobalt_dsl::ProcPat;
    match (a, b) {
        (ProcPat::Pat(_), _) => true,
        (ProcPat::Concrete(x), ProcPat::Concrete(y)) => x == y,
        _ => false,
    }
}

fn idx_subsumes(a: &cobalt_dsl::IdxPat, b: &cobalt_dsl::IdxPat) -> bool {
    use cobalt_dsl::IdxPat;
    match (a, b) {
        (IdxPat::Pat(_), _) => true,
        (IdxPat::Concrete(x), IdxPat::Concrete(y)) => x == y,
        _ => false,
    }
}

fn const_subsumes(a: &ConstPat, b: &ConstPat) -> bool {
    match (a, b) {
        (ConstPat::Pat(_), _) => true,
        (ConstPat::Concrete(x), ConstPat::Concrete(y)) => x == y,
        _ => false,
    }
}

fn base_subsumes(a: &BasePat, b: &BasePat) -> bool {
    match (a, b) {
        (BasePat::Var(x), BasePat::Var(y)) => var_subsumes(x, y),
        (BasePat::Const(x), BasePat::Const(y)) => const_subsumes(x, y),
        // A variable position never matches a constant and vice versa.
        _ => false,
    }
}

fn lhs_subsumes(a: &LhsPat, b: &LhsPat) -> bool {
    match (a, b) {
        (LhsPat::Any, _) => true,
        (LhsPat::Var(x), LhsPat::Var(y)) | (LhsPat::Deref(x), LhsPat::Deref(y)) => {
            var_subsumes(x, y)
        }
        _ => false,
    }
}

fn expr_subsumes(a: &ExprPat, b: &ExprPat) -> bool {
    match (a, b) {
        (ExprPat::Fold(_), _) => false, // never matches anything
        (ExprPat::Pat(_), _) | (ExprPat::Any, _) => true,
        (ExprPat::Base(x), ExprPat::Base(y)) => base_subsumes(x, y),
        (ExprPat::Deref(x), ExprPat::Deref(y)) | (ExprPat::AddrOf(x), ExprPat::AddrOf(y)) => {
            var_subsumes(x, y)
        }
        (ExprPat::Op(k1, a1), ExprPat::Op(k2, a2)) => {
            k1 == k2 && a1.len() == a2.len() && a1.iter().zip(a2).all(|(x, y)| base_subsumes(x, y))
        }
        _ => false,
    }
}

/// All label references `(name, arity, part)` in a guard.
fn label_refs<'g>(
    g: &'g Guard,
    part: &'static str,
    out: &mut Vec<(&'g cobalt_dsl::LabelName, usize, &'static str)>,
) {
    match g {
        Guard::Not(inner) => label_refs(inner, part, out),
        Guard::And(gs) | Guard::Or(gs) => {
            for g in gs {
                label_refs(g, part, out);
            }
        }
        Guard::Label(name, args) => out.push((name, args.len(), part)),
        Guard::CaseStmt { arms, default } => {
            for (_, g) in arms {
                label_refs(g, part, out);
            }
            label_refs(default, part, out);
        }
        _ => {}
    }
}

/// The pieces of a rule or analysis, normalized so one walker serves
/// both.
struct RuleParts<'r> {
    name: &'r str,
    /// `(part name, guard)` pairs.
    guards: Vec<(&'static str, &'r Guard)>,
    from: Option<&'r StmtPat>,
    to: Option<&'r StmtPat>,
    witness_vars: BTreeSet<String>,
    /// Variables used by the analysis's `defines` arguments.
    defines_vars: BTreeSet<String>,
}

fn lint_parts(parts: &RuleParts<'_>, ctx: &LintContext<'_>, opts: &RuleLintOptions) -> Diagnostics {
    let mut diags = Diagnostics::new();
    let loc = |part: &str| Location::Rule {
        rule: parts.name.to_string(),
        part: part.to_string(),
    };

    // Collect binding structure. `from` binds by matching; psi1 binds
    // via the solve discipline; psi2/where only consume bindings.
    let mut from_vars = BTreeSet::new();
    if let Some(from) = parts.from {
        stmt_pat_vars(&mut from_vars, from);
    }
    let mut psi1_vars = GuardVars::default();
    let mut other_vars = GuardVars::default();
    for (part, g) in &parts.guards {
        if *part == "psi1" {
            collect_guard(g, true, false, &mut psi1_vars);
        } else {
            collect_guard(g, true, false, &mut other_vars);
        }
    }

    let mut bound: BTreeSet<String> = from_vars.clone();
    bound.extend(psi1_vars.positive_binders.iter().cloned());
    bound.extend(psi1_vars.uses.iter().cloned());
    let mut local_only: BTreeSet<String> = BTreeSet::new();
    for v in psi1_vars
        .local_binders
        .iter()
        .chain(other_vars.local_binders.iter())
    {
        if !bound.contains(v) {
            local_only.insert(v.clone());
        }
    }

    // CL001 / CL007: template and witness variables must be bound.
    let mut template_uses: Vec<(String, &'static str)> = Vec::new();
    if let Some(to) = parts.to {
        let mut vs = BTreeSet::new();
        stmt_pat_vars(&mut vs, to);
        template_uses.extend(vs.into_iter().map(|v| (v, "to")));
    }
    template_uses.extend(parts.witness_vars.iter().map(|v| (v.clone(), "witness")));
    template_uses.extend(parts.defines_vars.iter().map(|v| (v.clone(), "defines")));
    for (v, part) in &template_uses {
        if bound.contains(v) {
            continue;
        }
        if local_only.contains(v) {
            diags.push(
                Diagnostic::error(
                    "CL007",
                    loc(part),
                    format!(
                        "pattern variable `{v}` is only bound under a negation or \
                         inside a `case` arm, which never contributes bindings"
                    ),
                )
                .with_suggestion(format!(
                    "bind `{v}` in a positive statement pattern of psi1 or in `from`"
                )),
            );
        } else {
            diags.push(
                Diagnostic::error(
                    "CL001",
                    loc(part),
                    format!("unbound pattern variable `{v}`"),
                )
                .with_suggestion(format!(
                    "bind `{v}` in psi1 or `from` before using it in the {part}"
                )),
            );
        }
    }

    // CL002: a psi1 binder used nowhere else is suspicious — the rule
    // probably meant to constrain something with it. `from` binders are
    // exempt (matching a shape and discarding parts of it is normal),
    // as are `_`-prefixed names.
    let mut used_elsewhere: BTreeSet<String> = BTreeSet::new();
    used_elsewhere.extend(psi1_vars.uses.iter().cloned());
    used_elsewhere.extend(other_vars.uses.iter().cloned());
    used_elsewhere.extend(other_vars.positive_binders.iter().cloned());
    used_elsewhere.extend(from_vars.iter().cloned());
    for (v, _) in &template_uses {
        used_elsewhere.insert(v.clone());
    }
    for v in &psi1_vars.positive_binders {
        if !v.starts_with('_') && !used_elsewhere.contains(v) {
            diags.push(
                Diagnostic::warning(
                    "CL002",
                    loc("psi1"),
                    format!("pattern variable `{v}` is bound in psi1 but never used"),
                )
                .with_suggestion(format!("rename to `_{v}` if the binding is intentional")),
            );
        }
    }

    // CL003 / CL004: label references must resolve, with the right arity.
    let mut refs = Vec::new();
    for (part, g) in &parts.guards {
        label_refs(g, part, &mut refs);
    }
    for (name, arity, part) in refs {
        match ctx.env.lookup(name) {
            Some(def) => {
                if def.params.len() != arity {
                    diags.push(Diagnostic::error(
                        "CL004",
                        loc(part),
                        format!(
                            "label `{name}` expects {} argument(s), got {arity}",
                            def.params.len()
                        ),
                    ));
                }
            }
            None => {
                if !ctx.semantic.contains(name.as_str()) {
                    diags.push(
                        Diagnostic::warning(
                            "CL003",
                            loc(part),
                            format!(
                                "label `{name}` is neither defined in the label \
                                 environment nor produced by a known pure analysis"
                            ),
                        )
                        .with_suggestion(
                            "semantic labels evaluate to false when absent; \
                             check the spelling or register the analysis",
                        ),
                    );
                }
            }
        }
    }

    // CL005: unreachable `case` arms.
    for (part, g) in &parts.guards {
        let mut cases = Vec::new();
        case_stmts(g, &mut cases);
        for case in cases {
            if let Guard::CaseStmt { arms, .. } = case {
                for (j, (pat_j, _)) in arms.iter().enumerate() {
                    if arms[..j].iter().any(|(pat_i, _)| pat_subsumes(pat_i, pat_j)) {
                        diags.push(
                            Diagnostic::warning(
                                "CL005",
                                loc(part),
                                format!(
                                    "`case` arm {} (`{pat_j:?}`) is unreachable: an \
                                     earlier arm matches every statement it matches",
                                    j + 1
                                ),
                            )
                            .with_suggestion("reorder the arms or delete the shadowed one"),
                        );
                    }
                }
            }
        }
    }

    // CL006: wildcards in the rewrite template can never instantiate.
    if let Some(to) = parts.to {
        if stmt_pat_has_wildcard(to) {
            diags.push(
                Diagnostic::error(
                    "CL006",
                    loc("to"),
                    "rewrite template contains a wildcard, which cannot be instantiated",
                )
                .with_suggestion("replace `...` with a bound pattern variable"),
            );
        }
    }

    // CL010: `fold(_)` in a match position never matches any statement.
    if let Some(from) = parts.from {
        if stmt_pat_has_fold(from) {
            diags.push(
                Diagnostic::error(
                    "CL010",
                    loc("from"),
                    "`fold(...)` in the match pattern never matches any statement",
                )
                .with_suggestion("`fold` is template-only; match a plain expression variable"),
            );
        }
    }
    for (part, g) in &parts.guards {
        if guard_has_fold(g) {
            diags.push(Diagnostic::error(
                "CL010",
                loc(part),
                "`fold(...)` in a guard statement pattern never matches any statement",
            ));
        }
    }

    // CL008: budgeted propositional-contradiction quick-check.
    if opts.vacuous_check {
        for (part, g) in &parts.guards {
            if vacuous::is_propositionally_vacuous(g, opts.vacuous_deadline) {
                diags.push(
                    Diagnostic::warning(
                        "CL008",
                        loc(part),
                        "guard is propositionally unsatisfiable: the rule can never fire",
                    )
                    .with_suggestion("the contradiction is boolean-level; simplify the guard"),
                );
            }
        }
    }

    diags
}

/// Lints one optimization. Structural problems are errors; stylistic
/// and heuristic findings are warnings. Never panics under injected
/// `lint.rule` *fail* faults — those surface as a `CL000` error.
pub fn lint_optimization(
    opt: &Optimization,
    ctx: &LintContext<'_>,
    opts: &RuleLintOptions,
) -> Diagnostics {
    let mut diags = Diagnostics::new();
    if let Err(e) = fault::point_err("lint.rule") {
        diags.push(Diagnostic::error(
            "CL000",
            Location::Rule {
                rule: opt.name.clone(),
                part: "lint".into(),
            },
            format!("lint aborted: {e}"),
        ));
        return diags;
    }

    let pat = &opt.pattern;
    let mut guards: Vec<(&'static str, &Guard)> = Vec::new();
    if let GuardSpec::Region(rg) = &pat.guard {
        guards.push(("psi1", &rg.psi1));
        guards.push(("psi2", &rg.psi2));
    }
    guards.push(("where", &pat.where_clause));

    let mut wvars = BTreeSet::new();
    witness_vars(&mut wvars, &pat.witness);

    let parts = RuleParts {
        name: &opt.name,
        guards,
        from: Some(&pat.from),
        to: Some(&pat.to),
        witness_vars: wvars,
        defines_vars: BTreeSet::new(),
    };
    diags.absorb(lint_parts(&parts, ctx, opts));

    // CL009: the witness family must match the rule's direction.
    let mismatch = match (pat.direction, &pat.witness) {
        (Direction::Forward, Witness::Backward(_)) => Some("forward rule with a backward witness"),
        (Direction::Backward, Witness::Forward(_)) => Some("backward rule with a forward witness"),
        _ => None,
    };
    if let Some(msg) = mismatch {
        diags.push(
            Diagnostic::error(
                "CL009",
                Location::Rule {
                    rule: opt.name.clone(),
                    part: "witness".into(),
                },
                msg,
            )
            .with_suggestion("forward rules witness over η, backward rules over (η_old, η_new)"),
        );
    }

    diags
}

/// Lints one pure analysis (forward-only; `defines` arguments must be
/// bound by `ψ1`).
pub fn lint_analysis(
    analysis: &PureAnalysis,
    ctx: &LintContext<'_>,
    opts: &RuleLintOptions,
) -> Diagnostics {
    let mut diags = Diagnostics::new();
    if let Err(e) = fault::point_err("lint.rule") {
        diags.push(Diagnostic::error(
            "CL000",
            Location::Rule {
                rule: analysis.name.clone(),
                part: "lint".into(),
            },
            format!("lint aborted: {e}"),
        ));
        return diags;
    }

    let mut wvars = BTreeSet::new();
    forward_witness_vars(&mut wvars, &analysis.witness);
    let mut dvars = BTreeSet::new();
    for a in &analysis.defines.1 {
        let mut vs = Vec::new();
        a.pattern_vars(&mut vs);
        for (p, _k) in vs {
            dvars.insert(p.as_str().to_string());
        }
        if let LabelArgPat::Expr(e) = a {
            expr_pat(&mut dvars, e);
        }
    }

    let parts = RuleParts {
        name: &analysis.name,
        guards: vec![("psi1", &analysis.guard.psi1), ("psi2", &analysis.guard.psi2)],
        from: None,
        to: None,
        witness_vars: wvars,
        defines_vars: dvars,
    };
    diags.absorb(lint_parts(&parts, ctx, opts));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobalt_dsl::{
        Guard, GuardSpec, LabelArgPat, Optimization, RegionGuard, TransformPattern,
        VarPat, Witness,
    };
    use cobalt_dsl::{ForwardWitness, StmtPat};
    use std::time::Duration;

    fn env() -> LabelEnv {
        LabelEnv::standard()
    }

    fn opts() -> RuleLintOptions {
        RuleLintOptions::structural()
    }

    fn forward_rule(
        psi1: Guard,
        psi2: Guard,
        from: StmtPat,
        to: StmtPat,
        witness: Witness,
    ) -> Optimization {
        Optimization::new(
            "test_rule",
            TransformPattern {
                direction: Direction::Forward,
                guard: GuardSpec::Region(RegionGuard { psi1, psi2 }),
                from,
                to,
                where_clause: Guard::True,
                witness,
            },
        )
    }

    fn codes(diags: &Diagnostics) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn cl001_unbound_template_variable() {
        // `to` uses `C`, which nothing binds.
        let rule = forward_rule(
            Guard::True,
            Guard::True,
            StmtPat::assign_pats("X", "E"),
            StmtPat::Assign(
                LhsPat::Var(VarPat::pat("X")),
                ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
            ),
            Witness::Forward(ForwardWitness::True),
        );
        let e = env();
        let diags = lint_optimization(&rule, &LintContext::new(&e), &opts());
        assert!(codes(&diags).contains(&"CL001"), "{}", diags.render_human());
    }

    #[test]
    fn cl001_unbound_witness_variable() {
        let rule = forward_rule(
            Guard::True,
            Guard::True,
            StmtPat::assign_pats("X", "E"),
            StmtPat::Skip,
            Witness::Forward(ForwardWitness::VarEqVar(VarPat::pat("X"), VarPat::pat("Z"))),
        );
        let e = env();
        let diags = lint_optimization(&rule, &LintContext::new(&e), &opts());
        let unbound: Vec<_> = diags
            .iter()
            .filter(|d| d.code == "CL001")
            .map(|d| d.message.clone())
            .collect();
        assert_eq!(unbound.len(), 1, "{}", diags.render_human());
        assert!(unbound[0].contains("`Z`"), "{unbound:?}");
    }

    #[test]
    fn cl002_unused_psi1_binder_warns_and_underscore_exempts() {
        let psi1 = Guard::Stmt(StmtPat::assign_pats("Y", "D"));
        let rule = forward_rule(
            psi1,
            Guard::True,
            StmtPat::assign_pats("X", "E"),
            StmtPat::Skip,
            Witness::Forward(ForwardWitness::True),
        );
        let e = env();
        let diags = lint_optimization(&rule, &LintContext::new(&e), &opts());
        let cl002 = diags.iter().filter(|d| d.code == "CL002").count();
        assert_eq!(cl002, 2, "Y and D both unused: {}", diags.render_human());

        let psi1 = Guard::Stmt(StmtPat::assign_pats("_Y", "_D"));
        let rule = forward_rule(
            psi1,
            Guard::True,
            StmtPat::assign_pats("X", "E"),
            StmtPat::Skip,
            Witness::Forward(ForwardWitness::True),
        );
        let diags = lint_optimization(&rule, &LintContext::new(&e), &opts());
        assert!(!codes(&diags).contains(&"CL002"), "{}", diags.render_human());
    }

    #[test]
    fn cl003_unknown_label_and_semantic_labels_exempt() {
        let psi1 = Guard::Label("mayDfe".into(), vec![LabelArgPat::Var(VarPat::pat("X"))]);
        let rule = forward_rule(
            psi1,
            Guard::True,
            StmtPat::assign_pats("X", "E"),
            StmtPat::Skip,
            Witness::Forward(ForwardWitness::True),
        );
        let e = env();
        let diags = lint_optimization(&rule, &LintContext::new(&e), &opts());
        assert!(codes(&diags).contains(&"CL003"), "{}", diags.render_human());

        // notTainted is a known semantic label; an analysis-defined
        // label becomes known through the context.
        let psi1 = Guard::And(vec![
            Guard::Label("notTainted".into(), vec![LabelArgPat::Var(VarPat::pat("X"))]),
            Guard::Label("myFacts".into(), vec![LabelArgPat::Var(VarPat::pat("X"))]),
        ]);
        let rule = forward_rule(
            psi1,
            Guard::True,
            StmtPat::assign_pats("X", "E"),
            StmtPat::Skip,
            Witness::Forward(ForwardWitness::True),
        );
        let analysis = PureAnalysis {
            name: "mine".into(),
            guard: RegionGuard {
                psi1: Guard::Stmt(StmtPat::Decl(VarPat::pat("X"))),
                psi2: Guard::True,
            },
            defines: ("myFacts".into(), vec![LabelArgPat::Var(VarPat::pat("X"))]),
            witness: ForwardWitness::True,
        };
        let ctx = LintContext::new(&e).with_analyses(std::slice::from_ref(&analysis));
        let diags = lint_optimization(&rule, &ctx, &opts());
        assert!(!codes(&diags).contains(&"CL003"), "{}", diags.render_human());
    }

    #[test]
    fn cl004_label_arity_mismatch() {
        let psi1 = Guard::Label(
            "mayDef".into(),
            vec![
                LabelArgPat::Var(VarPat::pat("X")),
                LabelArgPat::Var(VarPat::pat("X")),
            ],
        );
        let rule = forward_rule(
            psi1,
            Guard::True,
            StmtPat::assign_pats("X", "E"),
            StmtPat::Skip,
            Witness::Forward(ForwardWitness::True),
        );
        let e = env();
        let diags = lint_optimization(&rule, &LintContext::new(&e), &opts());
        assert!(codes(&diags).contains(&"CL004"), "{}", diags.render_human());
        assert!(diags.has_errors());
    }

    #[test]
    fn cl005_unreachable_case_arm() {
        let case = Guard::CaseStmt {
            arms: vec![
                (StmtPat::Any, Guard::True),
                (StmtPat::Skip, Guard::False), // shadowed by Any
            ],
            default: Box::new(Guard::False),
        };
        let rule = forward_rule(
            case,
            Guard::True,
            StmtPat::assign_pats("X", "E"),
            StmtPat::Skip,
            Witness::Forward(ForwardWitness::True),
        );
        let e = env();
        let diags = lint_optimization(&rule, &LintContext::new(&e), &opts());
        assert!(codes(&diags).contains(&"CL005"), "{}", diags.render_human());
    }

    #[test]
    fn cl005_not_fooled_by_nonlinear_patterns() {
        // `X := X` (nonlinear) does not subsume `Y := Z`.
        let nonlinear = StmtPat::Assign(
            LhsPat::Var(VarPat::pat("X")),
            ExprPat::Base(BasePat::Var(VarPat::pat("X"))),
        );
        let general = StmtPat::assign_pats("Y", "Z");
        assert!(!pat_subsumes(&nonlinear, &general));
        assert!(pat_subsumes(&general, &nonlinear));
    }

    #[test]
    fn cl006_wildcard_in_template() {
        let rule = forward_rule(
            Guard::True,
            Guard::True,
            StmtPat::assign_pats("X", "E"),
            StmtPat::Assign(LhsPat::Var(VarPat::pat("X")), ExprPat::Any),
            Witness::Forward(ForwardWitness::True),
        );
        let e = env();
        let diags = lint_optimization(&rule, &LintContext::new(&e), &opts());
        assert!(codes(&diags).contains(&"CL006"), "{}", diags.render_human());
    }

    #[test]
    fn cl007_negation_local_binding_leaks_into_template() {
        // psi1 only mentions D under a negation: matching `¬stmt(D := E)`
        // never binds D, so the template can never instantiate.
        let psi1 = Guard::Not(Box::new(Guard::Stmt(StmtPat::assign_pats("D", "E2"))));
        let rule = forward_rule(
            psi1,
            Guard::True,
            StmtPat::Skip,
            StmtPat::Assign(
                LhsPat::Var(VarPat::pat("D")),
                ExprPat::Base(BasePat::Const(ConstPat::Concrete(0))),
            ),
            Witness::Forward(ForwardWitness::True),
        );
        let e = env();
        let diags = lint_optimization(&rule, &LintContext::new(&e), &opts());
        assert!(codes(&diags).contains(&"CL007"), "{}", diags.render_human());
    }

    #[test]
    fn cl009_direction_witness_mismatch() {
        let rule = Optimization::new(
            "mismatched",
            TransformPattern {
                direction: Direction::Forward,
                guard: GuardSpec::Local,
                from: StmtPat::assign_pats("X", "E"),
                to: StmtPat::Skip,
                where_clause: Guard::True,
                witness: Witness::Backward(BackwardWitness::Identical),
            },
        );
        let e = env();
        let diags = lint_optimization(&rule, &LintContext::new(&e), &opts());
        assert!(codes(&diags).contains(&"CL009"), "{}", diags.render_human());
    }

    #[test]
    fn cl010_fold_in_match_position() {
        let rule = forward_rule(
            Guard::True,
            Guard::True,
            StmtPat::Assign(LhsPat::Var(VarPat::pat("X")), ExprPat::Fold("E".into())),
            StmtPat::Skip,
            Witness::Forward(ForwardWitness::True),
        );
        let e = env();
        let diags = lint_optimization(&rule, &LintContext::new(&e), &opts());
        assert!(codes(&diags).contains(&"CL010"), "{}", diags.render_human());
    }

    #[test]
    fn cl008_vacuous_guard_found_with_budget() {
        let atom = Guard::Stmt(StmtPat::Skip);
        let psi1 = Guard::And(vec![atom.clone(), Guard::Not(Box::new(atom))]);
        let rule = forward_rule(
            psi1,
            Guard::True,
            StmtPat::assign_pats("X", "E"),
            StmtPat::Skip,
            Witness::Forward(ForwardWitness::True),
        );
        let e = env();
        let lint_opts = RuleLintOptions {
            vacuous_check: true,
            vacuous_deadline: Duration::from_millis(200),
        };
        let diags = lint_optimization(&rule, &LintContext::new(&e), &lint_opts);
        assert!(codes(&diags).contains(&"CL008"), "{}", diags.render_human());

        // The structural gate skips the solver entirely.
        let diags = lint_optimization(&rule, &LintContext::new(&e), &opts());
        assert!(!codes(&diags).contains(&"CL008"));
    }

    #[test]
    fn cl000_injected_fault_becomes_diagnostic() {
        let rule = forward_rule(
            Guard::True,
            Guard::True,
            StmtPat::assign_pats("X", "E"),
            StmtPat::Skip,
            Witness::Forward(ForwardWitness::True),
        );
        let e = env();
        let diags = cobalt_support::fault::with_faults("lint.rule:fail@1", || {
            lint_optimization(&rule, &LintContext::new(&e), &opts())
        });
        assert!(codes(&diags).contains(&"CL000"), "{}", diags.render_human());
        assert!(diags.has_errors());
    }

    #[test]
    fn pre_duplicate_style_psi1_bindings_flow_to_template() {
        // A backward rule whose `from` is Skip and whose template
        // variables come entirely from psi1 must be clean (this is the
        // shipped `pre_duplicate` shape).
        let psi1 = Guard::Stmt(StmtPat::assign_pats("X", "E"));
        let rule = Optimization::new(
            "pre_dup_shape",
            TransformPattern {
                direction: Direction::Backward,
                guard: GuardSpec::Region(RegionGuard {
                    psi1,
                    psi2: Guard::True,
                }),
                from: StmtPat::Skip,
                to: StmtPat::assign_pats("X", "E"),
                where_clause: Guard::True,
                witness: Witness::Backward(BackwardWitness::Identical),
            },
        );
        let e = env();
        let diags = lint_optimization(&rule, &LintContext::new(&e), &opts());
        assert!(diags.is_empty(), "{}", diags.render_human());
    }

    #[test]
    fn analysis_defines_vars_must_be_bound() {
        let analysis = PureAnalysis {
            name: "broken_analysis".into(),
            guard: RegionGuard {
                psi1: Guard::Stmt(StmtPat::Decl(VarPat::pat("X"))),
                psi2: Guard::True,
            },
            defines: ("facts".into(), vec![LabelArgPat::Var(VarPat::pat("Q"))]),
            witness: ForwardWitness::True,
        };
        let e = env();
        let diags = lint_analysis(&analysis, &LintContext::new(&e), &opts());
        assert!(codes(&diags).contains(&"CL001"), "{}", diags.render_human());
    }
}
