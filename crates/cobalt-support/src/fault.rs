//! Deterministic fault injection for robustness testing.
//!
//! The resource-governance layer (prover deadlines, checker retries,
//! resilient pipelines) exists to make the system *degrade* instead of
//! hanging or dying. Degradation paths are only trustworthy if they are
//! exercised, so this module provides named **fault points** that the
//! solver, checker, and engine call at their interesting seams:
//!
//! ```text
//! cobalt_support::fault::point("solver.split");
//! cobalt_support::fault::point_err("engine.pass")?;
//! ```
//!
//! Faults are **off by default** and cost one relaxed atomic load per
//! point when disarmed. They are armed either by the `COBALT_FAULTS`
//! environment variable (read once, on the first point hit) or by the
//! scoped, thread-local [`with_faults`] override used in tests.
//!
//! # Grammar
//!
//! `COBALT_FAULTS` is a comma-separated list of `site:action` items:
//!
//! ```text
//! COBALT_FAULTS=solver.split:panic@3,checker.obligation:delay_ms@20
//! ```
//!
//! | action       | effect at the named site                                |
//! |--------------|---------------------------------------------------------|
//! | `panic@n`    | panic on the *n*-th hit of the site (once; 1-based)     |
//! | `fail@n`     | [`point_err`] returns `Err` on the *n*-th hit (once)    |
//! | `delay_ms@k` | sleep `k` milliseconds on *every* hit                   |
//!
//! `panic` and `fail` default to `@1` when the `@n` part is omitted.
//! `fail` is honoured only by [`point_err`]; a plain [`point`] treats it
//! as a no-op (it has no error channel to report through).
//!
//! Everything is deterministic: hit counters are per-spec and
//! monotonic, so a given workload hits a given fault at the same place
//! every run.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// The environment variable holding the fault configuration.
pub const ENV_VAR: &str = "COBALT_FAULTS";

/// What a fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Panic on the configured hit.
    Panic,
    /// Make [`point_err`] return an error on the configured hit.
    Fail,
    /// Sleep for the configured number of milliseconds on every hit.
    DelayMs,
}

/// One configured fault: a site, an action, and its argument.
#[derive(Debug)]
pub struct FaultSpec {
    /// The fault-point name this spec applies to.
    pub site: String,
    /// What to do when it fires.
    pub action: Action,
    /// For `panic`/`fail`: the 1-based hit to fire on. For `delay_ms`:
    /// the sleep duration in milliseconds.
    pub arg: u64,
    hits: AtomicU64,
}

impl FaultSpec {
    fn new(site: &str, action: Action, arg: u64) -> Self {
        FaultSpec {
            site: site.to_string(),
            action,
            arg,
            hits: AtomicU64::new(0),
        }
    }
}

/// The error [`point_err`] returns when a `fail` fault fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// The site that fired.
    pub site: String,
    /// Which hit of the site fired (1-based).
    pub hit: u64,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at `{}` (hit {})", self.site, self.hit)
    }
}

impl std::error::Error for FaultError {}

/// Parses a `COBALT_FAULTS`-style specification string.
///
/// # Errors
///
/// Returns a description of the first malformed item.
pub fn parse(spec: &str) -> Result<Vec<FaultSpec>, String> {
    let mut out = Vec::new();
    for item in spec.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let (site, rest) = item
            .split_once(':')
            .ok_or_else(|| format!("`{item}`: expected `site:action[@n]`"))?;
        if site.is_empty() {
            return Err(format!("`{item}`: empty site name"));
        }
        let (action_name, arg) = match rest.split_once('@') {
            Some((a, n)) => {
                let n: u64 = n
                    .parse()
                    .map_err(|e| format!("`{item}`: bad argument `{n}`: {e}"))?;
                (a, Some(n))
            }
            None => (rest, None),
        };
        let (action, arg) = match action_name {
            "panic" => (Action::Panic, arg.unwrap_or(1)),
            "fail" => (Action::Fail, arg.unwrap_or(1)),
            "delay_ms" => (
                Action::DelayMs,
                arg.ok_or_else(|| format!("`{item}`: delay_ms requires `@millis`"))?,
            ),
            other => {
                return Err(format!(
                    "`{item}`: unknown action `{other}` (expected panic, fail, or delay_ms)"
                ))
            }
        };
        out.push(FaultSpec::new(site, action, arg));
    }
    Ok(out)
}

fn env_config() -> &'static [FaultSpec] {
    static CONFIG: OnceLock<Vec<FaultSpec>> = OnceLock::new();
    CONFIG.get_or_init(|| match std::env::var(ENV_VAR) {
        Ok(s) if !s.trim().is_empty() => parse(&s)
            .unwrap_or_else(|e| panic!("invalid {ENV_VAR}: {e}")),
        _ => Vec::new(),
    })
}

/// True once any fault source (env or override) may be active. The env
/// branch caches the parse result, so after the first hit this is one
/// atomic load.
fn armed() -> bool {
    static ENV_ARMED: OnceLock<bool> = OnceLock::new();
    OVERRIDES_ACTIVE.load(Ordering::Relaxed) != 0
        || *ENV_ARMED.get_or_init(|| !env_config().is_empty())
}

/// Count of threads currently inside [`with_faults`]; keeps the
/// disarmed fast path a single relaxed load.
static OVERRIDES_ACTIVE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static OVERRIDE: RefCell<Option<Arc<Vec<FaultSpec>>>> = const { RefCell::new(None) };
}

/// A shareable handle to a thread's active fault override, captured
/// with [`capture_overrides`] and re-installed on another thread with
/// [`with_overrides`]. Worker pools use this to make a test's scoped
/// [`with_faults`] configuration visible inside their worker threads:
/// the hit counters live behind the shared `Arc`, so `panic@n`/`fail@n`
/// still fire exactly once *globally*, no matter which worker reaches
/// the site.
#[derive(Debug, Clone)]
pub struct OverrideHandle(Arc<Vec<FaultSpec>>);

/// Captures the calling thread's active fault override, if any.
/// Returns `None` outside [`with_faults`]/[`with_overrides`] scopes —
/// the environment configuration needs no capturing, every thread
/// already sees it.
pub fn capture_overrides() -> Option<OverrideHandle> {
    OVERRIDE.with(|o| o.borrow().clone().map(OverrideHandle))
}

/// Runs `f` with a captured override installed on *this* thread,
/// restoring the previous configuration afterwards (also on panic).
/// With `handle == None` this is just `f()`.
pub fn with_overrides<R>(handle: Option<&OverrideHandle>, f: impl FnOnce() -> R) -> R {
    match handle {
        None => f(),
        Some(h) => install(h.0.clone(), f),
    }
}

fn install<R>(specs: Arc<Vec<FaultSpec>>, f: impl FnOnce() -> R) -> R {
    struct Guard(Option<Arc<Vec<FaultSpec>>>);
    impl Drop for Guard {
        fn drop(&mut self) {
            OVERRIDE.with(|o| *o.borrow_mut() = self.0.take());
            OVERRIDES_ACTIVE.fetch_sub(1, Ordering::Relaxed);
        }
    }
    OVERRIDES_ACTIVE.fetch_add(1, Ordering::Relaxed);
    let prev = OVERRIDE.with(|o| o.borrow_mut().replace(specs));
    let _guard = Guard(prev);
    f()
}

/// Runs `f` with the given fault specification active *on this thread
/// only*, overriding `COBALT_FAULTS`. Restores the previous
/// configuration afterwards, including when `f` panics — which it will,
/// if the faults say so.
///
/// # Panics
///
/// Panics immediately if `spec` does not parse; see [`parse`].
pub fn with_faults<R>(spec: &str, f: impl FnOnce() -> R) -> R {
    let parsed = parse(spec).unwrap_or_else(|e| panic!("with_faults: {e}"));
    install(Arc::new(parsed), f)
}

/// What happened at a fault point.
enum Fired {
    Nothing,
    Fail(FaultError),
}

/// Evaluates the configured faults for `site`. Panics and delays happen
/// in here; `fail` is reported back for the caller to surface.
fn evaluate(site: &str) -> Fired {
    // Thread-local override takes precedence over the environment.
    let overridden = OVERRIDE.with(|o| {
        o.borrow()
            .as_ref()
            .map(|specs| evaluate_specs(site, specs))
    });
    match overridden {
        Some(fired) => fired,
        None => evaluate_specs(site, env_config()),
    }
}

fn evaluate_specs(site: &str, specs: &[FaultSpec]) -> Fired {
    for spec in specs.iter().filter(|s| s.site == site) {
        let hit = spec.hits.fetch_add(1, Ordering::Relaxed) + 1;
        match spec.action {
            Action::DelayMs => std::thread::sleep(Duration::from_millis(spec.arg)),
            Action::Panic if hit == spec.arg => {
                panic!("injected fault: `{site}` panic at hit {hit}")
            }
            Action::Fail if hit == spec.arg => {
                return Fired::Fail(FaultError {
                    site: site.to_string(),
                    hit,
                });
            }
            Action::Panic | Action::Fail => {}
        }
    }
    Fired::Nothing
}

/// A fault point with no error channel: may panic or delay, per the
/// active configuration. Disarmed cost: one relaxed atomic load.
#[inline]
pub fn point(site: &str) {
    if !armed() {
        return;
    }
    let _ = evaluate(site);
}

/// A fault point with an error channel: may panic or delay, and
/// additionally surfaces `fail` actions as an `Err` for the caller to
/// handle through its normal error path.
///
/// # Errors
///
/// Returns [`FaultError`] when a configured `fail` action fires.
#[inline]
pub fn point_err(site: &str) -> Result<(), FaultError> {
    if !armed() {
        return Ok(());
    }
    match evaluate(site) {
        Fired::Nothing => Ok(()),
        Fired::Fail(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let specs = parse("solver.split:panic@3,checker.obligation:delay_ms@20,x:fail").unwrap();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].site, "solver.split");
        assert_eq!(specs[0].action, Action::Panic);
        assert_eq!(specs[0].arg, 3);
        assert_eq!(specs[1].action, Action::DelayMs);
        assert_eq!(specs[1].arg, 20);
        assert_eq!(specs[2].action, Action::Fail);
        assert_eq!(specs[2].arg, 1, "fail defaults to hit 1");
    }

    #[test]
    fn parse_rejects_malformed_items() {
        assert!(parse("no-colon").is_err());
        assert!(parse("site:explode").is_err());
        assert!(parse("site:panic@notanumber").is_err());
        assert!(parse("site:delay_ms").is_err(), "delay needs a duration");
        assert!(parse(":panic").is_err(), "empty site");
        assert!(parse("").unwrap().is_empty());
        assert!(parse(" , ").unwrap().is_empty());
    }

    #[test]
    fn disarmed_points_are_noops() {
        point("not.configured");
        assert!(point_err("not.configured").is_ok());
    }

    #[test]
    fn panic_fires_on_the_exact_hit_once() {
        with_faults("t.panic:panic@2", || {
            point("t.panic"); // hit 1: nothing
            let caught = std::panic::catch_unwind(|| point("t.panic"));
            assert!(caught.is_err(), "hit 2 must panic");
            point("t.panic"); // hit 3: nothing again
        });
    }

    #[test]
    fn fail_surfaces_through_point_err_only() {
        with_faults("t.fail:fail@1", || {
            let e = point_err("t.fail").unwrap_err();
            assert_eq!(e.site, "t.fail");
            assert_eq!(e.hit, 1);
            assert!(e.to_string().contains("injected fault"));
            assert!(point_err("t.fail").is_ok(), "fires once");
        });
        // A plain point() ignores `fail` (no error channel).
        with_faults("t.fail2:fail@1", || point("t.fail2"));
    }

    #[test]
    fn delay_fires_every_hit() {
        with_faults("t.delay:delay_ms@5", || {
            let start = std::time::Instant::now();
            point("t.delay");
            point("t.delay");
            assert!(start.elapsed() >= Duration::from_millis(10));
        });
    }

    #[test]
    fn override_is_scoped_and_restored_after_panic() {
        let result = std::panic::catch_unwind(|| {
            with_faults("t.scoped:panic@1", || point("t.scoped"));
        });
        assert!(result.is_err());
        // Back outside: the same site is disarmed again.
        point("t.scoped");
        assert!(point_err("t.scoped").is_ok());
    }

    #[test]
    fn captured_overrides_share_hit_counters_across_threads() {
        with_faults("t.cap:fail@2", || {
            let handle = capture_overrides().expect("inside with_faults");
            assert!(point_err("t.cap").is_ok(), "hit 1 on the origin thread");
            let worker = {
                let handle = handle.clone();
                std::thread::spawn(move || {
                    with_overrides(Some(&handle), || point_err("t.cap"))
                })
            };
            // Hit 2 fires on the worker: the counter is shared, not
            // per-thread.
            assert!(worker.join().unwrap().is_err());
            assert!(point_err("t.cap").is_ok(), "hit 3: already fired");
        });
        assert!(capture_overrides().is_none(), "no override outside the scope");
    }

    #[test]
    fn sites_are_independent() {
        with_faults("a:fail@1,b:fail@1", || {
            assert!(point_err("c").is_ok());
            assert!(point_err("a").is_err());
            assert!(point_err("b").is_err());
        });
    }
}
