//! Seedable, dependency-free pseudo-random number generation.
//!
//! [`SplitMix64`] is used for seed expansion and stream derivation;
//! [`Rng`] is a Xoshiro256++ generator (Blackman & Vigna), which has a
//! 256-bit state, passes BigCrush, and is more than fast enough for
//! program generation and property testing. Neither touches any global
//! state: every stream is a pure function of its seed, which is what
//! makes generated programs and property-test cases reproducible by
//! seed alone.

/// The SplitMix64 generator: a tiny, high-quality 64-bit mixer.
///
/// Used to expand a single `u64` seed into Xoshiro's 256-bit state and
/// to derive independent sub-streams (see [`derive_seed`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Derives an independent seed for sub-stream `stream` of `seed`.
///
/// Used by the property-test harness to give every test case its own
/// reproducible generator.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut sm = SplitMix64::new(seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F));
    sm.next_u64()
}

/// A seedable Xoshiro256++ pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use cobalt_support::Rng;
/// let mut a = Rng::seed_from_u64(42);
/// let mut b = Rng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let n = a.gen_range(0..10usize);
/// assert!(n < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose whole stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next_u64();
        }
        // Xoshiro's one forbidden state; unreachable from SplitMix64
        // expansion in practice, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s }
    }

    /// Returns the next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, n)`, unbiased (Lemire's method).
    #[inline]
    pub fn uniform_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "uniform_below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform value from an integer range, e.g. `0..10` or `1..=6`.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniformly chosen reference into a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.gen_range(0..items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(0..=i);
            items.swap(i, j);
        }
    }
}

/// Integer ranges that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws a uniform sample from the range. Panics if empty.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.uniform_below(span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.uniform_below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_answer() {
        // Reference vector from the SplitMix64 literature (seed 0).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::seed_from_u64(8);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..2_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = r.gen_range(0u64..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut r = Rng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..600 {
            seen[r.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        let mut r = Rng::seed_from_u64(4);
        assert!((0..1_000).all(|_| !r.gen_bool(0.0)));
        assert!((0..1_000).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut r = Rng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Rng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn derive_seed_separates_streams() {
        let a = derive_seed(0, 0);
        let b = derive_seed(0, 1);
        let c = derive_seed(1, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(0, 0));
    }
}
