//! A deterministic property-testing harness.
//!
//! A pared-down, fully hermetic stand-in for `proptest`: seeded case
//! generation (so every failure is reproducible), a fixed iteration
//! budget, failing-seed reporting, and best-effort shrinking. Tests are
//! written with the [`props!`](crate::props) macro:
//!
//! ```
//! cobalt_support::props! {
//!     config = cobalt_support::prop::Config::with_cases(64);
//!
//!     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! # fn main() {}
//! ```
//!
//! The base seed defaults to a fixed constant so runs are reproducible
//! out of the box; set `COBALT_PROP_SEED=<u64>` to explore a different
//! region of the input space (CI could rotate it). On failure the
//! harness shrinks the input and panics with the base seed, case index,
//! and minimal counterexample.

use crate::rng::{derive_seed, Rng};

/// Default base seed ("COBALT" on a hex keyboard).
pub const DEFAULT_SEED: u64 = 0xC0BA17;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Base seed; case `i` uses a stream derived from `(seed, i)`.
    pub seed: u64,
    /// Upper bound on candidate inputs tried while shrinking.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            seed: seed_from_env(),
            max_shrink_steps: 1_024,
        }
    }
}

impl Config {
    /// A configuration running `cases` cases, defaults elsewhere.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

fn seed_from_env() -> u64 {
    match std::env::var("COBALT_PROP_SEED") {
        Ok(s) => s
            .trim()
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("COBALT_PROP_SEED must be a u64, got {s:?}")),
        Err(_) => DEFAULT_SEED,
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum CaseError {
    /// The property failed with this message.
    Fail(String),
    /// The input was rejected (does not apply); not a failure.
    Reject,
}

impl CaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        CaseError::Fail(msg.into())
    }
}

/// The result type property bodies evaluate to.
pub type CaseResult = Result<(), CaseError>;

/// A generator of test-case values with best-effort shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone + std::fmt::Debug;
    /// Generates one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;
    /// Proposes strictly "smaller" variants of `value` to try while
    /// shrinking a failure. May be empty.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

// ---------------------------------------------------------------------
// Integer range strategies: `0u64..10_000` is itself a strategy.
// ---------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let lo = self.start;
                let mut out = Vec::new();
                if v != lo {
                    out.push(lo);
                    // Halve the distance to the lower bound.
                    let mid = lo + (v - lo) / 2;
                    if mid != lo && mid != v {
                        out.push(mid);
                    }
                    if v - 1 != mid && v > lo {
                        out.push(v - 1);
                    }
                }
                out
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------
// Tuples of strategies (shrink one component at a time).
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($S:ident / $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = candidate;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
}

// ---------------------------------------------------------------------
// Collections.
// ---------------------------------------------------------------------

/// Strategy for `Vec<T>` with lengths drawn from `len`.
pub struct VecStrategy<S> {
    elem: S,
    len: core::ops::Range<usize>,
}

/// Vectors of values from `elem` with a length in `len`.
pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "vec: empty length range");
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Self::Value {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        let min = self.len.start;
        // Structural shrinks first: halve, then drop single elements.
        if value.len() > min {
            let half = (value.len() + min) / 2;
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            for i in 0..value.len() {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        // Element-wise shrinks (first candidate per position only, to
        // keep the fan-out bounded).
        for i in 0..value.len() {
            if let Some(cand) = self.elem.shrink(&value[i]).into_iter().next() {
                let mut v = value.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Booleans, characters, fuzz strings.
// ---------------------------------------------------------------------

/// Strategy for an unbiased `bool` (shrinks `true` → `false`).
pub struct AnyBool;

/// An unbiased boolean.
pub fn any_bool() -> AnyBool {
    AnyBool
}

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Strategy for arbitrary `char`s, biased toward ASCII (shrinks toward
/// `'a'`).
pub struct AnyChar;

/// Arbitrary characters: mostly printable ASCII, with a tail of
/// whitespace and non-ASCII code points to stress lexers.
pub fn any_char() -> AnyChar {
    AnyChar
}

fn gen_char(rng: &mut Rng) -> char {
    match rng.gen_range(0u32..100) {
        // Printable ASCII: the region parsers mostly operate in.
        0..=64 => char::from_u32(rng.gen_range(0x20u32..0x7F)).unwrap(),
        // Whitespace and control characters.
        65..=74 => *rng.choose(&[' ', '\t', '\n', '\r', '\u{0}', '\u{7}', '\u{b}']),
        // Latin-1 and general BMP.
        75..=89 => loop {
            if let Some(c) = char::from_u32(rng.gen_range(0xA0u32..0x3000)) {
                break c;
            }
        },
        // Anywhere in the scalar-value space, surrogates excluded.
        _ => loop {
            let raw = rng.gen_range(0u32..0x11_0000);
            if let Some(c) = char::from_u32(raw) {
                break c;
            }
        },
    }
}

impl Strategy for AnyChar {
    type Value = char;
    fn generate(&self, rng: &mut Rng) -> char {
        gen_char(rng)
    }
    fn shrink(&self, value: &char) -> Vec<char> {
        if *value == 'a' {
            Vec::new()
        } else if value.is_ascii_lowercase() {
            vec!['a']
        } else {
            vec!['a', ' ']
        }
    }
}

/// Strategy for fuzzing strings (see [`fuzz_string`]).
pub struct FuzzString {
    max_len: usize,
}

/// Strings of up to `max_len` non-control characters (the analogue of
/// the `proptest` regex `\PC{0,n}`), for parser robustness tests.
pub fn fuzz_string(max_len: usize) -> FuzzString {
    FuzzString { max_len }
}

impl Strategy for FuzzString {
    type Value = String;

    fn generate(&self, rng: &mut Rng) -> String {
        let n = rng.gen_range(0..=self.max_len);
        let mut s = String::with_capacity(n);
        while s.chars().count() < n {
            let c = gen_char(rng);
            if !c.is_control() {
                s.push(c);
            }
        }
        s
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let chars: Vec<char> = value.chars().collect();
        let mut out = Vec::new();
        if !chars.is_empty() {
            out.push(chars[..chars.len() / 2].iter().collect());
            for i in 0..chars.len().min(16) {
                let mut v = chars.clone();
                v.remove(i);
                out.push(v.into_iter().collect());
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// The runner.
// ---------------------------------------------------------------------

enum Outcome {
    Pass,
    Reject,
    Fail(String),
}

fn run_one<V, F>(test: &F, value: V) -> Outcome
where
    V: Clone + std::fmt::Debug,
    F: Fn(V) -> CaseResult,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value))) {
        Ok(Ok(())) => Outcome::Pass,
        Ok(Err(CaseError::Reject)) => Outcome::Reject,
        Ok(Err(CaseError::Fail(msg))) => Outcome::Fail(msg),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panicked with a non-string payload".into());
            Outcome::Fail(format!("panic: {msg}"))
        }
    }
}

/// Runs a property: `config.cases` seeded cases, shrinking and
/// reporting the first failure. Called by the [`props!`](crate::props)
/// macro; use directly for programmatic properties.
///
/// # Panics
///
/// Panics with the failing seed, case index, and minimal
/// counterexample if the property fails.
pub fn run<S, F>(name: &str, config: &Config, strategy: &S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> CaseResult,
{
    for case in 0..config.cases {
        let case_seed = derive_seed(config.seed, case as u64);
        let mut rng = Rng::seed_from_u64(case_seed);
        let value = strategy.generate(&mut rng);
        if let Outcome::Fail(msg) = run_one(&test, value.clone()) {
            let (min_value, min_msg, steps) = shrink(config, strategy, &test, value, msg);
            panic!(
                "property `{name}` failed at case {case}/{} (base seed {}; \
                 rerun with COBALT_PROP_SEED={} to reproduce)\n\
                 minimal input after {steps} shrink steps: {min_value:?}\n{min_msg}",
                config.cases, config.seed, config.seed,
            );
        }
    }
}

fn shrink<S, F>(
    config: &Config,
    strategy: &S,
    test: &F,
    mut value: S::Value,
    mut msg: String,
) -> (S::Value, String, u32)
where
    S: Strategy,
    F: Fn(S::Value) -> CaseResult,
{
    let mut steps = 0u32;
    'outer: loop {
        for candidate in strategy.shrink(&value) {
            if steps >= config.max_shrink_steps {
                break 'outer;
            }
            steps += 1;
            if let Outcome::Fail(m) = run_one(test, candidate.clone()) {
                value = candidate;
                msg = m;
                continue 'outer;
            }
        }
        break;
    }
    (value, msg, steps)
}

// ---------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------

/// Declares property tests. See the [module docs](crate::prop).
///
/// Grammar: an optional `config = <expr>;` line, then one or more
/// `fn name(binding in strategy, ...) { body }` items. Each becomes a
/// `#[test]`; the body may use `prop_assert!`-family macros and
/// `return Ok(())` to reject an inapplicable input.
#[macro_export]
macro_rules! props {
    ( config = $config:expr; $($rest:tt)+ ) => {
        $crate::__props_impl! { ($config) $($rest)+ }
    };
    ( $($rest:tt)+ ) => {
        $crate::__props_impl! { ($crate::prop::Config::default()) $($rest)+ }
    };
}

/// Implementation detail of [`props!`](crate::props).
#[doc(hidden)]
#[macro_export]
macro_rules! __props_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let strategy = ($($strat,)+);
                $crate::prop::run(
                    stringify!($name),
                    &config,
                    &strategy,
                    |($($arg,)+)| -> $crate::prop::CaseResult {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )+
    };
}

/// Fails the enclosing property case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::prop::CaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::prop::CaseError::fail(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

/// Fails the enclosing property case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::prop::CaseError::fail(format!(
                "assertion failed: {} == {} ({}:{})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::prop::CaseError::fail(format!(
                "assertion failed: {} == {} ({}:{}): {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(),
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Fails the enclosing property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::prop::CaseError::fail(format!(
                "assertion failed: {} != {} ({}:{})\n  both: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let hits = std::cell::Cell::new(0u32);
        run(
            "count",
            &Config {
                cases: 37,
                seed: 1,
                max_shrink_steps: 10,
            },
            &(0u64..100),
            |_| {
                hits.set(hits.get() + 1);
                Ok(())
            },
        );
        assert_eq!(hits.get(), 37);
    }

    #[test]
    fn failing_property_shrinks_to_minimum() {
        // Property "x < 10" over 0..1000 should shrink to exactly 10.
        let err = std::panic::catch_unwind(|| {
            run(
                "min",
                &Config {
                    cases: 200,
                    seed: 2,
                    max_shrink_steps: 1_024,
                },
                &(0u64..1000),
                |x| {
                    if x < 10 {
                        Ok(())
                    } else {
                        Err(CaseError::fail("too big"))
                    }
                },
            )
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("minimal input"), "{msg}");
        assert!(msg.contains("10"), "{msg}");
    }

    #[test]
    fn panics_are_caught_and_shrunk() {
        let err = std::panic::catch_unwind(|| {
            run(
                "panic",
                &Config {
                    cases: 100,
                    seed: 3,
                    max_shrink_steps: 256,
                },
                &(0i64..100, 0i64..100),
                |(a, b)| {
                    assert!(a + b < 120, "sum overflow {a}+{b}");
                    Ok(())
                },
            )
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("panic: sum overflow"), "{msg}");
    }

    #[test]
    fn rejections_do_not_fail() {
        run(
            "reject",
            &Config {
                cases: 50,
                seed: 4,
                max_shrink_steps: 10,
            },
            &(0u64..100),
            |x| {
                if x % 2 == 0 {
                    return Err(CaseError::Reject);
                }
                Ok(())
            },
        );
    }

    #[test]
    fn vec_strategy_respects_length_bounds() {
        let strat = vec(0u8..10, 2..6);
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            for candidate in strat.shrink(&v) {
                assert!(candidate.len() >= 2, "{candidate:?}");
            }
        }
    }

    #[test]
    fn fuzz_string_has_no_control_chars_and_bounded_len() {
        let strat = fuzz_string(40);
        let mut rng = Rng::seed_from_u64(10);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(s.chars().count() <= 40);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    props! {
        config = Config { cases: 32, seed: 5, max_shrink_steps: 64 };

        fn macro_smoke(a in 0i64..50, flip in super::any_bool()) {
            let doubled = a * 2;
            prop_assert!(doubled >= a, "doubling went down");
            prop_assert_eq!(doubled % 2, 0);
            if flip {
                prop_assert_ne!(doubled + 1, doubled);
            }
        }
    }
}
