//! # cobalt-support
//!
//! Hermetic, zero-dependency infrastructure shared by the rest of the
//! Cobalt workspace:
//!
//! * [`rng`] — a seedable, deterministic pseudo-random number generator
//!   (SplitMix64 for seeding, Xoshiro256++ as the main stream) standing
//!   in for the `rand` crate;
//! * [`prop`] — a small deterministic property-testing harness (seeded
//!   case generation, fixed iteration budget, failing-seed reporting,
//!   best-effort shrinking) standing in for `proptest`, driven by the
//!   [`props!`](crate::props) macro;
//! * [`bench`] — a minimal benchmark harness (warmup, timed samples,
//!   median/p95, JSON-lines output) standing in for `criterion`;
//! * [`fault`] — deterministic, env-driven fault injection points
//!   (`COBALT_FAULTS=site:panic@n,…`) used to exercise the workspace's
//!   graceful-degradation paths; off by default with near-zero cost;
//! * [`journal`] — a crash-safe, corruption-tolerant append-only record
//!   journal (length + FNV-64 checksum framing, truncation/bit-flip
//!   recovery, atomic temp-file+rename compaction, advisory cross-process
//!   locking) backing resumable verification sessions;
//! * [`pool`] — a supervised scoped worker pool (ordered result
//!   delivery, per-task panic isolation with one supervised retry,
//!   cooperative cancellation, spawn-failure degradation) backing
//!   parallel obligation discharge.
//!
//! The workspace's hermetic-build policy (see `DESIGN.md`) forbids
//! external registry dependencies so that `cargo build --release
//! --offline` always succeeds and every randomized artifact is
//! reproducible by seed. This crate is what makes that policy viable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod fast_hash;
pub mod fault;
pub mod journal;
pub mod pool;
pub mod prop;
pub mod rng;

pub use fast_hash::{FastBuildHasher, FastHasher, FastMap, FastSet};
pub use rng::{Rng, SplitMix64};
