//! A minimal benchmark harness.
//!
//! A hermetic stand-in for `criterion` supporting the subset the
//! workspace's benches use: benchmark groups, per-group sample sizes,
//! throughput annotation, warmup, N timed samples, and median/p95/mean
//! statistics. Results are printed human-readably and, one JSON object
//! per line, to stdout (prefixed `BENCH_JSON`) and optionally appended
//! to the file named by `COBALT_BENCH_JSON`.
//!
//! Environment knobs:
//!
//! * `COBALT_BENCH_FAST=1` — smoke mode: tiny warmup and sample counts,
//!   for CI liveness checks rather than measurement;
//! * `COBALT_BENCH_JSON=path` — also append JSON lines to `path`.
//!
//! Entry points are the [`bench_group!`](crate::bench_group) and
//! [`bench_main!`](crate::bench_main) macros:
//!
//! ```no_run
//! use cobalt_support::bench::Bench;
//!
//! fn my_benches(c: &mut Bench) {
//!     c.bench_function("fib/20", |b| b.iter(|| (1..=20u64).product::<u64>()));
//! }
//!
//! cobalt_support::bench_group!(benches, my_benches);
//! cobalt_support::bench_main!(benches);
//! ```
//!
//! When `cargo test` executes a `harness = false` bench target it
//! passes `--test`; the harness then runs every benchmark for a single
//! iteration (a smoke test) instead of measuring.

use std::fmt::Display;
use std::hint::black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Timing profile for one run of the harness.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Default number of timed samples per benchmark.
    pub sample_size: usize,
    /// Wall-clock spent warming up before sampling.
    pub warmup: Duration,
    /// Target wall-clock per sample (sets iterations per sample).
    pub sample_time: Duration,
    /// If set, run each benchmark exactly once, untimed (smoke mode).
    pub smoke_only: bool,
}

impl Profile {
    fn from_env(args: &[String]) -> Self {
        let smoke_only = args.iter().any(|a| a == "--test");
        if smoke_only {
            return Profile {
                sample_size: 1,
                warmup: Duration::ZERO,
                sample_time: Duration::ZERO,
                smoke_only: true,
            };
        }
        if std::env::var("COBALT_BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty()) {
            Profile {
                sample_size: 5,
                warmup: Duration::from_millis(5),
                sample_time: Duration::from_millis(5),
                smoke_only: false,
            }
        } else {
            Profile {
                sample_size: 30,
                warmup: Duration::from_millis(150),
                sample_time: Duration::from_millis(40),
                smoke_only: false,
            }
        }
    }
}

/// Identifies one benchmark, e.g. `const_prop/160`.
#[derive(Debug, Clone)]
pub struct BenchId(pub String);

impl BenchId {
    /// An id made of a function name and a parameter, `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchId(format!("{name}/{param}"))
    }

    /// An id that is just a parameter (the group provides the name).
    pub fn from_parameter(param: impl Display) -> Self {
        BenchId(param.to_string())
    }
}

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

/// Throughput annotation, reported alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Full benchmark name (`group/id`).
    pub name: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Median ns/iter.
    pub median_ns: f64,
    /// 95th-percentile ns/iter.
    pub p95_ns: f64,
    /// Mean ns/iter.
    pub mean_ns: f64,
    /// Minimum ns/iter.
    pub min_ns: f64,
    /// Optional throughput annotation.
    pub throughput: Option<Throughput>,
}

impl Stats {
    /// A single-measurement `Stats`: one wall-clock observation of one
    /// run, for ad-hoc `BENCH_JSON` datapoints emitted outside the
    /// sampling harness (e.g. an example timing its own end-to-end
    /// work). All percentile fields collapse to the one measurement.
    pub fn single(name: impl Into<String>, elapsed: Duration, throughput: Option<Throughput>) -> Self {
        let ns = elapsed.as_secs_f64() * 1e9;
        Stats {
            name: name.into(),
            samples: 1,
            iters_per_sample: 1,
            median_ns: ns,
            p95_ns: ns,
            mean_ns: ns,
            min_ns: ns,
            throughput,
        }
    }

    /// Emits this result exactly as the harness would: a `BENCH_JSON`
    /// line on stdout, plus an appended line to the file named by
    /// `COBALT_BENCH_JSON` if set (failures to append warn, never
    /// error — a bench datapoint must not fail the run).
    pub fn emit(&self) {
        println!("BENCH_JSON {}", self.json());
        if let Some(path) = std::env::var_os("COBALT_BENCH_JSON") {
            let appended = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| writeln!(f, "{}", self.json()));
            if let Err(e) = appended {
                eprintln!(
                    "warning: cannot append to {}: {e}",
                    std::path::Path::new(&path).display()
                );
            }
        }
    }

    /// This result as a one-line JSON object (the `BENCH_JSON` payload).
    pub fn json(&self) -> String {
        let mut s = format!(
            "{{\"name\":{:?},\"samples\":{},\"iters_per_sample\":{},\
             \"median_ns\":{:.1},\"p95_ns\":{:.1},\"mean_ns\":{:.1},\"min_ns\":{:.1}",
            self.name, self.samples, self.iters_per_sample,
            self.median_ns, self.p95_ns, self.mean_ns, self.min_ns,
        );
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / (self.median_ns * 1e-9);
                s.push_str(&format!(
                    ",\"elements\":{n},\"elements_per_sec\":{per_sec:.1}"
                ));
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / (self.median_ns * 1e-9);
                s.push_str(&format!(",\"bytes\":{n},\"bytes_per_sec\":{per_sec:.1}"));
            }
            None => {}
        }
        s.push('}');
        s
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Records per-iteration timings for one benchmark; handed to the
/// benchmark closure, which must call [`Bencher::iter`] exactly once.
pub struct Bencher<'a> {
    profile: &'a Profile,
    sample_size: usize,
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher<'_> {
    /// Measures the closure: warmup, then `sample_size` timed samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.profile.smoke_only {
            black_box(routine());
            self.samples_ns = vec![0.0];
            self.iters_per_sample = 1;
            return;
        }
        // Warmup, counting iterations to calibrate the sample size.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        loop {
            black_box(routine());
            warmup_iters += 1;
            if warmup_start.elapsed() >= self.profile.warmup {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let iters = ((self.profile.sample_time.as_secs_f64() / per_iter).ceil() as u64).max(1);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        self.samples_ns = samples;
        self.iters_per_sample = iters;
    }
}

/// The harness: collects and reports benchmark results.
pub struct Bench {
    profile: Profile,
    filter: Option<String>,
    results: Vec<Stats>,
    json_path: Option<std::path::PathBuf>,
}

impl Bench {
    /// Builds a harness from CLI args and environment variables.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let profile = Profile::from_env(&args);
        // The first non-flag argument is a substring filter (as with
        // libtest/criterion).
        let filter = args
            .iter()
            .find(|a| !a.starts_with('-') && *a != "benches")
            .cloned();
        let json_path = std::env::var_os("COBALT_BENCH_JSON").map(Into::into);
        Bench {
            profile,
            filter,
            results: Vec::new(),
            json_path,
        }
    }

    /// A harness with an explicit profile (for tests).
    pub fn with_profile(profile: Profile) -> Self {
        Bench {
            profile,
            filter: None,
            results: Vec::new(),
            json_path: None,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function(&mut self, id: impl Into<BenchId>, f: impl FnMut(&mut Bencher)) {
        let name = id.into().0;
        let sample_size = self.profile.sample_size;
        self.run_benchmark(name, sample_size, None, f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchGroup<'_> {
        let sample_size = self.profile.sample_size;
        BenchGroup {
            bench: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    fn run_benchmark(
        &mut self,
        name: String,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            profile: &self.profile,
            sample_size,
            samples_ns: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut bencher);
        let mut ns = bencher.samples_ns;
        if ns.is_empty() {
            eprintln!("warning: benchmark {name} never called Bencher::iter");
            return;
        }
        ns.sort_by(|a, b| a.total_cmp(b));
        let median = if ns.len() % 2 == 1 {
            ns[ns.len() / 2]
        } else {
            (ns[ns.len() / 2 - 1] + ns[ns.len() / 2]) / 2.0
        };
        let p95 = ns[((ns.len() as f64 * 0.95).ceil() as usize).min(ns.len()) - 1];
        let stats = Stats {
            name,
            samples: ns.len(),
            iters_per_sample: bencher.iters_per_sample,
            median_ns: median,
            p95_ns: p95,
            mean_ns: ns.iter().sum::<f64>() / ns.len() as f64,
            min_ns: ns[0],
            throughput,
        };
        self.report(&stats);
        self.results.push(stats);
    }

    fn report(&self, stats: &Stats) {
        if self.profile.smoke_only {
            println!("smoke {:<48} ok", stats.name);
            return;
        }
        println!(
            "bench {:<48} median {:>12}   p95 {:>12}   min {:>12}",
            stats.name,
            fmt_ns(stats.median_ns),
            fmt_ns(stats.p95_ns),
            fmt_ns(stats.min_ns),
        );
        println!("BENCH_JSON {}", stats.json());
        if let Some(path) = &self.json_path {
            let appended = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| writeln!(f, "{}", stats.json()));
            if let Err(e) = appended {
                eprintln!("warning: cannot append to {}: {e}", path.display());
            }
        }
    }

    /// All results collected so far.
    pub fn results(&self) -> &[Stats] {
        &self.results
    }

    /// Prints the end-of-run summary line.
    pub fn final_summary(&self) {
        println!(
            "completed {} benchmark{}",
            self.results.len(),
            if self.results.len() == 1 { "" } else { "s" },
        );
    }
}

/// A group of related benchmarks sharing a name prefix, sample size,
/// and throughput annotation.
pub struct BenchGroup<'a> {
    bench: &'a mut Bench,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.bench.profile.smoke_only {
            // The profile caps the group's request so fast/smoke runs
            // stay fast even for groups that ask for more samples.
            self.sample_size = n.clamp(2, self.bench.profile.sample_size.max(2));
        }
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a closure under `group_name/id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into().0);
        let (n, t) = (self.sample_size, self.throughput);
        self.bench.run_benchmark(name, n, t, f);
        self
    }

    /// Benchmarks a closure that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group (kept for call-site symmetry; drop suffices).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a named group runner, mirroring
/// `criterion_group!`.
#[macro_export]
macro_rules! bench_group {
    ($name:ident, $($func:path),+ $(,)?) => {
        fn $name(bench: &mut $crate::bench::Bench) {
            $( $func(bench); )+
        }
    };
}

/// Expands to `fn main` running the given group runners, mirroring
/// `criterion_main!`.
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut bench = $crate::bench::Bench::from_env();
            $( $group(&mut bench); )+
            bench.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_profile() -> Profile {
        Profile {
            sample_size: 4,
            warmup: Duration::from_micros(200),
            sample_time: Duration::from_micros(200),
            smoke_only: false,
        }
    }

    #[test]
    fn measures_and_reports_sane_stats() {
        let mut bench = Bench::with_profile(fast_profile());
        bench.bench_function("sum/1000", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        let stats = &bench.results()[0];
        assert_eq!(stats.name, "sum/1000");
        assert_eq!(stats.samples, 4);
        assert!(stats.median_ns > 0.0);
        assert!(stats.min_ns <= stats.median_ns);
        assert!(stats.median_ns <= stats.p95_ns);
    }

    #[test]
    fn groups_prefix_names_and_carry_throughput() {
        let mut bench = Bench::with_profile(fast_profile());
        {
            let mut group = bench.benchmark_group("g");
            group.sample_size(3);
            group.throughput(Throughput::Elements(64));
            group.bench_with_input(BenchId::from_parameter(64), &64u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            group.bench_function(BenchId::new("named", 7), |b| b.iter(|| 7u64 * 6));
            group.finish();
        }
        let names: Vec<_> = bench.results().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["g/64", "g/named/7"]);
        let json = bench.results()[0].json();
        assert!(json.contains("\"elements\":64"), "{json}");
        assert!(json.contains("elements_per_sec"), "{json}");
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut bench = Bench::with_profile(Profile {
            sample_size: 1,
            warmup: Duration::ZERO,
            sample_time: Duration::ZERO,
            smoke_only: true,
        });
        let mut calls = 0;
        bench.bench_function("once", |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn single_measurement_stats_collapse_percentiles() {
        let stats = Stats::single(
            "prove_all/registry/jobs=4",
            Duration::from_millis(250),
            Some(Throughput::Elements(70)),
        );
        assert_eq!(stats.samples, 1);
        assert_eq!(stats.median_ns, stats.p95_ns);
        assert_eq!(stats.median_ns, 250_000_000.0);
        let json = stats.json();
        assert!(json.contains("\"elements\":70"), "{json}");
        assert!(json.contains("elements_per_sec"), "{json}");
    }

    #[test]
    fn json_lines_are_parseable_shape() {
        let stats = Stats {
            name: "x/\"quoted\"".into(),
            samples: 3,
            iters_per_sample: 10,
            median_ns: 1.5,
            p95_ns: 2.0,
            mean_ns: 1.6,
            min_ns: 1.0,
            throughput: None,
        };
        let json = stats.json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        // Name with quotes must be escaped (Debug formatting).
        assert!(json.contains("\\\"quoted\\\""), "{json}");
    }
}
