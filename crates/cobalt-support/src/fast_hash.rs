//! A fast, deterministic hasher for interior hash tables.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed and
//! DoS-resistant, which the prover's interior tables — term interning,
//! congruence-closure signatures, relevant-set membership — do not
//! need: keys are small machine words or short id vectors produced by
//! the prover itself, never attacker-controlled input. Those tables
//! sit on the hottest paths of proof search, where SipHash's per-write
//! rounds dominate the actual probe cost.
//!
//! [`FastHasher`] is a word-at-a-time multiplicative hasher (the
//! rotate-xor-multiply shape used by rustc's interner tables) with a
//! strong final mix. It is:
//!
//! * **fast** — one rotate, one xor, one multiply per word;
//! * **deterministic** — no per-process random state, so hash tables
//!   iterate identically across runs and processes (proof search never
//!   iterates these tables in result-affecting ways, but determinism
//!   keeps any accidental dependence reproducible rather than flaky);
//! * **not** collision-resistant against adversaries — do not use it
//!   for anything fed by untrusted input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplier; the low-bias constant from the splitmix64 family.
const K: u64 = 0x9e37_79b9_7f4a_7c15;

/// Word-at-a-time multiplicative [`Hasher`]. See the module docs.
#[derive(Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(26) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // splitmix64 finalizer: the multiply chain alone mixes high
        // bits poorly into the low bits HashMap uses for bucketing.
        let mut h = self.hash;
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" ≠ "ab\0".
            self.add(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }
}

/// Deterministic builder for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` using [`FastHasher`]. Construct with `FastMap::default()`.
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` using [`FastHasher`]. Construct with `FastSet::default()`.
pub type FastSet<K> = HashSet<K, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FastBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_eq!(
            hash_of(&vec![1u32, 2, 3]),
            hash_of(&vec![1u32, 2, 3])
        );
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Smoke test, not a statistical claim: word-sized keys that
        // the prover actually uses should not collide trivially.
        let hashes: FastSet<u64> = (0u32..10_000).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn byte_strings_with_shared_prefixes_differ() {
        assert_ne!(hash_of(&"ab"), hash_of(&"ab\0"));
        assert_ne!(hash_of(&[1u8, 2, 3].as_slice()), hash_of(&[1u8, 2, 3, 0].as_slice()));
    }

    #[test]
    fn usable_as_map() {
        let mut m: FastMap<(u32, Vec<u32>), u32> = FastMap::default();
        m.insert((7, vec![1, 2]), 9);
        assert_eq!(m.get(&(7, vec![1, 2])), Some(&9));
        assert_eq!(m.get(&(7, vec![2, 1])), None);
    }
}
