//! A supervised, scoped worker pool for embarrassingly parallel work.
//!
//! The checker's proof obligations are independent of one another
//! (paper §4.2: each is discharged against the prover in isolation), so
//! discharging them is a textbook fan-out — *if* the fan-out preserves
//! the sequential contract. This pool is built around that requirement:
//!
//! * **Deterministic delivery.** Results are handed to the caller's
//!   sink *in task-index order*, whatever order workers finish in, via
//!   a reorder buffer drained on the calling thread. A caller that
//!   journals or prints per result sees exactly the sequential order.
//! * **Panic supervision.** Each task runs under `catch_unwind`. A task
//!   that panics is retried once on the assumption that the panic was a
//!   worker-environment casualty (the injectable `pool.task` fault
//!   simulates one); a second panic is surfaced to the sink as
//!   [`TaskResult::Panicked`] — one bad task never kills the pool, the
//!   run, or a sibling.
//! * **Cooperative cancellation.** Every task receives a shared
//!   [`Cancel`] token. Tasks may trip it (fail-fast) and are expected
//!   to observe it; the pool itself keeps draining queued tasks so each
//!   one still produces a result — cancellation changes *outcomes*,
//!   never the shape of the result stream.
//! * **Graceful degradation.** Worker threads that cannot be spawned
//!   (OS thread exhaustion, or the injectable `pool.spawn` fault) are
//!   simply lost capacity: the pool runs with fewer workers, down to
//!   running every task inline on the calling thread. Spawning is
//!   best-effort; completing every task is not.
//!
//! Fault points: `pool.spawn` (a `fail` action suppresses one worker
//! spawn) and `pool.task` (a `panic` action crashes the *n*-th task
//! pickup, exercising the supervision path). Thread-local fault
//! overrides installed with [`fault::with_faults`] are captured on the
//! calling thread and re-installed inside every worker, sharing hit
//! counters, so `@n` semantics hold across the pool.

use crate::fault;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// A shared cooperative-cancellation token.
///
/// Cloning is cheap (an `Arc`); all clones observe the same flag. The
/// underlying `Arc<AtomicBool>` is exposed so it can be threaded into
/// budgets that predate this type (e.g. the prover's `Budget::cancel`).
///
/// Tokens form a one-way hierarchy via [`child`](Self::child):
/// tripping a parent trips every (live) descendant, but tripping a
/// child never touches its parent or siblings. That is how one
/// caller-level token (say, a daemon drain deadline) fans out over many
/// independent batches without a batch-internal fail-fast trip leaking
/// across batch boundaries.
#[derive(Debug, Clone, Default)]
pub struct Cancel(Arc<CancelInner>);

#[derive(Debug, Default)]
struct CancelInner {
    flag: Arc<AtomicBool>,
    children: Mutex<Vec<std::sync::Weak<CancelInner>>>,
}

impl Cancel {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Cancel::default()
    }

    /// A token wrapping an existing flag.
    pub fn from_flag(flag: Arc<AtomicBool>) -> Self {
        Cancel(Arc::new(CancelInner {
            flag,
            children: Mutex::new(Vec::new()),
        }))
    }

    /// Trips the token: every holder — and every live child token —
    /// observes it at their next check.
    pub fn trip(&self) {
        self.0.flag.store(true, Ordering::Relaxed);
        let mut children = self
            .0
            .children
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        children.retain(|weak| match weak.upgrade() {
            Some(child) => {
                Cancel(child).trip();
                true
            }
            None => false, // the child's batch finished: prune
        });
    }

    /// Whether the token has been tripped.
    pub fn is_tripped(&self) -> bool {
        self.0.flag.load(Ordering::Relaxed)
    }

    /// The underlying shared flag.
    pub fn flag(&self) -> Arc<AtomicBool> {
        self.0.flag.clone()
    }

    /// A linked child token with its **own** flag: tripping `self`
    /// trips the child (a child of an already-tripped token is born
    /// tripped), but tripping the child leaves `self` — and any sibling
    /// children — untouched. The link is weak; a dropped child costs
    /// nothing.
    pub fn child(&self) -> Cancel {
        let child = Cancel::new();
        self.0
            .children
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Arc::downgrade(&child.0));
        // Registered first, checked second: a concurrent `trip` either
        // sees the registration or set the flag before this check.
        if self.is_tripped() {
            child.trip();
        }
        child
    }
}

/// What one task produced.
#[derive(Debug)]
pub enum TaskResult<R> {
    /// The task ran to completion (its own result may still describe a
    /// failure — that is the caller's vocabulary, not the pool's).
    Done(R),
    /// The task panicked twice (once fresh, once on its supervised
    /// retry); the payload message of the final panic.
    Panicked(String),
}

impl<R> TaskResult<R> {
    /// The completed result, if the task did not panic out.
    pub fn ok(self) -> Option<R> {
        match self {
            TaskResult::Done(r) => Some(r),
            TaskResult::Panicked(_) => None,
        }
    }
}

/// Statistics from one [`run_ordered`] call, for observability and
/// tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads requested (after clamping to the task count).
    pub workers_requested: usize,
    /// Worker threads actually spawned; the shortfall (spawn failures)
    /// was absorbed by the remaining workers or the calling thread.
    pub workers_spawned: usize,
    /// Task executions that panicked and were retried by the
    /// supervisor.
    pub retried_panics: usize,
}

/// Maximum supervised re-executions of a panicking task. One retry
/// distinguishes a transient worker casualty (an injected `pool.task`
/// crash) from a task that deterministically dies — the latter panics
/// again immediately and is surfaced instead of looping.
const MAX_TASK_RETRIES: usize = 1;

/// Runs `tasks` on up to `jobs` worker threads, delivering each task's
/// [`TaskResult`] to `sink` **in task order** on the calling thread.
///
/// `task` receives the task's index, exclusive access to its input, and
/// the shared cancel token. It may be called up to `1 + MAX_TASK_RETRIES`
/// times for the same index if it panics (see the module docs); callers
/// who catch their own panics internally are never retried.
///
/// With `jobs <= 1`, no threads are spawned at all: tasks run inline on
/// the calling thread, in order, with identical supervision semantics.
/// The pool never returns before every task has produced exactly one
/// result.
pub fn run_ordered<T, R>(
    jobs: usize,
    tasks: Vec<T>,
    cancel: &Cancel,
    task: impl Fn(usize, &mut T, &Cancel) -> R + Sync,
    mut sink: impl FnMut(usize, TaskResult<R>),
) -> PoolStats
where
    T: Send,
    R: Send,
{
    let n = tasks.len();
    let workers = jobs.min(n);
    let mut stats = PoolStats {
        workers_requested: workers,
        ..PoolStats::default()
    };
    if n == 0 {
        return stats;
    }

    // Shared state: each task slot is lockable (a retry re-runs on the
    // same input), the queue hands out indices, and per-slot retry
    // counts bound supervision.
    let slots: Vec<Mutex<T>> = tasks.into_iter().map(Mutex::new).collect();
    let queue: Mutex<VecDeque<usize>> = Mutex::new((0..n).collect());
    let retries: Vec<Mutex<usize>> = (0..n).map(|_| Mutex::new(0)).collect();
    let retried = Mutex::new(0usize);
    let overrides = fault::capture_overrides();

    // One worker's drain loop: pull an index, run the task under
    // catch_unwind, requeue on a first panic, send the result.
    let drain = |tx: mpsc::Sender<(usize, TaskResult<R>)>| {
        fault::with_overrides(overrides.as_ref(), || loop {
            let Some(idx) = queue.lock().ok().and_then(|mut q| q.pop_front()) else {
                return;
            };
            let ran = catch_unwind(AssertUnwindSafe(|| {
                fault::point("pool.task");
                let mut slot = slots[idx]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                task(idx, &mut slot, cancel)
            }));
            let result = match ran {
                Ok(r) => TaskResult::Done(r),
                Err(payload) => {
                    let mut count = retries[idx]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if *count < MAX_TASK_RETRIES {
                        *count += 1;
                        if let Ok(mut r) = retried.lock() {
                            *r += 1;
                        }
                        // Put the casualty back at the front so its
                        // retry happens promptly; delivery order is
                        // fixed by the reorder buffer regardless.
                        if let Ok(mut q) = queue.lock() {
                            q.push_front(idx);
                        }
                        continue;
                    }
                    TaskResult::Panicked(panic_message(payload.as_ref()))
                }
            };
            if tx.send((idx, result)).is_err() {
                return; // receiver gone: nothing left to report to
            }
        })
    };

    if workers <= 1 {
        // Inline mode: same semantics, no threads. The sink still sees
        // results strictly in index order because the queue is ordered
        // (retries go to the front, so a retried task completes before
        // its successors run).
        let (tx, rx) = mpsc::channel();
        drain(tx);
        let mut buffer: BTreeMap<usize, TaskResult<R>> = rx.into_iter().collect();
        for idx in 0..n {
            let result = buffer
                .remove(&idx)
                .expect("inline drain produced every result");
            sink(idx, result);
        }
        stats.workers_spawned = 0;
        stats.retried_panics = *retried.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        return stats;
    }

    let (tx, rx) = mpsc::channel::<(usize, TaskResult<R>)>();
    std::thread::scope(|scope| {
        let mut spawned = 0usize;
        for worker in 0..workers {
            // A spawn that fails (injected `pool.spawn` fault or a real
            // OS refusal) just means less parallelism; the remaining
            // workers — or, at zero, the calling thread below — still
            // complete every task.
            if fault::point_err("pool.spawn").is_err() {
                continue;
            }
            let tx = tx.clone();
            let drain = &drain;
            let builder = std::thread::Builder::new().name(format!("cobalt-pool-{worker}"));
            if builder.spawn_scoped(scope, move || drain(tx)).is_ok() {
                spawned += 1;
            }
        }
        stats.workers_spawned = spawned;
        drop(tx);
        if spawned == 0 {
            // Total spawn failure: degrade to inline execution. The
            // receiver is drained afterwards; it is empty.
            let (inline_tx, inline_rx) = mpsc::channel();
            drain(inline_tx);
            let mut buffer: BTreeMap<usize, TaskResult<R>> = inline_rx.into_iter().collect();
            for idx in 0..n {
                if let Some(result) = buffer.remove(&idx) {
                    sink(idx, result);
                }
            }
            return;
        }
        // Reorder buffer: deliver to the sink in index order as soon as
        // the next expected index has landed.
        let mut buffer: BTreeMap<usize, TaskResult<R>> = BTreeMap::new();
        let mut next = 0usize;
        for (idx, result) in rx {
            buffer.insert(idx, result);
            while let Some(result) = buffer.remove(&next) {
                sink(next, result);
                next += 1;
            }
        }
        debug_assert!(buffer.is_empty(), "workers exited with results undelivered");
    });
    stats.retried_panics = *retried.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    stats
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn collect<R>(results: &mut Vec<(usize, TaskResult<R>)>) -> impl FnMut(usize, TaskResult<R>) + '_ {
        |idx, r| results.push((idx, r))
    }

    #[test]
    fn results_arrive_in_task_order_whatever_the_completion_order() {
        for jobs in [1, 2, 4, 16] {
            let tasks: Vec<u64> = (0..32).collect();
            let mut results = Vec::new();
            let stats = run_ordered(
                jobs,
                tasks,
                &Cancel::new(),
                |idx, t, _| {
                    // Earlier tasks sleep longer, inverting natural
                    // completion order under parallelism.
                    std::thread::sleep(std::time::Duration::from_micros(
                        (32 - idx as u64) * 30,
                    ));
                    *t * 10
                },
                collect(&mut results),
            );
            let indices: Vec<usize> = results.iter().map(|(i, _)| *i).collect();
            assert_eq!(indices, (0..32).collect::<Vec<_>>(), "jobs={jobs}");
            for (i, (_, r)) in results.into_iter().enumerate() {
                assert_eq!(r.ok(), Some(i as u64 * 10), "jobs={jobs}");
            }
            assert_eq!(stats.workers_requested, jobs.min(32), "jobs={jobs}");
        }
    }

    /// Regression test for the worker clamp: an oversized `--jobs`
    /// (e.g. `--jobs auto` on a big host, or an operator typo) must
    /// never spawn more workers than there are tasks — the clamp is
    /// what makes `auto` safe to pass blindly.
    #[test]
    fn oversized_jobs_clamp_to_task_count() {
        for (jobs, n) in [(1000, 3), (64, 1), (8, 0), (2, 2)] {
            let tasks: Vec<u64> = (0..n as u64).collect();
            let mut results = Vec::new();
            let stats = run_ordered(jobs, tasks, &Cancel::new(), |_, t, _| *t, collect(&mut results));
            assert_eq!(stats.workers_requested, jobs.min(n), "jobs={jobs} n={n}");
            assert!(
                stats.workers_spawned <= jobs.min(n),
                "jobs={jobs} n={n}: spawned {} workers for {n} task(s)",
                stats.workers_spawned
            );
            assert_eq!(results.len(), n, "jobs={jobs}");
        }
    }

    #[test]
    fn panicking_task_is_retried_once_then_surfaced() {
        // Panics on every execution: retried once, then surfaced.
        let calls = AtomicUsize::new(0);
        let mut results = Vec::new();
        let stats = run_ordered(
            4,
            vec![(), (), ()],
            &Cancel::new(),
            |idx, _, _| {
                if idx == 1 {
                    calls.fetch_add(1, Ordering::SeqCst);
                    panic!("task 1 always dies");
                }
                idx
            },
            collect(&mut results),
        );
        assert_eq!(calls.load(Ordering::SeqCst), 2, "one fresh run + one retry");
        assert_eq!(stats.retried_panics, 1);
        assert!(matches!(&results[1].1, TaskResult::Panicked(m) if m.contains("always dies")));
        assert_eq!(results.len(), 3, "siblings still complete");
        assert!(matches!(results[0].1, TaskResult::Done(0)));
        assert!(matches!(results[2].1, TaskResult::Done(2)));
    }

    #[test]
    fn transient_panic_recovers_on_retry() {
        // Panics on the first execution only: the supervised retry
        // succeeds and the caller never sees the casualty.
        for jobs in [1, 3] {
            let first = AtomicBool::new(true);
            let mut results = Vec::new();
            let stats = run_ordered(
                jobs,
                vec![7u32, 8, 9],
                &Cancel::new(),
                |_, t, _| {
                    if first.swap(false, Ordering::SeqCst) {
                        panic!("transient casualty");
                    }
                    *t
                },
                collect(&mut results),
            );
            assert_eq!(stats.retried_panics, 1, "jobs={jobs}");
            let values: Vec<u32> = results.into_iter().filter_map(|(_, r)| r.ok()).collect();
            assert_eq!(values, vec![7, 8, 9], "jobs={jobs}");
        }
    }

    #[test]
    fn pool_task_fault_is_supervised_and_invisible_to_the_sink() {
        // An injected worker crash at the second task pickup: the
        // supervisor retries it and every result is Done.
        let mut results = Vec::new();
        let stats = fault::with_faults("pool.task:panic@2", || {
            run_ordered(
                2,
                (0..8u64).collect(),
                &Cancel::new(),
                |_, t, _| *t + 1,
                collect(&mut results),
            )
        });
        assert_eq!(stats.retried_panics, 1);
        let values: Vec<u64> = results.into_iter().map(|(_, r)| r.ok().unwrap()).collect();
        assert_eq!(values, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn pool_spawn_fault_degrades_worker_count_not_results() {
        // Suppress every spawn: the pool runs inline on the caller.
        // (Two identical specs: the evaluator returns at the first
        // firing spec, so they fire on consecutive hits.)
        let mut results = Vec::new();
        let stats = fault::with_faults("pool.spawn:fail@1,pool.spawn:fail@1", || {
            run_ordered(
                2,
                vec![1u64, 2, 3, 4],
                &Cancel::new(),
                |_, t, _| *t * 2,
                collect(&mut results),
            )
        });
        assert_eq!(stats.workers_spawned, 0);
        let values: Vec<u64> = results.into_iter().map(|(_, r)| r.ok().unwrap()).collect();
        assert_eq!(values, vec![2, 4, 6, 8]);
    }

    #[test]
    fn cancellation_is_cooperative_and_total() {
        // Task 0 trips the token; later tasks observe it. Every task
        // still yields exactly one result.
        let mut results = Vec::new();
        run_ordered(
            2,
            (0..16usize).collect(),
            &Cancel::new(),
            |idx, _, cancel| {
                if idx == 0 {
                    cancel.trip();
                }
                cancel.is_tripped()
            },
            collect(&mut results),
        );
        assert_eq!(results.len(), 16);
        // At minimum the tail of the queue ran after the trip.
        assert_eq!(results.last().unwrap().1.as_ref_done(), Some(&true));
    }

    impl<R> TaskResult<R> {
        fn as_ref_done(&self) -> Option<&R> {
            match self {
                TaskResult::Done(r) => Some(r),
                TaskResult::Panicked(_) => None,
            }
        }
    }

    #[test]
    fn child_tokens_inherit_trips_downward_only() {
        let parent = Cancel::new();
        let a = parent.child();
        let b = parent.child();
        // Child trips stay local: parent and siblings are untouched.
        a.trip();
        assert!(a.is_tripped());
        assert!(!parent.is_tripped(), "a child trip must not reach the parent");
        assert!(!b.is_tripped(), "a child trip must not reach a sibling");
        // Parent trips fan out to every live descendant.
        let grandchild = b.child();
        parent.trip();
        assert!(b.is_tripped());
        assert!(grandchild.is_tripped(), "trips propagate transitively");
        // A child of an already-tripped token is born tripped.
        assert!(parent.child().is_tripped());
    }

    #[test]
    fn dropped_children_are_pruned_and_flags_stay_live() {
        let parent = Cancel::new();
        for _ in 0..64 {
            drop(parent.child());
        }
        // The solver holds only the child's flag; a parent trip must
        // still reach it while the flag's batch is in flight.
        let child = parent.child();
        let flag = child.flag();
        drop(child);
        parent.trip(); // prunes dead weak links, must not panic
        assert!(parent.is_tripped());
        // The dropped child's raw flag is no longer linked — that is
        // fine: a batch that ended has nothing left to cancel.
        let _ = flag;
    }

    #[test]
    fn zero_and_one_jobs_run_inline_without_threads() {
        for jobs in [0, 1] {
            let caller = std::thread::current().id();
            let mut results = Vec::new();
            let stats = run_ordered(
                jobs,
                vec![(), ()],
                &Cancel::new(),
                |_, _, _| std::thread::current().id(),
                collect(&mut results),
            );
            assert_eq!(stats.workers_spawned, 0, "jobs={jobs}");
            for (_, r) in &results {
                assert_eq!(r.as_ref_done(), Some(&caller), "jobs={jobs}");
            }
        }
    }

    #[test]
    fn empty_task_list_is_a_noop() {
        let mut sink_calls = 0;
        let stats = run_ordered(
            4,
            Vec::<()>::new(),
            &Cancel::new(),
            |_, _, _| (),
            |_, _| sink_calls += 1,
        );
        assert_eq!(sink_calls, 0);
        assert_eq!(stats, PoolStats::default());
    }
}
