//! A crash-safe, corruption-tolerant append-only record journal.
//!
//! The proof journal is what lets a killed verification run resume warm
//! instead of starting over (see `DESIGN.md` §10): each record is an
//! opaque payload framed with its length and an FNV-64 checksum, so a
//! torn write, a truncated tail, or a bit flip is *detected* and
//! discarded rather than trusted. Corruption never panics and never
//! yields a record whose checksum does not match — the failure mode is
//! always "fewer cached records", i.e. graceful degradation to
//! re-proving.
//!
//! # On-disk format
//!
//! ```text
//! file   := magic record*
//! magic  := "COBJRNL1"                      (8 bytes)
//! record := len:u32le checksum:u64le payload(len bytes)
//! ```
//!
//! `checksum` is [`fnv64`] of the payload. The loader scans records in
//! order and stops at the first frame that is truncated, oversized, or
//! checksum-mismatched; everything from that point on is discarded and
//! the file is truncated back to the last good record, so the journal
//! is loadable again after the next append. A missing or mangled magic
//! discards the whole file (it was not a journal we wrote, or its very
//! head was torn).
//!
//! # Durability
//!
//! [`Journal::append`] writes the frame; [`Journal::sync`] fsyncs it.
//! [`Journal::compact`] atomically replaces the journal with a snapshot
//! via a temp file + rename, so a crash mid-compaction leaves either
//! the old journal or the new one, never a half-written hybrid.
//!
//! # Cross-process sharing
//!
//! [`Journal::open_locked`] additionally takes an **advisory exclusive
//! lock** (BSD `flock` semantics via `std::fs::File::try_lock`) on the
//! journal file, so several `cobalt verify --journal same-path`
//! processes can point at one journal without interleaving half-frames:
//! exactly one holds the journal at a time, the rest time out after a
//! bounded wait and degrade to uncached verification. The lock follows
//! the open file description, so it survives [`Journal::compact`]'s
//! rename (the replacement temp file is locked *before* the rename, and
//! exclusivity is handed over with the handle). Because a competing
//! process may compact (rename over) the path between our `open` and
//! our `try_lock`, acquisition re-verifies that the locked handle still
//! names the path's inode and reopens if not.
//!
//! # Fault points
//!
//! `journal.load`, `journal.write`, and `journal.fsync` are
//! [`fault`](crate::fault) sites (`fail` actions surface as
//! `io::Error`), so callers' degradation paths are testable:
//! `COBALT_FAULTS=journal.write:fail@1`. `journal.lock` is special: a
//! `fail` action simulates lock *contention* (an immediate
//! [`LockOutcome::Contended`]), not an I/O error, because contention is
//! the interesting degradation to rehearse.

use crate::fault;
use std::fs::{File, OpenOptions, TryLockError};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// The 8-byte magic prefix identifying a journal file (and its format
/// version — bump the trailing digit on incompatible changes).
pub const MAGIC: &[u8; 8] = b"COBJRNL1";

/// Hard cap on a single record's payload; a length field above this is
/// treated as corruption rather than honoured (it would otherwise let
/// one flipped bit demand a multi-gigabyte allocation).
pub const MAX_PAYLOAD: usize = 1 << 24; // 16 MiB

/// Bytes of framing per record: `len: u32` + `checksum: u64`.
pub const FRAME: usize = 4 + 8;

/// The FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a 64-bit hasher, shared by the record checksums and
/// the checker's obligation fingerprints.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Feeds bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// FNV-1a 64-bit hash of `bytes` in one call.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// What [`Journal::open`] found on disk.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Number of intact records recovered.
    pub records: usize,
    /// Bytes discarded from the tail (torn write, truncation, bit
    /// flip, or a foreign/mangled header). Zero for a clean journal.
    pub discarded_bytes: u64,
    /// Human-readable description of the first corruption encountered,
    /// if any.
    pub corruption: Option<String>,
}

impl LoadReport {
    /// Whether anything had to be discarded.
    pub fn corrupted(&self) -> bool {
        self.discarded_bytes > 0
    }
}

/// Escapes a record field for the tab-separated `key=value` codecs
/// layered on this journal (verification and engine session records):
/// backslash, tab, newline, and carriage return are escaped so a field
/// can never alias the record's separators.
pub fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape_field`]. `None` on a malformed escape — callers
/// treat the whole record as not cached (total decoding, never fatal).
pub fn unescape_field(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// How a journal-backed session treats an existing journal. Shared by
/// every journal consumer (verification sessions, engine fixpoint
/// sessions) so the CLI's `--resume`/`--fresh` contract is one type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeMode {
    /// Reuse every intact, fingerprint-matching cached outcome; the
    /// default. An empty or absent journal resumes to nothing, so this
    /// is always safe.
    Resume,
    /// Discard any existing journal contents and start cold.
    Fresh,
}

/// The result of opening a journal: the handle, the recovered payloads
/// (in append order), and what the loader had to discard.
#[derive(Debug)]
pub struct Opened {
    /// The journal, positioned to append after the last good record.
    pub journal: Journal,
    /// Every intact record's payload, oldest first.
    pub records: Vec<Vec<u8>>,
    /// Recovery statistics.
    pub report: LoadReport,
}

/// The result of a deadline-bounded locked open: either the journal
/// (with the advisory exclusive lock held for its lifetime) or a report
/// that another holder kept the lock for the whole wait.
#[derive(Debug)]
pub enum LockOutcome {
    /// The lock was acquired; the journal is exclusively ours until
    /// dropped.
    Acquired(Opened),
    /// Another process (or handle) held the lock past the deadline, or
    /// an injected `journal.lock` fault simulated that. The caller
    /// should degrade per the PR 4 contract: verify uncached, change no
    /// verdict.
    Contended {
        /// Why acquisition gave up, for the caller's note to the user.
        reason: String,
    },
}

/// An append-only journal of checksummed records. See the
/// [module docs](self) for the format and crash-safety contract.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    /// End of the last good record (including the magic header); the
    /// next append goes here.
    valid_len: u64,
    /// Whether this handle holds the advisory exclusive lock (and must
    /// hand it over across compaction renames).
    locked: bool,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, recovering
    /// every intact record and truncating any corrupt tail so the file
    /// is immediately appendable again. Takes no lock; for
    /// cross-process sharing use [`Journal::open_locked`].
    ///
    /// # Errors
    ///
    /// Returns the underlying `io::Error` for filesystem failures
    /// (missing parent directory, permissions, an injected
    /// `journal.load` fault). *Corruption is not an error* — it is
    /// reported in [`Opened::report`] and repaired by truncation.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Opened> {
        let path = path.as_ref().to_path_buf();
        fault::point_err("journal.load").map_err(fault_io)?;
        let file = open_file(&path)?;
        load(path, file, false)
    }

    /// Opens the journal at `path` under an **advisory exclusive lock**,
    /// waiting up to `lock_wait` for a competing holder to release it.
    ///
    /// On [`LockOutcome::Acquired`] the lock is held until the journal
    /// is dropped (it follows the file handle, including across
    /// [`Journal::compact`]'s rename). On [`LockOutcome::Contended`]
    /// nothing is held and nothing was modified; the caller degrades.
    /// The wait polls `try_lock` rather than blocking indefinitely so
    /// a wedged holder can never wedge us past the deadline.
    ///
    /// # Errors
    ///
    /// Returns an `io::Error` for filesystem failures (including an
    /// injected `journal.load` fault). Lock *contention* is not an
    /// error, and an injected `journal.lock` fault is surfaced as
    /// contention, not as `Err`.
    pub fn open_locked(path: impl AsRef<Path>, lock_wait: Duration) -> io::Result<LockOutcome> {
        let path = path.as_ref().to_path_buf();
        fault::point_err("journal.load").map_err(fault_io)?;
        if let Err(e) = fault::point_err("journal.lock") {
            return Ok(LockOutcome::Contended {
                reason: format!("simulated lock contention ({e})"),
            });
        }
        let deadline = Instant::now() + lock_wait;
        // Outer loop: reopen when the path was renamed-over (a
        // competing holder compacted) between our open and our lock.
        loop {
            let file = open_file(&path)?;
            loop {
                match file.try_lock() {
                    Ok(()) => break,
                    Err(TryLockError::WouldBlock) => {
                        if Instant::now() >= deadline {
                            return Ok(LockOutcome::Contended {
                                reason: format!(
                                    "another process held the journal lock for {lock_wait:?}"
                                ),
                            });
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(TryLockError::Error(e)) => return Err(e),
                }
            }
            if same_inode(&file, &path)? {
                return load(path, file, true).map(LockOutcome::Acquired);
            }
            // Stale inode: the lock we won is on an unlinked file.
            // Drop it (releasing the lock) and race again.
        }
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether this handle holds the advisory exclusive lock.
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// Appends one record (length + FNV-64 checksum + payload).
    ///
    /// # Errors
    ///
    /// Returns an `io::Error` on filesystem failure, an injected
    /// `journal.write` fault, or a payload above [`MAX_PAYLOAD`].
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        fault::point_err("journal.write").map_err(fault_io)?;
        if payload.len() > MAX_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("journal record of {} bytes exceeds the cap", payload.len()),
            ));
        }
        let mut frame = Vec::with_capacity(FRAME + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv64(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.seek(SeekFrom::Start(self.valid_len))?;
        self.file.write_all(&frame)?;
        self.valid_len += frame.len() as u64;
        Ok(())
    }

    /// Flushes appended records to stable storage (`fsync`).
    ///
    /// # Errors
    ///
    /// Returns an `io::Error` on failure or an injected `journal.fsync`
    /// fault.
    pub fn sync(&mut self) -> io::Result<()> {
        fault::point_err("journal.fsync").map_err(fault_io)?;
        self.file.sync_data()
    }

    /// Atomically replaces the journal's contents with exactly
    /// `records`, via a temp file in the same directory + rename. A
    /// crash at any point leaves either the old journal or the new one.
    ///
    /// # Errors
    ///
    /// Returns an `io::Error` on filesystem failure or an injected
    /// `journal.write`/`journal.fsync` fault; the original journal is
    /// untouched on error.
    pub fn compact<P: AsRef<[u8]>>(&mut self, records: &[P]) -> io::Result<()> {
        fault::point_err("journal.write").map_err(fault_io)?;
        let tmp_path = tmp_sibling(&self.path);
        let locked = self.locked;
        let result = (|| -> io::Result<(File, u64)> {
            let mut tmp = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp_path)?;
            let mut buf = Vec::with_capacity(MAGIC.len());
            buf.extend_from_slice(MAGIC);
            for payload in records {
                let payload = payload.as_ref();
                if payload.len() > MAX_PAYLOAD {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "journal record exceeds the cap",
                    ));
                }
                buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                buf.extend_from_slice(&fnv64(payload).to_le_bytes());
                buf.extend_from_slice(payload);
            }
            tmp.write_all(&buf)?;
            if locked {
                // Lock the replacement *before* it becomes the journal,
                // so exclusivity never lapses across the rename: a
                // competitor that opens the path pre-rename locks a
                // doomed inode (and re-verifies, per `open_locked`); one
                // that opens it post-rename finds it already locked.
                tmp.lock()?;
            }
            fault::point_err("journal.fsync").map_err(fault_io)?;
            tmp.sync_data()?;
            std::fs::rename(&tmp_path, &self.path)?;
            Ok((tmp, buf.len() as u64))
        })();
        match result {
            Ok((file, len)) => {
                // The renamed temp file *is* the journal now; keep its
                // handle so later appends go to the right inode.
                self.file = file;
                self.valid_len = len;
                Ok(())
            }
            Err(e) => {
                std::fs::remove_file(&tmp_path).ok();
                Err(e)
            }
        }
    }

    fn write_magic(&mut self) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(MAGIC)?;
        self.valid_len = MAGIC.len() as u64;
        Ok(())
    }
}

/// Opens (creating if absent, never truncating) the journal file.
fn open_file(path: &Path) -> io::Result<File> {
    OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)
}

/// Reads, scans, and repairs an already-opened journal file, producing
/// the [`Opened`] handle.
fn load(path: PathBuf, mut file: File, locked: bool) -> io::Result<Opened> {
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let (records, valid_len, report) = scan(&bytes);
    // Repair: drop the corrupt tail now so the invariant "the file
    // ends at a record boundary" holds for every append.
    if (bytes.len() as u64) > valid_len {
        file.set_len(valid_len)?;
    }
    let mut journal = Journal {
        path,
        file,
        valid_len,
        locked,
    };
    if journal.valid_len == 0 {
        journal.write_magic()?;
    }
    Ok(Opened {
        journal,
        records,
        report,
    })
}

/// Whether the open handle still names the same file as `path` — false
/// when a competing compaction renamed a replacement over the path
/// between our `open` and our lock acquisition.
#[cfg(unix)]
fn same_inode(file: &File, path: &Path) -> io::Result<bool> {
    use std::os::unix::fs::MetadataExt;
    let handle = file.metadata()?;
    let on_disk = std::fs::metadata(path)?;
    Ok(handle.ino() == on_disk.ino() && handle.dev() == on_disk.dev())
}

/// Non-Unix fallback: no inode identity to compare; trust the handle.
#[cfg(not(unix))]
fn same_inode(_file: &File, _path: &Path) -> io::Result<bool> {
    Ok(true)
}

/// Scans raw journal bytes, returning the intact payloads, the byte
/// offset after the last good record, and a recovery report. Total and
/// panic-free on arbitrary input.
fn scan(bytes: &[u8]) -> (Vec<Vec<u8>>, u64, LoadReport) {
    let mut report = LoadReport::default();
    if bytes.is_empty() {
        return (Vec::new(), 0, report);
    }
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        report.discarded_bytes = bytes.len() as u64;
        report.corruption = Some("missing or corrupt magic header".into());
        return (Vec::new(), 0, report);
    }
    let mut records = Vec::new();
    let mut offset = MAGIC.len();
    let corrupt = loop {
        if offset == bytes.len() {
            break None; // clean end
        }
        if bytes.len() - offset < FRAME {
            break Some(format!("torn frame header at byte {offset}"));
        }
        let len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let checksum =
            u64::from_le_bytes(bytes[offset + 4..offset + FRAME].try_into().expect("8 bytes"));
        if len > MAX_PAYLOAD {
            break Some(format!("implausible record length {len} at byte {offset}"));
        }
        if bytes.len() - offset - FRAME < len {
            break Some(format!("truncated record payload at byte {offset}"));
        }
        let payload = &bytes[offset + FRAME..offset + FRAME + len];
        if fnv64(payload) != checksum {
            break Some(format!("checksum mismatch at byte {offset}"));
        }
        records.push(payload.to_vec());
        offset += FRAME + len;
    };
    report.records = records.len();
    report.discarded_bytes = (bytes.len() - offset) as u64;
    report.corruption = corrupt;
    (records, offset as u64, report)
}

/// The temp-file path used by [`Journal::compact`]: a sibling so the
/// rename stays within one filesystem.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

fn fault_io(e: fault::FaultError) -> io::Error {
    io::Error::other(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "cobalt_journal_{}_{name}.cobj",
            std::process::id()
        ))
    }

    #[test]
    fn roundtrip_append_and_reload() {
        let path = tmp("roundtrip");
        std::fs::remove_file(&path).ok();
        let mut opened = Journal::open(&path).unwrap();
        assert!(opened.records.is_empty());
        opened.journal.append(b"alpha").unwrap();
        opened.journal.append(b"").unwrap(); // empty payloads are legal
        opened.journal.append(b"gamma\tdelta\n").unwrap();
        opened.journal.sync().unwrap();
        let reopened = Journal::open(&path).unwrap();
        assert_eq!(
            reopened.records,
            vec![b"alpha".to_vec(), b"".to_vec(), b"gamma\tdelta\n".to_vec()]
        );
        assert!(!reopened.report.corrupted());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_discarded_and_repaired() {
        let path = tmp("truncated");
        std::fs::remove_file(&path).ok();
        let mut opened = Journal::open(&path).unwrap();
        opened.journal.append(b"keep-me").unwrap();
        opened.journal.append(b"lose-my-tail").unwrap();
        drop(opened);
        let len = std::fs::metadata(&path).unwrap().len();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..len as usize - 3]).unwrap();
        let recovered = Journal::open(&path).unwrap();
        assert_eq!(recovered.records, vec![b"keep-me".to_vec()]);
        assert!(recovered.report.corrupted());
        assert!(recovered.report.corruption.is_some());
        // The repair truncated the file: a fresh append then reload
        // yields exactly [keep-me, appended].
        let mut journal = recovered.journal;
        journal.append(b"appended").unwrap();
        drop(journal);
        let reloaded = Journal::open(&path).unwrap();
        assert_eq!(
            reloaded.records,
            vec![b"keep-me".to_vec(), b"appended".to_vec()]
        );
        assert!(!reloaded.report.corrupted());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_discards_from_the_flipped_record() {
        let path = tmp("bitflip");
        std::fs::remove_file(&path).ok();
        let mut opened = Journal::open(&path).unwrap();
        for payload in [b"record-one".as_slice(), b"record-two", b"record-three"] {
            opened.journal.append(payload).unwrap();
        }
        drop(opened);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the second record's payload.
        let second_payload_start = MAGIC.len() + FRAME + b"record-one".len() + FRAME;
        bytes[second_payload_start + 2] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let recovered = Journal::open(&path).unwrap();
        assert_eq!(recovered.records, vec![b"record-one".to_vec()]);
        assert!(recovered
            .report
            .corruption
            .as_deref()
            .unwrap()
            .contains("checksum mismatch"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_file_is_not_trusted() {
        let path = tmp("foreign");
        std::fs::write(&path, b"this is not a journal at all").unwrap();
        let recovered = Journal::open(&path).unwrap();
        assert!(recovered.records.is_empty());
        assert!(recovered.report.corrupted());
        // And it has been converted into a valid empty journal.
        let reloaded = Journal::open(&path).unwrap();
        assert!(reloaded.records.is_empty());
        assert!(!reloaded.report.corrupted());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_length_field_is_corruption_not_allocation() {
        let path = tmp("oversize");
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(b"junk");
        std::fs::write(&path, &bytes).unwrap();
        let recovered = Journal::open(&path).unwrap();
        assert!(recovered.records.is_empty());
        assert!(recovered
            .report
            .corruption
            .as_deref()
            .unwrap()
            .contains("implausible"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_replaces_contents_atomically() {
        let path = tmp("compact");
        std::fs::remove_file(&path).ok();
        let mut opened = Journal::open(&path).unwrap();
        opened.journal.append(b"old-1").unwrap();
        opened.journal.append(b"old-2").unwrap();
        opened
            .journal
            .compact(&[b"new-1".as_slice(), b"new-2", b"new-3"])
            .unwrap();
        // Appends after compaction land on the renamed file.
        opened.journal.append(b"post").unwrap();
        opened.journal.sync().unwrap();
        drop(opened);
        let reloaded = Journal::open(&path).unwrap();
        assert_eq!(
            reloaded.records,
            vec![
                b"new-1".to_vec(),
                b"new-2".to_vec(),
                b"new-3".to_vec(),
                b"post".to_vec()
            ]
        );
        assert!(!std::fs::exists(tmp_sibling(&path)).unwrap_or(true));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fault_points_surface_as_io_errors() {
        let path = tmp("faults");
        std::fs::remove_file(&path).ok();
        let e = fault::with_faults("journal.load:fail@1", || Journal::open(&path)).unwrap_err();
        assert!(e.to_string().contains("injected fault"));
        let mut opened = Journal::open(&path).unwrap();
        let e = fault::with_faults("journal.write:fail@1", || opened.journal.append(b"x"))
            .unwrap_err();
        assert!(e.to_string().contains("journal.write"));
        let e = fault::with_faults("journal.fsync:fail@1", || opened.journal.sync()).unwrap_err();
        assert!(e.to_string().contains("journal.fsync"));
        // After a failed append nothing was written: reload is clean.
        opened.journal.append(b"real").unwrap();
        drop(opened);
        let reloaded = Journal::open(&path).unwrap();
        assert_eq!(reloaded.records, vec![b"real".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lock_is_exclusive_within_and_across_handles() {
        // flock is per open file description, so two handles in one
        // process contend exactly like two processes do.
        let path = tmp("lock_excl");
        std::fs::remove_file(&path).ok();
        let holder = match Journal::open_locked(&path, Duration::ZERO).unwrap() {
            LockOutcome::Acquired(o) => o,
            LockOutcome::Contended { reason } => panic!("fresh file contended: {reason}"),
        };
        assert!(holder.journal.is_locked());
        match Journal::open_locked(&path, Duration::from_millis(20)).unwrap() {
            LockOutcome::Contended { reason } => {
                assert!(reason.contains("held the journal lock"), "{reason}")
            }
            LockOutcome::Acquired(_) => panic!("lock was not exclusive"),
        }
        // Unlocked open still works (advisory locks don't block I/O) —
        // the discipline is the caller's, which is why Session always
        // goes through open_locked.
        assert!(Journal::open(&path).is_ok());
        drop(holder);
        match Journal::open_locked(&path, Duration::ZERO).unwrap() {
            LockOutcome::Acquired(o) => assert!(o.journal.is_locked()),
            LockOutcome::Contended { reason } => panic!("lock not released on drop: {reason}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lock_wait_outlasts_a_short_holder() {
        let path = tmp("lock_wait");
        std::fs::remove_file(&path).ok();
        let holder = match Journal::open_locked(&path, Duration::ZERO).unwrap() {
            LockOutcome::Acquired(o) => o,
            LockOutcome::Contended { .. } => unreachable!(),
        };
        let path2 = path.clone();
        let waiter = std::thread::spawn(move || {
            Journal::open_locked(&path2, Duration::from_secs(5)).unwrap()
        });
        std::thread::sleep(Duration::from_millis(30));
        drop(holder);
        match waiter.join().unwrap() {
            LockOutcome::Acquired(_) => {}
            LockOutcome::Contended { reason } => panic!("waiter should win the lock: {reason}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lock_survives_compaction_rename() {
        let path = tmp("lock_compact");
        std::fs::remove_file(&path).ok();
        let mut holder = match Journal::open_locked(&path, Duration::ZERO).unwrap() {
            LockOutcome::Acquired(o) => o,
            LockOutcome::Contended { .. } => unreachable!(),
        };
        holder.journal.append(b"pre").unwrap();
        holder.journal.compact(&[b"kept".as_slice()]).unwrap();
        assert!(holder.journal.is_locked());
        // The path's current inode (the renamed replacement) is locked:
        // a competitor still times out.
        match Journal::open_locked(&path, Duration::from_millis(20)).unwrap() {
            LockOutcome::Contended { .. } => {}
            LockOutcome::Acquired(_) => panic!("exclusivity lapsed across compaction"),
        }
        holder.journal.append(b"post").unwrap();
        drop(holder);
        let reloaded = Journal::open(&path).unwrap();
        assert_eq!(reloaded.records, vec![b"kept".to_vec(), b"post".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lock_fault_simulates_contention_not_io_error() {
        let path = tmp("lock_fault");
        std::fs::remove_file(&path).ok();
        let outcome = fault::with_faults("journal.lock:fail@1", || {
            Journal::open_locked(&path, Duration::from_secs(5))
        })
        .unwrap();
        match outcome {
            LockOutcome::Contended { reason } => {
                assert!(reason.contains("simulated lock contention"), "{reason}")
            }
            LockOutcome::Acquired(_) => panic!("fault should have contended"),
        }
        // The fault fired once; a retry acquires normally.
        match Journal::open_locked(&path, Duration::ZERO).unwrap() {
            LockOutcome::Acquired(_) => {}
            LockOutcome::Contended { .. } => panic!("second attempt should acquire"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fnv64_matches_known_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
        let mut streaming = Fnv64::new();
        streaming.write(b"foo").write(b"bar");
        assert_eq!(streaming.finish(), fnv64(b"foobar"));
    }
}
