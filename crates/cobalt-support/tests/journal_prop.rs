//! Corruption-tolerance properties of the proof journal (ISSUE 4,
//! satellite 1): a valid journal truncated at *every* byte offset, or
//! hit by a single flipped byte at a random offset, must (a) never
//! panic the loader, (b) never yield a record that was not a valid
//! prefix record of the original file, and (c) always be appendable
//! and cleanly re-loadable afterwards.
//!
//! The truncation sweep is exhaustive and deterministic; the byte-flip
//! sweep is seeded through the property harness, so a failure is
//! reproducible with `COBALT_PROP_SEED=<seed>`.

use cobalt_support::journal::{Journal, FRAME, MAGIC};
use cobalt_support::{prop, prop_assert, prop_assert_eq, props};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// A fresh path in the temp dir, unique across tests and cases.
fn scratch_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "cobalt_journal_prop_{}_{tag}_{n}.cobj",
        std::process::id()
    ))
}

/// Payloads spanning the interesting shapes: empty, short, tab/newline
/// riddled, binary, and one long enough to span several cache lines.
fn base_payloads() -> Vec<Vec<u8>> {
    vec![
        b"".to_vec(),
        b"v1\tfp=00ff\trule=const_prop\tproved=1".to_vec(),
        b"line\nbreaks\rand\ttabs\\".to_vec(),
        vec![0u8, 255, 128, 7, 0, 13, 10],
        vec![b'x'; 300],
        b"final-record".to_vec(),
    ]
}

/// The raw bytes of a journal holding [`base_payloads`], built once.
fn base_file() -> &'static Vec<u8> {
    static FILE: OnceLock<Vec<u8>> = OnceLock::new();
    FILE.get_or_init(|| {
        let path = scratch_path("base");
        let mut opened = Journal::open(&path).expect("fresh journal opens");
        for p in base_payloads() {
            opened.journal.append(&p).expect("append");
        }
        opened.journal.sync().expect("sync");
        let bytes = std::fs::read(&path).expect("read back");
        std::fs::remove_file(&path).ok();
        bytes
    })
}

/// Byte offsets at which each record of [`base_payloads`] ends, i.e.
/// the clean truncation points of the base file.
fn record_end_offsets() -> Vec<usize> {
    let mut at = MAGIC.len();
    base_payloads()
        .iter()
        .map(|p| {
            at += FRAME + p.len();
            at
        })
        .collect()
}

/// Writes `bytes` to a fresh file, opens it as a journal, and checks
/// the three loader invariants. Returns the recovered record count.
fn check_recovery(tag: &str, bytes: &[u8]) -> Result<usize, prop::CaseError> {
    let originals = base_payloads();
    let path = scratch_path(tag);
    std::fs::write(&path, bytes).expect("write corrupt image");

    // (a) + (b): loading never panics (a panic would fail the whole
    // test) and yields only a prefix of the original record sequence —
    // anything else would be a trusted-but-wrong record.
    let opened = Journal::open(&path).expect("open never errors on corrupt bytes");
    let n = opened.records.len();
    prop_assert!(
        n <= originals.len(),
        "loader invented records: {n} > {}",
        originals.len()
    );
    for (i, rec) in opened.records.iter().enumerate() {
        prop_assert_eq!(
            rec,
            &originals[i],
            "record {i} of {n} is not the original payload"
        );
    }
    drop(opened);

    // (c): the journal is appendable after recovery, and the appended
    // record lands after the recovered prefix with no residual
    // corruption (open() truncated the bad tail away).
    let fresh = b"post-recovery append".to_vec();
    let mut reopened = Journal::open(&path).expect("reopen after repair");
    prop_assert!(
        !reopened.report.corrupted(),
        "first open must have repaired the file: {:?}",
        reopened.report
    );
    prop_assert_eq!(reopened.records.len(), n, "repair must preserve the prefix");
    reopened.journal.append(&fresh).expect("append after recovery");
    reopened.journal.sync().expect("sync after recovery");
    drop(reopened);

    let last = Journal::open(&path).expect("open after append");
    prop_assert_eq!(last.records.len(), n + 1);
    prop_assert_eq!(last.records.last().expect("appended record"), &fresh);
    prop_assert!(!last.report.corrupted(), "{:?}", last.report);
    drop(last);

    std::fs::remove_file(&path).ok();
    Ok(n)
}

/// Exhaustive sweep: truncating the journal at every byte offset from 0
/// to the full length recovers exactly the records that end at or
/// before the cut, and nothing else.
#[test]
fn truncation_at_every_byte_offset_recovers_the_exact_valid_prefix() {
    let bytes = base_file();
    let ends = record_end_offsets();
    assert_eq!(*ends.last().unwrap(), bytes.len(), "offsets cover the file");

    for cut in 0..=bytes.len() {
        let expected = ends.iter().filter(|&&e| e <= cut).count();
        let got = check_recovery("trunc", &bytes[..cut])
            .unwrap_or_else(|e| panic!("cut at byte {cut}: {e:?}"));
        assert_eq!(
            got, expected,
            "cut at byte {cut}: recovered {got} records, expected {expected}"
        );
    }
}

props! {
    config = prop::Config::with_cases(192);

    /// A single flipped byte anywhere in the file never panics the
    /// loader, never produces a non-original record, and never makes
    /// the journal unappendable. (Offset and bit are drawn from the
    /// seeded harness; rerun with `COBALT_PROP_SEED` to reproduce.)
    fn single_byte_flip_is_contained(raw_offset in 0u64..1_000_000, bit in 0u32..8) {
        let mut bytes = base_file().clone();
        let offset = (raw_offset as usize) % bytes.len();
        bytes[offset] ^= 1u8 << bit;
        let n = check_recovery("flip", &bytes)?;

        // A flip strictly before a record's last byte can only hide
        // that record and its successors, never earlier ones.
        let intact = record_end_offsets()
            .iter()
            .filter(|&&e| e <= offset)
            .count();
        prop_assert!(
            n >= intact,
            "flip at byte {offset} destroyed records before it: {n} < {intact}"
        );
    }

    /// Truncation combined with a flip inside the surviving prefix —
    /// the compound failure a torn write plus media error produces.
    fn truncation_plus_flip_is_contained(
        cut_raw in 0u64..1_000_000,
        flip_raw in 0u64..1_000_000,
        bit in 0u32..8,
    ) {
        let full = base_file();
        let cut = 1 + (cut_raw as usize) % full.len();
        let mut bytes = full[..cut].to_vec();
        let offset = (flip_raw as usize) % bytes.len();
        bytes[offset] ^= 1u8 << bit;
        check_recovery("truncflip", &bytes)?;
    }
}
