//! # cobalt-serve
//!
//! Proving-as-a-service: a long-running verification daemon (`cobalt
//! serve`) and its client (`cobalt client`). The paper's pitch is that
//! optimization-correctness proofs are cheap enough to run
//! *automatically, all the time*; at production scale that means a
//! service, not batch CLI runs — most traffic should be cache hits
//! served from the shared proof journal in microseconds.
//!
//! Everything is hermetic: `std::net::TcpListener`, a hand-rolled
//! newline-delimited JSON wire protocol ([`proto`], reusing
//! `cobalt-lint`'s JSON escaping), and the existing
//! `cobalt-support::journal` as the persistent proof cache. Zero new
//! dependencies.
//!
//! The robustness surface is the point (`DESIGN.md` §14):
//!
//! * **Per-connection read/write deadlines** — a stalled or dead client
//!   is disconnected; it can never wedge a worker or the accept loop.
//! * **Bounded queue with load shedding** — when the request queue is
//!   full the daemon answers immediately with a typed `shed` response
//!   carrying a `retry_after_ms` hint. Never an unbounded backlog,
//!   never a hang.
//! * **Single-flight dedup** — two clients proving the same request
//!   fingerprint cost one prover run; the second is reported `cached`
//!   (`served:"coalesced"`). Completed fingerprints are served from the
//!   journal-backed [`cache`] (`served:"cache"`).
//! * **Graceful drain** — a `shutdown` request or SIGTERM/SIGINT stops
//!   accepting, finishes (or budget-cancels, after the drain deadline)
//!   in-flight requests, compacts the journal, and exits 0.
//! * **Crash safety** — cache writes are append+fsync per response, so
//!   killing the daemon mid-request loses at most the in-flight work; a
//!   restart resumes warm. Journal trouble degrades to uncached
//!   service with a note — it never changes a verdict.
//! * **Fault points** — `serve.accept`, `serve.read`, `serve.write`,
//!   and `serve.cache` exercise each degradation path deterministically
//!   via `COBALT_FAULTS`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod exec;
pub mod proto;
pub mod server;
mod sig;

pub use cache::ProofCache;
pub use client::{request_with_retry, ClientConfig, ClientError};
pub use proto::{Request, RequestOp, Response, ServedFrom, Status, PROTOCOL_VERSION};
pub use server::{ServeConfig, ServeSummary, Server, ServerHandle};
