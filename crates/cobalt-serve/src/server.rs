//! The daemon: accept loop, bounded request queue, dispatcher, and the
//! graceful-drain state machine (`DESIGN.md` §14).
//!
//! ```text
//!             connections (one thread each, read/write deadlines)
//!                  │  decode → enqueue → block on response
//!                  ▼
//!   ┌──────── bounded queue (cap = queue_cap) ────────┐
//!   │ full → typed `shed` + retry_after_ms, no hang   │
//!   └──────────────────┬──────────────────────────────┘
//!                      ▼
//!              dispatcher thread
//!        cache hit?  ──────────────→ reply served:"cache"
//!        same fp in batch? ────────→ one run, others "coalesced"
//!        else: pool::run_ordered  ─→ execute, cache, reply "fresh"
//! ```
//!
//! **Drain state machine:** `Running` → (signal or `shutdown` request)
//! → `Draining` (accept loop stops, new work sheds, queued + in-flight
//! work finishes) → (after `drain_wait`) → `Cancelling` (every live
//! request's cancel token trips; in-flight proving stops at its next
//! budget check and reports resource-limited) → dispatcher compacts
//! the proof cache → `Stopped`, exit 0. Every queued request receives
//! a response in every path — nothing is silently dropped.

use crate::cache::ProofCache;
use crate::exec::{self, ExecConfig};
use crate::proto::{Request, RequestOp, Response, ServedFrom};
use crate::sig;
use cobalt_support::fault;
use cobalt_support::journal::ResumeMode;
use cobalt_support::pool::{self, Cancel, TaskResult};
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Daemon configuration. The operator fixes the budgets and limits;
/// requests choose only what to run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`] and `port_file`).
    pub addr: String,
    /// When set, the bound address is written here after listen — how
    /// scripts rendezvous with an ephemeral port.
    pub port_file: Option<PathBuf>,
    /// Worker threads for cross-request dispatch; also the
    /// within-request obligation parallelism when a batch has a single
    /// request. Response bytes are identical at any count.
    pub jobs: usize,
    /// Bounded queue capacity; a full queue sheds instead of growing.
    pub queue_cap: usize,
    /// Per-request execution settings (prover tiers, engine budgets).
    pub exec: ExecConfig,
    /// Proof-cache journal path and resume mode; `None` = in-memory
    /// cache only (single-flight still works, warmth dies with the
    /// process).
    pub journal: Option<(PathBuf, ResumeMode)>,
    /// How long to wait for the cache journal's advisory lock before
    /// degrading to an in-memory cache.
    pub lock_wait: Duration,
    /// Per-connection read deadline: a client that stays silent this
    /// long is disconnected (it can reconnect and retry).
    pub read_timeout: Duration,
    /// Per-connection write deadline: a client that stops consuming
    /// responses is disconnected.
    pub write_timeout: Duration,
    /// Grace period between `Draining` and `Cancelling`: how long
    /// queued + in-flight work may run after shutdown is requested.
    pub drain_wait: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            port_file: None,
            jobs: 1,
            queue_cap: 64,
            exec: ExecConfig::default(),
            journal: None,
            lock_wait: Duration::from_secs(5),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            drain_wait: Duration::from_secs(5),
        }
    }
}

/// End-of-run accounting, returned by [`ServerHandle::join`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests successfully decoded (all ops). Malformed lines are
    /// not counted here — they show up in `errors` only.
    pub received: u64,
    /// Verify/optimize requests executed by a prover/engine run.
    pub fresh: u64,
    /// Requests replayed from the proof cache.
    pub cache_hits: u64,
    /// Requests coalesced onto a concurrent identical run
    /// (single-flight dedup).
    pub coalesced: u64,
    /// Requests refused with a typed `shed` response.
    pub shed: u64,
    /// Requests answered with an `error` response.
    pub errors: u64,
    /// Results in the cache at shutdown (after compaction).
    pub cache_entries: u64,
    /// Why cache persistence was degraded, if it was.
    pub degraded: Option<String>,
}

/// One queued request: its fingerprint, what to run, and the channel
/// its connection thread is blocked on.
struct Pending {
    fp: u64,
    id: String,
    op: RequestOp,
    tx: mpsc::Sender<Response>,
}

/// Queue state guarded by one mutex: the items and whether the
/// dispatcher has stopped. `stopped` lives *inside* the lock so an
/// enqueue can never race the dispatcher's final sweep and strand a
/// connection thread waiting on a response that will never come.
struct QueueState {
    items: VecDeque<Pending>,
    stopped: bool,
}

/// Counters shared across threads.
#[derive(Default)]
struct Counters {
    received: AtomicU64,
    fresh: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
}

struct Shared {
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    /// `Running` → `Draining`: accept stops, enqueue sheds.
    draining: AtomicBool,
    /// `Draining` → `Cancelling`: new executions start pre-cancelled.
    hard_cancel: AtomicBool,
    /// Cancel tokens of in-flight executions, tripped at `Cancelling`.
    live: Mutex<Vec<Cancel>>,
    /// EWMA of fresh-execution latency in µs; feeds retry_after hints.
    ewma_us: AtomicU64,
    stats: Counters,
    /// The spawning thread's scoped fault overrides, re-installed in
    /// every server thread so tests can inject `serve.*` faults.
    faults: Option<fault::OverrideHandle>,
}

impl Shared {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_live(&self) -> std::sync::MutexGuard<'_, Vec<Cancel>> {
        self.live
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn start_draining(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    /// `Cancelling`: every in-flight execution stands down at its next
    /// budget check; executions not yet started will begin
    /// pre-cancelled and answer resource-limited immediately.
    fn cancel_in_flight(&self) {
        self.hard_cancel.store(true, Ordering::SeqCst);
        for cancel in self.lock_live().iter() {
            cancel.trip();
        }
    }

    /// A cancel token for one execution, pre-tripped when the drain
    /// deadline has already passed. The flag check and the live-list
    /// push happen under one lock hold so `cancel_in_flight` (which
    /// sets the flag, then sweeps the list) can never interleave
    /// between them — a token is either swept or born tripped, never
    /// registered-but-missed and left to run uncancelled.
    fn register_cancel(&self) -> Cancel {
        let cancel = Cancel::new();
        let mut live = self.lock_live();
        if self.hard_cancel.load(Ordering::SeqCst) {
            cancel.trip();
        } else {
            live.push(cancel.clone());
        }
        cancel
    }

    /// Backoff hint for a shed response: roughly how long the queue
    /// ahead of you takes to clear, bounded to something a client can
    /// reasonably sleep.
    fn retry_after_ms(&self, queue_len: usize) -> u64 {
        let ewma_us = self.ewma_us.load(Ordering::Relaxed).max(1_000);
        let jobs = self.cfg.jobs.max(1) as u64;
        let est_ms = (queue_len as u64 + 1) * ewma_us / jobs / 1_000;
        est_ms.clamp(25, 2_000)
    }

    fn observe_latency(&self, elapsed: Duration) {
        let sample = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let old = self.ewma_us.load(Ordering::Relaxed);
        let new = if old == 0 { sample } else { old - old / 8 + sample / 8 };
        self.ewma_us.store(new, Ordering::Relaxed);
    }

    fn summary(&self, cache: &ProofCache) -> ServeSummary {
        ServeSummary {
            received: self.stats.received.load(Ordering::Relaxed),
            fresh: self.stats.fresh.load(Ordering::Relaxed),
            cache_hits: self.stats.cache_hits.load(Ordering::Relaxed),
            coalesced: self.stats.coalesced.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
            cache_entries: cache.len() as u64,
            degraded: cache.degraded().map(String::from),
        }
    }
}

/// The daemon. [`Server::start`] runs it on background threads and
/// returns a [`ServerHandle`]; `cobalt serve` is `start` + `join`.
pub struct Server;

impl Server {
    /// Binds, opens the proof cache, and starts the accept and
    /// dispatcher threads.
    ///
    /// # Errors
    ///
    /// An `io::Error` if the listen address cannot be bound or the
    /// port file cannot be written. Cache-journal trouble is *not* an
    /// error — the daemon comes up with a degraded in-memory cache
    /// (see [`ProofCache::open`]).
    pub fn start(cfg: ServeConfig) -> io::Result<ServerHandle> {
        sig::install_handlers();
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        if let Some(port_file) = &cfg.port_file {
            std::fs::write(port_file, format!("{addr}\n"))?;
        }
        let cache = match &cfg.journal {
            Some((path, mode)) => ProofCache::open(path, *mode, cfg.lock_wait),
            None => ProofCache::in_memory(),
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                stopped: false,
            }),
            queue_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            hard_cancel: AtomicBool::new(false),
            live: Mutex::new(Vec::new()),
            ewma_us: AtomicU64::new(0),
            stats: Counters::default(),
            faults: fault::capture_overrides(),
            cfg,
        });
        let (summary_tx, summary_rx) = mpsc::channel();
        let dispatcher = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                let faults = shared.faults.clone();
                fault::with_overrides(faults.as_ref(), || {
                    dispatcher_loop(&shared, cache, &summary_tx)
                });
            })
        };
        let accept = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                let faults = shared.faults.clone();
                fault::with_overrides(faults.as_ref(), || accept_loop(&shared, &listener));
            })
        };
        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
            dispatcher: Some(dispatcher),
            summary_rx,
        })
    }
}

/// A running daemon: its bound address and the levers to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
    dispatcher: Option<thread::JoinHandle<()>>,
    summary_rx: mpsc::Receiver<ServeSummary>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful drain, exactly as an in-band `shutdown`
    /// request or SIGTERM would.
    pub fn shutdown(&self) {
        self.shared.start_draining();
    }

    /// Blocks until the daemon has drained and stopped, returning the
    /// run's accounting. Runs the drain state machine: waits
    /// `drain_wait` for queued + in-flight work, then trips every live
    /// cancel token and waits for the (now fast) remainder.
    pub fn join(mut self) -> ServeSummary {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Accept has stopped, so draining is set; give the dispatcher
        // the grace period, then budget-cancel stragglers.
        let summary = match self.summary_rx.recv_timeout(self.shared.cfg.drain_wait) {
            Ok(summary) => summary,
            Err(_) => {
                self.shared.cancel_in_flight();
                self.summary_rx.recv().unwrap_or_default()
            }
        };
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
        summary
    }
}

/// Accepts connections until drain starts. Nonblocking accept + short
/// sleeps so the signal flag and the draining flag are polled even
/// when no clients arrive.
fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    if listener.set_nonblocking(true).is_err() {
        // Cannot poll the drain flags on a blocking listener; shut the
        // daemon down rather than running un-drainable.
        shared.start_draining();
        return;
    }
    loop {
        if sig::shutdown_requested() || shared.draining.load(Ordering::SeqCst) {
            shared.start_draining();
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // An injected accept fault drops this connection; the
                // loop — and the daemon — carry on. The client sees a
                // closed socket and retries.
                if fault::point_err("serve.accept").is_err() {
                    drop(stream);
                    continue;
                }
                let shared = Arc::clone(shared);
                thread::spawn(move || {
                    let faults = shared.faults.clone();
                    fault::with_overrides(faults.as_ref(), || handle_connection(&shared, stream));
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// One connection: newline-delimited request/response exchanges until
/// EOF, a deadline, or an injected `serve.read`/`serve.write` fault
/// disconnects it. Disconnection is always safe for the daemon — the
/// client owns retry.
fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let ok = stream
        .set_read_timeout(Some(shared.cfg.read_timeout))
        .and_then(|()| stream.set_write_timeout(Some(shared.cfg.write_timeout)));
    if ok.is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        // A read fault models a client whose socket dies mid-request:
        // the connection is dropped, the daemon is unaffected.
        if fault::point_err("serve.read").is_err() {
            return;
        }
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => return,         // EOF: client done
            Ok(_) => {}
            Err(_) => return,        // deadline or reset: disconnect
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::decode(line.trim_end()) {
            Err(e) => {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                Response::error("", e.to_string())
            }
            Ok(request) => {
                shared.stats.received.fetch_add(1, Ordering::Relaxed);
                answer(shared, request)
            }
        };
        let done = response.status == crate::proto::Status::Bye;
        if fault::point_err("serve.write").is_err() {
            return;
        }
        if writer
            .write_all(format!("{}\n", response.encode()).as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        if done {
            return;
        }
    }
}

/// Routes one decoded request: control ops answer inline, work ops go
/// through the bounded queue and block this connection thread until
/// the dispatcher responds.
fn answer(shared: &Arc<Shared>, request: Request) -> Response {
    match &request.op {
        RequestOp::Ping => Response::ok(&request.id, 0, "ok", ServedFrom::Fresh, "pong\n".into()),
        RequestOp::Stats => {
            let queue_len = shared.lock_queue().items.len();
            let output = format!(
                "requests={} fresh={} cache_hits={} coalesced={} shed={} errors={} queue={}\n",
                shared.stats.received.load(Ordering::Relaxed),
                shared.stats.fresh.load(Ordering::Relaxed),
                shared.stats.cache_hits.load(Ordering::Relaxed),
                shared.stats.coalesced.load(Ordering::Relaxed),
                shared.stats.shed.load(Ordering::Relaxed),
                shared.stats.errors.load(Ordering::Relaxed),
                queue_len,
            );
            Response::ok(&request.id, 0, "ok", ServedFrom::Fresh, output)
        }
        RequestOp::Shutdown => {
            shared.start_draining();
            Response::bye(&request.id)
        }
        RequestOp::Verify { .. } | RequestOp::Optimize { .. } => {
            let fp = exec::request_fingerprint(&request.op, &shared.cfg.exec);
            match enqueue(shared, fp, request) {
                Err(refusal) => refusal,
                Ok(rx) => rx.recv().unwrap_or_else(|_| {
                    Response::error("", "daemon stopped before answering")
                }),
            }
        }
    }
}

/// Admission control: draining sheds, a full queue sheds (with a
/// queue-depth-derived retry hint), otherwise the request parks in the
/// bounded queue. The `stopped` check under the queue lock closes the
/// race with the dispatcher's final sweep.
fn enqueue(
    shared: &Arc<Shared>,
    fp: u64,
    request: Request,
) -> Result<mpsc::Receiver<Response>, Response> {
    let mut q = shared.lock_queue();
    if shared.draining.load(Ordering::SeqCst) || q.stopped {
        shared.stats.shed.fetch_add(1, Ordering::Relaxed);
        return Err(Response::shed(
            &request.id,
            shared.retry_after_ms(q.items.len()),
            "draining: not accepting new work",
        ));
    }
    if q.items.len() >= shared.cfg.queue_cap {
        shared.stats.shed.fetch_add(1, Ordering::Relaxed);
        let hint = shared.retry_after_ms(q.items.len());
        return Err(Response::shed(
            &request.id,
            hint,
            format!("queue full ({}/{})", q.items.len(), shared.cfg.queue_cap),
        ));
    }
    let (tx, rx) = mpsc::channel();
    q.items.push_back(Pending {
        fp,
        id: request.id,
        op: request.op,
        tx,
    });
    drop(q);
    shared.queue_cv.notify_all();
    Ok(rx)
}

/// The dispatcher: batches the queue, replays cache hits, coalesces
/// duplicate fingerprints (single-flight), fans fresh work across the
/// pool, and — on drain — compacts the cache and reports the summary.
fn dispatcher_loop(shared: &Arc<Shared>, mut cache: ProofCache, summary_tx: &mpsc::Sender<ServeSummary>) {
    loop {
        let batch: Vec<Pending> = {
            let mut q = shared.lock_queue();
            loop {
                if !q.items.is_empty() {
                    let take = q.items.len().min(shared.cfg.jobs.max(1) * 4);
                    break q.items.drain(..take).collect();
                }
                if shared.draining.load(Ordering::SeqCst) {
                    // Final sweep done: flip `stopped` under the lock
                    // so no enqueue can slip in behind us, then finish.
                    q.stopped = true;
                    drop(q);
                    cache.finish();
                    let _ = summary_tx.send(shared.summary(&cache));
                    return;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                q = guard;
            }
        };
        process_batch(shared, &mut cache, batch);
        // This batch's executions are done; their cancel tokens are
        // dead weight (drain trips only live ones).
        shared.lock_live().clear();
    }
}

/// Sends `response` (annotating it with the cache-degradation note,
/// if any) to the connection thread that parked this request. A send
/// failure means the connection died while waiting — fine, the result
/// is already in the cache for its retry.
fn respond(cache: &ProofCache, pending: &Pending, mut response: Response) {
    if let Some(reason) = cache.degraded() {
        response.note = format!("proof cache degraded ({reason})");
    }
    let _ = pending.tx.send(response);
}

fn process_batch(shared: &Arc<Shared>, cache: &mut ProofCache, batch: Vec<Pending>) {
    // Pass 1: cache replay, and single-flight grouping of the rest.
    // `groups` preserves arrival order; the first requester of each
    // fingerprint is the leader whose execution everyone shares.
    let mut groups: Vec<(u64, Vec<Pending>)> = Vec::new();
    for pending in batch {
        if let Some(hit) = cache.get(pending.fp) {
            shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            let response = hit.to_response(&pending.id, ServedFrom::Cache);
            respond(cache, &pending, response);
            continue;
        }
        match groups.iter_mut().find(|(fp, _)| *fp == pending.fp) {
            Some((_, members)) => members.push(pending),
            None => groups.push((pending.fp, vec![pending])),
        }
    }
    if groups.is_empty() {
        return;
    }
    // Pass 2: execute one leader per group. A single group keeps the
    // whole `jobs` budget for within-request parallelism; multiple
    // groups split it across requests. Either way the response bytes
    // are identical — determinism is exec's contract.
    let inner_jobs = if groups.len() == 1 {
        shared.cfg.jobs.max(1)
    } else {
        1
    };
    let exec_cfg = ExecConfig {
        jobs: inner_jobs,
        ..shared.cfg.exec.clone()
    };
    let run_one = |op: &RequestOp| {
        let cancel = shared.register_cancel();
        let started = Instant::now();
        let result = exec::execute(op, &exec_cfg, &cancel);
        (result, started.elapsed())
    };
    let mut executed: Vec<Option<(exec::ExecResult, Duration)>> = Vec::with_capacity(groups.len());
    if groups.len() <= 1 || shared.cfg.jobs <= 1 {
        for (_, members) in &groups {
            executed.push(Some(run_one(&members[0].op)));
        }
    } else {
        // The pool's cancel token is deliberately never tripped here:
        // requests are independent, one bad suite must not cancel its
        // neighbors. Drain cancellation arrives per-request through
        // `register_cancel`.
        let pool_cancel = Cancel::new();
        let ops: Vec<RequestOp> = groups.iter().map(|(_, m)| m[0].op.clone()).collect();
        executed.resize_with(groups.len(), || None);
        pool::run_ordered(
            shared.cfg.jobs,
            ops,
            &pool_cancel,
            |_, op, _| run_one(op),
            |idx, result| {
                if let TaskResult::Done(done) = result {
                    executed[idx] = Some(done);
                }
            },
        );
    }
    // Pass 3: cache, account, and answer.
    for ((fp, members), done) in groups.into_iter().zip(executed) {
        let Some((result, elapsed)) = done else {
            // Both supervised executions panicked — answer every
            // member with a typed error rather than hanging them.
            for pending in &members {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                respond(
                    cache,
                    pending,
                    Response::error(&pending.id, "request execution panicked"),
                );
            }
            continue;
        };
        shared.observe_latency(elapsed);
        cache.insert(result.to_cached(fp, &members[0].op));
        for (i, pending) in members.iter().enumerate() {
            let served = if i == 0 {
                shared.stats.fresh.fetch_add(1, Ordering::Relaxed);
                ServedFrom::Fresh
            } else {
                shared.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                ServedFrom::Coalesced
            };
            respond(
                cache,
                pending,
                Response::ok(&pending.id, result.exit, &result.verdict, served, result.output.clone()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{request_with_retry, ClientConfig};
    use crate::proto::Status;

    fn quick_cfg() -> ServeConfig {
        ServeConfig {
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            drain_wait: Duration::from_secs(10),
            ..ServeConfig::default()
        }
    }

    fn client_cfg(handle: &ServerHandle) -> ClientConfig {
        ClientConfig {
            addr: handle.addr().to_string(),
            io_timeout: Duration::from_secs(60),
            retries: 3,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(50),
        }
    }

    fn verify_req(id: &str, suite: &str) -> Request {
        Request {
            id: id.into(),
            op: RequestOp::Verify {
                suite: Some(suite.into()),
                include_buggy: false,
            },
        }
    }

    const SUITE: &str = "forward const_prop {
        stmt(Y := C) followed by !mayDef(Y)
        until X := Y => X := C
        with witness eta(Y) == C
    }";

    #[test]
    fn ping_stats_shutdown_roundtrip_and_exit_summary() {
        let handle = Server::start(quick_cfg()).unwrap();
        let cfg = client_cfg(&handle);
        let pong = request_with_retry(&cfg, &Request { id: "p".into(), op: RequestOp::Ping }).unwrap();
        assert_eq!(pong.status, Status::Ok);
        assert_eq!(pong.output, "pong\n");
        let stats = request_with_retry(&cfg, &Request { id: "s".into(), op: RequestOp::Stats }).unwrap();
        assert!(stats.output.contains("requests="), "{}", stats.output);
        let bye = request_with_retry(&cfg, &Request { id: "q".into(), op: RequestOp::Shutdown }).unwrap();
        assert_eq!(bye.status, Status::Bye);
        let summary = handle.join();
        assert_eq!(summary.received, 3);
        assert_eq!(summary.fresh, 0);
    }

    #[test]
    fn verify_via_daemon_then_cache_then_coalesce() {
        let mut cfg = quick_cfg();
        cfg.jobs = 2;
        let handle = Server::start(cfg).unwrap();
        let ccfg = client_cfg(&handle);
        let first = request_with_retry(&ccfg, &verify_req("a", SUITE)).unwrap();
        assert_eq!(first.exit, 0, "{}", first.output);
        assert_eq!(first.verdict, "proved");
        assert!(!first.cached());
        // Warm repeat: served from cache, byte-identical payload.
        let second = request_with_retry(&ccfg, &verify_req("b", SUITE)).unwrap();
        assert_eq!(second.served, ServedFrom::Cache);
        assert!(second.cached());
        assert_eq!(second.output, first.output);
        assert_eq!(second.exit, first.exit);
        handle.shutdown();
        let summary = handle.join();
        assert_eq!(summary.fresh, 1);
        assert_eq!(summary.cache_hits, 1);
    }

    #[test]
    fn draining_daemon_sheds_new_work() {
        let handle = Server::start(quick_cfg()).unwrap();
        let ccfg = ClientConfig {
            retries: 0,
            ..client_cfg(&handle)
        };
        handle.shutdown();
        // Accept may take a poll tick to stop; until then the daemon
        // must answer with a typed shed, never execute.
        match request_with_retry(&ccfg, &verify_req("x", SUITE)) {
            Err(crate::client::ClientError::Shed(r)) => {
                assert!(r.error.contains("draining"), "{}", r.error)
            }
            Err(crate::client::ClientError::Connect(_)) => {} // accept already stopped
            // Listener dropped with our connection still in its
            // backlog: reset instead of refused, equally "not served".
            Err(crate::client::ClientError::Io(_)) => {}
            other => panic!("expected shed or a refused/reset connection, got {other:?}"),
        }
        let summary = handle.join();
        assert_eq!(summary.fresh, 0);
    }
}
