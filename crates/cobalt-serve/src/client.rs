//! The daemon's client half: connect, send one request line, read one
//! response line — wrapped in **capped exponential backoff** so a busy
//! or briefly-absent daemon is an inconvenience, not an error.
//!
//! Retry triggers: connection failure (daemon restarting) and typed
//! `shed` responses (queue full, or draining). The backoff doubles
//! from [`ClientConfig::backoff_base`] up to
//! [`ClientConfig::backoff_cap`]; a `shed` response's `retry_after_ms`
//! hint, when larger, is honored instead — the daemon knows its queue
//! better than the client's schedule does. Everything else (protocol
//! errors, I/O mid-exchange, `error` responses) surfaces immediately:
//! retrying can't fix a malformed exchange, and executed requests must
//! not be blindly re-sent.

use crate::proto::{ProtoError, Request, Response, Status};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Client-side settings.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Daemon address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// How long to wait for the response line before giving up on the
    /// connection (the server's mirror deadline disconnects us too).
    pub io_timeout: Duration,
    /// Retries after the initial attempt (0 = single-shot).
    pub retries: u32,
    /// First backoff sleep; doubles each retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            addr: "127.0.0.1:7878".into(),
            io_timeout: Duration::from_secs(600),
            retries: 5,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
        }
    }
}

/// Why a request ultimately failed, after retries.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect within the retry budget.
    Connect(std::io::Error),
    /// Connected, but the exchange failed (send, receive, or a
    /// deadline-closed connection).
    Io(std::io::Error),
    /// The response line did not parse.
    Proto(ProtoError),
    /// Every attempt was shed; the last shed response is enclosed.
    Shed(Response),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Io(e) => write!(f, "request I/O failed: {e}"),
            ClientError::Proto(e) => write!(f, "bad response: {e}"),
            ClientError::Shed(r) => write!(
                f,
                "request shed by the daemon after retries ({})",
                if r.error.is_empty() { "overloaded" } else { &r.error }
            ),
        }
    }
}

impl std::error::Error for ClientError {}

/// One connect → send → receive exchange, no retries.
///
/// # Errors
///
/// [`ClientError::Connect`]/[`Io`](ClientError::Io) for socket
/// trouble, [`Proto`](ClientError::Proto) for an unparseable response.
/// A `shed` response is a successful *exchange* and returns `Ok` —
/// retry policy belongs to [`request_with_retry`].
pub fn request_once(cfg: &ClientConfig, req: &Request) -> Result<Response, ClientError> {
    let stream = TcpStream::connect(&cfg.addr).map_err(ClientError::Connect)?;
    stream
        .set_read_timeout(Some(cfg.io_timeout))
        .and_then(|()| stream.set_write_timeout(Some(cfg.io_timeout)))
        .map_err(ClientError::Io)?;
    let mut writer = stream.try_clone().map_err(ClientError::Io)?;
    writer
        .write_all(format!("{}\n", req.encode()).as_bytes())
        .and_then(|()| writer.flush())
        .map_err(ClientError::Io)?;
    let mut line = String::new();
    let n = BufReader::new(stream)
        .read_line(&mut line)
        .map_err(ClientError::Io)?;
    if n == 0 {
        return Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before a response arrived",
        )));
    }
    Response::decode(line.trim_end()).map_err(ClientError::Proto)
}

/// [`request_once`] under the retry policy described in the
/// [module docs](self): connect failures and `shed` responses back
/// off and retry, everything else is final.
///
/// # Errors
///
/// The final attempt's [`ClientError`]; [`ClientError::Shed`] when the
/// retry budget ended on a shed response.
pub fn request_with_retry(cfg: &ClientConfig, req: &Request) -> Result<Response, ClientError> {
    let mut backoff = cfg.backoff_base;
    let mut attempt = 0u32;
    loop {
        match request_once(cfg, req) {
            Ok(resp) if resp.status == Status::Shed => {
                let hinted = Duration::from_millis(resp.retry_after_ms);
                if attempt >= cfg.retries {
                    return Err(ClientError::Shed(resp));
                }
                // The daemon's hint wins when it asks for more
                // patience than our schedule would have had.
                std::thread::sleep(backoff.max(hinted).min(cfg.backoff_cap));
            }
            Ok(resp) => return Ok(resp),
            Err(ClientError::Connect(e)) => {
                if attempt >= cfg.retries {
                    return Err(ClientError::Connect(e));
                }
                std::thread::sleep(backoff);
            }
            // Mid-exchange trouble is final: the request may have
            // executed, and a blind re-send could run it twice.
            Err(other) => return Err(other),
        }
        attempt += 1;
        backoff = (backoff * 2).min(cfg.backoff_cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::RequestOp;
    use std::net::TcpListener;

    fn ping() -> Request {
        Request {
            id: "t".into(),
            op: RequestOp::Ping,
        }
    }

    fn quick() -> ClientConfig {
        ClientConfig {
            io_timeout: Duration::from_secs(2),
            retries: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            ..ClientConfig::default()
        }
    }

    #[test]
    fn connect_failure_retries_then_types_the_error() {
        // A port from the ephemeral range that nothing listens on: bind
        // then drop to find one.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let cfg = ClientConfig { addr, ..quick() };
        let start = std::time::Instant::now();
        match request_with_retry(&cfg, &ping()) {
            Err(ClientError::Connect(_)) => {}
            other => panic!("expected Connect error, got {other:?}"),
        }
        // 2 retries × small backoff: fast, but it did sleep.
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn shed_responses_back_off_and_surface_after_budget() {
        // A hand-rolled one-thread server that always sheds.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            for _ in 0..3 {
                let (mut s, _) = listener.accept().unwrap();
                let mut line = String::new();
                let _ = BufReader::new(s.try_clone().unwrap()).read_line(&mut line);
                let resp = Response::shed("t", 2, "queue full (test)");
                let _ = s.write_all(format!("{}\n", resp.encode()).as_bytes());
            }
        });
        let cfg = ClientConfig { addr, ..quick() };
        match request_with_retry(&cfg, &ping()) {
            Err(ClientError::Shed(r)) => assert_eq!(r.retry_after_ms, 2),
            other => panic!("expected Shed, got {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn eof_and_junk_are_final_errors_not_retries() {
        // Server closes without answering → UnexpectedEof, no retry
        // (the listener would block a second accept, so a retry would
        // hang — finishing fast is the assertion).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            // Consume the request so the close is a clean EOF, not an
            // RST from unread data.
            let mut line = String::new();
            let _ = BufReader::new(&s).read_line(&mut line);
            drop(s);
        });
        let cfg = ClientConfig { addr, ..quick() };
        match request_with_retry(&cfg, &ping()) {
            Err(ClientError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof)
            }
            other => panic!("expected Io(UnexpectedEof), got {other:?}"),
        }
        server.join().unwrap();

        // Server answers garbage → Proto error, final.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut line = String::new();
            let _ = BufReader::new(s.try_clone().unwrap()).read_line(&mut line);
            let _ = s.write_all(b"not json\n");
        });
        let cfg = ClientConfig { addr, ..quick() };
        match request_with_retry(&cfg, &ping()) {
            Err(ClientError::Proto(_)) => {}
            other => panic!("expected Proto, got {other:?}"),
        }
        server.join().unwrap();
    }
}
