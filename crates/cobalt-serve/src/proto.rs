//! The wire protocol: newline-delimited JSON, hand-rolled and total.
//!
//! One request per line, one response per line, UTF-8, no framing
//! beyond `\n` (the JSON escapes guarantee a payload can never contain
//! a raw newline). Requests and responses are *flat* JSON objects —
//! string, integer, boolean, and null values only — which keeps the
//! parser small enough to be obviously total: malformed input yields a
//! typed parse error, never a panic and never a partial read.
//!
//! Encoding reuses [`cobalt_lint::json_escape`] so JSON escaping rules
//! cannot drift between the lint reports, the engine reports, and the
//! wire (the workspace-wide single-emitter rule).
//!
//! # Requests
//!
//! ```json
//! {"v":1,"op":"verify","id":"r1","suite":"forward my_rule { ... }","include_buggy":false}
//! {"v":1,"op":"optimize","id":"r2","program":"proc main(x) { ... }","passes":"all","rounds":4}
//! {"v":1,"op":"ping","id":"r3"}
//! {"v":1,"op":"stats","id":"r4"}
//! {"v":1,"op":"shutdown","id":"r5"}
//! ```
//!
//! `suite` absent on a `verify` means the built-in registry. `id` is an
//! opaque client-chosen correlation token, echoed back verbatim.
//!
//! # Responses
//!
//! ```json
//! {"v":1,"id":"r1","status":"ok","exit":0,"verdict":"proved","served":"fresh","cached":false,"output":"..."}
//! {"v":1,"id":"r1","status":"shed","retry_after_ms":120}
//! {"v":1,"id":"r1","status":"error","error":"..."}
//! {"v":1,"id":"r5","status":"bye"}
//! ```
//!
//! `exit` mirrors the one-shot CLI's exit-code contract (0 proved /
//! ok, 2 unsound, 3 resource-limited, 1 other). `served` says how the
//! daemon produced the result: `fresh` (a prover run), `cache` (the
//! journal-backed proof cache), or `coalesced` (single-flight dedup
//! onto a concurrent identical request); `cached` is true for the
//! latter two. A `note` field carries degradation notices (e.g. the
//! proof cache being disabled after journal trouble) — notes never
//! change `output`, `exit`, or `verdict`.
//!
//! Unknown fields are ignored (forward compatibility); an unknown `v`
//! is rejected with a typed error, never half-interpreted.

use cobalt_lint::json_escape;
use std::collections::BTreeMap;
use std::fmt;

/// The protocol version spoken by this build. Bump on any
/// incompatible change to the request or response shapes.
pub const PROTOCOL_VERSION: i64 = 1;

/// A flat JSON value: all the wire protocol needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A JSON string.
    Str(String),
    /// A JSON integer (the protocol uses no fractional numbers).
    Int(i64),
    /// A JSON boolean.
    Bool(bool),
    /// JSON null.
    Null,
}

/// A typed protocol error: what was wrong with a line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ProtoError> {
    Err(ProtoError(msg.into()))
}

/// Parses one flat JSON object line into its fields. Total: any input
/// (including non-UTF-8-shaped escapes, truncation, nesting) yields
/// `Ok` or a typed error, never a panic. Nested objects and arrays are
/// rejected — the protocol is flat by design.
pub fn parse_object(line: &str) -> Result<BTreeMap<String, Value>, ProtoError> {
    let mut p = Parser {
        chars: line.trim().chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    if !p.eat('{') {
        return err("expected `{`");
    }
    let mut out = BTreeMap::new();
    p.skip_ws();
    if p.eat('}') {
        p.skip_ws();
        return if p.at_end() {
            Ok(out)
        } else {
            err("trailing bytes after object")
        };
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        if !p.eat(':') {
            return err(format!("expected `:` after key `{key}`"));
        }
        p.skip_ws();
        let value = p.value()?;
        out.insert(key, value);
        p.skip_ws();
        if p.eat(',') {
            continue;
        }
        if p.eat('}') {
            break;
        }
        return err("expected `,` or `}`");
    }
    p.skip_ws();
    if p.at_end() {
        Ok(out)
    } else {
        err("trailing bytes after object")
    }
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\r' | '\n')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<Value, ProtoError> {
        match self.peek() {
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some('{' | '[') => err("nested objects/arrays are not part of the protocol"),
            Some(c) => err(format!("unexpected `{c}`")),
            None => err("unexpected end of line"),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ProtoError> {
        for c in word.chars() {
            if !self.eat(c) {
                return err(format!("bad literal (expected `{word}`)"));
            }
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ProtoError> {
        let start = self.pos;
        if self.eat('-') {}
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some('.' | 'e' | 'E')) {
            return err("fractional numbers are not part of the protocol");
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        match text.parse::<i64>() {
            Ok(n) => Ok(Value::Int(n)),
            Err(e) => err(format!("bad integer `{text}`: {e}")),
        }
    }

    /// Four hex digits of a `\u` escape (the `\u` itself already
    /// consumed).
    fn hex4(&mut self) -> Result<u32, ProtoError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(h) = self.peek().and_then(|c| c.to_digit(16)) else {
                return err("bad \\u escape");
            };
            self.pos += 1;
            code = code * 16 + h;
        }
        Ok(code)
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        if !self.eat('"') {
            return err("expected a string");
        }
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return err("unterminated string");
            };
            self.pos += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let Some(esc) = self.peek() else {
                        return err("dangling escape");
                    };
                    self.pos += 1;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            // Our emitter never writes \u escapes, but
                            // standard encoders (e.g. Python's
                            // json.dumps with ensure_ascii) express
                            // non-BMP characters as UTF-16 surrogate
                            // pairs — decode those; reject lone or
                            // ill-ordered surrogates with a typed error
                            // rather than silently corrupting text.
                            let hi = self.hex4()?;
                            match hi {
                                0xD800..=0xDBFF => {
                                    if !(self.eat('\\') && self.eat('u')) {
                                        return err(format!(
                                            "lone high surrogate \\u{hi:04X} (expected a \\uDC00-\\uDFFF continuation)"
                                        ));
                                    }
                                    let lo = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&lo) {
                                        return err(format!(
                                            "bad surrogate pair \\u{hi:04X}\\u{lo:04X}"
                                        ));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    match char::from_u32(code) {
                                        Some(c) => out.push(c),
                                        // Unreachable (pairs always land in
                                        // U+10000..=U+10FFFF), kept total.
                                        None => return err("bad surrogate pair"),
                                    }
                                }
                                0xDC00..=0xDFFF => {
                                    return err(format!("lone low surrogate \\u{hi:04X}"))
                                }
                                _ => out.push(char::from_u32(hi).unwrap_or('\u{fffd}')),
                            }
                        }
                        other => return err(format!("unknown escape `\\{other}`")),
                    }
                }
                c => out.push(c),
            }
        }
    }
}

/// What a request asks the daemon to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOp {
    /// Prove a suite (or, with `suite: None`, the built-in registry).
    Verify {
        /// Cobalt DSL suite source, or `None` for the built-in
        /// registry.
        suite: Option<String>,
        /// Also verify the built-in buggy variants (they must be
        /// *rejected*; an unexpectedly-proved buggy rule is unsound).
        include_buggy: bool,
    },
    /// Optimize an IL program with the machine-verified suite.
    Optimize {
        /// IL program source.
        program: String,
        /// Comma-separated pass names, or `all`.
        passes: String,
        /// Pipeline rounds.
        rounds: u32,
    },
    /// Liveness probe.
    Ping,
    /// Daemon counters (requests, cache hits, sheds, …).
    Stats,
    /// Begin graceful drain: stop accepting, finish in-flight work,
    /// compact the cache, exit 0.
    Shutdown,
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed back verbatim.
    pub id: String,
    /// The operation.
    pub op: RequestOp,
}

impl Request {
    /// Encodes the request as its wire line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut s = format!("{{\"v\":{PROTOCOL_VERSION}");
        s.push_str(&format!(",\"id\":\"{}\"", json_escape(&self.id)));
        match &self.op {
            RequestOp::Verify {
                suite,
                include_buggy,
            } => {
                s.push_str(",\"op\":\"verify\"");
                if let Some(src) = suite {
                    s.push_str(&format!(",\"suite\":\"{}\"", json_escape(src)));
                }
                if *include_buggy {
                    s.push_str(",\"include_buggy\":true");
                }
            }
            RequestOp::Optimize {
                program,
                passes,
                rounds,
            } => {
                s.push_str(&format!(
                    ",\"op\":\"optimize\",\"program\":\"{}\",\"passes\":\"{}\",\"rounds\":{rounds}",
                    json_escape(program),
                    json_escape(passes),
                ));
            }
            RequestOp::Ping => s.push_str(",\"op\":\"ping\""),
            RequestOp::Stats => s.push_str(",\"op\":\"stats\""),
            RequestOp::Shutdown => s.push_str(",\"op\":\"shutdown\""),
        }
        s.push('}');
        s
    }

    /// Decodes one wire line. Typed errors for malformed JSON, an
    /// unsupported version, a missing/unknown `op`, or missing
    /// operands; unknown fields are ignored.
    pub fn decode(line: &str) -> Result<Request, ProtoError> {
        let fields = parse_object(line)?;
        match fields.get("v") {
            None | Some(Value::Int(PROTOCOL_VERSION)) => {}
            Some(Value::Int(v)) => {
                return err(format!(
                    "unsupported protocol version {v} (this daemon speaks {PROTOCOL_VERSION})"
                ))
            }
            Some(_) => return err("`v` must be an integer"),
        }
        let id = match fields.get("id") {
            Some(Value::Str(s)) => s.clone(),
            None => String::new(),
            Some(_) => return err("`id` must be a string"),
        };
        let str_field = |name: &str| -> Result<Option<String>, ProtoError> {
            match fields.get(name) {
                None | Some(Value::Null) => Ok(None),
                Some(Value::Str(s)) => Ok(Some(s.clone())),
                Some(_) => err(format!("`{name}` must be a string")),
            }
        };
        let op = match fields.get("op") {
            Some(Value::Str(op)) => op.as_str(),
            _ => return err("missing `op`"),
        };
        let op = match op {
            "verify" => RequestOp::Verify {
                suite: str_field("suite")?,
                include_buggy: matches!(fields.get("include_buggy"), Some(Value::Bool(true))),
            },
            "optimize" => RequestOp::Optimize {
                program: str_field("program")?
                    .ok_or_else(|| ProtoError("optimize requires `program`".into()))?,
                passes: str_field("passes")?.unwrap_or_else(|| "all".into()),
                rounds: match fields.get("rounds") {
                    None => 4,
                    Some(Value::Int(n)) if (0..=64).contains(n) => *n as u32,
                    Some(Value::Int(n)) => {
                        return err(format!("`rounds` out of range: {n} (want 0..=64)"))
                    }
                    Some(_) => return err("`rounds` must be an integer"),
                },
            },
            "ping" => RequestOp::Ping,
            "stats" => RequestOp::Stats,
            "shutdown" => RequestOp::Shutdown,
            other => return err(format!("unknown op `{other}`")),
        };
        Ok(Request { id, op })
    }
}

/// Response status discriminant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The request was executed; see `exit`/`verdict`/`output`.
    Ok,
    /// The queue was full (or the daemon is draining): retry later.
    Shed,
    /// The request could not be executed at all.
    Error,
    /// Acknowledgement of `shutdown`: the daemon is draining.
    Bye,
}

impl Status {
    fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Shed => "shed",
            Status::Error => "error",
            Status::Bye => "bye",
        }
    }
}

/// How the daemon produced an `ok` result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// A prover/engine run happened for this request.
    Fresh,
    /// Replayed from the journal-backed proof cache.
    Cache,
    /// Coalesced onto a concurrent identical request (single-flight
    /// dedup): exactly one prover run happened for the whole group.
    Coalesced,
}

impl ServedFrom {
    fn as_str(self) -> &'static str {
        match self {
            ServedFrom::Fresh => "fresh",
            ServedFrom::Cache => "cache",
            ServedFrom::Coalesced => "coalesced",
        }
    }
}

/// One response line.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of the request's correlation id.
    pub id: String,
    /// The status discriminant.
    pub status: Status,
    /// CLI-compatible exit code for `ok` responses.
    pub exit: u8,
    /// Human verdict: `proved`, `unsound`, `resource-limited`, `ok`,
    /// `error`, … Empty for non-`ok` statuses.
    pub verdict: String,
    /// How the result was produced (meaningful for `ok`).
    pub served: ServedFrom,
    /// The report text a one-shot CLI run would have printed.
    pub output: String,
    /// Error description for `error` responses.
    pub error: String,
    /// Backoff hint for `shed` responses, in milliseconds.
    pub retry_after_ms: u64,
    /// Degradation note (e.g. proof cache disabled); never affects
    /// `exit`, `verdict`, or `output`.
    pub note: String,
}

impl Response {
    /// A successful execution result.
    pub fn ok(id: &str, exit: u8, verdict: &str, served: ServedFrom, output: String) -> Response {
        Response {
            id: id.to_string(),
            status: Status::Ok,
            exit,
            verdict: verdict.to_string(),
            served,
            output,
            error: String::new(),
            retry_after_ms: 0,
            note: String::new(),
        }
    }

    /// A typed refusal (bad request, internal failure).
    pub fn error(id: &str, error: impl Into<String>) -> Response {
        Response {
            id: id.to_string(),
            status: Status::Error,
            exit: 1,
            verdict: String::new(),
            served: ServedFrom::Fresh,
            output: String::new(),
            error: error.into(),
            retry_after_ms: 0,
            note: String::new(),
        }
    }

    /// A load-shed refusal with a retry hint.
    pub fn shed(id: &str, retry_after_ms: u64, reason: impl Into<String>) -> Response {
        Response {
            id: id.to_string(),
            status: Status::Shed,
            exit: 1,
            verdict: String::new(),
            served: ServedFrom::Fresh,
            output: String::new(),
            error: reason.into(),
            retry_after_ms,
            note: String::new(),
        }
    }

    /// The `shutdown` acknowledgement.
    pub fn bye(id: &str) -> Response {
        Response {
            id: id.to_string(),
            status: Status::Bye,
            exit: 0,
            verdict: String::new(),
            served: ServedFrom::Fresh,
            output: String::new(),
            error: String::new(),
            retry_after_ms: 0,
            note: String::new(),
        }
    }

    /// Whether the result came from the cache or a coalesced sibling.
    pub fn cached(&self) -> bool {
        matches!(self.served, ServedFrom::Cache | ServedFrom::Coalesced)
    }

    /// Encodes the response as its wire line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut s = format!(
            "{{\"v\":{PROTOCOL_VERSION},\"id\":\"{}\",\"status\":\"{}\"",
            json_escape(&self.id),
            self.status.as_str(),
        );
        match self.status {
            Status::Ok => {
                s.push_str(&format!(
                    ",\"exit\":{},\"verdict\":\"{}\",\"served\":\"{}\",\"cached\":{},\"output\":\"{}\"",
                    self.exit,
                    json_escape(&self.verdict),
                    self.served.as_str(),
                    self.cached(),
                    json_escape(&self.output),
                ));
            }
            Status::Shed => {
                s.push_str(&format!(
                    ",\"retry_after_ms\":{},\"error\":\"{}\"",
                    self.retry_after_ms,
                    json_escape(&self.error),
                ));
            }
            Status::Error => {
                s.push_str(&format!(",\"error\":\"{}\"", json_escape(&self.error)));
            }
            Status::Bye => {}
        }
        if !self.note.is_empty() {
            s.push_str(&format!(",\"note\":\"{}\"", json_escape(&self.note)));
        }
        s.push('}');
        s
    }

    /// Decodes one wire line. Total; typed errors, never a panic.
    pub fn decode(line: &str) -> Result<Response, ProtoError> {
        let fields = parse_object(line)?;
        let get_str = |name: &str| -> String {
            match fields.get(name) {
                Some(Value::Str(s)) => s.clone(),
                _ => String::new(),
            }
        };
        let get_int = |name: &str| -> i64 {
            match fields.get(name) {
                Some(Value::Int(n)) => *n,
                _ => 0,
            }
        };
        let status = match get_str("status").as_str() {
            "ok" => Status::Ok,
            "shed" => Status::Shed,
            "error" => Status::Error,
            "bye" => Status::Bye,
            other => return err(format!("unknown status `{other}`")),
        };
        let served = match get_str("served").as_str() {
            "cache" => ServedFrom::Cache,
            "coalesced" => ServedFrom::Coalesced,
            _ => ServedFrom::Fresh,
        };
        Ok(Response {
            id: get_str("id"),
            status,
            exit: get_int("exit").clamp(0, 255) as u8,
            verdict: get_str("verdict"),
            served,
            output: get_str("output"),
            error: get_str("error"),
            retry_after_ms: get_int("retry_after_ms").max(0) as u64,
            note: get_str("note"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_every_op() {
        let ops = vec![
            RequestOp::Verify {
                suite: Some("forward r { a\n\tb \"q\" \\ }".into()),
                include_buggy: true,
            },
            RequestOp::Verify {
                suite: None,
                include_buggy: false,
            },
            RequestOp::Optimize {
                program: "proc main(x) { return x; }".into(),
                passes: "const_prop,dae".into(),
                rounds: 2,
            },
            RequestOp::Ping,
            RequestOp::Stats,
            RequestOp::Shutdown,
        ];
        for op in ops {
            let req = Request {
                id: "id-\"weird\"\n".into(),
                op,
            };
            let line = req.encode();
            assert!(!line.contains('\n'), "wire lines must be newline-free: {line}");
            assert_eq!(Request::decode(&line).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrips_and_classifies() {
        let cases = vec![
            Response::ok("a", 0, "proved", ServedFrom::Fresh, "all good\n".into()),
            Response::ok("b", 2, "unsound", ServedFrom::Cache, "FAILED x\n".into()),
            {
                let mut r = Response::ok("c", 3, "resource-limited", ServedFrom::Coalesced, "".into());
                r.note = "proof cache disabled (io)".into();
                r
            },
            Response::shed("d", 120, "queue full (8/8)"),
            Response::error("e", "parse error: bad `op`"),
            Response::bye("f"),
        ];
        for resp in cases {
            let line = resp.encode();
            assert!(!line.contains('\n'), "{line}");
            let back = Response::decode(&line).unwrap();
            assert_eq!(back.id, resp.id);
            assert_eq!(back.status, resp.status);
            assert_eq!(back.output, resp.output);
            assert_eq!(back.retry_after_ms, resp.retry_after_ms);
            assert_eq!(back.note, resp.note);
            assert_eq!(back.cached(), resp.cached());
        }
    }

    #[test]
    fn parser_is_total_on_junk() {
        for junk in [
            "",
            "{",
            "}",
            "nope",
            "{\"a\":}",
            "{\"a\":1e9}",
            "{\"a\":1.5}",
            "{\"a\":[1]}",
            "{\"a\":{\"b\":1}}",
            "{\"a\":\"unterminated",
            "{\"a\":\"bad\\q\"}",
            "{\"a\":\"bad\\u12\"}",
            "{\"a\":\"\\uD83D\"}",          // lone high surrogate
            "{\"a\":\"\\uDE00\"}",          // lone low surrogate
            "{\"a\":\"\\uD83D\\n\"}",       // high surrogate, wrong escape next
            "{\"a\":\"\\uD83Dx\"}",         // high surrogate, literal char next
            "{\"a\":\"\\uD83D\\uD83D\"}",   // high followed by high
            "{\"a\":\"\\uD83D\\u0041\"}",   // high followed by non-surrogate
            "{\"a\":1}trailing",
            "{\"a\":99999999999999999999999}",
            "\u{0}\u{1}\u{2}",
        ] {
            assert!(parse_object(junk).is_err(), "accepted junk: {junk:?}");
            assert!(Request::decode(junk).is_err());
            assert!(Response::decode(junk).is_err());
        }
    }

    #[test]
    fn unknown_fields_and_unicode_escapes_are_tolerated() {
        let fields =
            parse_object("{\"op\":\"ping\",\"future\":\"x\",\"n\":-3,\"u\":\"\\u0041\\u00e9\"}")
                .unwrap();
        assert_eq!(fields.get("n"), Some(&Value::Int(-3)));
        assert_eq!(fields.get("u"), Some(&Value::Str("Aé".into())));
        let req = Request::decode("{\"v\":1,\"op\":\"ping\",\"someday\":true}").unwrap();
        assert_eq!(req.op, RequestOp::Ping);
    }

    #[test]
    fn surrogate_pairs_decode_to_non_bmp_characters() {
        // The standard ensure_ascii encoding of non-BMP text (e.g.
        // Python json.dumps): UTF-16 surrogate pairs, case-insensitive
        // hex. A program or suite containing such characters must
        // survive the wire intact.
        let fields = parse_object("{\"a\":\"\\uD83D\\uDE00\",\"b\":\"\\ud83d\\ude80!\"}").unwrap();
        assert_eq!(fields.get("a"), Some(&Value::Str("\u{1F600}".into())));
        assert_eq!(fields.get("b"), Some(&Value::Str("\u{1F680}!".into())));
        // Lone surrogates are typed errors, not silent U+FFFD.
        let e = parse_object("{\"a\":\"\\uD800\"}").unwrap_err();
        assert!(e.to_string().contains("surrogate"), "{e}");
        let e = parse_object("{\"a\":\"\\uDC00\"}").unwrap_err();
        assert!(e.to_string().contains("surrogate"), "{e}");
    }

    #[test]
    fn version_mismatch_is_a_typed_error() {
        let e = Request::decode("{\"v\":2,\"op\":\"ping\"}").unwrap_err();
        assert!(e.to_string().contains("unsupported protocol version"), "{e}");
        // Absent version = current version (bootstrapping clients).
        assert!(Request::decode("{\"op\":\"ping\"}").is_ok());
    }

    #[test]
    fn optimize_requires_program_and_bounds_rounds() {
        assert!(Request::decode("{\"op\":\"optimize\"}").is_err());
        assert!(Request::decode("{\"op\":\"optimize\",\"program\":\"p\",\"rounds\":65}").is_err());
        let r = Request::decode("{\"op\":\"optimize\",\"program\":\"p\"}").unwrap();
        assert_eq!(
            r.op,
            RequestOp::Optimize {
                program: "p".into(),
                passes: "all".into(),
                rounds: 4
            }
        );
    }
}
