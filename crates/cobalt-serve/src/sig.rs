//! Minimal, dependency-free signal hookup: SIGTERM/SIGINT set a
//! process-wide flag that the accept loop polls, funneling operator
//! signals into the **same graceful-drain path** as an in-band
//! `shutdown` request (`DESIGN.md` §14). No handler logic beyond one
//! atomic store — everything interesting happens on normal threads.
//!
//! This is the one place in the crate that needs `unsafe`: registering
//! a C signal handler against the libc that `std` already links. On
//! non-Unix targets installation is a no-op and the in-band `shutdown`
//! request is the only drain trigger.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler on SIGTERM/SIGINT; never cleared.
static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has arrived since
/// [`install_handlers`] was called.
pub(crate) fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

/// Test hook: pretend a signal arrived (exercises the signal-drain
/// path without needing to kill the process).
#[cfg(test)]
pub(crate) fn raise_for_test() {
    SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use std::sync::atomic::Ordering;
    use std::sync::Once;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    #[allow(unsafe_code)]
    mod ffi {
        // `std` already links libc; declaring `signal` here avoids a
        // libc crate dependency. `sighandler_t` is a function pointer
        // (or SIG_DFL/SIG_IGN integers) on every Unix libc.
        extern "C" {
            pub fn signal(
                signum: i32,
                handler: extern "C" fn(i32),
            ) -> extern "C" fn(i32);
        }
    }

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single atomic store.
        super::SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    }

    /// Registers the handlers exactly once per process; later calls
    /// are no-ops (many in-process servers may start and stop).
    #[allow(unsafe_code)]
    pub(crate) fn install_handlers() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            // SAFETY: `signal` is async-signal-safe to call from the
            // main thread at startup; the handler does nothing beyond
            // one atomic store, which is on POSIX's async-signal-safe
            // list.
            unsafe {
                ffi::signal(SIGTERM, on_signal);
                ffi::signal(SIGINT, on_signal);
            }
        });
    }
}

#[cfg(not(unix))]
mod imp {
    /// Non-Unix: no signal hookup; the in-band `shutdown` request is
    /// the only drain trigger.
    pub(crate) fn install_handlers() {}
}

pub(crate) use imp::install_handlers;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent_and_flag_starts_clear() {
        install_handlers();
        install_handlers();
        // The flag may already be set if a sibling test raised it;
        // only assert that reading and raising work.
        raise_for_test();
        assert!(shutdown_requested());
    }
}
