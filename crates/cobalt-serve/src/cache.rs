//! The shared proof cache: a [`Journal`]-backed map from request
//! fingerprint to a finished, deterministic result.
//!
//! The cache obeys the standing durability rules (`DESIGN.md` §10):
//! every insert is append+fsync so a daemon kill loses at most the
//! in-flight work; loading tolerates truncated tails; any journal
//! trouble (open failure, lock contention, write error, injected
//! `serve.cache` fault) **degrades to uncached service** — the daemon
//! keeps answering with identical verdicts, responses just carry a
//! `note` and stop saying `served:"cache"`. A cache problem can never
//! change a verdict.
//!
//! Only *deterministic* outcomes are cached: exit 0 (proved / ok) and
//! exit 2 (unsound). Resource-limited (exit 3) and error (exit 1)
//! outcomes depend on budgets and transient conditions, so replaying
//! them could flip a verdict that a fresh run would get right — they
//! are always re-executed.

use crate::proto::{Response, ServedFrom};
use cobalt_support::fault;
use cobalt_support::journal::{
    escape_field, unescape_field, Journal, LoadReport, LockOutcome, ResumeMode,
};
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::time::Duration;

/// Record format version written as each record's first field.
const RECORD_VERSION: &str = "v1";

/// One cached result: everything needed to replay a response except
/// the correlation id (which belongs to the asking client, not the
/// proof).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResult {
    /// Request fingerprint (see `exec::request_fingerprint`).
    pub fingerprint: u64,
    /// `verify` or `optimize`.
    pub op: String,
    /// CLI-compatible exit code (only 0 and 2 are ever cached).
    pub exit: u8,
    /// Human verdict (`proved`, `unsound`, `ok`).
    pub verdict: String,
    /// The deterministic report text.
    pub output: String,
}

impl CachedResult {
    /// Whether this outcome is deterministic and therefore cacheable.
    /// Exit 3 (resource-limited) depends on budgets; exit 1 (error)
    /// may be transient. Neither may be replayed.
    pub fn cacheable(exit: u8) -> bool {
        exit == 0 || exit == 2
    }

    /// Replays this result as a response for `id`.
    pub fn to_response(&self, id: &str, served: ServedFrom) -> Response {
        Response::ok(id, self.exit, &self.verdict, served, self.output.clone())
    }

    fn encode(&self) -> Vec<u8> {
        format!(
            "{RECORD_VERSION}\tfp={:016x}\top={}\texit={}\tverdict={}\toutput={}",
            self.fingerprint,
            escape_field(&self.op),
            self.exit,
            escape_field(&self.verdict),
            escape_field(&self.output),
        )
        .into_bytes()
    }

    fn decode(payload: &[u8]) -> Option<CachedResult> {
        let text = std::str::from_utf8(payload).ok()?;
        let mut fields = text.split('\t');
        if fields.next()? != RECORD_VERSION {
            return None;
        }
        let mut out = CachedResult {
            fingerprint: 0,
            op: String::new(),
            exit: u8::MAX,
            verdict: String::new(),
            output: String::new(),
        };
        let mut seen = 0u32;
        for field in fields {
            let (key, value) = field.split_once('=')?;
            match key {
                "fp" => out.fingerprint = u64::from_str_radix(value, 16).ok()?,
                "op" => out.op = unescape_field(value)?,
                "exit" => out.exit = value.parse().ok()?,
                "verdict" => out.verdict = unescape_field(value)?,
                "output" => out.output = unescape_field(value)?,
                _ => continue, // forward-compatible: unknown keys ignored
            }
            seen += 1;
        }
        if seen < 5 || !Self::cacheable(out.exit) {
            // Short records and non-deterministic exits are skipped,
            // never trusted and never fatal.
            return None;
        }
        Some(out)
    }
}

/// A journal-backed, degrade-don't-fail proof cache. All methods are
/// infallible from the caller's perspective: trouble flips the cache
/// into its degraded (in-memory-only or fully disabled) state and the
/// daemon keeps serving.
#[derive(Debug)]
pub struct ProofCache {
    journal: Option<Journal>,
    map: HashMap<u64, CachedResult>,
    loaded: LoadReport,
    degraded: Option<String>,
}

impl ProofCache {
    /// A cache with no journal: single-flight dedup and in-memory
    /// replay still work, nothing survives a restart.
    pub fn in_memory() -> ProofCache {
        ProofCache {
            journal: None,
            map: HashMap::new(),
            loaded: LoadReport::default(),
            degraded: None,
        }
    }

    /// Opens (creating if absent) the cache journal at `path` under
    /// its advisory exclusive lock, replaying intact records into the
    /// in-memory map (`ResumeMode::Fresh` truncates instead). Trouble
    /// — open failure, lock contention, an injected `serve.cache`
    /// fault — yields a *degraded* in-memory cache, never an error:
    /// the daemon must come up and serve regardless.
    pub fn open(path: impl AsRef<Path>, mode: ResumeMode, lock_wait: Duration) -> ProofCache {
        match Self::try_open(path, mode, lock_wait) {
            Ok(cache) => cache,
            Err(reason) => {
                let mut cache = Self::in_memory();
                cache.degraded = Some(reason);
                cache
            }
        }
    }

    fn try_open(
        path: impl AsRef<Path>,
        mode: ResumeMode,
        lock_wait: Duration,
    ) -> Result<ProofCache, String> {
        fault::point_err("serve.cache").map_err(|e| e.to_string())?;
        let mut opened = match Journal::open_locked(path, lock_wait)
            .map_err(|e| format!("cache journal open failed: {e}"))?
        {
            LockOutcome::Acquired(opened) => opened,
            LockOutcome::Contended { reason } => {
                return Err(format!("cache journal lock unavailable ({reason})"))
            }
        };
        let mut map = HashMap::new();
        match mode {
            ResumeMode::Fresh => {
                opened
                    .journal
                    .compact(&[] as &[&[u8]])
                    .map_err(|e| format!("cache journal reset failed: {e}"))?;
                opened.report = LoadReport::default();
            }
            ResumeMode::Resume => {
                for raw in &opened.records {
                    // Later records win (there should be no
                    // duplicates, but reloads after an unclean kill
                    // may replay an append twice).
                    if let Some(r) = CachedResult::decode(raw) {
                        map.insert(r.fingerprint, r);
                    }
                }
            }
        }
        Ok(ProofCache {
            journal: Some(opened.journal),
            map,
            loaded: opened.report,
            degraded: None,
        })
    }

    /// Why persistence was disabled, if it was. Verdicts are
    /// unaffected — only warmth across restarts is lost.
    pub fn degraded(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    /// What the journal loader recovered and discarded at open.
    pub fn load_report(&self) -> &LoadReport {
        &self.loaded
    }

    /// Number of cached results currently replayable.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no replayable results.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a finished result by request fingerprint.
    pub fn get(&self, fingerprint: u64) -> Option<&CachedResult> {
        self.map.get(&fingerprint)
    }

    /// Records a finished result: into the in-memory map always, and
    /// append+fsync into the journal when the outcome is cacheable
    /// (exit 0 or 2) and persistence is still healthy. A write failure
    /// (or injected `serve.cache` fault) degrades persistence for the
    /// rest of the run — the in-memory map keeps working.
    pub fn insert(&mut self, result: CachedResult) {
        if !CachedResult::cacheable(result.exit) {
            return;
        }
        if let Some(journal) = self.journal.as_mut() {
            let payload = result.encode();
            let write = fault::point_err("serve.cache")
                .map_err(|e| io::Error::other(e.to_string()))
                .and_then(|()| journal.append(&payload))
                .and_then(|()| journal.sync());
            if let Err(e) = write {
                self.journal = None;
                if self.degraded.is_none() {
                    self.degraded = Some(format!("cache journal write failed: {e}"));
                }
            }
        }
        self.map.insert(result.fingerprint, result);
    }

    /// Compacts the journal down to the live map (atomic temp-file +
    /// rename) and releases it. Called once during graceful drain; a
    /// compaction failure degrades (the appended journal is still
    /// valid) rather than erroring.
    pub fn finish(&mut self) {
        if let Some(journal) = self.journal.as_mut() {
            let mut fps: Vec<&u64> = self.map.keys().collect();
            fps.sort_unstable();
            let payloads: Vec<Vec<u8>> = fps
                .iter()
                .map(|fp| self.map[fp].encode())
                .collect();
            if let Err(e) = journal.compact(&payloads) {
                if self.degraded.is_none() {
                    self.degraded = Some(format!("cache journal compaction failed: {e}"));
                }
            }
        }
        self.journal = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(fp: u64, exit: u8) -> CachedResult {
        CachedResult {
            fingerprint: fp,
            op: "verify".into(),
            exit,
            verdict: if exit == 0 { "proved" } else { "unsound" }.into(),
            output: "verified `r`: 3/3 obligations\twith\ttabs\nand newlines".into(),
        }
    }

    #[test]
    fn record_roundtrips() {
        let r = result(0xfeed_f00d_dead_beef, 0);
        assert_eq!(CachedResult::decode(&r.encode()), Some(r));
        let u = result(7, 2);
        assert_eq!(CachedResult::decode(&u.encode()), Some(u));
    }

    #[test]
    fn decode_rejects_junk_and_uncacheable_exits() {
        assert_eq!(CachedResult::decode(b""), None);
        assert_eq!(CachedResult::decode(b"v0\tfp=00"), None);
        assert_eq!(CachedResult::decode(b"v1\tfp=nothex"), None);
        assert_eq!(CachedResult::decode(&[0xff, 0xfe]), None);
        // A record claiming a non-deterministic exit must never be
        // replayed, even if something managed to write one.
        let mut rl = result(1, 0);
        rl.exit = 3;
        assert_eq!(CachedResult::decode(&rl.encode()), None);
        let mut truncated = result(2, 0).encode();
        truncated.truncate(truncated.len() / 2);
        let _ = CachedResult::decode(&truncated); // must not panic
    }

    #[test]
    fn persists_and_reloads_across_open() {
        let dir = std::env::temp_dir().join(format!("cobalt-serve-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t1.jrnl");
        let _ = std::fs::remove_file(&path);
        let mut cache = ProofCache::open(&path, ResumeMode::Fresh, Duration::from_secs(1));
        assert!(cache.degraded().is_none());
        cache.insert(result(1, 0));
        cache.insert(result(2, 2));
        cache.insert(result(3, 3)); // resource-limited: not cached at all
        assert_eq!(cache.len(), 2);
        drop(cache); // unclean: no finish() — appends alone must survive
        let cache = ProofCache::open(&path, ResumeMode::Resume, Duration::from_secs(1));
        assert!(cache.degraded().is_none());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(1), Some(&result(1, 0)));
        assert_eq!(cache.get(2), Some(&result(2, 2)));
        assert_eq!(cache.get(3), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fresh_mode_truncates_and_finish_compacts() {
        let dir = std::env::temp_dir().join(format!("cobalt-serve-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t2.jrnl");
        let _ = std::fs::remove_file(&path);
        let mut cache = ProofCache::open(&path, ResumeMode::Fresh, Duration::from_secs(1));
        cache.insert(result(10, 0));
        cache.finish();
        assert!(cache.degraded().is_none());
        let cache = ProofCache::open(&path, ResumeMode::Fresh, Duration::from_secs(1));
        assert!(cache.is_empty(), "fresh mode discards prior results");
        drop(cache);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cache_fault_degrades_open_and_write_without_changing_replay() {
        let dir = std::env::temp_dir().join(format!("cobalt-serve-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t3.jrnl");
        let _ = std::fs::remove_file(&path);
        // Fault at open: cache comes up degraded but alive.
        fault::with_faults("serve.cache:fail", || {
            let mut cache = ProofCache::open(&path, ResumeMode::Fresh, Duration::from_secs(1));
            let why = cache.degraded().expect("open fault degrades").to_string();
            assert!(why.contains("serve.cache"), "{why}");
            cache.insert(result(5, 0));
            assert_eq!(cache.get(5), Some(&result(5, 0)), "in-memory replay survives");
        });
        // Fault at the first write: open succeeds, persistence then
        // degrades, in-memory replay still works.
        let mut cache = ProofCache::open(&path, ResumeMode::Fresh, Duration::from_secs(1));
        assert!(cache.degraded().is_none());
        fault::with_faults("serve.cache:fail", || {
            cache.insert(result(6, 0));
        });
        assert!(cache.degraded().is_some());
        assert_eq!(cache.get(6), Some(&result(6, 0)));
        cache.insert(result(7, 0));
        drop(cache);
        let cache = ProofCache::open(&path, ResumeMode::Resume, Duration::from_secs(1));
        assert!(cache.is_empty(), "nothing persisted after degradation");
        drop(cache);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lock_contention_degrades_second_opener() {
        let dir = std::env::temp_dir().join(format!("cobalt-serve-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t4.jrnl");
        let _ = std::fs::remove_file(&path);
        let holder = ProofCache::open(&path, ResumeMode::Fresh, Duration::from_secs(1));
        assert!(holder.degraded().is_none());
        let second = ProofCache::open(&path, ResumeMode::Resume, Duration::from_millis(50));
        let why = second.degraded().expect("contended lock degrades").to_string();
        assert!(why.contains("lock"), "{why}");
        drop(holder);
        drop(second);
        let _ = std::fs::remove_file(&path);
    }
}
