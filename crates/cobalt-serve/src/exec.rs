//! Request execution: the daemon-side equivalent of `cobalt verify` /
//! `cobalt optimize --resilient`, rendered **deterministically**.
//!
//! Two invariants anchor the whole serve design:
//!
//! 1. **Byte-identical payloads.** The `output` text for a given
//!    request is a pure function of the request — no timings, no
//!    worker-count artifacts, no cache-state artifacts. That is what
//!    makes a cached replay indistinguishable from a fresh run, and
//!    what `scripts/verify.sh` byte-diffs against the one-shot CLI.
//!    Verify reports render through [`Report::summary_stable`]
//!    (`cobalt-verify`); optimize reports through
//!    `PipelineReport::summary`, which never had timings.
//! 2. **Fingerprint = proof-relevant inputs only.** The request
//!    fingerprint covers the operation, the full source text, the
//!    verdict-relevant options, and the prover limit *tiers* — but
//!    deliberately not wall-clock budgets, mirroring the obligation
//!    fingerprints of `cobalt-verify::Session` ("a deadline bounds a
//!    run, not a proof"). Budget-limited outcomes exit 3 and are never
//!    cached, so excluding budgets cannot alias distinct results.

use crate::cache::CachedResult;
use crate::proto::RequestOp;
use cobalt_dsl::LabelEnv;
use cobalt_engine::{Budget, Engine, OptimizeSession};
use cobalt_il::{parse_program, pretty_program, validate};
use cobalt_support::journal::Fnv64;
use cobalt_support::pool::Cancel;
use cobalt_verify::{Report, RetryPolicy, SemanticMeanings, Verifier};
use std::sync::OnceLock;
use std::time::Duration;

/// Exit code when an obligation genuinely failed (unsound) — mirrors
/// the CLI contract.
pub const EXIT_UNSOUND: u8 = 2;
/// Exit code when failures were resource limits only (inconclusive).
pub const EXIT_RESOURCE_LIMITED: u8 = 3;

/// Version tag mixed into every request fingerprint; bump on any
/// change to the fingerprint inputs or the rendered output format so
/// stale caches invalidate wholesale instead of aliasing.
const FINGERPRINT_VERSION: &str = "cobalt-serve-fp-v1";

/// Per-request execution settings, fixed at daemon startup (requests
/// choose *what* to run; the daemon's operator chooses the budgets it
/// runs under).
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Prover retry policy (limit tiers + per-report deadline).
    pub policy: RetryPolicy,
    /// Engine wall-clock budget per optimize request.
    pub timeout: Option<Duration>,
    /// Engine fixpoint step cap per procedure.
    pub max_steps: Option<u64>,
    /// Worker threads *inside* one request (obligation-/procedure-
    /// level parallelism), as distinct from the daemon's cross-request
    /// dispatch workers.
    pub jobs: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            policy: RetryPolicy::default(),
            timeout: None,
            max_steps: None,
            jobs: 1,
        }
    }
}

/// Fingerprint of the built-in registry: every analysis and
/// optimization name plus its full `Debug` AST (buggy variants
/// included — `include_buggy` requests cover them). Computed once;
/// the registry is process-constant.
fn registry_fingerprint() -> u64 {
    static FP: OnceLock<u64> = OnceLock::new();
    *FP.get_or_init(|| {
        let mut h = Fnv64::new();
        for a in cobalt_opts::all_analyses() {
            h.write(a.name.as_bytes()).write(b"\0");
            h.write(format!("{a:?}").as_bytes()).write(b"\0");
        }
        for o in cobalt_opts::all_optimizations()
            .iter()
            .chain(cobalt_opts::buggy_optimizations().iter())
        {
            h.write(o.name.as_bytes()).write(b"\0");
            h.write(format!("{o:?}").as_bytes()).write(b"\0");
        }
        h.finish()
    })
}

/// Stable fingerprint of one request under one execution config. See
/// the module docs for what is — and deliberately is not — covered.
pub fn request_fingerprint(op: &RequestOp, cfg: &ExecConfig) -> u64 {
    let mut h = Fnv64::new();
    h.write(FINGERPRINT_VERSION.as_bytes()).write(b"\0");
    match op {
        RequestOp::Verify {
            suite,
            include_buggy,
        } => {
            h.write(b"verify\0");
            match suite {
                Some(src) => {
                    h.write(b"suite\0").write(src.as_bytes());
                }
                None => {
                    h.write(b"registry\0")
                        .write(format!("{:016x}", registry_fingerprint()).as_bytes());
                }
            }
            h.write(b"\0");
            h.write(&[u8::from(*include_buggy)]).write(b"\0");
            for tier in &cfg.policy.tiers {
                h.write(format!("{tier:?}").as_bytes()).write(b"\0");
            }
        }
        RequestOp::Optimize {
            program,
            passes,
            rounds,
        } => {
            h.write(b"optimize\0");
            h.write(program.as_bytes()).write(b"\0");
            h.write(passes.as_bytes()).write(b"\0");
            h.write(&rounds.to_le_bytes()).write(b"\0");
            // Optimize applies the *verified* suite, so the registry
            // is a proof-relevant input here too.
            h.write(format!("{:016x}", registry_fingerprint()).as_bytes())
                .write(b"\0");
        }
        // Control ops are never executed through the cache; give them
        // distinct fingerprints anyway so a bug upstream cannot alias
        // them onto real work.
        RequestOp::Ping => {
            h.write(b"ping\0");
        }
        RequestOp::Stats => {
            h.write(b"stats\0");
        }
        RequestOp::Shutdown => {
            h.write(b"shutdown\0");
        }
    }
    h.finish()
}

/// One executed result, ready to answer with and (when deterministic)
/// to cache.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// CLI-compatible exit code.
    pub exit: u8,
    /// Human verdict: `proved`, `unsound`, `resource-limited`, `ok`,
    /// `error`.
    pub verdict: String,
    /// The deterministic report text.
    pub output: String,
}

impl ExecResult {
    fn error(msg: impl Into<String>) -> ExecResult {
        ExecResult {
            exit: 1,
            verdict: "error".into(),
            output: msg.into(),
        }
    }

    /// Packages the result for the proof cache.
    pub fn to_cached(&self, fingerprint: u64, op: &RequestOp) -> CachedResult {
        CachedResult {
            fingerprint,
            op: match op {
                RequestOp::Verify { .. } => "verify",
                RequestOp::Optimize { .. } => "optimize",
                RequestOp::Ping => "ping",
                RequestOp::Stats => "stats",
                RequestOp::Shutdown => "shutdown",
            }
            .into(),
            exit: self.exit,
            verdict: self.verdict.clone(),
            output: self.output.clone(),
        }
    }
}

/// Executes one verify/optimize request. `cancel` is the request's
/// cancellation token: tripping it (drain deadline) makes in-flight
/// proving/fixpoints stop at their next budget check and the request
/// report as resource-limited — never as proved, never as unsound.
///
/// Control ops (`ping`/`stats`/`shutdown`) are the server's job and
/// answer `error` here.
pub fn execute(op: &RequestOp, cfg: &ExecConfig, cancel: &Cancel) -> ExecResult {
    match op {
        RequestOp::Verify {
            suite,
            include_buggy,
        } => exec_verify(suite.as_deref(), *include_buggy, cfg, cancel),
        RequestOp::Optimize {
            program,
            passes,
            rounds,
        } => exec_optimize(program, passes, *rounds as usize, cfg, cancel),
        RequestOp::Ping | RequestOp::Stats | RequestOp::Shutdown => {
            ExecResult::error("control operations are not executable requests")
        }
    }
}

/// The serve-side `cobalt verify`: same verdict logic and report lines
/// as the CLI, rendered without timings.
fn exec_verify(
    suite: Option<&str>,
    include_buggy: bool,
    cfg: &ExecConfig,
    cancel: &Cancel,
) -> ExecResult {
    let (opts, analyses) = match suite {
        None => (cobalt_opts::all_optimizations(), cobalt_opts::all_analyses()),
        Some(src) => match cobalt_dsl::parse_suite(src) {
            Ok(suite) => (suite.optimizations, suite.analyses),
            Err(e) => return ExecResult::error(format!("suite parse error: {e}")),
        },
    };
    // Fail-fast is off: an unsound obligation must not cancel its
    // siblings, or the outcome set — and so the FAILED lines of an
    // exit-2 payload, which *is* cached — would depend on completion
    // timing instead of being a pure function of the request. The
    // request token is observed per batch through a linked child
    // (`Verifier::with_cancel`), so a drain trip still stands every
    // rule's batch down while nothing the checker does can trip the
    // request token itself.
    let verifier = Verifier::new(LabelEnv::standard(), SemanticMeanings::standard())
        .with_retry_policy(cfg.policy.clone())
        .with_jobs(cfg.jobs)
        .with_cancel(cancel.clone())
        .with_fail_fast(false);
    let mut out = String::new();
    let mut unsound = false;
    let mut limited = false;
    let mut note_report = |report: &Report, out: &mut String| {
        if !report.all_proved() {
            if report.only_resource_limited_failures() {
                limited = true;
            } else {
                unsound = true;
            }
        }
        out.push_str(&report.summary_stable());
        out.push('\n');
        for o in report.outcomes.iter().filter(|o| !o.proved) {
            out.push_str(&format!(
                "  FAILED {}{} — {}\n",
                o.id,
                if o.resource_limited {
                    " (resource-limited)"
                } else {
                    ""
                },
                o.detail
            ));
        }
    };
    for a in &analyses {
        match verifier.verify_analysis(a) {
            Ok(report) => note_report(&report, &mut out),
            Err(e) => return ExecResult::error(e.to_string()),
        }
    }
    for o in &opts {
        match verifier.verify_optimization(o) {
            Ok(report) => note_report(&report, &mut out),
            Err(e) => return ExecResult::error(e.to_string()),
        }
    }
    if include_buggy {
        for o in cobalt_opts::buggy_optimizations() {
            let report = match verifier.verify_optimization(&o) {
                Ok(report) => report,
                Err(e) => return ExecResult::error(e.to_string()),
            };
            let rejected = !report.all_proved();
            // A buggy variant that verifies is itself a soundness
            // regression: fail the request (same as the CLI).
            if !rejected {
                unsound = true;
            }
            out.push_str(&format!(
                "{} — {}\n",
                report.summary_stable(),
                if rejected {
                    "correctly rejected"
                } else {
                    "UNEXPECTEDLY PROVED"
                }
            ));
        }
    }
    if unsound {
        out.push_str("some obligations failed\n");
        ExecResult {
            exit: EXIT_UNSOUND,
            verdict: "unsound".into(),
            output: out,
        }
    } else if limited {
        out.push_str("proving hit resource limits (inconclusive, not unsound)\n");
        ExecResult {
            exit: EXIT_RESOURCE_LIMITED,
            verdict: "resource-limited".into(),
            output: out,
        }
    } else {
        out.push_str("all optimizations proved sound\n");
        ExecResult {
            exit: 0,
            verdict: "proved".into(),
            output: out,
        }
    }
}

/// The serve-side `cobalt optimize --resilient`: pass quarantine, not
/// error propagation, so one failing pass degrades instead of killing
/// the request.
fn exec_optimize(
    program: &str,
    passes: &str,
    rounds: usize,
    cfg: &ExecConfig,
    cancel: &Cancel,
) -> ExecResult {
    let prog = match parse_program(program) {
        Ok(p) => p,
        Err(e) => return ExecResult::error(format!("program parse error: {e}")),
    };
    if let Err(e) = validate(&prog) {
        return ExecResult::error(e.to_string());
    }
    let suite = if passes == "all" {
        cobalt_opts::default_pipeline()
    } else {
        let registry = cobalt_opts::all_optimizations();
        let mut suite = Vec::new();
        for name in passes.split(',') {
            match registry.iter().find(|o| o.name == name) {
                Some(o) => suite.push(o.clone()),
                None => return ExecResult::error(format!("unknown pass `{name}`")),
            }
        }
        suite
    };
    let mut budget = Budget::unlimited().with_cancel(cancel.flag());
    if let Some(d) = cfg.timeout {
        budget = budget.with_deadline(d);
    }
    if let Some(n) = cfg.max_steps {
        budget = budget.with_max_steps(n);
    }
    let engine = Engine::new(LabelEnv::standard()).with_budget(budget);
    let mut session = OptimizeSession::new(engine).with_jobs(cfg.jobs);
    let (optimized, report) =
        session.optimize_program(&prog, &cobalt_opts::all_analyses(), &suite, rounds);
    session.finish();
    let mut out = String::new();
    out.push_str(&format!("// {}\n", report.summary()));
    for f in &report.failures {
        out.push_str(&format!("// skipped: {f}\n"));
    }
    out.push_str(&pretty_program(&optimized));
    if report.resource_limited() {
        ExecResult {
            exit: EXIT_RESOURCE_LIMITED,
            verdict: "resource-limited".into(),
            output: out,
        }
    } else {
        ExecResult {
            exit: 0,
            verdict: "ok".into(),
            output: out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SUITE: &str = "forward const_prop {
        stmt(Y := C) followed by !mayDef(Y)
        until X := Y => X := C
        with witness eta(Y) == C
    }";

    const UNSOUND_SUITE: &str = "forward bad_prop {
        stmt(Y := C) followed by !mayDef(X)
        until X := Y => X := C
        with witness eta(Y) == C
    }";

    const PROGRAM: &str = "proc main(x) { decl a; decl c; a := 2; c := a; return c; }";

    fn verify_op(suite: &str) -> RequestOp {
        RequestOp::Verify {
            suite: Some(suite.into()),
            include_buggy: false,
        }
    }

    #[test]
    fn verify_suite_proves_and_renders_without_timings() {
        let r = execute(&verify_op(SUITE), &ExecConfig::default(), &Cancel::new());
        assert_eq!(r.exit, 0, "{}", r.output);
        assert_eq!(r.verdict, "proved");
        assert!(r.output.contains("obligations proved"), "{}", r.output);
        assert!(r.output.ends_with("all optimizations proved sound\n"));
        assert!(!r.output.contains(" in "), "timing leaked: {}", r.output);
    }

    #[test]
    fn verify_output_is_byte_identical_across_jobs_and_repeats() {
        let sequential = execute(&verify_op(SUITE), &ExecConfig::default(), &Cancel::new());
        let parallel = execute(
            &verify_op(SUITE),
            &ExecConfig {
                jobs: 4,
                ..ExecConfig::default()
            },
            &Cancel::new(),
        );
        assert_eq!(sequential.output, parallel.output);
        assert_eq!(sequential.exit, parallel.exit);
        let again = execute(&verify_op(SUITE), &ExecConfig::default(), &Cancel::new());
        assert_eq!(sequential.output, again.output);
    }

    #[test]
    fn verify_unsound_suite_exits_2() {
        let r = execute(
            &verify_op(UNSOUND_SUITE),
            &ExecConfig::default(),
            &Cancel::new(),
        );
        assert_eq!(r.exit, EXIT_UNSOUND, "{}", r.output);
        assert_eq!(r.verdict, "unsound");
        assert!(r.output.contains("FAILED"), "{}", r.output);
    }

    #[test]
    fn verify_bad_suite_and_bad_program_are_typed_errors() {
        let r = execute(&verify_op("forward {{{"), &ExecConfig::default(), &Cancel::new());
        assert_eq!(r.exit, 1);
        assert_eq!(r.verdict, "error");
        let r = execute(
            &RequestOp::Optimize {
                program: "proc main(".into(),
                passes: "all".into(),
                rounds: 1,
            },
            &ExecConfig::default(),
            &Cancel::new(),
        );
        assert_eq!(r.exit, 1);
        assert_eq!(r.verdict, "error");
    }

    #[test]
    fn unsound_rule_never_poisons_later_batches_or_the_request_token() {
        // Regression: exec_verify shares one request-level token across
        // every per-rule batch. The parallel discharge path must not
        // trip it — or the first unsound rule would cancel every later
        // rule's batch, reporting sound rules (and, under
        // include_buggy, would-be-UNEXPECTEDLY-PROVED variants) as
        // resource-limited/"correctly rejected" by cancellation, with
        // timing-dependent bytes landing in the exit-2 cache.
        let both = format!("{UNSOUND_SUITE}\n{SUITE}");
        let cfg = ExecConfig {
            jobs: 4,
            ..ExecConfig::default()
        };
        let cancel = Cancel::new();
        let first = execute(&verify_op(&both), &cfg, &cancel);
        assert_eq!(first.exit, EXIT_UNSOUND, "{}", first.output);
        assert!(
            !cancel.is_tripped(),
            "verification must never trip the caller's request token"
        );
        assert!(
            first.output.contains("const_prop"),
            "the sound rule still reports: {}",
            first.output
        );
        assert!(
            !first.output.contains("resource-limited"),
            "no batch was cancelled by its unsound predecessor: {}",
            first.output
        );
        // Exit-2 payloads are cached and replayed, so they must be a
        // pure function of the request — byte-identical on repeats.
        for _ in 0..3 {
            let again = execute(&verify_op(&both), &cfg, &Cancel::new());
            assert_eq!(again.output, first.output);
            assert_eq!(again.exit, first.exit);
        }
    }

    #[test]
    fn pre_tripped_cancel_reports_resource_limited_never_unsound() {
        let cancel = Cancel::new();
        cancel.trip();
        let r = execute(&verify_op(SUITE), &ExecConfig::default(), &cancel);
        assert_eq!(r.exit, EXIT_RESOURCE_LIMITED, "{}", r.output);
        assert_eq!(r.verdict, "resource-limited");
    }

    #[test]
    fn optimize_rewrites_and_is_deterministic() {
        let op = RequestOp::Optimize {
            program: PROGRAM.into(),
            passes: "const_prop".into(),
            rounds: 2,
        };
        let a = execute(&op, &ExecConfig::default(), &Cancel::new());
        assert_eq!(a.exit, 0, "{}", a.output);
        assert_eq!(a.verdict, "ok");
        assert!(a.output.contains("c := 2"), "{}", a.output);
        let b = execute(
            &op,
            &ExecConfig {
                jobs: 3,
                ..ExecConfig::default()
            },
            &Cancel::new(),
        );
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn optimize_zero_timeout_is_resource_limited_not_cached() {
        let op = RequestOp::Optimize {
            program: PROGRAM.into(),
            passes: "all".into(),
            rounds: 2,
        };
        let r = execute(
            &op,
            &ExecConfig {
                timeout: Some(Duration::ZERO),
                ..ExecConfig::default()
            },
            &Cancel::new(),
        );
        assert_eq!(r.exit, EXIT_RESOURCE_LIMITED, "{}", r.output);
        assert!(
            !crate::cache::CachedResult::cacheable(r.exit),
            "budget-limited outcomes must never be cached"
        );
        // The printed program is still the (unoptimized, correct)
        // input — resilient semantics.
        assert!(r.output.contains("proc main"), "{}", r.output);
    }

    #[test]
    fn fingerprints_separate_proof_relevant_inputs_and_ignore_budgets() {
        let cfg = ExecConfig::default();
        let base = request_fingerprint(&verify_op(SUITE), &cfg);
        assert_eq!(base, request_fingerprint(&verify_op(SUITE), &cfg), "stable");
        assert_ne!(base, request_fingerprint(&verify_op(UNSOUND_SUITE), &cfg));
        assert_ne!(
            base,
            request_fingerprint(
                &RequestOp::Verify {
                    suite: Some(SUITE.into()),
                    include_buggy: true
                },
                &cfg
            )
        );
        assert_ne!(
            base,
            request_fingerprint(&RequestOp::Verify { suite: None, include_buggy: false }, &cfg)
        );
        // Limit tiers are proof-relevant.
        let mut capped = ExecConfig::default();
        for tier in &mut capped.policy.tiers {
            tier.max_splits = 1;
        }
        assert_ne!(base, request_fingerprint(&verify_op(SUITE), &capped));
        // Wall-clock budgets are not.
        let impatient = ExecConfig {
            timeout: Some(Duration::from_millis(1)),
            max_steps: Some(3),
            ..ExecConfig::default()
        };
        assert_eq!(base, request_fingerprint(&verify_op(SUITE), &impatient));
        // Optimize requests separate on program, passes, and rounds.
        let opt = |program: &str, passes: &str, rounds: u32| {
            request_fingerprint(
                &RequestOp::Optimize {
                    program: program.into(),
                    passes: passes.into(),
                    rounds,
                },
                &cfg,
            )
        };
        let o = opt(PROGRAM, "all", 4);
        assert_ne!(o, opt(PROGRAM, "all", 2));
        assert_ne!(o, opt(PROGRAM, "const_prop", 4));
        assert_ne!(o, opt("proc main(x) { return x; }", "all", 4));
        assert_ne!(o, base);
    }
}
