//! # cobalt-bench
//!
//! The benchmark harness reproducing the evaluation of the Cobalt paper
//! (see `EXPERIMENTS.md` at the workspace root):
//!
//! * `benches/proof_times` — **E1**, the §5.1 proof-time table;
//! * `benches/engine_scaling` — **E6**, execution-engine cost vs
//!   program size;
//! * `benches/tv_vs_proof` — **E5**, one-time proof vs per-compile
//!   translation validation;
//! * `benches/prover_ablation` — ablations of the theorem prover's
//!   design choices.
//!
//! Shared workload builders live in this library crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cobalt_il::{generate, GenConfig, Program};

/// Deterministic benchmark programs of a given size.
pub fn bench_program(stmts: usize, seed: u64) -> Program {
    generate(&GenConfig::sized(stmts, seed))
}

/// The standard size ladder used by the scaling benchmarks.
pub const SIZES: &[usize] = &[10, 40, 160, 640];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_programs_validate() {
        for &n in SIZES {
            cobalt_il::validate(&bench_program(n, 1)).unwrap();
        }
    }
}
