//! # cobalt-bench
//!
//! The benchmark harness reproducing the evaluation of the Cobalt paper
//! (see `EXPERIMENTS.md` at the workspace root):
//!
//! * `benches/proof_times` — **E1**, the §5.1 proof-time table;
//! * `benches/engine_scaling` — **E6**, execution-engine cost vs
//!   program size;
//! * `benches/tv_vs_proof` — **E5**, one-time proof vs per-compile
//!   translation validation;
//! * `benches/prover_ablation` — ablations of the theorem prover's
//!   design choices.
//!
//! Shared workload builders live in this library crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cobalt_il::{generate, GenConfig, ProcName, Program};

/// Deterministic benchmark programs of a given size.
pub fn bench_program(stmts: usize, seed: u64) -> Program {
    generate(&GenConfig::sized(stmts, seed))
}

/// A deterministic program of `procs` similarly-sized procedures, each
/// with `stmts_per_proc` statements — the workload for the `--jobs`
/// scaling benchmarks and the parallel-determinism tests, where
/// per-procedure fixpoints are the unit of parallelism.
///
/// Each procedure is an independently generated call-free `main` body
/// (calls would dangle across the merge), renamed `main`, `p1`, `p2`, …
/// so the program still interprets from `main`.
pub fn many_proc_program(procs: usize, stmts_per_proc: usize, seed: u64) -> Program {
    let bodies = (0..procs).map(|i| {
        let cfg = GenConfig {
            num_helpers: 0,
            call_ratio: 0.0,
            seed: seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
            ..GenConfig::sized(stmts_per_proc, 0)
        };
        let mut proc = generate(&cfg).procs.into_iter().next().expect("generated main");
        proc.name = ProcName::new(if i == 0 {
            "main".to_string()
        } else {
            format!("p{i}")
        });
        proc
    });
    Program::new(bodies.collect())
}

/// The standard size ladder used by the scaling benchmarks.
pub const SIZES: &[usize] = &[10, 40, 160, 640];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_programs_validate() {
        for &n in SIZES {
            cobalt_il::validate(&bench_program(n, 1)).unwrap();
        }
    }

    #[test]
    fn many_proc_programs_validate_and_are_deterministic() {
        let a = many_proc_program(8, 30, 42);
        cobalt_il::validate(&a).unwrap();
        assert_eq!(a.procs.len(), 8);
        assert!(a.main().is_some());
        let b = many_proc_program(8, 30, 42);
        assert_eq!(
            cobalt_il::pretty_program(&a),
            cobalt_il::pretty_program(&b)
        );
    }
}
