//! Experiment E6: execution-engine cost as a function of program size,
//! and the cost of running the suite as one composed pipeline versus
//! separate passes. (The paper's §1 motivates proving optimizations
//! once partly because per-run validation "can have a substantial
//! impact on the time to run an optimization" — this benchmark gives
//! the engine-side baseline those overheads are compared against.)

use cobalt_bench::{bench_program, many_proc_program, SIZES};
use cobalt_dsl::LabelEnv;
use cobalt_engine::{AnalyzedProc, Engine, OptimizeSession};
use cobalt_support::bench::{Bench, BenchId, Throughput};
use cobalt_support::journal::ResumeMode;
use cobalt_support::{bench_group, bench_main};

fn bench_single_pass_scaling(c: &mut Bench) {
    let engine = Engine::new(LabelEnv::standard());
    let const_prop = cobalt_opts::const_prop();
    let dae = cobalt_opts::dae();
    let mut group = c.benchmark_group("engine_scaling");
    for &n in SIZES {
        let prog = bench_program(n, 7);
        let main = prog.main().unwrap().clone();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchId::new("const_prop", n), &main, |b, m| {
            b.iter(|| {
                let ap = AnalyzedProc::new(m.clone()).unwrap();
                engine.apply(&ap, &const_prop).unwrap().1.len()
            })
        });
        group.bench_with_input(BenchId::new("dae", n), &main, |b, m| {
            b.iter(|| {
                let ap = AnalyzedProc::new(m.clone()).unwrap();
                engine.apply(&ap, &dae).unwrap().1.len()
            })
        });
    }
    group.finish();
}

fn bench_full_suite(c: &mut Bench) {
    let engine = Engine::new(LabelEnv::standard());
    let opts = cobalt_opts::all_optimizations();
    let analyses = cobalt_opts::all_analyses();
    let mut group = c.benchmark_group("engine_suite");
    group.sample_size(10);
    for &n in &SIZES[..3] {
        let prog = bench_program(n, 11);
        group.bench_with_input(BenchId::new("one_round", n), &prog, |b, p| {
            b.iter(|| engine.optimize_program(p, &analyses, &opts, 1).unwrap().1)
        });
        group.bench_with_input(BenchId::new("to_fixpoint", n), &prog, |b, p| {
            b.iter(|| engine.optimize_program(p, &analyses, &opts, 4).unwrap().1)
        });
    }
    group.finish();
}

fn bench_taint_analysis(c: &mut Bench) {
    let engine = Engine::new(LabelEnv::standard());
    let taint = cobalt_opts::taint_analysis();
    let mut group = c.benchmark_group("taint_analysis");
    for &n in SIZES {
        let prog = bench_program(n, 13);
        let main = prog.main().unwrap().clone();
        group.bench_with_input(BenchId::from_parameter(n), &main, |b, m| {
            b.iter(|| {
                let mut ap = AnalyzedProc::new(m.clone()).unwrap();
                engine.run_pure_analysis(&mut ap, &taint).unwrap()
            })
        });
    }
    group.finish();
}

/// ISSUE 7: per-procedure parallelism. One 24-procedure program, the
/// full resilient pipeline, worker counts 1/2/4 — output bytes are
/// identical at every count (tests/parallel.rs proves it), so the only
/// thing this measures is wall-clock. Speedup tracks physical cores:
/// on a single-vCPU host the trajectory is flat and measures pool
/// overhead instead (see BENCH_7.json).
fn bench_jobs_scaling(c: &mut Bench) {
    let analyses = cobalt_opts::all_analyses();
    let opts = cobalt_opts::all_optimizations();
    let prog = many_proc_program(24, 40, 7);
    let mut group = c.benchmark_group("engine_jobs");
    group.sample_size(10);
    for jobs in [1usize, 2, 4] {
        group.bench_with_input(BenchId::new("optimize", jobs), &prog, |b, p| {
            b.iter(|| {
                let mut session =
                    OptimizeSession::new(Engine::new(LabelEnv::standard())).with_jobs(jobs);
                let (_, report) = session.optimize_program(p, &analyses, &opts, 3);
                report.applied
            })
        });
    }
    group.finish();
}

/// ISSUE 7: warm-restart value. A cold journaled run pays the full
/// fixpoint cost; the warm run replays every procedure from the
/// journal (parse + fingerprint only). The ratio is what a crash —
/// or an incremental rebuild — gets back.
fn bench_journal_warm_resume(c: &mut Bench) {
    let analyses = cobalt_opts::all_analyses();
    let opts = cobalt_opts::all_optimizations();
    let prog = many_proc_program(24, 40, 7);
    let path = std::env::temp_dir().join(format!(
        "cobalt_bench_engine_journal_{}.cobj",
        std::process::id()
    ));
    let mut group = c.benchmark_group("engine_journal");
    group.sample_size(10);
    group.bench_with_input(BenchId::new("cold", 24usize), &prog, |b, p| {
        b.iter(|| {
            std::fs::remove_file(&path).ok();
            let mut session = OptimizeSession::new(Engine::new(LabelEnv::standard()))
                .with_journal(&path, ResumeMode::Fresh);
            let (_, report) = session.optimize_program(p, &analyses, &opts, 3);
            session.finish();
            report.applied
        })
    });
    // Seed one complete journal, then measure pure replay.
    std::fs::remove_file(&path).ok();
    let mut seed = OptimizeSession::new(Engine::new(LabelEnv::standard()))
        .with_journal(&path, ResumeMode::Fresh);
    seed.optimize_program(&prog, &analyses, &opts, 3);
    seed.finish();
    group.bench_with_input(BenchId::new("warm", 24usize), &prog, |b, p| {
        b.iter(|| {
            let mut session = OptimizeSession::new(Engine::new(LabelEnv::standard()))
                .with_journal(&path, ResumeMode::Resume);
            let (_, report) = session.optimize_program(p, &analyses, &opts, 3);
            session.finish();
            report.cached
        })
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

bench_group!(
    benches,
    bench_single_pass_scaling,
    bench_full_suite,
    bench_taint_analysis,
    bench_jobs_scaling,
    bench_journal_warm_resume
);
bench_main!(benches);
