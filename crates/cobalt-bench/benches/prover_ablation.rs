//! Ablation benchmarks for the theorem prover's design choices
//! (DESIGN.md §4): congruence-closure throughput, array case-splitting,
//! trigger-based instantiation, and the effect of the obligation
//! builders' per-shape decomposition (small vocabularies) versus a
//! monolithic vocabulary.

use cobalt_logic::{Cc, Formula, Limits, ProofTask, Solver, TermBank};
use cobalt_support::bench::{Bench, BenchId};
use cobalt_support::{bench_group, bench_main};

/// Raw congruence closure: merge a chain and let congruence propagate
/// through n layers of function applications.
fn bench_congruence_closure(c: &mut Bench) {
    let mut group = c.benchmark_group("prover/congruence");
    for &n in &[32usize, 128, 512] {
        group.bench_with_input(BenchId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut bank = TermBank::new();
                let f = bank.sym("f");
                let consts: Vec<_> = (0..n).map(|i| bank.app0(&format!("c{i}"))).collect();
                let apps: Vec<_> = consts.iter().map(|&x| bank.app(f, vec![x])).collect();
                let mut cc = Cc::new();
                cc.sync(&bank);
                for w in consts.windows(2) {
                    cc.merge(w[0], w[1], &bank);
                }
                assert!(cc.are_eq(apps[0], apps[n - 1]));
            })
        });
    }
    group.finish();
}

/// Array reasoning: read-over-write chains of increasing depth force
/// one case split per layer.
fn bench_array_chains(c: &mut Bench) {
    let mut group = c.benchmark_group("prover/array_chain");
    for &depth in &[4usize, 8, 16] {
        group.bench_with_input(BenchId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut s = Solver::new();
                let m0 = s.bank.app0("m");
                let keys: Vec<_> = (0..depth).map(|i| s.bank.app0(&format!("k{i}"))).collect();
                let vals: Vec<_> = (0..depth).map(|i| s.bank.app0(&format!("v{i}"))).collect();
                let mut m = m0;
                for i in 0..depth {
                    m = s.update(m, keys[i], vals[i]);
                }
                let probe = s.bank.app0("probe");
                let read = s.select(m, probe);
                let base = s.select(m0, probe);
                // probe differs from every key ⊨ the chain is transparent.
                let hyps: Vec<Formula> =
                    keys.iter().map(|&k| Formula::ne(probe, k)).collect();
                let out = s.prove(&ProofTask {
                    hypotheses: hyps,
                    goal: Formula::Eq(read, base),
                });
                assert!(out.is_proved());
            })
        });
    }
    group.finish();
}

/// Trigger instantiation: a pointwise store-agreement hypothesis must
/// be instantiated at each of n probe locations.
fn bench_instantiation(c: &mut Bench) {
    let mut group = c.benchmark_group("prover/instantiation");
    for &n in &[4usize, 16, 64] {
        group.bench_with_input(BenchId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut s = Solver::new();
                let (m1, m2) = (s.bank.app0("m1"), s.bank.app0("m2"));
                let vsym = s.bank.sym("L");
                let v = s.bank.var("L");
                let s1 = s.select(m1, v);
                let s2 = s.select(m2, v);
                let hyp = Formula::Forall {
                    vars: vec![vsym],
                    triggers: vec![s1, s2],
                    body: Box::new(Formula::Eq(s1, s2)),
                };
                let goal = Formula::and((0..n).map(|i| {
                    let k = s.bank.app0(&format!("p{i}"));
                    let a = s.select(m1, k);
                    let b = s.select(m2, k);
                    Formula::Eq(a, b)
                }));
                let out = s.prove(&ProofTask {
                    hypotheses: vec![hyp],
                    goal,
                });
                assert!(out.is_proved());
            })
        });
    }
    group.finish();
}

/// Vocabulary-size ablation: the same F3-style VC with increasing
/// numbers of irrelevant variable constants shows why the obligation
/// builders keep per-shape vocabularies minimal (each extra pair adds
/// an injectivity disjunction, i.e. a potential case split).
fn bench_vocabulary_ablation(c: &mut Bench) {
    let mut group = c.benchmark_group("prover/vocab_ablation");
    for &extra in &[0usize, 4, 8, 12] {
        group.bench_with_input(BenchId::from_parameter(extra), &extra, |b, &extra| {
            b.iter(|| {
                let mut s = Solver::with_limits(Limits::default());
                let env = s.bank.app0("env");
                let store = s.bank.app0("store");
                let iv = s.bank.constructor("intval");
                let cc = s.bank.app0("C");
                let ivc = s.bank.app(iv, vec![cc]);
                let mut vars = vec![s.bank.app0("X"), s.bank.app0("Y")];
                for i in 0..extra {
                    vars.push(s.bank.app0(&format!("Z{i}")));
                }
                let mut hyps = Vec::new();
                // Pairwise injectivity instances, as the encoder emits.
                for i in 0..vars.len() {
                    for j in (i + 1)..vars.len() {
                        let li = s.select(env, vars[i]);
                        let lj = s.select(env, vars[j]);
                        hyps.push(Formula::or([
                            Formula::Eq(vars[i], vars[j]),
                            Formula::ne(li, lj),
                        ]));
                    }
                }
                let ly = s.select(env, vars[1]);
                let vy = s.select(store, ly);
                hyps.push(Formula::Eq(vy, ivc));
                let lx = s.select(env, vars[0]);
                let u1 = s.update(store, lx, vy);
                let u2 = s.update(store, lx, ivc);
                let lsym = s.bank.sym("l");
                let lv = s.bank.var("l");
                let r1 = s.select(u1, lv);
                let r2 = s.select(u2, lv);
                let goal = Formula::Forall {
                    vars: vec![lsym],
                    triggers: vec![r1, r2],
                    body: Box::new(Formula::Eq(r1, r2)),
                };
                let out = s.prove(&ProofTask {
                    hypotheses: hyps,
                    goal,
                });
                assert!(out.is_proved());
            })
        });
    }
    group.finish();
}

bench_group!(
    benches,
    bench_congruence_closure,
    bench_array_chains,
    bench_instantiation,
    bench_vocabulary_ablation
);
bench_main!(benches);
