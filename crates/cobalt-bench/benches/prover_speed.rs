//! Prover raw speed (ISSUE 6, ROADMAP open item 3): full-registry
//! obligations/sec at one worker — the per-PR trajectory datapoint
//! committed as `BENCH_*.json`.
//!
//! Two variants pin the tentpole's shape:
//!
//! * `registry_shared` — the default [`BankMode::BatchShared`]: one
//!   interned vocabulary per rule, overlay solvers per obligation.
//! * `registry_fresh` — the [`BankMode::PerObligation`] oracle: every
//!   obligation re-interns its bank from scratch.
//!
//! Each sample discharges the *entire* built-in registry (analyses and
//! optimizations) sequentially and asserts everything proves, so the
//! number is end-to-end: encoding, obligation construction, and proof
//! search, not just the solver inner loop. Elements = obligations, so
//! the harness reports obligations/sec directly.

use cobalt_dsl::LabelEnv;
use cobalt_support::bench::{Bench, Throughput};
use cobalt_support::{bench_group, bench_main};
use cobalt_verify::{BankMode, SemanticMeanings, Verifier};

fn discharge_registry(v: &Verifier) -> u64 {
    let mut obligations = 0u64;
    for analysis in cobalt_opts::all_analyses() {
        let report = v.verify_analysis(&analysis).expect("encodable");
        assert!(report.all_proved(), "{}", report.summary());
        obligations += report.outcomes.len() as u64;
    }
    for opt in cobalt_opts::all_optimizations() {
        let report = v.verify_optimization(&opt).expect("encodable");
        assert!(report.all_proved(), "{}", report.summary());
        obligations += report.outcomes.len() as u64;
    }
    obligations
}

fn bench_prover_speed(c: &mut Bench) {
    let mut group = c.benchmark_group("prover_speed");
    group.sample_size(10);
    for (tag, mode) in [
        ("registry_shared", BankMode::BatchShared),
        ("registry_fresh", BankMode::PerObligation),
    ] {
        let v = Verifier::new(LabelEnv::standard(), SemanticMeanings::standard())
            .with_jobs(1)
            .with_bank_mode(mode);
        let obligations = discharge_registry(&v);
        group.throughput(Throughput::Elements(obligations));
        group.bench_function(format!("{tag}/jobs=1"), |b| {
            b.iter(|| discharge_registry(&v))
        });
    }
    group.finish();
}

bench_group!(benches, bench_prover_speed);
bench_main!(benches);
