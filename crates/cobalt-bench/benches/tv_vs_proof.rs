//! Experiment E5: the trust-cost comparison the paper's introduction
//! draws — translation validation pays a checking cost on **every**
//! compile (growing with program size), while the Cobalt proof is a
//! **one-time** cost independent of the programs later compiled.
//!
//! The crossover these benchmarks expose: after a handful of compiles
//! of moderate programs, the amortized once-and-for-all proof is
//! cheaper — and it covers *all* programs, not just the validated runs.

use cobalt_bench::{bench_program, SIZES};
use cobalt_dsl::LabelEnv;
use cobalt_engine::Engine;
use cobalt_tv::validate_proc;
use cobalt_verify::{SemanticMeanings, Verifier};
use cobalt_support::bench::{Bench, BenchId};
use cobalt_support::{bench_group, bench_main};

/// The one-time cost: prove constant propagation sound, once and for
/// all programs.
fn bench_once_and_for_all(c: &mut Bench) {
    let verifier = Verifier::new(LabelEnv::standard(), SemanticMeanings::standard());
    let const_prop = cobalt_opts::const_prop();
    c.bench_function("trust/prove_once", |b| {
        b.iter(|| {
            let report = verifier.verify_optimization(&const_prop).unwrap();
            assert!(report.all_proved());
        })
    });
}

/// The per-compile cost: optimize a program and validate the output,
/// for each program size.
fn bench_validate_every_compile(c: &mut Bench) {
    let engine = Engine::new(LabelEnv::standard());
    let const_prop = cobalt_opts::const_prop();
    let mut group = c.benchmark_group("trust/validate_per_compile");
    for &n in SIZES {
        let prog = bench_program(n, 21);
        let (optimized, _) = engine
            .optimize_program(&prog, &[], std::slice::from_ref(&const_prop), 1)
            .unwrap();
        let orig = prog.main().unwrap().clone();
        let new = optimized.main().unwrap().clone();
        group.bench_with_input(BenchId::from_parameter(n), &(orig, new), |b, (o, t)| {
            b.iter(|| {
                let report = validate_proc(o, t).unwrap();
                assert!(report.validated());
            })
        });
    }
    group.finish();
}

/// The compile-time overhead comparison at a fixed size: optimization
/// alone vs optimization + validation.
fn bench_compile_overhead(c: &mut Bench) {
    let engine = Engine::new(LabelEnv::standard());
    let opts = [cobalt_opts::const_prop(), cobalt_opts::dae()];
    let prog = bench_program(160, 23);
    let mut group = c.benchmark_group("trust/compile_overhead");
    group.bench_function("optimize_only", |b| {
        b.iter(|| engine.optimize_program(&prog, &[], &opts, 1).unwrap().1)
    });
    group.bench_function("optimize_and_validate", |b| {
        b.iter(|| {
            let (out, n) = engine.optimize_program(&prog, &[], &opts, 1).unwrap();
            // Validating a multi-pass compile honestly requires
            // per-pass validation; approximate with per-opt reruns.
            let mut cur = prog.clone();
            for opt in &opts {
                let (next, _) = engine
                    .optimize_program(&cur, &[], std::slice::from_ref(opt), 1)
                    .unwrap();
                let r = validate_proc(cur.main().unwrap(), next.main().unwrap()).unwrap();
                assert!(r.validated(), "{:?}", r.rejections());
                cur = next;
            }
            let _ = out;
            n
        })
    });
    group.finish();
}

bench_group!(
    benches,
    bench_once_and_for_all,
    bench_validate_every_compile,
    bench_compile_overhead
);
bench_main!(benches);
