//! Experiment E9: daemon-mode verification throughput (ISSUE 9).
//!
//! Drives an in-process `cobalt serve` daemon with concurrent clients
//! over loopback TCP and measures what the shared single-flight proof
//! cache buys: a **cold** phase proves N distinct one-rule suites
//! (every request is a fresh prover run), then a **warm** phase
//! replays the same N suites from C clients at once (every request
//! should be answered from the cache or coalesced onto an in-flight
//! twin). Reported per phase: client-observed p50/p95 latency
//! (connect + round trip included — one TCP connection per request,
//! exactly like the `cobalt client` CLI), wall-clock, throughput, and
//! the warm cache-served rate taken from the daemon's own counters.
//!
//! Not a `cobalt_support::bench` harness: a load generator wants
//! latency *distributions* across concurrent clients, not iteration
//! medians of a closed loop. `COBALT_BENCH_FAST=1` shrinks the run.

use cobalt_serve::exec::ExecConfig;
use cobalt_serve::{request_with_retry, ClientConfig, Request, RequestOp, ServeConfig, Server};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Distinct rule names give every suite a distinct fingerprint, so the
/// cold phase cannot accidentally hit the cache.
fn suite(i: usize) -> String {
    format!(
        "forward load_cp_{i} {{\n  stmt(Y := C) followed by !mayDef(Y)\n  \
         until X := Y => X := C\n  with witness eta(Y) == C\n}}"
    )
}

fn verify_req(id: String, src: &str) -> Request {
    Request {
        id,
        op: RequestOp::Verify {
            suite: Some(src.to_string()),
            include_buggy: false,
        },
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)] as f64 / 1000.0
}

/// Runs `clients` threads that pop work items (suite indices) from a
/// shared list until it is empty, returning every observed latency in
/// microseconds plus the phase wall-clock.
fn run_phase(
    addr: &str,
    suites: &Arc<Vec<String>>,
    work: Vec<usize>,
    clients: usize,
    tag: &str,
) -> (Vec<u64>, Duration) {
    let work = Arc::new(work);
    let next = Arc::new(AtomicUsize::new(0));
    let latencies = Arc::new(Mutex::new(Vec::new()));
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let (addr, suites, work, next, latencies) = (
                addr.to_string(),
                Arc::clone(suites),
                Arc::clone(&work),
                Arc::clone(&next),
                Arc::clone(&latencies),
            );
            let tag = tag.to_string();
            std::thread::spawn(move || {
                let cfg = ClientConfig {
                    addr,
                    io_timeout: Duration::from_secs(600),
                    retries: 4,
                    backoff_base: Duration::from_millis(5),
                    backoff_cap: Duration::from_millis(200),
                };
                let mut mine = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= work.len() {
                        break;
                    }
                    let req = verify_req(format!("{tag}-c{c}-{i}"), &suites[work[i]]);
                    let t = Instant::now();
                    let resp = request_with_retry(&cfg, &req)
                        .unwrap_or_else(|e| panic!("{tag} request {i}: {e}"));
                    assert_eq!(resp.exit, 0, "{tag} request {i}: {}", resp.output);
                    mine.push(t.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                }
                latencies.lock().unwrap().extend(mine);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let wall = start.elapsed();
    let mut all = Arc::try_unwrap(latencies).unwrap().into_inner().unwrap();
    all.sort_unstable();
    (all, wall)
}

fn counters(addr: &str) -> std::collections::HashMap<String, u64> {
    let cfg = ClientConfig { addr: addr.to_string(), ..ClientConfig::default() };
    let resp = request_with_retry(&cfg, &Request { id: "stats".into(), op: RequestOp::Stats })
        .expect("stats");
    resp.output
        .split_whitespace()
        .filter_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            Some((k.to_string(), v.parse().ok()?))
        })
        .collect()
}

fn report(phase: &str, n: usize, lat_us: &[u64], wall: Duration) {
    println!(
        "serve_load/{phase}: n={n} p50={:.2}ms p95={:.2}ms wall={:.1}ms throughput={:.1} req/s",
        percentile(lat_us, 50.0),
        percentile(lat_us, 95.0),
        wall.as_secs_f64() * 1000.0,
        n as f64 / wall.as_secs_f64().max(1e-9),
    );
}

fn main() {
    let fast = std::env::var("COBALT_BENCH_FAST").is_ok();
    let (n_suites, clients, warm_reps) = if fast { (6, 4, 1) } else { (24, 8, 2) };
    let jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4);

    let handle = Server::start(ServeConfig {
        jobs,
        queue_cap: 1024,
        exec: ExecConfig::default(),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();
    let suites = Arc::new((0..n_suites).map(suite).collect::<Vec<_>>());

    // Cold: every suite exactly once, all fingerprints distinct.
    let (cold_lat, cold_wall) =
        run_phase(&addr, &suites, (0..n_suites).collect(), clients, "cold");
    report("cold", n_suites, &cold_lat, cold_wall);
    let after_cold = counters(&addr);

    // Warm: every client replays the full suite list `warm_reps`
    // times; the daemon should serve (nearly) all of it from cache.
    let warm_work: Vec<usize> =
        (0..clients * warm_reps).flat_map(|_| 0..n_suites).collect();
    let warm_n = warm_work.len();
    let (warm_lat, warm_wall) = run_phase(&addr, &suites, warm_work, clients, "warm");
    report("warm", warm_n, &warm_lat, warm_wall);
    let after_warm = counters(&addr);

    let served_hot = (after_warm["cache_hits"] - after_cold["cache_hits"])
        + (after_warm["coalesced"] - after_cold["coalesced"]);
    let hit_rate = 100.0 * served_hot as f64 / warm_n as f64;
    println!(
        "serve_load/cache: warm_served_hot={served_hot}/{warm_n} ({hit_rate:.1}%) \
         fresh_total={} speedup_warm_p50={:.1}x",
        after_warm["fresh"],
        percentile(&cold_lat, 50.0) / percentile(&warm_lat, 50.0).max(1e-9),
    );

    handle.shutdown();
    let summary = handle.join();
    println!(
        "serve_load/daemon: received={} fresh={} cache_hits={} coalesced={} shed={} \
         errors={} cache_entries={}",
        summary.received,
        summary.fresh,
        summary.cache_hits,
        summary.coalesced,
        summary.shed,
        summary.errors,
        summary.cache_entries
    );
    assert!(
        hit_rate >= 90.0,
        "warm phase must be >=90% cache-served, got {hit_rate:.1}%"
    );
}
