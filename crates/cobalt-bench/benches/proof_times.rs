//! Experiment E1: per-optimization soundness-proof times — the
//! reproduction of the paper's §5.1 claim ("3 to 104 seconds, with an
//! average of 28 seconds" on Simplify/2003 hardware).
//!
//! One benchmark per optimization and analysis; the summary table the
//! paper reports is printed by `cargo run --release --example prove_all`.

use cobalt_dsl::LabelEnv;
use cobalt_verify::{SemanticMeanings, Verifier};
use cobalt_support::bench::Bench;
use cobalt_support::{bench_group, bench_main};

fn verifier() -> Verifier {
    Verifier::new(LabelEnv::standard(), SemanticMeanings::standard())
}

fn bench_proof_times(c: &mut Bench) {
    let v = verifier();
    let mut group = c.benchmark_group("proof_times");
    group.sample_size(10);
    for analysis in cobalt_opts::all_analyses() {
        group.bench_function(format!("analysis/{}", analysis.name), |b| {
            b.iter(|| {
                let report = v.verify_analysis(&analysis).expect("encodable");
                assert!(report.all_proved());
                report.outcomes.len()
            })
        });
    }
    for opt in cobalt_opts::all_optimizations() {
        group.bench_function(format!("opt/{}", opt.name), |b| {
            b.iter(|| {
                let report = v.verify_optimization(&opt).expect("encodable");
                assert!(report.all_proved());
                report.outcomes.len()
            })
        });
    }
    // The rejection path (paper §6): how long until the buggy variant's
    // failed obligation surfaces.
    for opt in cobalt_opts::buggy_optimizations() {
        group.bench_function(format!("reject/{}", opt.name), |b| {
            b.iter(|| {
                let report = v.verify_optimization(&opt).expect("encodable");
                assert!(!report.all_proved());
                report.failures().len()
            })
        });
    }
    group.finish();
}

bench_group!(benches, bench_proof_times);
bench_main!(benches);
