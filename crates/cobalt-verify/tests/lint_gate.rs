//! The pre-verification lint gate: structurally malformed rules are
//! rejected with named diagnostics before any obligation reaches the
//! prover, in well under a millisecond, and lint panics are isolated.

use cobalt_dsl::{
    BasePat, ConstPat, Direction, ExprPat, ForwardWitness, Guard, GuardSpec, LabelEnv, LhsPat,
    Optimization, RegionGuard, StmtPat, TransformPattern, VarPat, Witness,
};
use cobalt_support::fault::with_faults;
use cobalt_verify::{SemanticMeanings, Verifier, VerifyError};
use std::time::{Duration, Instant};

/// A rule whose template uses `C`, which nothing binds (CL001).
fn malformed() -> Optimization {
    Optimization::new(
        "broken_prop",
        TransformPattern {
            direction: Direction::Forward,
            guard: GuardSpec::Region(RegionGuard {
                psi1: Guard::True,
                psi2: Guard::True,
            }),
            from: StmtPat::assign_pats("X", "E"),
            to: StmtPat::Assign(
                LhsPat::Var(VarPat::pat("X")),
                ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
            ),
            where_clause: Guard::True,
            witness: Witness::Forward(ForwardWitness::True),
        },
    )
}

fn verifier() -> Verifier {
    Verifier::new(LabelEnv::standard(), SemanticMeanings::standard())
}

#[test]
fn malformed_rule_rejected_without_prover_invocation() {
    // If any obligation reached the prover, the injected
    // `checker.obligation` panic would blow up the first attempt; the
    // gate must reject the rule before that point ever executes.
    let start = Instant::now();
    let err = with_faults("checker.obligation:panic@1", || {
        verifier().verify_optimization(&malformed())
    })
    .expect_err("gate must reject");
    let elapsed = start.elapsed();
    let VerifyError::Lint(diags) = err else {
        panic!("expected VerifyError::Lint, got {err}");
    };
    assert!(
        diags.iter().any(|d| d.code == "CL001"),
        "{}",
        diags.render_human()
    );
    assert!(
        elapsed < Duration::from_millis(1),
        "gate took {elapsed:?}, want <1ms"
    );
}

#[test]
fn clean_rule_passes_the_gate_and_proves() {
    let cp = cobalt_opts::const_prop();
    let report = verifier().verify_optimization(&cp).expect("gate clean");
    assert!(report.all_proved(), "{}", report.summary());
}

#[test]
fn warnings_do_not_gate() {
    // An unused psi1 binder is CL002 (warning): suspicious, but the
    // prover — not the linter — decides soundness.
    let rule = Optimization::new(
        "warned",
        TransformPattern {
            direction: Direction::Forward,
            guard: GuardSpec::Region(RegionGuard {
                psi1: Guard::Stmt(StmtPat::assign_pats("Y", "D")),
                psi2: Guard::True,
            }),
            from: StmtPat::assign_pats("X", "E"),
            to: StmtPat::assign_pats("X", "E"),
            where_clause: Guard::True,
            witness: Witness::Forward(ForwardWitness::True),
        },
    );
    let report = verifier().verify_optimization(&rule);
    assert!(report.is_ok(), "warnings must not reject: {report:?}");
}

#[test]
fn lint_panic_is_isolated_into_cl000() {
    let err = with_faults("lint.rule:panic@1", || {
        verifier().verify_optimization(&cobalt_opts::const_prop())
    })
    .expect_err("panicking lint must reject, not unwind");
    let VerifyError::Lint(diags) = err else {
        panic!("expected VerifyError::Lint");
    };
    assert!(
        diags.iter().any(|d| d.code == "CL000"),
        "{}",
        diags.render_human()
    );
}

#[test]
fn analysis_gate_rejects_unbound_defines() {
    use cobalt_dsl::{LabelArgPat, PureAnalysis};
    let broken = PureAnalysis {
        name: "broken_analysis".into(),
        guard: RegionGuard {
            psi1: Guard::Stmt(StmtPat::Decl(VarPat::pat("X"))),
            psi2: Guard::True,
        },
        defines: ("facts".into(), vec![LabelArgPat::Var(VarPat::pat("Q"))]),
        witness: ForwardWitness::True,
    };
    let err = verifier().verify_analysis(&broken).expect_err("gate");
    assert!(matches!(err, VerifyError::Lint(_)), "{err}");

    // The shipped taint analysis passes the gate and proves.
    let taint = cobalt_opts::taint_analysis();
    let report = verifier().verify_analysis(&taint).expect("gate clean");
    assert!(report.all_proved(), "{}", report.summary());
}
