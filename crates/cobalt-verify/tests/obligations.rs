//! Integration tests for the obligation builders and checker driver:
//! structure of the generated obligation sets, rejection reporting, and
//! the encodability error paths.

use cobalt_dsl::{
    BackwardWitness, BasePat, ConstPat, Direction, ExprPat, ForwardWitness, Guard, GuardSpec,
    LabelArgPat, LabelEnv, LhsPat, Optimization, RegionGuard, StmtPat, TransformPattern, VarPat,
    Witness,
};
use cobalt_verify::{obligations_for_optimization, SemanticMeanings, Verifier};

fn env() -> (LabelEnv, SemanticMeanings) {
    (LabelEnv::standard(), SemanticMeanings::standard())
}

fn const_prop_like() -> Optimization {
    Optimization::new(
        "cp",
        TransformPattern {
            direction: Direction::Forward,
            guard: GuardSpec::Region(RegionGuard {
                psi1: Guard::Stmt(StmtPat::Assign(
                    LhsPat::Var(VarPat::pat("Y")),
                    ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
                )),
                psi2: Guard::not_label("mayDef", vec![LabelArgPat::Var(VarPat::pat("Y"))]),
            }),
            from: StmtPat::Assign(
                LhsPat::Var(VarPat::pat("X")),
                ExprPat::Base(BasePat::Var(VarPat::pat("Y"))),
            ),
            to: StmtPat::Assign(
                LhsPat::Var(VarPat::pat("X")),
                ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
            ),
            where_clause: Guard::True,
            witness: Witness::Forward(ForwardWitness::VarEqConst(
                VarPat::pat("Y"),
                ConstPat::pat("C"),
            )),
        },
    )
}

#[test]
fn forward_obligation_set_structure() {
    let (defs, meanings) = env();
    let obls = obligations_for_optimization(&const_prop_like(), &defs, &meanings).unwrap();
    let ids: Vec<&str> = obls.iter().map(|o| o.id.as_str()).collect();
    // Exactly one F1 survives static filtering (only assign-const
    // statements can satisfy stmt(Y := C)).
    assert_eq!(ids.iter().filter(|i| i.starts_with("F1")).count(), 1);
    assert!(ids.contains(&"F1/assign_const"));
    // F2 covers every non-return statement shape.
    assert_eq!(ids.iter().filter(|i| i.starts_with("F2")).count(), 25);
    assert!(ids.contains(&"F3"));
}

#[test]
fn backward_obligation_set_structure() {
    let (defs, meanings) = env();
    let dae = cobalt_opts::dae();
    let obls = obligations_for_optimization(&dae, &defs, &meanings).unwrap();
    let ids: Vec<&str> = obls.iter().map(|o| o.id.as_str()).collect();
    assert!(ids.contains(&"B1"));
    // B2 skips statically-vacuous shapes (calls and pointer-reads are
    // never innocuous for the conservative mayUse).
    assert!(ids.iter().filter(|i| i.starts_with("B2")).count() >= 10);
    assert!(!ids.contains(&"B2/call_var"));
    // The enabling return shape is a B3 obligation.
    assert!(ids.contains(&"B3/return"));
}

#[test]
fn failed_obligations_report_counterexample_context() {
    let verifier = Verifier::new(LabelEnv::standard(), SemanticMeanings::standard());
    let report = verifier
        .verify_optimization(&cobalt_opts::buggy::load_elim_no_alias())
        .unwrap();
    assert!(!report.all_proved());
    let failed = report.outcomes.iter().find(|o| !o.proved).unwrap();
    assert!(
        failed.detail.contains("open branch") || failed.detail.contains("limit"),
        "{}",
        failed.detail
    );
    assert!(report.summary().contains('/'));
    assert!(!report.failures().is_empty());
}

#[test]
fn kind_conflicts_are_encoding_errors() {
    let (defs, meanings) = env();
    let bad = Optimization::new(
        "kind_conflict",
        TransformPattern {
            direction: Direction::Forward,
            guard: GuardSpec::Local,
            from: StmtPat::Assign(
                LhsPat::Var(VarPat::pat("X")),
                // X used as a constant too.
                ExprPat::Base(BasePat::Const(ConstPat::pat("X"))),
            ),
            to: StmtPat::Skip,
            where_clause: Guard::True,
            witness: Witness::Forward(ForwardWitness::True),
        },
    );
    let err = obligations_for_optimization(&bad, &defs, &meanings).unwrap_err();
    assert!(err.to_string().contains("both"));
}

#[test]
fn unsafe_templates_are_rejected_not_assumed() {
    let (defs, meanings) = env();
    // s' dereferences a pointer: the transformed program could fault
    // where the original did not, so the checker refuses to encode it
    // rather than assume success (paper footnote 6).
    let bad = Optimization::new(
        "unsafe_template",
        TransformPattern {
            direction: Direction::Forward,
            guard: GuardSpec::Local,
            from: StmtPat::Assign(LhsPat::Var(VarPat::pat("X")), ExprPat::Pat("E".into())),
            to: StmtPat::Assign(LhsPat::Var(VarPat::pat("X")), ExprPat::Deref(VarPat::pat("P"))),
            where_clause: Guard::True,
            witness: Witness::Forward(ForwardWitness::True),
        },
    );
    let err = obligations_for_optimization(&bad, &defs, &meanings).unwrap_err();
    assert!(err.to_string().contains("template"), "{err}");
}

#[test]
fn wrong_witness_direction_is_an_error() {
    let (defs, meanings) = env();
    let mut opt = const_prop_like();
    opt.pattern.witness = Witness::Backward(BackwardWitness::Identical);
    assert!(obligations_for_optimization(&opt, &defs, &meanings).is_err());
}

#[test]
fn a_wrong_witness_fails_rather_than_errors() {
    // A witness that is simply false for the pattern: encodable, but
    // the proof fails — the checker distinguishes "cannot encode" from
    // "not sound as written".
    let (defs, meanings) = env();
    let mut opt = const_prop_like();
    opt.pattern.witness = Witness::Forward(ForwardWitness::VarEqVar(
        VarPat::pat("X"),
        VarPat::pat("Y"),
    ));
    let obls = obligations_for_optimization(&opt, &defs, &meanings).unwrap();
    let verifier = Verifier::new(defs, meanings);
    let report = verifier.verify_optimization(&opt).unwrap();
    assert!(!report.all_proved());
    assert!(!obls.is_empty());
}

#[test]
fn semantic_labels_without_meanings_are_conservative() {
    // With no registered meanings, notTainted-based reasoning yields
    // "absent" labels; the pointer-aware suite must still verify,
    // because ¬notTainted ≡ true is the conservative direction.
    let verifier = Verifier::new(LabelEnv::standard(), SemanticMeanings::none());
    let report = verifier
        .verify_optimization(&cobalt_opts::const_prop())
        .unwrap();
    assert!(report.all_proved(), "{:?}", report.failures());
}

#[test]
fn verified_analysis_unlocks_dependent_optimizations() {
    // The trust chain of paper §2.4: start with NO semantic meanings,
    // verify the taint analysis, register its meaning, and only then
    // does the pointer-aware load elimination have the facts its proof
    // relies on. (load_elim verifies either way — absent labels are the
    // conservative direction — so the check here is that registration
    // goes through the verified path and the registered meaning is the
    // analysis's own witness.)
    let mut verifier = Verifier::new(LabelEnv::standard(), SemanticMeanings::none());
    let report = verifier
        .verify_and_register_analysis(&cobalt_opts::taint_analysis())
        .unwrap();
    assert!(report.all_proved(), "{:?}", report.failures());
    let report = verifier
        .verify_optimization(&cobalt_opts::load_elim())
        .unwrap();
    assert!(report.all_proved(), "{:?}", report.failures());
}

#[test]
fn suite_verifies_under_conservative_labels_too() {
    // Paper §2.1.3 vs §2.4: the suite proves under the fully
    // conservative mayDef/mayUse as well — pointer information only
    // buys precision, never soundness.
    let verifier = Verifier::new(LabelEnv::conservative(), SemanticMeanings::none());
    for opt in [
        cobalt_opts::const_prop(),
        cobalt_opts::copy_prop(),
        cobalt_opts::cse(),
        cobalt_opts::dae(),
    ] {
        let report = verifier.verify_optimization(&opt).unwrap();
        assert!(
            report.all_proved(),
            "{} under conservative labels: {:?}",
            opt.name,
            report.failures()
        );
    }
}
