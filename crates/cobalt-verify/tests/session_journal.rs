//! Resumable-session integration tests: fingerprint invalidation,
//! byte-for-byte cache reuse, and escalation-state resume across the
//! journal (DESIGN.md §10).

use cobalt_dsl::{Guard, LabelEnv, Optimization};
use cobalt_logic::Limits;
use cobalt_support::journal::Journal;
use cobalt_verify::{ResumeMode, RetryPolicy, SemanticMeanings, Session, Verifier};
use std::path::PathBuf;

fn tmp_journal(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "cobalt_session_{}_{name}.cobj",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    path
}

fn verifier() -> Verifier {
    Verifier::new(LabelEnv::standard(), SemanticMeanings::standard())
}

/// All journal payloads currently on disk, as strings, keyed by the
/// rule name embedded in each record.
fn payloads_by_rule(path: &PathBuf) -> Vec<(String, String)> {
    let opened = Journal::open(path).expect("journal reopens");
    assert!(!opened.report.corrupted(), "{:?}", opened.report);
    opened
        .records
        .iter()
        .map(|r| {
            let text = String::from_utf8(r.clone()).expect("records are utf-8");
            let rule = text
                .split('\t')
                .find_map(|f| f.strip_prefix("rule="))
                .expect("record carries its rule")
                .to_string();
            (rule, text)
        })
        .collect()
}

/// Mutating one rule in the registry invalidates exactly that rule's
/// cache entries: on resume its obligations re-prove fresh, while every
/// other rule's outcomes are replayed — and their journal records are
/// carried over byte-for-byte.
#[test]
fn fingerprint_invalidation_is_per_rule_and_cache_reuse_is_byte_for_byte() {
    let path = tmp_journal("invalidation");
    let registry = cobalt_opts::all_optimizations();
    assert!(registry.len() >= 3, "need a real registry for this test");

    let mut session = Session::with_journal(verifier(), &path, ResumeMode::Resume).unwrap();
    for opt in &registry {
        let report = session.verify_optimization(opt).unwrap();
        assert!(report.all_proved(), "{}", report.summary());
        assert_eq!(report.cached_count(), 0, "cold run: nothing cached");
    }
    session.finish();
    let before = payloads_by_rule(&path);

    // Mutate one rule: conjoin a vacuous `true` onto its where-clause.
    // Semantically identical (it still proves), structurally a
    // different AST — exactly the kind of change a fingerprint must
    // catch.
    let mutated_name = registry[1].name.clone();
    let mutated_registry: Vec<Optimization> = registry
        .iter()
        .map(|opt| {
            if opt.name != mutated_name {
                return opt.clone();
            }
            let mut m = opt.clone();
            m.pattern.where_clause =
                Guard::and([m.pattern.where_clause.clone(), Guard::True]);
            m
        })
        .collect();

    let mut session = Session::with_journal(verifier(), &path, ResumeMode::Resume).unwrap();
    for opt in &mutated_registry {
        let report = session.verify_optimization(opt).unwrap();
        assert!(report.all_proved(), "{}", report.summary());
        if opt.name == mutated_name {
            assert_eq!(
                report.cached_count(),
                0,
                "{}: mutated rule must re-prove every obligation",
                opt.name
            );
            assert!(report.summary().contains("obligations proved"));
        } else {
            assert_eq!(
                report.cached_count(),
                report.outcomes.len(),
                "{}: untouched rule must be fully cached: {}",
                opt.name,
                report.summary()
            );
            assert!(
                report.summary().contains("cached"),
                "{}",
                report.summary()
            );
        }
    }
    session.finish();
    let after = payloads_by_rule(&path);

    // Byte-for-byte: every record of every *untouched* rule survives
    // compaction unchanged.
    for name in registry.iter().map(|o| &o.name).filter(|n| **n != mutated_name) {
        let olds: Vec<&String> = before.iter().filter(|(r, _)| r == name).map(|(_, t)| t).collect();
        let news: Vec<&String> = after.iter().filter(|(r, _)| r == name).map(|(_, t)| t).collect();
        assert!(!olds.is_empty(), "{name}: rule journaled in run 1");
        assert_eq!(olds, news, "{name}: cached records must be reused byte-for-byte");
    }
    // And the mutated rule's records were all replaced (fingerprints
    // differ, so the old ones were dropped at compaction).
    let old_mutated: Vec<&String> = before
        .iter()
        .filter(|(r, _)| *r == mutated_name)
        .map(|(_, t)| t)
        .collect();
    let new_mutated: Vec<&String> = after
        .iter()
        .filter(|(r, _)| *r == mutated_name)
        .map(|(_, t)| t)
        .collect();
    assert_eq!(old_mutated.len(), new_mutated.len());
    for (old, new) in old_mutated.iter().zip(&new_mutated) {
        assert_ne!(old, new, "{mutated_name}: records must carry new fingerprints");
    }
    std::fs::remove_file(&path).ok();
}

/// A fully-warm resume replays the entire suite from the journal: every
/// outcome is `cached`, no prover attempt is made this run.
#[test]
fn warm_resume_replays_everything_without_proving() {
    let path = tmp_journal("warm");
    let analyses = cobalt_opts::all_analyses();
    let opts = cobalt_opts::all_optimizations();

    let mut cold = Session::with_journal(verifier(), &path, ResumeMode::Resume).unwrap();
    for a in &analyses {
        assert!(cold.verify_analysis(a).unwrap().all_proved());
    }
    for o in &opts {
        assert!(cold.verify_optimization(o).unwrap().all_proved());
    }
    cold.finish();

    let mut warm = Session::with_journal(verifier(), &path, ResumeMode::Resume).unwrap();
    for a in &analyses {
        let report = warm.verify_analysis(a).unwrap();
        assert!(report.all_proved());
        assert!(report.outcomes.iter().all(|o| o.cached), "{}", report.summary());
        assert_eq!(report.fresh_proved_count(), 0);
    }
    for o in &opts {
        let report = warm.verify_optimization(o).unwrap();
        assert!(report.all_proved());
        assert!(report.outcomes.iter().all(|o| o.cached), "{}", report.summary());
    }
    assert!(warm.degraded().is_none());
    std::fs::remove_file(&path).ok();
}

/// `ResumeMode::Fresh` discards the cache: the run after a fresh run is
/// cold again until it re-journals.
#[test]
fn fresh_mode_discards_the_cache() {
    let path = tmp_journal("fresh");
    let opt = cobalt_opts::all_optimizations().remove(0);

    let mut first = Session::with_journal(verifier(), &path, ResumeMode::Resume).unwrap();
    assert_eq!(first.verify_optimization(&opt).unwrap().cached_count(), 0);
    first.finish();

    let mut fresh = Session::with_journal(verifier(), &path, ResumeMode::Fresh).unwrap();
    let report = fresh.verify_optimization(&opt).unwrap();
    assert_eq!(report.cached_count(), 0, "fresh session must not reuse");
    assert!(report.all_proved());
    std::fs::remove_file(&path).ok();
}

/// Escalation state resumes: an obligation whose first run exhausted
/// the (degenerate) tier 0 resumes at tier 1 — observable because the
/// resumed run proves it in exactly one attempt, while a cold run under
/// the same policy needs two.
#[test]
fn resource_limited_failures_resume_escalation_at_the_recorded_tier() {
    let path = tmp_journal("escalation");
    let zero = Limits {
        max_splits: 0,
        max_inst_rounds: 0,
        max_terms: 0,
        deadline: None,
    };
    let two_tier = RetryPolicy {
        tiers: vec![zero.clone(), Limits::default()],
        report_deadline: None,
    };
    let opt = cobalt_opts::all_optimizations().remove(0);

    // Control: cold run under the two-tier policy needs 2 attempts per
    // obligation (tier 0 is degenerate and always resource-limits).
    let control = verifier()
        .with_retry_policy(two_tier.clone())
        .verify_optimization(&opt)
        .unwrap();
    assert!(control.all_proved());
    assert!(control.outcomes.iter().all(|o| o.attempts == 2), "{:#?}", control.outcomes);

    // Run 1: emulate a kill mid-escalation, deterministically. The
    // policy must keep the same tier list (tiers are fingerprint
    // inputs; the report deadline is not), so the kill comes from a
    // 60ms report deadline plus an injected 150ms delay at the
    // obligation fault point: the first attempt (tier 0) starts well
    // inside the budget, the delay then outlives the deadline, and
    // escalation is cut off with tier=1 recorded for obligation 0
    // while the rest never start (attempts=0, tier=0).
    let mut killed = Session::with_journal(
        verifier().with_retry_policy(
            two_tier
                .clone()
                .with_report_deadline(std::time::Duration::from_millis(60)),
        ),
        &path,
        ResumeMode::Resume,
    )
    .unwrap();
    let report = cobalt_support::fault::with_faults("checker.obligation:delay_ms@150", || {
        killed.verify_optimization(&opt).unwrap()
    });
    killed.finish();
    assert!(!report.all_proved(), "the deadline must cut the run short");
    assert!(report.only_resource_limited_failures(), "{:#?}", report.outcomes);
    let first = &report.outcomes[0];
    assert_eq!(
        first.attempts, 1,
        "first obligation must have exhausted exactly tier 0: {first:#?}"
    );

    // Run 2: same tiers, no deadline, no fault. The first obligation
    // resumes at tier 1 (one attempt); obligations the deadline
    // prevented from ever starting (attempts=0, tier=0) run cold (two
    // attempts).
    let mut resumed =
        Session::with_journal(verifier().with_retry_policy(two_tier), &path, ResumeMode::Resume)
            .unwrap();
    let report = resumed.verify_optimization(&opt).unwrap();
    resumed.finish();
    assert!(report.all_proved(), "{}", report.summary());
    assert_eq!(
        report.outcomes[0].attempts, 1,
        "resumed obligation skips the exhausted tier: {:#?}",
        report.outcomes[0]
    );
    assert!(
        report.outcomes[1..].iter().all(|o| o.attempts == 2),
        "never-attempted obligations start cold: {:#?}",
        report.outcomes
    );
    std::fs::remove_file(&path).ok();
}

/// Sessions without a journal behave exactly like the bare verifier.
#[test]
fn sessionless_verification_is_transparent() {
    let opt = cobalt_opts::all_optimizations().remove(0);
    let bare = verifier().verify_optimization(&opt).unwrap();
    let mut session = Session::new(verifier());
    let via_session = session.verify_optimization(&opt).unwrap();
    session.finish();
    assert!(session.degraded().is_none());
    assert_eq!(bare.outcomes.len(), via_session.outcomes.len());
    for (a, b) in bare.outcomes.iter().zip(&via_session.outcomes) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.proved, b.proved);
        assert!(!b.cached);
    }
}
