//! Construction of the optimization-specific proof obligations
//! (paper §4.2 and §4.3).
//!
//! * Forward region patterns: **F1** (the enabling statement establishes
//!   the witness), **F2** (innocuous statements preserve it), **F3**
//!   (under the witness, `s` and `s'` have the same effect).
//! * Backward region patterns: **B1** (executing `s`/`s'` establishes
//!   the backward witness), **B2** (innocuous statements preserve it in
//!   lockstep), **B3** (the enabling statement re-unifies the states).
//! * Local rewrites (extension): **F3** only.
//! * Pure analyses: **A1**/**A2**, the F1/F2 of the defined label's
//!   witness.
//!
//! F1, F2, B2, B3 and A1, A2 quantify over *all* statements satisfying a
//! guard; the builders realize this as one obligation per statement
//! shape (see [`crate::enc`]), skipping shapes whose guard is statically
//! false.
//!
//! # Bank ownership ([`BankMode`])
//!
//! Obligation construction is a two-step affair: rule parts are first
//! turned into *specs* — an identifier plus an encoding closure — and
//! then every spec of a batch is *prepared* into a [`Prepared`] under
//! a [`BankMode`]. Under [`BankMode::BatchShared`] (the default) the
//! whole batch encodes into one solver whose bank is then frozen as a
//! shared immutable base; each obligation's solver holds only a cheap
//! private overlay for search-time terms. Under
//! [`BankMode::PerObligation`] every obligation interns its own bank
//! from scratch (the original behavior, kept as a differential-testing
//! oracle). The two modes produce identical rendered formulas, reports,
//! and session fingerprints by construction — the encoder's fresh-name
//! counter restarts per spec and nothing user-visible prints raw term
//! ids, so the bank layout underneath an obligation is unobservable.

use crate::enc::{Bind, Enc, RhsShape, SemanticMeanings, Shape, TaintMode};
use crate::error::VerifyError;
use crate::guardenc::GuardCtx;
use crate::vocab::{self, Kinds};
use cobalt_dsl::{
    BackwardWitness, Direction, ForwardWitness, Guard, GuardSpec, LabelEnv, Optimization,
    PureAnalysis, RegionGuard, VarPat, Witness,
};
use cobalt_logic::TermId;
use cobalt_logic::{Formula, ProofTask, Solver, TermBank};
use std::sync::Arc;

/// How the obligations of one batch own their term banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BankMode {
    /// Every obligation interns its own bank from scratch — the
    /// original behavior. Kept as the oracle the shared mode is
    /// differentially tested against.
    PerObligation,
    /// The batch's vocabulary is interned once into a shared immutable
    /// base bank; each obligation's solver gets a private overlay for
    /// its search-time terms (skolems, instances). Output-identical to
    /// [`BankMode::PerObligation`]; only the allocation work differs.
    #[default]
    BatchShared,
}

/// A fully prepared obligation: its own solver (holding the term bank
/// the task refers to) plus the task.
pub struct Prepared {
    /// Obligation identifier, e.g. `"F2/assign_var"`.
    pub id: String,
    /// The solver to run the task with.
    pub solver: Solver,
    /// The proof task.
    pub task: ProofTask,
}

impl std::fmt::Debug for Prepared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Prepared({})", self.id)
    }
}

type BuildFn =
    dyn Fn(&mut Enc<'_>, &Bind) -> Result<Option<(Vec<Formula>, Formula)>, VerifyError>;

/// One obligation recipe. The closure is `Fn`, not `FnOnce`: under
/// [`BankMode::BatchShared`] it runs twice — once into the shared
/// vocabulary solver, once into the obligation's own overlay solver.
struct Spec {
    id: String,
    taint: TaintMode,
    build: Box<BuildFn>,
}

/// Runs one spec's encoding pipeline into `solver`: encode, then append
/// the environment-injectivity instances and the encoder's accumulated
/// background hypotheses. `None` means the spec's guard is statically
/// false and the obligation is skipped.
fn encode_into(
    solver: &mut Solver,
    spec: &Spec,
    defs: &LabelEnv,
    meanings: &SemanticMeanings,
    kinds: &Kinds,
) -> Result<Option<ProofTask>, VerifyError> {
    let (mut enc, bind) = Enc::new(solver, defs, meanings, spec.taint, kinds);
    match (spec.build)(&mut enc, &bind)? {
        None => Ok(None),
        Some((mut hyps, goal)) => {
            enc.emit_env_injectivity_all();
            hyps.append(&mut enc.extra);
            Ok(Some(ProofTask {
                hypotheses: hyps,
                goal,
            }))
        }
    }
}

/// Prepares a batch of specs under the given [`BankMode`].
///
/// Shared mode encodes every spec — once each, in batch order — into a
/// single solver, so later obligations resolve the batch's common
/// vocabulary against the memo instead of re-interning it. The bank is
/// then frozen and each obligation gets its own overlay solver: the
/// task's term ids stay valid (the frozen base contains them), search
/// mints skolems and instances privately per obligation, and parallel
/// workers share the base read-only. Each obligation's rendered
/// formulas — and therefore its session fingerprint — are identical to
/// fresh mode's, because the encoder restarts fresh-name generation
/// per spec and nothing user-visible ever prints a raw term id; the
/// prover likewise only ever walks the obligation's own relevant set,
/// so sibling terms in the base are invisible to the search.
fn prepare(
    specs: Vec<Spec>,
    defs: &LabelEnv,
    meanings: &SemanticMeanings,
    kinds: &Kinds,
    mode: BankMode,
) -> Result<Vec<Prepared>, VerifyError> {
    let mut out = Vec::new();
    match mode {
        BankMode::PerObligation => {
            for spec in specs {
                let mut solver = Solver::new();
                if let Some(task) = encode_into(&mut solver, &spec, defs, meanings, kinds)? {
                    out.push(Prepared {
                        id: spec.id,
                        solver,
                        task,
                    });
                }
            }
        }
        BankMode::BatchShared => {
            let mut shared = Solver::new();
            let mut built: Vec<(String, ProofTask)> = Vec::new();
            for spec in &specs {
                if let Some(task) = encode_into(&mut shared, spec, defs, meanings, kinds)? {
                    built.push((spec.id.clone(), task));
                }
            }
            let frozen: Arc<TermBank> = std::mem::take(&mut shared.bank).freeze();
            for (id, task) in built {
                out.push(Prepared {
                    id,
                    solver: Solver::with_base_bank(Arc::clone(&frozen)),
                    task,
                });
            }
        }
    }
    Ok(out)
}

fn is_statically_false(f: &Formula) -> bool {
    matches!(f, Formula::False)
}

/// The variable terms a forward witness asserts `notPointedTo` of; when
/// the witness is a hypothesis, these enable the call frame conditions.
fn witness_taint_vars(w: &ForwardWitness, bind: &Bind) -> Vec<TermId> {
    match w {
        ForwardWitness::NotPointedTo(VarPat::Pat(p)) => {
            bind.get(p).copied().into_iter().collect()
        }
        ForwardWitness::And(ws) => ws
            .iter()
            .flat_map(|w| witness_taint_vars(w, bind))
            .collect(),
        _ => vec![],
    }
}

/// Rejects rewrite templates whose symbolic execution would need
/// success assumptions we are not entitled to make for the *transformed*
/// program (footnote 6 of the paper): dereferences and operator
/// applications on the right-hand side of `s'`.
fn check_template_safe(shape: &Shape) -> Result<(), VerifyError> {
    let bad = |r: &RhsShape| {
        matches!(r, RhsShape::Deref(_) | RhsShape::Op(_, _))
    };
    match shape {
        Shape::AssignDeref(_, _) => Err(VerifyError::Unsupported(
            "pointer store in rewrite template".into(),
        )),
        Shape::AssignVar(_, r) if bad(r) => Err(VerifyError::Unsupported(
            "dereference or operator application in rewrite template".into(),
        )),
        _ => Ok(()),
    }
}

/// Builds the obligations of an optimization under the default
/// [`BankMode`].
///
/// # Errors
///
/// Returns [`VerifyError`] if the optimization cannot be encoded (its
/// proofs then cannot be attempted at all).
pub fn obligations_for_optimization(
    opt: &Optimization,
    defs: &LabelEnv,
    meanings: &SemanticMeanings,
) -> Result<Vec<Prepared>, VerifyError> {
    obligations_for_optimization_with(opt, defs, meanings, BankMode::default())
}

/// Builds the obligations of an optimization under an explicit
/// [`BankMode`].
///
/// # Errors
///
/// Returns [`VerifyError`] if the optimization cannot be encoded.
pub fn obligations_for_optimization_with(
    opt: &Optimization,
    defs: &LabelEnv,
    meanings: &SemanticMeanings,
    mode: BankMode,
) -> Result<Vec<Prepared>, VerifyError> {
    let kinds = vocab::of_optimization(opt)?;
    let pat = &opt.pattern;
    let mut specs = Vec::new();
    match (&pat.guard, pat.direction) {
        (GuardSpec::Local, _) => {
            specs.push(f3_spec(opt)?);
        }
        (GuardSpec::Region(rg), Direction::Forward) => {
            let Witness::Forward(w) = &pat.witness else {
                return Err(VerifyError::Unsupported(
                    "forward pattern requires a forward witness".into(),
                ));
            };
            specs.extend(region_f1_f2("F1", &rg.psi1, None, w));
            specs.extend(region_f1_f2("F2", &rg.psi2, Some(w), w));
            specs.push(f3_spec(opt)?);
        }
        (GuardSpec::Region(rg), Direction::Backward) => {
            let Witness::Backward(w) = &pat.witness else {
                return Err(VerifyError::Unsupported(
                    "backward pattern requires a backward witness".into(),
                ));
            };
            // B1.
            let w1 = w.clone();
            let from = pat.from.clone();
            let to = pat.to.clone();
            let where_clause = pat.where_clause.clone();
            specs.push(Spec {
                id: "B1".into(),
                taint: TaintMode::AbsentFalse,
                build: Box::new(move |enc, bind| {
                    let st0 = enc.init_state("0");
                    let from_shape = enc.shape_of_pattern(&from, bind)?;
                    let to_shape = enc.shape_of_pattern(&to, bind)?;
                    check_template_safe(&to_shape)?;
                    let st_old = enc.step(&from_shape, &st0, &[], true)?;
                    let st_new = enc.step(&to_shape, &st0, &[], false)?;
                    let ctx = GuardCtx {
                        shape: &from_shape,
                        st: st0,
                        steps: vec![(st0, st_old)],
                    };
                    let (wc, _) = enc.encode_guard(&where_clause, &ctx, bind, false)?;
                    if is_statically_false(&wc) {
                        return Ok(None);
                    }
                    let goal = enc.bwd_witness(&w1, &st_old, &st_new, bind)?;
                    Ok(Some((vec![wc], goal)))
                }),
            });
            // B2 and B3, per shape.
            specs.extend(backward_shapes("B2", &rg.psi2, w, false));
            specs.extend(backward_shapes("B3", &rg.psi1, w, true));
        }
    }
    prepare(specs, defs, meanings, &kinds, mode)
}

/// Builds A1/A2 for a pure analysis under the default [`BankMode`].
///
/// # Errors
///
/// Returns [`VerifyError`] if the analysis cannot be encoded.
pub fn obligations_for_analysis(
    analysis: &PureAnalysis,
    defs: &LabelEnv,
    meanings: &SemanticMeanings,
) -> Result<Vec<Prepared>, VerifyError> {
    obligations_for_analysis_with(analysis, defs, meanings, BankMode::default())
}

/// Builds A1/A2 for a pure analysis under an explicit [`BankMode`].
///
/// # Errors
///
/// Returns [`VerifyError`] if the analysis cannot be encoded.
pub fn obligations_for_analysis_with(
    analysis: &PureAnalysis,
    defs: &LabelEnv,
    meanings: &SemanticMeanings,
    mode: BankMode,
) -> Result<Vec<Prepared>, VerifyError> {
    let kinds = vocab::of_analysis(analysis)?;
    let RegionGuard { psi1, psi2 } = &analysis.guard;
    let w = &analysis.witness;
    let mut specs = Vec::new();
    specs.extend(region_f1_f2("A1", psi1, None, w));
    specs.extend(region_f1_f2("A2", psi2, Some(w), w));
    prepare(specs, defs, meanings, &kinds, mode)
}

/// Shared spec builder for F1/F2/A1/A2: per shape, guard hypotheses
/// (+ the witness at the pre-state when `pre_witness` is set) entail
/// the witness at the post-state.
fn region_f1_f2(
    tag_prefix: &str,
    psi: &Guard,
    pre_witness: Option<&cobalt_dsl::ForwardWitness>,
    post_witness: &cobalt_dsl::ForwardWitness,
) -> Vec<Spec> {
    let mut out = Vec::new();
    for tag in Enc::shape_tags(false) {
        let psi = psi.clone();
        let pre_w = pre_witness.cloned();
        let post_w = post_witness.clone();
        out.push(Spec {
            id: format!("{tag_prefix}/{tag}"),
            taint: TaintMode::Semantic,
            build: Box::new(move |enc, bind| {
                let shape = enc.shape_by_tag(tag);
                let st0 = enc.init_state("0");
                let mut taints = enc.definite_taints(&psi, &shape, bind)?;
                if let Some(pw) = &pre_w {
                    taints.extend(witness_taint_vars(pw, bind));
                }
                let st1 = enc.step(&shape, &st0, &taints, true)?;
                let ctx = GuardCtx {
                    shape: &shape,
                    st: st0,
                    steps: vec![(st0, st1)],
                };
                let (g, _) = enc.encode_guard(&psi, &ctx, bind, false)?;
                if is_statically_false(&g) {
                    return Ok(None);
                }
                let mut hyps = vec![g];
                if let Some(pw) = &pre_w {
                    let f = enc.fwd_witness(pw, &st0, bind)?;
                    hyps.push(f);
                }
                let goal = enc.fwd_witness(&post_w, &st1, bind)?;
                Ok(Some((hyps, goal)))
            }),
        });
    }
    out
}

/// F3: under the witness (for region patterns) and the `where` clause,
/// `θ(s)` and `θ(s')` step the state identically.
fn f3_spec(opt: &Optimization) -> Result<Spec, VerifyError> {
    let pat = opt.pattern.clone();
    Ok(Spec {
        id: "F3".into(),
        taint: TaintMode::Semantic,
        build: Box::new(move |enc, bind| {
            let st0 = enc.init_state("0");
            let from_shape = enc.shape_of_pattern(&pat.from, bind)?;
            let to_shape = enc.shape_of_pattern(&pat.to, bind)?;
            check_template_safe(&to_shape)?;
            let mut hyps = Vec::new();
            let taints = enc.definite_taints(&pat.where_clause, &from_shape, bind)?;
            let st1 = enc.step(&from_shape, &st0, &taints, true)?;
            let st2 = enc.step(&to_shape, &st0, &taints, false)?;
            let ctx = GuardCtx {
                shape: &from_shape,
                st: st0,
                steps: vec![(st0, st1)],
            };
            let (wc, _) = enc.encode_guard(&pat.where_clause, &ctx, bind, false)?;
            if is_statically_false(&wc) {
                return Ok(None);
            }
            hyps.push(wc);
            if let (GuardSpec::Region(_), Witness::Forward(w)) = (&pat.guard, &pat.witness) {
                let f = enc.fwd_witness(w, &st0, bind)?;
                hyps.push(f);
            }
            let goal = enc.states_equal(&st1, &st2);
            Ok(Some((hyps, goal)))
        }),
    })
}

/// B2/B3 specs: per shape, lockstep execution of the same statement
/// from witness-related states.
fn backward_shapes(
    tag: &str,
    psi: &Guard,
    witness: &cobalt_dsl::BackwardWitness,
    enabling: bool,
) -> Vec<Spec> {
    let mut out = Vec::new();
    for name in Enc::shape_tags(enabling) {
        let psi = psi.clone();
        let w = witness.clone();
        out.push(Spec {
            id: format!("{tag}/{name}"),
            taint: TaintMode::AbsentFalse,
            build: Box::new(move |enc, bind| {
                let shape = enc.shape_by_tag(name);
                let st_old = enc.init_state("old");
                let st_new = enc.init_state("new");
                let pre_witness = enc.bwd_witness(&w, &st_old, &st_new, bind)?;
                if let Shape::Return(u) = shape {
                    // Enabling return: the returned values agree (the
                    // witnessing region ends with the activation; see
                    // DESIGN.md on the B3-return metatheorem).
                    let ctx = GuardCtx {
                        shape: &shape,
                        st: st_old,
                        steps: vec![],
                    };
                    let (g, _) = enc.encode_guard(&psi, &ctx, bind, false)?;
                    if is_statically_false(&g) {
                        return Ok(None);
                    }
                    let vo = enc.val(&st_old, u);
                    let vn = enc.val(&st_new, u);
                    return Ok(Some((vec![pre_witness, g], Formula::Eq(vo, vn))));
                }
                if let (Shape::Decl(dw), BackwardWitness::AgreeExcept(VarPat::Pat(p))) =
                    (&shape, &w)
                {
                    // The witnessing region lies between the transformed
                    // statement (which establishes that X is declared)
                    // and the enabling statement; re-declaring X would
                    // fault the original execution, so the obligation
                    // holds vacuously outside `w ≠ X` (see DESIGN.md).
                    if let Some(&x) = bind.get(p) {
                        enc.extra.push(Formula::ne(*dw, x));
                    }
                }
                let st1_old = enc.step(&shape, &st_old, &[], true)?;
                let st1_new = enc.step(&shape, &st_new, &[], false)?;
                let ctx = GuardCtx {
                    shape: &shape,
                    st: st_old,
                    steps: vec![(st_old, st1_old), (st_new, st1_new)],
                };
                let (g, _) = enc.encode_guard(&psi, &ctx, bind, false)?;
                if is_statically_false(&g) {
                    return Ok(None);
                }
                let goal = if enabling {
                    enc.states_equal(&st1_old, &st1_new)
                } else {
                    enc.bwd_witness(&w, &st1_old, &st1_new, bind)?
                };
                Ok(Some((vec![pre_witness, g], goal)))
            }),
        });
    }
    out
}
