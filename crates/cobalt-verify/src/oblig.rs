//! Construction of the optimization-specific proof obligations
//! (paper §4.2 and §4.3).
//!
//! * Forward region patterns: **F1** (the enabling statement establishes
//!   the witness), **F2** (innocuous statements preserve it), **F3**
//!   (under the witness, `s` and `s'` have the same effect).
//! * Backward region patterns: **B1** (executing `s`/`s'` establishes
//!   the backward witness), **B2** (innocuous statements preserve it in
//!   lockstep), **B3** (the enabling statement re-unifies the states).
//! * Local rewrites (extension): **F3** only.
//! * Pure analyses: **A1**/**A2**, the F1/F2 of the defined label's
//!   witness.
//!
//! F1, F2, B2, B3 and A1, A2 quantify over *all* statements satisfying a
//! guard; the builders realize this as one obligation per statement
//! shape (see [`crate::enc`]), skipping shapes whose guard is statically
//! false.

use crate::enc::{Bind, Enc, RhsShape, SemanticMeanings, Shape, TaintMode};
use crate::error::VerifyError;
use crate::guardenc::GuardCtx;
use crate::vocab::{self, Kinds};
use cobalt_dsl::{
    BackwardWitness, Direction, ForwardWitness, Guard, GuardSpec, LabelEnv, Optimization,
    PureAnalysis, RegionGuard, VarPat, Witness,
};
use cobalt_logic::TermId;
use cobalt_logic::{Formula, ProofTask, Solver};

/// A fully prepared obligation: its own solver (holding the term bank
/// the task refers to) plus the task.
pub struct Prepared {
    /// Obligation identifier, e.g. `"F2/assign_var"`.
    pub id: String,
    /// The solver to run the task with.
    pub solver: Solver,
    /// The proof task.
    pub task: ProofTask,
}

impl std::fmt::Debug for Prepared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Prepared({})", self.id)
    }
}

type BuildFn<'x> =
    dyn FnOnce(&mut Enc<'_>, &Bind) -> Result<Option<(Vec<Formula>, Formula)>, VerifyError> + 'x;

fn build(
    id: String,
    defs: &LabelEnv,
    meanings: &SemanticMeanings,
    mode: TaintMode,
    kinds: &Kinds,
    f: Box<BuildFn<'_>>,
) -> Result<Option<Prepared>, VerifyError> {
    let mut solver = Solver::new();
    let out = {
        let (mut enc, bind) = Enc::new(&mut solver, defs, meanings, mode, kinds);
        match f(&mut enc, &bind)? {
            None => None,
            Some((mut hyps, goal)) => {
                enc.emit_env_injectivity_all();
                hyps.append(&mut enc.extra);
                Some((hyps, goal))
            }
        }
    };
    Ok(out.map(|(hypotheses, goal)| Prepared {
        id,
        solver,
        task: ProofTask { hypotheses, goal },
    }))
}

fn is_statically_false(f: &Formula) -> bool {
    matches!(f, Formula::False)
}

/// The variable terms a forward witness asserts `notPointedTo` of; when
/// the witness is a hypothesis, these enable the call frame conditions.
fn witness_taint_vars(w: &ForwardWitness, bind: &Bind) -> Vec<TermId> {
    match w {
        ForwardWitness::NotPointedTo(VarPat::Pat(p)) => {
            bind.get(p).copied().into_iter().collect()
        }
        ForwardWitness::And(ws) => ws
            .iter()
            .flat_map(|w| witness_taint_vars(w, bind))
            .collect(),
        _ => vec![],
    }
}

/// Rejects rewrite templates whose symbolic execution would need
/// success assumptions we are not entitled to make for the *transformed*
/// program (footnote 6 of the paper): dereferences and operator
/// applications on the right-hand side of `s'`.
fn check_template_safe(shape: &Shape) -> Result<(), VerifyError> {
    let bad = |r: &RhsShape| {
        matches!(r, RhsShape::Deref(_) | RhsShape::Op(_, _))
    };
    match shape {
        Shape::AssignDeref(_, _) => Err(VerifyError::Unsupported(
            "pointer store in rewrite template".into(),
        )),
        Shape::AssignVar(_, r) if bad(r) => Err(VerifyError::Unsupported(
            "dereference or operator application in rewrite template".into(),
        )),
        _ => Ok(()),
    }
}

/// Builds the obligations of an optimization.
///
/// # Errors
///
/// Returns [`VerifyError`] if the optimization cannot be encoded (its
/// proofs then cannot be attempted at all).
pub fn obligations_for_optimization(
    opt: &Optimization,
    defs: &LabelEnv,
    meanings: &SemanticMeanings,
) -> Result<Vec<Prepared>, VerifyError> {
    let kinds = vocab::of_optimization(opt)?;
    let pat = &opt.pattern;
    let mut out = Vec::new();
    match (&pat.guard, pat.direction) {
        (GuardSpec::Local, _) => {
            out.extend(f3_obligation(opt, defs, meanings, &kinds)?);
        }
        (GuardSpec::Region(rg), Direction::Forward) => {
            let Witness::Forward(w) = &pat.witness else {
                return Err(VerifyError::Unsupported(
                    "forward pattern requires a forward witness".into(),
                ));
            };
            out.extend(region_f1_f2(
                "F1", &rg.psi1, None, w, defs, meanings, &kinds,
            )?);
            out.extend(region_f1_f2(
                "F2",
                &rg.psi2,
                Some(w),
                w,
                defs,
                meanings,
                &kinds,
            )?);
            out.extend(f3_obligation(opt, defs, meanings, &kinds)?);
        }
        (GuardSpec::Region(rg), Direction::Backward) => {
            let Witness::Backward(w) = &pat.witness else {
                return Err(VerifyError::Unsupported(
                    "backward pattern requires a backward witness".into(),
                ));
            };
            // B1.
            let w1 = w.clone();
            let from = pat.from.clone();
            let to = pat.to.clone();
            let where_clause = pat.where_clause.clone();
            if let Some(p) = build(
                "B1".into(),
                defs,
                meanings,
                TaintMode::AbsentFalse,
                &kinds,
                Box::new(move |enc, bind| {
                    let st0 = enc.init_state("0");
                    let from_shape = enc.shape_of_pattern(&from, bind)?;
                    let to_shape = enc.shape_of_pattern(&to, bind)?;
                    check_template_safe(&to_shape)?;
                    let st_old = enc.step(&from_shape, &st0, &[], true)?;
                    let st_new = enc.step(&to_shape, &st0, &[], false)?;
                    let ctx = GuardCtx {
                        shape: &from_shape,
                        st: st0,
                        steps: vec![(st0, st_old)],
                    };
                    let (wc, _) = enc.encode_guard(&where_clause, &ctx, bind, false)?;
                    if is_statically_false(&wc) {
                        return Ok(None);
                    }
                    let goal = enc.bwd_witness(&w1, &st_old, &st_new, bind)?;
                    Ok(Some((vec![wc], goal)))
                }),
            )? {
                out.push(p);
            }
            // B2 and B3, per shape.
            out.extend(backward_shapes("B2", &rg.psi2, w, false, defs, meanings, &kinds)?);
            out.extend(backward_shapes("B3", &rg.psi1, w, true, defs, meanings, &kinds)?);
        }
    }
    Ok(out)
}

/// Builds A1/A2 for a pure analysis.
///
/// # Errors
///
/// Returns [`VerifyError`] if the analysis cannot be encoded.
pub fn obligations_for_analysis(
    analysis: &PureAnalysis,
    defs: &LabelEnv,
    meanings: &SemanticMeanings,
) -> Result<Vec<Prepared>, VerifyError> {
    let kinds = vocab::of_analysis(analysis)?;
    let RegionGuard { psi1, psi2 } = &analysis.guard;
    let w = &analysis.witness;
    let mut out = Vec::new();
    out.extend(region_f1_f2("A1", psi1, None, w, defs, meanings, &kinds)?);
    out.extend(region_f1_f2("A2", psi2, Some(w), w, defs, meanings, &kinds)?);
    Ok(out)
}

/// Shared builder for F1/F2/A1/A2: per shape, guard hypotheses (+ the
/// witness at the pre-state when `pre_witness` is set) entail the
/// witness at the post-state.
fn region_f1_f2(
    tag_prefix: &str,
    psi: &Guard,
    pre_witness: Option<&cobalt_dsl::ForwardWitness>,
    post_witness: &cobalt_dsl::ForwardWitness,
    defs: &LabelEnv,
    meanings: &SemanticMeanings,
    kinds: &Kinds,
) -> Result<Vec<Prepared>, VerifyError> {
    let mut out = Vec::new();
    for tag in Enc::shape_tags(false) {
        let psi = psi.clone();
        let pre_w = pre_witness.cloned();
        let post_w = post_witness.clone();
        let prepared = build(
            format!("{tag}/{name}", tag = tag, name = ""),
            defs,
            meanings,
            TaintMode::Semantic,
            kinds,
            Box::new(move |enc, bind| {
                let shape = enc.shape_by_tag(tag);
                let st0 = enc.init_state("0");
                let mut taints = enc.definite_taints(&psi, &shape, bind)?;
                if let Some(pw) = &pre_w {
                    taints.extend(witness_taint_vars(pw, bind));
                }
                let st1 = enc.step(&shape, &st0, &taints, true)?;
                let ctx = GuardCtx {
                    shape: &shape,
                    st: st0,
                    steps: vec![(st0, st1)],
                };
                let (g, _) = enc.encode_guard(&psi, &ctx, bind, false)?;
                if is_statically_false(&g) {
                    return Ok(None);
                }
                let mut hyps = vec![g];
                if let Some(pw) = &pre_w {
                    let f = enc.fwd_witness(pw, &st0, bind)?;
                    hyps.push(f);
                }
                let goal = enc.fwd_witness(&post_w, &st1, bind)?;
                Ok(Some((hyps, goal)))
            }),
        )?;
        if let Some(mut p) = prepared {
            p.id = format!("{tag_prefix}/{tag}", tag_prefix = tag_prefix);
            out.push(p);
        }
    }
    Ok(out)
}

/// F3: under the witness (for region patterns) and the `where` clause,
/// `θ(s)` and `θ(s')` step the state identically.
fn f3_obligation(
    opt: &Optimization,
    defs: &LabelEnv,
    meanings: &SemanticMeanings,
    kinds: &Kinds,
) -> Result<Vec<Prepared>, VerifyError> {
    let pat = opt.pattern.clone();
    let prepared = build(
        "F3".into(),
        defs,
        meanings,
        TaintMode::Semantic,
        kinds,
        Box::new(move |enc, bind| {
            let st0 = enc.init_state("0");
            let from_shape = enc.shape_of_pattern(&pat.from, bind)?;
            let to_shape = enc.shape_of_pattern(&pat.to, bind)?;
            check_template_safe(&to_shape)?;
            let mut hyps = Vec::new();
            let taints = enc.definite_taints(&pat.where_clause, &from_shape, bind)?;
            let st1 = enc.step(&from_shape, &st0, &taints, true)?;
            let st2 = enc.step(&to_shape, &st0, &taints, false)?;
            let ctx = GuardCtx {
                shape: &from_shape,
                st: st0,
                steps: vec![(st0, st1)],
            };
            let (wc, _) = enc.encode_guard(&pat.where_clause, &ctx, bind, false)?;
            if is_statically_false(&wc) {
                return Ok(None);
            }
            hyps.push(wc);
            if let (GuardSpec::Region(_), Witness::Forward(w)) = (&pat.guard, &pat.witness) {
                let f = enc.fwd_witness(w, &st0, bind)?;
                hyps.push(f);
            }
            let goal = enc.states_equal(&st1, &st2);
            Ok(Some((hyps, goal)))
        }),
    )?;
    Ok(prepared.into_iter().collect())
}

/// B2/B3: per shape, lockstep execution of the same statement from
/// witness-related states.
fn backward_shapes(
    tag: &str,
    psi: &Guard,
    witness: &cobalt_dsl::BackwardWitness,
    enabling: bool,
    defs: &LabelEnv,
    meanings: &SemanticMeanings,
    kinds: &Kinds,
) -> Result<Vec<Prepared>, VerifyError> {
    let mut out = Vec::new();
    for name in Enc::shape_tags(enabling) {
        let psi = psi.clone();
        let w = witness.clone();
        let prepared = build(
            format!("{tag}/{name}"),
            defs,
            meanings,
            TaintMode::AbsentFalse,
            kinds,
            Box::new(move |enc, bind| {
                let shape = enc.shape_by_tag(name);
                let st_old = enc.init_state("old");
                let st_new = enc.init_state("new");
                let pre_witness = enc.bwd_witness(&w, &st_old, &st_new, bind)?;
                if let Shape::Return(u) = shape {
                    // Enabling return: the returned values agree (the
                    // witnessing region ends with the activation; see
                    // DESIGN.md on the B3-return metatheorem).
                    let ctx = GuardCtx {
                        shape: &shape,
                        st: st_old,
                        steps: vec![],
                    };
                    let (g, _) = enc.encode_guard(&psi, &ctx, bind, false)?;
                    if is_statically_false(&g) {
                        return Ok(None);
                    }
                    let vo = enc.val(&st_old, u);
                    let vn = enc.val(&st_new, u);
                    return Ok(Some((vec![pre_witness, g], Formula::Eq(vo, vn))));
                }
                if let (Shape::Decl(w), BackwardWitness::AgreeExcept(VarPat::Pat(p))) =
                    (&shape, &w)
                {
                    // The witnessing region lies between the transformed
                    // statement (which establishes that X is declared)
                    // and the enabling statement; re-declaring X would
                    // fault the original execution, so the obligation
                    // holds vacuously outside `w ≠ X` (see DESIGN.md).
                    if let Some(&x) = bind.get(p) {
                        enc.extra.push(Formula::ne(*w, x));
                    }
                }
                let st1_old = enc.step(&shape, &st_old, &[], true)?;
                let st1_new = enc.step(&shape, &st_new, &[], false)?;
                let ctx = GuardCtx {
                    shape: &shape,
                    st: st_old,
                    steps: vec![(st_old, st1_old), (st_new, st1_new)],
                };
                let (g, _) = enc.encode_guard(&psi, &ctx, bind, false)?;
                if is_statically_false(&g) {
                    return Ok(None);
                }
                let goal = if enabling {
                    enc.states_equal(&st1_old, &st1_new)
                } else {
                    enc.bwd_witness(&w, &st1_old, &st1_new, bind)?
                };
                Ok(Some((vec![pre_witness, g], goal)))
            }),
        )?;
        out.extend(prepared);
    }
    Ok(out)
}
