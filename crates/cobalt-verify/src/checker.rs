//! The correctness checker: builds the obligations of an optimization or
//! pure analysis and discharges them with the automatic theorem prover
//! (paper §5.1).

use crate::enc::SemanticMeanings;
use crate::error::VerifyError;
use crate::oblig::{obligations_for_analysis, obligations_for_optimization, Prepared};
use cobalt_dsl::{LabelEnv, Optimization, PureAnalysis};
use cobalt_logic::{Limits, Outcome};
use std::time::Duration;

/// The result of attempting one proof obligation.
#[derive(Debug, Clone)]
pub struct ObligationOutcome {
    /// Obligation identifier (e.g. `"F2/assign_var"`).
    pub id: String,
    /// Whether the prover discharged it.
    pub proved: bool,
    /// Time the prover spent.
    pub elapsed: Duration,
    /// For failures: the reason and the open-branch counterexample
    /// context (paper §7); empty on success.
    pub detail: String,
}

/// The verification report for one optimization or analysis.
#[derive(Debug, Clone)]
pub struct Report {
    /// Name of the optimization or analysis.
    pub name: String,
    /// Per-obligation outcomes.
    pub outcomes: Vec<ObligationOutcome>,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

impl Report {
    /// Whether every obligation was proved — i.e. the optimization is
    /// sound (Theorems 1 and 2).
    pub fn all_proved(&self) -> bool {
        self.outcomes.iter().all(|o| o.proved)
    }

    /// The identifiers of failed obligations.
    pub fn failures(&self) -> Vec<&str> {
        self.outcomes
            .iter()
            .filter(|o| !o.proved)
            .map(|o| o.id.as_str())
            .collect()
    }

    /// A one-line summary, e.g. `const_prop: 34/34 proved in 120ms`.
    pub fn summary(&self) -> String {
        let proved = self.outcomes.iter().filter(|o| o.proved).count();
        format!(
            "{}: {}/{} obligations proved in {:.1?}",
            self.name,
            proved,
            self.outcomes.len(),
            self.elapsed
        )
    }
}

/// The soundness checker for Cobalt optimizations.
///
/// # Examples
///
/// ```
/// use cobalt_dsl::LabelEnv;
/// use cobalt_verify::{SemanticMeanings, Verifier};
///
/// let verifier = Verifier::new(LabelEnv::standard(), SemanticMeanings::standard());
/// # let _ = verifier;
/// ```
#[derive(Debug, Clone)]
pub struct Verifier {
    env: LabelEnv,
    meanings: SemanticMeanings,
    limits: Limits,
}

impl Verifier {
    /// Creates a checker with the given label environment and semantic
    /// label meanings.
    pub fn new(env: LabelEnv, meanings: SemanticMeanings) -> Self {
        Verifier {
            env,
            meanings,
            limits: Limits::default(),
        }
    }

    /// Overrides the prover's resource limits.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Attempts to prove an optimization sound.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] if the optimization cannot be encoded at
    /// all; failed *proofs* are reported in the [`Report`].
    pub fn verify_optimization(&self, opt: &Optimization) -> Result<Report, VerifyError> {
        let prepared = obligations_for_optimization(opt, &self.env, &self.meanings)?;
        Ok(self.run(opt.name.clone(), prepared))
    }

    /// Attempts to prove a pure analysis sound, i.e. that its label
    /// really means its witness.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] if the analysis cannot be encoded.
    pub fn verify_analysis(&self, analysis: &PureAnalysis) -> Result<Report, VerifyError> {
        let prepared = obligations_for_analysis(analysis, &self.env, &self.meanings)?;
        Ok(self.run(analysis.name.clone(), prepared))
    }

    /// Verifies a pure analysis and, on success, registers its label's
    /// meaning so later optimizations may rely on it — the verified
    /// counterpart of paper §2.4's "the witness provides the new
    /// label's meaning".
    ///
    /// Returns the report; the meaning is registered only when every
    /// obligation was proved, so an unverified analysis can never lend
    /// its label to an optimization proof.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] if the analysis cannot be encoded, or if
    /// its `defines` arguments are not plain pattern variables (the
    /// only form a meaning can be parameterized by).
    pub fn verify_and_register_analysis(
        &mut self,
        analysis: &PureAnalysis,
    ) -> Result<Report, VerifyError> {
        let report = self.verify_analysis(analysis)?;
        if report.all_proved() {
            let params: Vec<cobalt_dsl::PatVar> = analysis
                .defines
                .1
                .iter()
                .map(|a| match a {
                    cobalt_dsl::LabelArgPat::Var(cobalt_dsl::VarPat::Pat(p)) => Ok(p.clone()),
                    other => Err(VerifyError::Unsupported(format!(
                        "label parameter `{other}` is not a pattern variable"
                    ))),
                })
                .collect::<Result<_, _>>()?;
            self.meanings
                .register(analysis.defines.0.clone(), params, analysis.witness.clone());
        }
        Ok(report)
    }

    fn run(&self, name: String, prepared: Vec<Prepared>) -> Report {
        let start = std::time::Instant::now();
        let mut outcomes = Vec::new();
        for mut p in prepared {
            p.solver.set_limits(self.limits.clone());
            let outcome = p.solver.prove(&p.task);
            let (proved, detail) = match &outcome {
                Outcome::Proved { .. } => (true, String::new()),
                Outcome::Unknown {
                    reason,
                    open_branch,
                    ..
                } => (
                    false,
                    format!("{reason}; context: {}", open_branch.join("; ")),
                ),
            };
            outcomes.push(ObligationOutcome {
                id: p.id,
                proved,
                elapsed: outcome.elapsed(),
                detail,
            });
        }
        Report {
            name,
            outcomes,
            elapsed: start.elapsed(),
        }
    }
}
