//! The correctness checker: builds the obligations of an optimization or
//! pure analysis and discharges them with the automatic theorem prover
//! (paper §5.1).
//!
//! Proving is **resource-governed**: each obligation is attempted under
//! an escalating sequence of prover limits (a [`RetryPolicy`]), the
//! whole report may carry a wall-clock deadline, and a prover panic is
//! isolated to the one obligation it occurred in. The paper's pitch is
//! that soundness checking is *automatic* — Simplify runs under the
//! hood with bounded effort and a failed or timed-out proof is a
//! report, never a crash.

use crate::enc::SemanticMeanings;
use crate::error::VerifyError;
use crate::oblig::{
    obligations_for_analysis_with, obligations_for_optimization_with, BankMode, Prepared,
};
use cobalt_dsl::{LabelEnv, Optimization, PureAnalysis};
use cobalt_logic::{clamp_context, Limits, Outcome};
use cobalt_support::fault;
use cobalt_support::pool::{self, Cancel, TaskResult};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// The result of attempting one proof obligation.
#[derive(Debug, Clone)]
pub struct ObligationOutcome {
    /// Obligation identifier (e.g. `"F2/assign_var"`).
    pub id: String,
    /// Whether the prover discharged it.
    pub proved: bool,
    /// Total time spent on the obligation, across every attempt.
    pub elapsed: Duration,
    /// For failures: the reason and the open-branch counterexample
    /// context (paper §7), or `panicked: …` when the prover died;
    /// empty on success. Clamped to a bounded size.
    pub detail: String,
    /// Number of prover attempts made. Zero only when the report
    /// deadline expired before this obligation was reached.
    pub attempts: u32,
    /// Number of limit escalations (`attempts - 1` for attempted
    /// obligations): how many times a resource-limit `Unknown` bought a
    /// retry at the next tier.
    pub escalations: u32,
    /// For failures: whether the final attempt gave up on a resource
    /// limit (deadline, splits, terms, rounds) rather than finding a
    /// genuine open branch or panicking. Resource-limited failures say
    /// nothing about soundness; open-branch failures are evidence of a
    /// real problem.
    pub resource_limited: bool,
    /// Whether this outcome was replayed from a proof journal
    /// ([`crate::Session`]) instead of freshly discharged. Cached
    /// outcomes are always proved ones — failures are never reused —
    /// and their `attempts`/`escalations`/`elapsed` describe the
    /// original run.
    pub cached: bool,
}

/// Escalating prover-limit tiers plus an overall per-report deadline —
/// the checker's iterative-deepening retry schedule.
///
/// Each obligation starts at `tiers[0]`. An attempt that comes back as
/// a *resource-limit* [`Outcome::Unknown`] escalates to the next tier;
/// a proof, an open branch, or a panic is final. This keeps the common
/// case fast (most obligations prove instantly under small limits)
/// while still giving hard obligations the full budget.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// The limit tiers, attempted in order.
    pub tiers: Vec<Limits>,
    /// Wall-clock budget for one whole report. When it expires,
    /// remaining obligations are recorded as resource-limited failures
    /// without being attempted, and in-flight attempts run under a
    /// correspondingly clipped prover deadline.
    pub report_deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            tiers: vec![
                Limits {
                    max_splits: 500,
                    max_inst_rounds: 2,
                    max_terms: 50_000,
                    deadline: Some(Duration::from_millis(250)),
                },
                Limits {
                    max_splits: 4_000,
                    max_inst_rounds: 3,
                    max_terms: 100_000,
                    deadline: Some(Duration::from_secs(2)),
                },
                Limits::default(),
            ],
            report_deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A policy with exactly one tier and no report deadline — the
    /// pre-retry behaviour of running every obligation once under
    /// fixed limits.
    pub fn single(limits: Limits) -> Self {
        RetryPolicy {
            tiers: vec![limits],
            report_deadline: None,
        }
    }

    /// Sets the overall per-report wall-clock budget.
    pub fn with_report_deadline(mut self, deadline: Duration) -> Self {
        self.report_deadline = Some(deadline);
        self
    }
}

/// The verification report for one optimization or analysis.
#[derive(Debug, Clone)]
pub struct Report {
    /// Name of the optimization or analysis.
    pub name: String,
    /// Per-obligation outcomes.
    pub outcomes: Vec<ObligationOutcome>,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

impl Report {
    /// Whether every obligation was proved — i.e. the optimization is
    /// sound (Theorems 1 and 2).
    pub fn all_proved(&self) -> bool {
        self.outcomes.iter().all(|o| o.proved)
    }

    /// The identifiers of failed obligations.
    pub fn failures(&self) -> Vec<&str> {
        self.outcomes
            .iter()
            .filter(|o| !o.proved)
            .map(|o| o.id.as_str())
            .collect()
    }

    /// Whether every failure (if any) was a resource limit rather than
    /// an open branch or panic — i.e. nothing in this report is
    /// evidence of unsoundness, only of insufficient budget.
    pub fn only_resource_limited_failures(&self) -> bool {
        self.outcomes
            .iter()
            .filter(|o| !o.proved)
            .all(|o| o.resource_limited)
    }

    /// Total prover attempts across all obligations.
    pub fn total_attempts(&self) -> u32 {
        self.outcomes.iter().map(|o| o.attempts).sum()
    }

    /// How many outcomes were replayed from a proof journal rather
    /// than freshly discharged.
    pub fn cached_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.cached).count()
    }

    /// How many outcomes were freshly proved this run (proved and not
    /// cached).
    pub fn fresh_proved_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.proved && !o.cached).count()
    }

    /// A one-line summary. Fully proved reports read
    /// `const_prop: 34/34 obligations proved in 120ms`; failing ones
    /// name the failed obligations, e.g.
    /// `dae: 30/32 obligations proved (failed: B2/store_deref, B3/return) in 1.2s`.
    /// Resumed sessions add the cache split, e.g.
    /// `const_prop: 34/34 obligations proved (30 cached, 4 fresh) in 4ms`,
    /// so warm runs are observable in plain output.
    pub fn summary(&self) -> String {
        format!(
            "{} in {:.1?}",
            self.render(/* cache_note: */ true),
            self.elapsed
        )
    }

    /// [`summary`](Self::summary) without the trailing elapsed time —
    /// a deterministic rendering, stable across runs, worker counts,
    /// and cache hits. `cobalt serve` builds response payloads from
    /// this so identical requests get byte-identical responses.
    ///
    /// Deliberately also without the cache split: whether an
    /// obligation was replayed is a property of the run, not of the
    /// proof, and the daemon reports it out-of-band (`served`/
    /// `cached` response fields) instead of inside the payload.
    pub fn summary_stable(&self) -> String {
        self.render(/* cache_note: */ false)
    }

    fn render(&self, with_cache_note: bool) -> String {
        let proved = self.outcomes.iter().filter(|o| o.proved).count();
        let total = self.outcomes.len();
        let cached = self.cached_count();
        let cache_note = if with_cache_note && cached > 0 {
            format!(" ({cached} cached, {} fresh)", total - cached)
        } else {
            String::new()
        };
        if proved == total {
            return format!(
                "{}: {}/{} obligations proved{}",
                self.name, proved, total, cache_note
            );
        }
        const MAX_NAMED: usize = 6;
        let failed = self.failures();
        let extra = failed.len().saturating_sub(MAX_NAMED);
        let mut named: Vec<&str> = failed.into_iter().take(MAX_NAMED).collect();
        let suffix = if extra > 0 {
            format!(" (+{extra} more)")
        } else {
            String::new()
        };
        format!(
            "{}: {}/{} obligations proved{} (failed: {}{})",
            self.name,
            proved,
            total,
            cache_note,
            {
                named.sort();
                named.join(", ")
            },
            suffix,
        )
    }
}

/// The soundness checker for Cobalt optimizations.
///
/// # Examples
///
/// ```
/// use cobalt_dsl::LabelEnv;
/// use cobalt_verify::{SemanticMeanings, Verifier};
///
/// let verifier = Verifier::new(LabelEnv::standard(), SemanticMeanings::standard());
/// # let _ = verifier;
/// ```
#[derive(Debug, Clone)]
pub struct Verifier {
    pub(crate) env: LabelEnv,
    pub(crate) meanings: SemanticMeanings,
    pub(crate) policy: RetryPolicy,
    pub(crate) jobs: usize,
    pub(crate) bank_mode: BankMode,
    pub(crate) cancel: Option<Cancel>,
    pub(crate) fail_fast: bool,
}

impl Verifier {
    /// Creates a checker with the given label environment and semantic
    /// label meanings, using the default [`RetryPolicy`] and sequential
    /// (single-job) discharge.
    pub fn new(env: LabelEnv, meanings: SemanticMeanings) -> Self {
        Verifier {
            env,
            meanings,
            policy: RetryPolicy::default(),
            jobs: 1,
            bank_mode: BankMode::default(),
            cancel: None,
            fail_fast: true,
        }
    }

    /// Overrides the prover's resource limits with a single fixed tier
    /// (no retries, no report deadline).
    pub fn with_limits(self, limits: Limits) -> Self {
        self.with_retry_policy(RetryPolicy::single(limits))
    }

    /// Overrides the full retry policy.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets how many worker threads [`discharge_all`](Self::discharge_all)
    /// may use. `0` and `1` both mean sequential discharge on the
    /// calling thread (the default, byte-for-byte the pre-parallel
    /// behaviour); higher values fan obligations out across a
    /// supervised pool while preserving report order, verdicts, and
    /// per-obligation retry escalation.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// The configured worker count (≥ 1).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Installs an external cancellation token: trip it from any
    /// thread and in-flight discharges stop at their next budget check,
    /// reporting as **resource-limited** (never proved, never unsound)
    /// — exactly how a `cobalt serve` drain deadline budget-cancels
    /// in-flight requests. The token is strictly an *input*: the
    /// checker observes it (each parallel batch through a linked
    /// [`Cancel::child`]) but never trips it, so one token may be
    /// shared across any number of independent batches without a
    /// batch-internal fail-fast leaking between them.
    pub fn with_cancel(mut self, cancel: Cancel) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Controls parallel fail-fast (default `true`): whether the first
    /// outcome that is evidence of unsoundness trips the batch's
    /// internal cancel so siblings stand down early. Disabling it makes
    /// every obligation run to completion regardless of siblings, so an
    /// *unsound* report's outcome set — not just its verdict — is a
    /// deterministic function of the obligations, at any job count.
    /// `cobalt serve` relies on that to cache exit-2 payloads byte-for-
    /// byte; the one-shot CLI keeps the fast default. External
    /// cancellation ([`with_cancel`](Self::with_cancel)) is unaffected.
    pub fn with_fail_fast(mut self, fail_fast: bool) -> Self {
        self.fail_fast = fail_fast;
        self
    }

    /// Overrides how obligation batches own their term banks. The
    /// default [`BankMode::BatchShared`] interns each rule's
    /// vocabulary once; [`BankMode::PerObligation`] is the original
    /// fresh-bank-per-obligation behavior, kept as a differential
    /// oracle. Both produce identical reports, summaries, and journal
    /// fingerprints.
    pub fn with_bank_mode(mut self, mode: BankMode) -> Self {
        self.bank_mode = mode;
        self
    }

    /// The configured [`BankMode`].
    pub fn bank_mode(&self) -> BankMode {
        self.bank_mode
    }

    /// Attempts to prove an optimization sound.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] if the optimization cannot be encoded at
    /// all; failed *proofs* are reported in the [`Report`].
    pub fn verify_optimization(&self, opt: &Optimization) -> Result<Report, VerifyError> {
        self.lint_gate(&opt.name, |ctx, opts| {
            cobalt_lint::lint_optimization(opt, ctx, opts)
        })?;
        let prepared =
            obligations_for_optimization_with(opt, &self.env, &self.meanings, self.bank_mode)?;
        Ok(self.discharge_all(opt.name.clone(), prepared))
    }

    /// The fast pre-verification gate (DESIGN.md §9): structural lints
    /// only — no solver, microseconds per rule — so a malformed rule is
    /// rejected with named diagnostics before any obligation is even
    /// constructed, let alone sent to the prover. A panic inside the
    /// linter (e.g. an injected `lint.rule` fault) is isolated into a
    /// `CL000` diagnostic rather than unwinding through the checker.
    pub(crate) fn lint_gate(
        &self,
        name: &str,
        lint: impl FnOnce(&cobalt_lint::LintContext<'_>, &cobalt_lint::RuleLintOptions) -> cobalt_lint::Diagnostics,
    ) -> Result<(), VerifyError> {
        let ctx = cobalt_lint::LintContext::new(&self.env);
        let opts = cobalt_lint::RuleLintOptions::structural();
        let diags = match catch_unwind(AssertUnwindSafe(|| lint(&ctx, &opts))) {
            Ok(diags) => diags,
            Err(payload) => {
                let mut diags = cobalt_lint::Diagnostics::new();
                diags.push(cobalt_lint::Diagnostic::error(
                    "CL000",
                    cobalt_lint::Location::Rule {
                        rule: name.to_string(),
                        part: "lint".into(),
                    },
                    format!("lint panicked: {}", panic_message(&*payload)),
                ));
                diags
            }
        };
        if diags.has_errors() {
            return Err(VerifyError::Lint(diags));
        }
        Ok(())
    }

    /// Attempts to prove a pure analysis sound, i.e. that its label
    /// really means its witness.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] if the analysis cannot be encoded.
    pub fn verify_analysis(&self, analysis: &PureAnalysis) -> Result<Report, VerifyError> {
        self.lint_gate(&analysis.name, |ctx, opts| {
            cobalt_lint::lint_analysis(analysis, ctx, opts)
        })?;
        let prepared =
            obligations_for_analysis_with(analysis, &self.env, &self.meanings, self.bank_mode)?;
        Ok(self.discharge_all(analysis.name.clone(), prepared))
    }

    /// Verifies a pure analysis and, on success, registers its label's
    /// meaning so later optimizations may rely on it — the verified
    /// counterpart of paper §2.4's "the witness provides the new
    /// label's meaning".
    ///
    /// Returns the report; the meaning is registered only when every
    /// obligation was proved, so an unverified analysis can never lend
    /// its label to an optimization proof.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] if the analysis cannot be encoded, or if
    /// its `defines` arguments are not plain pattern variables (the
    /// only form a meaning can be parameterized by).
    pub fn verify_and_register_analysis(
        &mut self,
        analysis: &PureAnalysis,
    ) -> Result<Report, VerifyError> {
        let report = self.verify_analysis(analysis)?;
        if report.all_proved() {
            let params: Vec<cobalt_dsl::PatVar> = analysis
                .defines
                .1
                .iter()
                .map(|a| match a {
                    cobalt_dsl::LabelArgPat::Var(cobalt_dsl::VarPat::Pat(p)) => Ok(p.clone()),
                    other => Err(VerifyError::Unsupported(format!(
                        "label parameter `{other}` is not a pattern variable"
                    ))),
                })
                .collect::<Result<_, _>>()?;
            self.meanings
                .register(analysis.defines.0.clone(), params, analysis.witness.clone());
        }
        Ok(report)
    }

    /// Discharges a prepared obligation set into a [`Report`], using
    /// the configured number of [`jobs`](Self::with_jobs).
    ///
    /// The parallel contract: outcomes appear in obligation order
    /// regardless of completion order, each obligation keeps its full
    /// [`RetryPolicy`] escalation, the report deadline fans out through
    /// every worker's prover budget, and (unless
    /// [`with_fail_fast(false)`](Self::with_fail_fast)) the first
    /// outcome that is evidence of unsoundness (open branch or prover
    /// panic — not a mere resource limit) trips a batch-internal cancel
    /// flag so siblings stand down; cancelled obligations report as
    /// resource-limited, never as proved.
    pub fn discharge_all(&self, name: String, prepared: Vec<Prepared>) -> Report {
        let start = Instant::now();
        let report_deadline = self
            .policy
            .report_deadline
            .and_then(|d| start.checked_add(d));
        let items = prepared.into_iter().map(|p| (p, 0)).collect();
        let outcomes = self.discharge_batch(items, report_deadline, |_, _| {});
        Report {
            name,
            outcomes,
            elapsed: start.elapsed(),
        }
    }

    /// Discharges `(obligation, start_tier)` pairs, delivering each
    /// outcome to `sink` **in obligation order** as soon as it and all
    /// its predecessors are done (a [`crate::Session`] journals from
    /// the sink, so the journal's append order matches sequential
    /// mode), and returns the ordered outcomes.
    ///
    /// With `jobs <= 1` this is the plain sequential loop — no pool, no
    /// cancel flag, no `pool.*` fault sites — keeping the default path
    /// behaviorally identical to the pre-parallel checker.
    pub(crate) fn discharge_batch(
        &self,
        items: Vec<(Prepared, usize)>,
        report_deadline: Option<Instant>,
        mut sink: impl FnMut(usize, &ObligationOutcome),
    ) -> Vec<ObligationOutcome> {
        if self.jobs <= 1 || items.len() <= 1 {
            let mut outcomes = Vec::with_capacity(items.len());
            for (idx, (mut p, start_tier)) in items.into_iter().enumerate() {
                if let Some(cancel) = &self.cancel {
                    p.solver.install_cancel(cancel.flag());
                }
                let outcome =
                    self.discharge_from(p, report_deadline, start_tier, self.cancel.as_ref());
                sink(idx, &outcome);
                outcomes.push(outcome);
            }
            return outcomes;
        }
        // Ids survive outside the slots so a task that dies twice (the
        // supervised-retry budget) still yields a named outcome.
        let ids: Vec<String> = items.iter().map(|(p, _)| p.id.clone()).collect();
        let slots: Vec<(Option<Prepared>, usize)> = items
            .into_iter()
            .map(|(p, tier)| (Some(p), tier))
            .collect();
        // The pool's fail-fast flag. An externally installed token is
        // observed through a linked child, never reused directly: a
        // caller-side trip (e.g. a daemon drain deadline) propagates in
        // and stands the whole batch down, but a fail-fast trip from an
        // unsound outcome in *this* batch stays in the child — the
        // caller's token is never written, so independent batches
        // sharing one external token cannot cancel each other.
        let cancel = self.cancel.as_ref().map_or_else(Cancel::new, Cancel::child);
        let mut outcomes: Vec<ObligationOutcome> = Vec::with_capacity(slots.len());
        pool::run_ordered(
            self.jobs,
            slots,
            &cancel,
            |_, (slot, start_tier), cancel| {
                // The slot is empty only if a previous execution of this
                // task panicked *after* taking the obligation — possible
                // for a mid-discharge worker casualty, impossible for
                // the `pool.task` fault (which fires before pickup).
                let Some(mut p) = slot.take() else {
                    return None;
                };
                p.solver.install_cancel(cancel.flag());
                let outcome =
                    self.discharge_from(p, report_deadline, *start_tier, Some(cancel));
                if self.fail_fast && !outcome.proved && !outcome.resource_limited {
                    // Open branch or prover panic: evidence of
                    // unsoundness. Fail fast — siblings stand down at
                    // their next budget check. This trips the batch's
                    // own child token only, never the caller's.
                    cancel.trip();
                }
                Some(outcome)
            },
            |idx, result| {
                let outcome = match result {
                    TaskResult::Done(Some(outcome)) => outcome,
                    TaskResult::Done(None) => {
                        panicked_outcome(&ids[idx], "obligation lost to a worker crash")
                    }
                    TaskResult::Panicked(message) => panicked_outcome(&ids[idx], &message),
                };
                sink(idx, &outcome);
                outcomes.push(outcome);
            },
        );
        outcomes
    }

    /// Runs one obligation through the retry schedule starting at limit
    /// tier `start_tier` — how a resumed [`crate::Session`] carries
    /// escalation state across a crash: tiers a previous run already
    /// exhausted on this obligation are not re-attempted.
    /// `attempts`/`escalations` in the outcome count this run only.
    /// Prover panics are isolated to the obligation. A tripped `cancel`
    /// stops the schedule *between* tiers (escalation must not retry a
    /// cancellation away); mid-search cancellation is the solver
    /// budget's job.
    pub(crate) fn discharge_from(
        &self,
        mut p: Prepared,
        report_deadline: Option<Instant>,
        start_tier: usize,
        cancel: Option<&Cancel>,
    ) -> ObligationOutcome {
        let obligation_start = Instant::now();
        let mut attempts = 0u32;
        let mut done = |proved, detail, resource_limited, attempts: u32| ObligationOutcome {
            id: std::mem::take(&mut p.id),
            proved,
            elapsed: obligation_start.elapsed(),
            detail,
            attempts,
            escalations: attempts.saturating_sub(1),
            resource_limited,
            cached: false,
        };
        let n_tiers = self.policy.tiers.len().max(1);
        let fallback = [Limits::default()];
        let tiers: &[Limits] = if self.policy.tiers.is_empty() {
            &fallback
        } else {
            &self.policy.tiers
        };
        let start_tier = start_tier.min(n_tiers - 1);
        for (ti, tier) in tiers.iter().enumerate().skip(start_tier) {
            // A sibling's unsound outcome tripped the shared flag:
            // stand down now rather than fast-failing through every
            // remaining tier (a cancelled prove reports as a resource
            // limit, which would otherwise buy an escalation).
            if cancel.is_some_and(Cancel::is_tripped) {
                return done(
                    false,
                    "cancelled by caller: a parallel sibling reported unsound, or the caller \
                     withdrew the batch"
                        .to_string(),
                    true,
                    attempts,
                );
            }
            // Clip this attempt's prover deadline to what remains of
            // the report budget; if nothing remains, stop attempting.
            let mut limits = tier.clone();
            if let Some(deadline) = report_deadline {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    let detail = if attempts == 0 {
                        "report deadline exceeded before first attempt".to_string()
                    } else {
                        "report deadline exceeded during escalation".to_string()
                    };
                    return done(false, detail, true, attempts);
                }
                limits.deadline = Some(match limits.deadline {
                    Some(d) => d.min(remaining),
                    None => remaining,
                });
            }
            attempts += 1;
            p.solver.set_limits(limits);
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                fault::point("checker.obligation");
                p.solver.prove(&p.task)
            }));
            match attempt {
                Err(payload) => {
                    // A prover panic is a failed obligation, not a
                    // failed suite (and not worth retrying: the same
                    // inputs would panic again).
                    let detail = format!("panicked: {}", panic_message(payload.as_ref()));
                    return done(false, detail, false, attempts);
                }
                Ok(outcome) => match outcome {
                    Outcome::Proved { .. } => return done(true, String::new(), false, attempts),
                    unknown if unknown.is_resource_limited() && ti + 1 < n_tiers => {
                        // Escalate to the next tier.
                    }
                    Outcome::Unknown {
                        reason,
                        open_branch,
                        kind,
                        ..
                    } => {
                        let limited = kind == cobalt_logic::UnknownKind::ResourceLimit;
                        let mut context = open_branch;
                        clamp_context(&mut context, 12, 200);
                        let detail = if context.is_empty() {
                            reason
                        } else {
                            format!("{reason}; context: {}", context.join("; "))
                        };
                        return done(false, detail, limited, attempts);
                    }
                },
            }
        }
        unreachable!("the last tier always returns")
    }
}

/// The outcome recorded for an obligation whose worker died past the
/// pool's supervision budget (or lost the obligation to a mid-discharge
/// crash). Shaped like the sequential checker's in-obligation panic
/// outcome: failed, not resource-limited — a panic is evidence of a
/// bug, not of an undersized budget.
fn panicked_outcome(id: &str, message: &str) -> ObligationOutcome {
    ObligationOutcome {
        id: id.to_string(),
        proved: false,
        elapsed: Duration::ZERO,
        detail: format!("panicked: {message}"),
        attempts: 0,
        escalations: 0,
        resource_limited: false,
        cached: false,
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
