//! Pattern-variable vocabulary of an optimization.
//!
//! Verification treats the substitution `θ` symbolically: each pattern
//! variable becomes an uninterpreted logic constant, and the obligations
//! are proven for *all* instantiations at once. This module collects
//! every pattern variable of an optimization together with the kind of
//! fragment it ranges over.

use crate::error::VerifyError;
use cobalt_dsl::{
    BackwardWitness, BasePat, ConstPat, ExprPat, ForwardWitness, FragKind, Guard, GuardSpec,
    IdxPat, LabelArgPat, LhsPat, Optimization, PatVar, ProcPat, PureAnalysis, StmtPat,
    TransformPattern, VarPat, Witness,
};
use std::collections::BTreeMap;

/// The pattern variables of an optimization with their fragment kinds.
pub type Kinds = BTreeMap<PatVar, FragKind>;

fn kind_name(k: FragKind) -> &'static str {
    match k {
        FragKind::Var => "variable",
        FragKind::Const => "constant",
        FragKind::Expr => "expression",
        FragKind::Index => "index",
        FragKind::Proc => "procedure",
    }
}

fn add(kinds: &mut Kinds, p: &PatVar, k: FragKind) -> Result<(), VerifyError> {
    match kinds.get(p) {
        Some(&prev) if prev != k => Err(VerifyError::KindConflict {
            var: p.to_string(),
            first: kind_name(prev).into(),
            second: kind_name(k).into(),
        }),
        _ => {
            kinds.insert(p.clone(), k);
            Ok(())
        }
    }
}

fn var_pat(kinds: &mut Kinds, v: &VarPat) -> Result<(), VerifyError> {
    if let VarPat::Pat(p) = v {
        add(kinds, p, FragKind::Var)?;
    }
    Ok(())
}

fn const_pat(kinds: &mut Kinds, c: &ConstPat) -> Result<(), VerifyError> {
    if let ConstPat::Pat(p) = c {
        add(kinds, p, FragKind::Const)?;
    }
    Ok(())
}

fn base_pat(kinds: &mut Kinds, b: &BasePat) -> Result<(), VerifyError> {
    match b {
        BasePat::Var(v) => var_pat(kinds, v),
        BasePat::Const(c) => const_pat(kinds, c),
    }
}

fn expr_pat(kinds: &mut Kinds, e: &ExprPat) -> Result<(), VerifyError> {
    match e {
        ExprPat::Pat(p) | ExprPat::Fold(p) => add(kinds, p, FragKind::Expr),
        ExprPat::Any => Ok(()),
        ExprPat::Base(b) => base_pat(kinds, b),
        ExprPat::Deref(v) | ExprPat::AddrOf(v) => var_pat(kinds, v),
        ExprPat::Op(_, args) => {
            for a in args {
                base_pat(kinds, a)?;
            }
            Ok(())
        }
    }
}

fn idx_pat(kinds: &mut Kinds, i: &IdxPat) -> Result<(), VerifyError> {
    if let IdxPat::Pat(p) = i {
        add(kinds, p, FragKind::Index)?;
    }
    Ok(())
}

/// Collects pattern variables from a statement pattern.
pub fn stmt_pat(kinds: &mut Kinds, s: &StmtPat) -> Result<(), VerifyError> {
    match s {
        StmtPat::Any | StmtPat::Skip | StmtPat::ReturnAny => Ok(()),
        StmtPat::Decl(v) | StmtPat::New(v) | StmtPat::Return(v) => var_pat(kinds, v),
        StmtPat::Assign(lhs, e) => {
            match lhs {
                LhsPat::Var(v) | LhsPat::Deref(v) => var_pat(kinds, v)?,
                LhsPat::Any => {}
            }
            expr_pat(kinds, e)
        }
        StmtPat::Call { dst, proc, arg } => {
            var_pat(kinds, dst)?;
            if let ProcPat::Pat(p) = proc {
                add(kinds, p, FragKind::Proc)?;
            }
            base_pat(kinds, arg)
        }
        StmtPat::If {
            cond,
            then_target,
            else_target,
        } => {
            base_pat(kinds, cond)?;
            idx_pat(kinds, then_target)?;
            idx_pat(kinds, else_target)
        }
    }
}

/// Collects pattern variables from a guard. Arm-local variables of
/// `case` patterns are *not* collected (they are bound per shape during
/// encoding), but variables in arm guards and label arguments are.
pub fn guard(kinds: &mut Kinds, g: &Guard) -> Result<(), VerifyError> {
    match g {
        Guard::True | Guard::False => Ok(()),
        Guard::Not(inner) => guard(kinds, inner),
        Guard::And(gs) | Guard::Or(gs) => {
            for g in gs {
                guard(kinds, g)?;
            }
            Ok(())
        }
        Guard::Stmt(s) => stmt_pat(kinds, s),
        Guard::Label(_, args) => {
            for a in args {
                match a {
                    LabelArgPat::Var(v) => var_pat(kinds, v)?,
                    LabelArgPat::Const(c) => const_pat(kinds, c)?,
                    LabelArgPat::Expr(e) => expr_pat(kinds, e)?,
                }
            }
            Ok(())
        }
        Guard::SyntacticDef(v) | Guard::SyntacticUse(v) => var_pat(kinds, v),
        Guard::Unchanged(e) => expr_pat(kinds, e),
        Guard::ConstEq(a, b) => {
            const_pat(kinds, a)?;
            const_pat(kinds, b)
        }
        Guard::VarEq(a, b) => {
            var_pat(kinds, a)?;
            var_pat(kinds, b)
        }
        Guard::CaseStmt { arms, default } => {
            for (_, g) in arms {
                guard(kinds, g)?;
            }
            guard(kinds, default)
        }
    }
}

fn forward_witness(kinds: &mut Kinds, w: &ForwardWitness) -> Result<(), VerifyError> {
    match w {
        ForwardWitness::True => Ok(()),
        ForwardWitness::VarEqConst(x, c) => {
            var_pat(kinds, x)?;
            const_pat(kinds, c)
        }
        ForwardWitness::VarEqVar(x, y) => {
            var_pat(kinds, x)?;
            var_pat(kinds, y)
        }
        ForwardWitness::VarEqExpr(x, e) => {
            var_pat(kinds, x)?;
            expr_pat(kinds, e)
        }
        ForwardWitness::NotPointedTo(x) => var_pat(kinds, x),
        ForwardWitness::And(ws) => {
            for w in ws {
                forward_witness(kinds, w)?;
            }
            Ok(())
        }
    }
}

/// Collects the full vocabulary of an optimization.
pub fn of_optimization(opt: &Optimization) -> Result<Kinds, VerifyError> {
    of_pattern(&opt.pattern)
}

/// Collects the full vocabulary of a transformation pattern.
pub fn of_pattern(pat: &TransformPattern) -> Result<Kinds, VerifyError> {
    let mut kinds = Kinds::new();
    stmt_pat(&mut kinds, &pat.from)?;
    stmt_pat(&mut kinds, &pat.to)?;
    guard(&mut kinds, &pat.where_clause)?;
    if let GuardSpec::Region(rg) = &pat.guard {
        guard(&mut kinds, &rg.psi1)?;
        guard(&mut kinds, &rg.psi2)?;
    }
    match &pat.witness {
        Witness::Forward(w) => forward_witness(&mut kinds, w)?,
        Witness::Backward(BackwardWitness::Identical) => {}
        Witness::Backward(BackwardWitness::AgreeExcept(x)) => var_pat(&mut kinds, x)?,
    }
    Ok(kinds)
}

/// Collects the full vocabulary of a pure analysis.
pub fn of_analysis(analysis: &PureAnalysis) -> Result<Kinds, VerifyError> {
    let mut kinds = Kinds::new();
    guard(&mut kinds, &analysis.guard.psi1)?;
    guard(&mut kinds, &analysis.guard.psi2)?;
    for a in &analysis.defines.1 {
        match a {
            LabelArgPat::Var(v) => var_pat(&mut kinds, v)?,
            LabelArgPat::Const(c) => const_pat(&mut kinds, c)?,
            LabelArgPat::Expr(e) => expr_pat(&mut kinds, e)?,
        }
    }
    forward_witness(&mut kinds, &analysis.witness)?;
    Ok(kinds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobalt_dsl::{Direction, RegionGuard};

    #[test]
    fn collects_const_prop_vocabulary() {
        let pat = TransformPattern {
            direction: Direction::Forward,
            guard: GuardSpec::Region(RegionGuard {
                psi1: Guard::Stmt(StmtPat::Assign(
                    LhsPat::Var(VarPat::pat("Y")),
                    ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
                )),
                psi2: Guard::not_label("mayDef", vec![LabelArgPat::Var(VarPat::pat("Y"))]),
            }),
            from: StmtPat::Assign(
                LhsPat::Var(VarPat::pat("X")),
                ExprPat::Base(BasePat::Var(VarPat::pat("Y"))),
            ),
            to: StmtPat::Assign(
                LhsPat::Var(VarPat::pat("X")),
                ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
            ),
            where_clause: Guard::True,
            witness: Witness::Forward(ForwardWitness::VarEqConst(
                VarPat::pat("Y"),
                ConstPat::pat("C"),
            )),
        };
        let kinds = of_pattern(&pat).unwrap();
        assert_eq!(kinds.get(&"X".into()), Some(&FragKind::Var));
        assert_eq!(kinds.get(&"Y".into()), Some(&FragKind::Var));
        assert_eq!(kinds.get(&"C".into()), Some(&FragKind::Const));
        assert_eq!(kinds.len(), 3);
    }

    #[test]
    fn kind_conflict_detected() {
        let pat = TransformPattern {
            direction: Direction::Forward,
            guard: GuardSpec::Local,
            from: StmtPat::Assign(
                LhsPat::Var(VarPat::pat("X")),
                ExprPat::Base(BasePat::Const(ConstPat::pat("X"))),
            ),
            to: StmtPat::Skip,
            where_clause: Guard::True,
            witness: Witness::Forward(ForwardWitness::True),
        };
        let err = of_pattern(&pat).unwrap_err();
        assert!(matches!(err, VerifyError::KindConflict { .. }));
    }

    #[test]
    fn case_arm_locals_not_collected() {
        let mut kinds = Kinds::new();
        guard(
            &mut kinds,
            &Guard::CaseStmt {
                arms: vec![(
                    StmtPat::Assign(LhsPat::Deref(VarPat::pat("$P")), ExprPat::Any),
                    Guard::True,
                )],
                default: Box::new(Guard::SyntacticDef(VarPat::pat("Y"))),
            },
        )
        .unwrap();
        assert!(kinds.contains_key(&"Y".into()));
        assert!(!kinds.contains_key(&"$P".into()));
    }
}
