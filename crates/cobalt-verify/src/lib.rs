//! # cobalt-verify
//!
//! The automatic soundness checker for Cobalt optimizations — the
//! reproduction of §4 and §5.1 of *Lerner, Millstein & Chambers,
//! "Automatically Proving the Correctness of Compiler Optimizations"
//! (PLDI 2003)*.
//!
//! Given an optimization written in the Cobalt DSL, the checker
//! generates the paper's optimization-specific proof obligations —
//! F1–F3 for forward transformation patterns, B1–B3 for backward ones,
//! A1–A2 for pure analyses — and discharges each with the automatic
//! theorem prover in `cobalt-logic`. The hand-proven Theorems 1 and 2 of
//! the paper (restated for this implementation in `DESIGN.md`) lift the
//! per-state obligations to full semantic preservation, so a
//! [`Report::all_proved`] verdict means the optimization is sound for
//! *every* input program.
//!
//! # Examples
//!
//! Verifying the paper's constant-propagation example end to end:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use cobalt_dsl::{
//!     BasePat, ConstPat, Direction, ExprPat, ForwardWitness, Guard, GuardSpec,
//!     LabelArgPat, LabelEnv, LhsPat, Optimization, RegionGuard, StmtPat,
//!     TransformPattern, VarPat, Witness,
//! };
//! use cobalt_verify::{SemanticMeanings, Verifier};
//!
//! let const_prop = Optimization::new(
//!     "const_prop",
//!     TransformPattern {
//!         direction: Direction::Forward,
//!         guard: GuardSpec::Region(RegionGuard {
//!             psi1: Guard::Stmt(StmtPat::Assign(
//!                 LhsPat::Var(VarPat::pat("Y")),
//!                 ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
//!             )),
//!             psi2: Guard::not_label("mayDef", vec![LabelArgPat::Var(VarPat::pat("Y"))]),
//!         }),
//!         from: StmtPat::Assign(
//!             LhsPat::Var(VarPat::pat("X")),
//!             ExprPat::Base(BasePat::Var(VarPat::pat("Y"))),
//!         ),
//!         to: StmtPat::Assign(
//!             LhsPat::Var(VarPat::pat("X")),
//!             ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
//!         ),
//!         where_clause: Guard::True,
//!         witness: Witness::Forward(ForwardWitness::VarEqConst(
//!             VarPat::pat("Y"),
//!             ConstPat::pat("C"),
//!         )),
//!     },
//! );
//!
//! let verifier = Verifier::new(LabelEnv::standard(), SemanticMeanings::standard());
//! let report = verifier.verify_optimization(&const_prop)?;
//! assert!(report.all_proved(), "{:#?}", report.failures());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod enc;
pub mod error;
pub mod guardenc;
pub mod infer;
pub mod oblig;
pub mod session;
pub mod vocab;

pub use checker::{ObligationOutcome, Report, RetryPolicy, Verifier};
pub use enc::{Enc, SemanticMeanings, Shape, SymState, TaintMode};
pub use error::VerifyError;
pub use infer::{infer_witness, with_inferred_witness};
pub use oblig::{
    obligations_for_analysis, obligations_for_analysis_with, obligations_for_optimization,
    obligations_for_optimization_with, BankMode, Prepared,
};
pub use session::{fingerprint_obligation, ResumeMode, Session};
