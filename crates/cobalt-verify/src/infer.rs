//! Witness inference — the future-work item of paper §7:
//!
//! > "We plan to try inferring the witnesses, which are currently
//! > provided by the user. It may be possible to use some simple
//! > heuristics to guess a witness from the given transformation
//! > pattern. As a simple example, in the constant propagation example
//! > of section 2, the appropriate witness, that Y has the value C, is
//! > simply the strongest postcondition of the enabling statement
//! > Y := C."
//!
//! The heuristic implemented here is exactly that: find the statement
//! pattern(s) `ψ1` requires via `stmt(…)`, take the strongest
//! postcondition expressible in the witness language, and — for
//! backward patterns — relate the two programs up to the variable the
//! rewrite touches. Inference is *safe by construction*: a guessed
//! witness is only adopted if the checker then proves the obligations,
//! so a bad guess can reject a sound optimization but never admit an
//! unsound one (the same argument as the paper's footnote 1).

use cobalt_dsl::{
    BackwardWitness, BasePat, Direction, ExprPat, ForwardWitness, Guard, GuardSpec, LhsPat,
    Optimization, StmtPat, Witness,
};

/// Guesses a witness for the transformation pattern, or `None` if the
/// heuristics do not apply.
///
/// Forward patterns: the strongest postcondition of the enabling
/// statement found under `stmt(…)` in `ψ1` —
///
/// * `stmt(Y := C)` → `η(Y) = C`
/// * `stmt(Y := Z)` → `η(Y) = η(Z)`
/// * `stmt(X := E)` / `stmt(X := *P)` → `η(X) = η(E)`
/// * `stmt(decl X)` → `notPointedTo(X, η)` (a fresh local is unaliased)
///
/// Backward patterns: the rewrite replaces/inserts an assignment to
/// some `X` (or removes one), so the states agree up to `X`:
/// `η_old/X = η_new/X`.
pub fn infer_witness(opt: &Optimization) -> Option<Witness> {
    let pat = &opt.pattern;
    match (&pat.guard, pat.direction) {
        (GuardSpec::Local, _) => Some(Witness::Forward(ForwardWitness::True)),
        (GuardSpec::Region(rg), Direction::Forward) => {
            let enabling = enabling_stmts(&rg.psi1);
            let mut guesses: Vec<ForwardWitness> = enabling
                .iter()
                .filter_map(strongest_postcondition)
                .collect();
            guesses.dedup();
            match guesses.len() {
                1 => Some(Witness::Forward(guesses.pop()?)),
                _ => None,
            }
        }
        (GuardSpec::Region(_), Direction::Backward) => {
            // The variable the rewrite writes (or stops writing).
            let touched = match (&pat.from, &pat.to) {
                (StmtPat::Assign(LhsPat::Var(v), _), _) => Some(v.clone()),
                (_, StmtPat::Assign(LhsPat::Var(v), _)) => Some(v.clone()),
                _ => None,
            }?;
            Some(Witness::Backward(BackwardWitness::AgreeExcept(touched)))
        }
    }
}

/// Collects the statement patterns `ψ1` requires through positive
/// `stmt(…)` conjuncts (descending through `And`; an `Or` of statement
/// forms yields all alternatives).
fn enabling_stmts(psi1: &Guard) -> Vec<StmtPat> {
    let mut out = Vec::new();
    collect(psi1, &mut out);
    fn collect(g: &Guard, out: &mut Vec<StmtPat>) {
        match g {
            Guard::Stmt(s) => out.push(s.clone()),
            Guard::And(gs) | Guard::Or(gs) => {
                for g in gs {
                    collect(g, out);
                }
            }
            _ => {}
        }
    }
    out
}

/// The strongest postcondition of an enabling statement pattern, in the
/// witness language.
fn strongest_postcondition(s: &StmtPat) -> Option<ForwardWitness> {
    match s {
        StmtPat::Assign(LhsPat::Var(x), rhs) => match rhs {
            ExprPat::Base(BasePat::Const(c)) => {
                Some(ForwardWitness::VarEqConst(x.clone(), c.clone()))
            }
            ExprPat::Base(BasePat::Var(y)) => {
                Some(ForwardWitness::VarEqVar(x.clone(), y.clone()))
            }
            ExprPat::Pat(_) | ExprPat::Deref(_) => {
                Some(ForwardWitness::VarEqExpr(x.clone(), rhs.clone()))
            }
            _ => None,
        },
        StmtPat::Decl(x) => Some(ForwardWitness::NotPointedTo(x.clone())),
        // Returns and wildcards carry no per-state postcondition the
        // witness language can express.
        _ => None,
    }
}

/// Convenience: returns a copy of the optimization with an inferred
/// witness substituted, or `None` if inference does not apply.
pub fn with_inferred_witness(opt: &Optimization) -> Option<Optimization> {
    let witness = infer_witness(opt)?;
    let mut out = opt.clone();
    out.pattern.witness = witness;
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SemanticMeanings, Verifier};
    use cobalt_dsl::{LabelEnv, VarPat};

    fn x() -> VarPat {
        VarPat::pat("X")
    }

    #[test]
    fn infers_the_paper_s_example() {
        // §7: const-prop's witness is the strongest postcondition of
        // Y := C.
        let guessed = infer_witness(&cobalt_opts::const_prop()).unwrap();
        assert_eq!(guessed, cobalt_opts::const_prop().pattern.witness);
    }

    #[test]
    fn infers_backward_agree_except() {
        let guessed = infer_witness(&cobalt_opts::dae()).unwrap();
        assert_eq!(
            guessed,
            Witness::Backward(BackwardWitness::AgreeExcept(x()))
        );
        let guessed = infer_witness(&cobalt_opts::pre_duplicate()).unwrap();
        assert_eq!(
            guessed,
            Witness::Backward(BackwardWitness::AgreeExcept(x()))
        );
    }

    #[test]
    fn inferred_witnesses_prove_the_whole_suite() {
        // The real test of §7's conjecture: strip every witness, infer
        // it back, and re-verify. "Many of the other forward
        // optimizations that we have written also have this property."
        let verifier = Verifier::new(LabelEnv::standard(), SemanticMeanings::standard());
        for opt in cobalt_opts::all_optimizations() {
            let mut stripped = opt.clone();
            stripped.pattern.witness = match stripped.pattern.direction {
                Direction::Forward => Witness::Forward(ForwardWitness::True),
                Direction::Backward => Witness::Backward(BackwardWitness::Identical),
            };
            let inferred = with_inferred_witness(&stripped)
                .unwrap_or_else(|| panic!("no witness inferred for {}", opt.name));
            let report = verifier.verify_optimization(&inferred).unwrap();
            assert!(
                report.all_proved(),
                "{} with inferred witness: {:?}",
                opt.name,
                report.failures()
            );
        }
    }

    #[test]
    fn inference_is_safe_for_the_buggy_variant() {
        // Inferring a witness for the unsound optimization must not
        // make it verify.
        let verifier = Verifier::new(LabelEnv::standard(), SemanticMeanings::standard());
        let buggy = cobalt_opts::buggy::load_elim_no_alias();
        if let Some(guessed) = with_inferred_witness(&buggy) {
            let report = verifier.verify_optimization(&guessed).unwrap();
            assert!(!report.all_proved());
        }
    }

    #[test]
    fn ambiguous_enabling_statements_decline() {
        // DAE's ψ1 has two alternatives (assignment or return) — for a
        // FORWARD pattern that shape would be ambiguous; check the
        // collector sees both.
        let dae = cobalt_opts::dae();
        if let GuardSpec::Region(rg) = &dae.pattern.guard {
            assert_eq!(enabling_stmts(&rg.psi1).len(), 2);
        }
    }
}
