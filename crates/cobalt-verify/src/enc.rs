//! Encoding of IL semantics, guards, and witnesses into the logic of
//! `cobalt-logic` — the analogue of the paper's background axioms for
//! Simplify (§5.1).
//!
//! # Encoding scheme
//!
//! An execution state `η = (ι, ρ, σ, ξ, M)` becomes a [`SymState`] of
//! four terms: `idx`, `env` (a map from variables to locations), `store`
//! (a map from locations to values), and `alloc` (the allocator).
//! Values are built with the free constructors `intval`/`locval`.
//!
//! Where the paper gives Simplify *quantified* step axioms per statement
//! form and lets the matcher instantiate them, this encoder plays the
//! instantiation role itself: the obligation builders enumerate
//! symbolic statement **shapes** (one per statement constructor, with
//! fresh skolem constants for the parts the guard does not fix), and
//! [`Enc::step`] emits the ground step equations for each shape. The
//! remaining quantifiers — `notPointedTo` witnesses and store-agreement
//! relations — stay quantified and are handled by the prover's
//! trigger-based instantiation.
//!
//! Trusted background facts emitted here (each is a ground instance of
//! an axiom that is semantically valid for the interpreter in
//! `cobalt-il`; the differential tests of experiment E7 exercise them):
//!
//! * **environment injectivity** — distinct variables have distinct
//!   locations;
//! * **allocator freshness** — a fresh location is not in the range of
//!   the store or environment;
//! * **call frame conditions** — a stepped-over call preserves the
//!   values of locals that are not pointed to, and cannot create
//!   pointers to them (the paper's "primary axiom" for calls);
//! * **`unchanged(E)` semantics** — the engine's conservative evaluator
//!   for this label guarantees `evalExpr` is preserved across the
//!   statement;
//! * **`fold` semantics** — an expression the engine folded evaluates
//!   to the folded constant in every state.

use crate::error::VerifyError;
use crate::vocab::Kinds;
use cobalt_dsl::{
    BasePat, ConstPat, ExprPat, ForwardWitness, FragKind, IdxPat, LabelEnv, LabelName, LhsPat,
    PatVar, ProcPat, StmtPat, VarPat,
};
use cobalt_logic::{Formula, Solver, TermId};
use std::collections::{BTreeMap, HashMap};

/// How semantic labels (those defined by pure analyses) are encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintMode {
    /// Forward obligations: a semantic label stands for its (separately
    /// verified) witness meaning.
    Semantic,
    /// Backward obligations: forward-analysis labels are unavailable
    /// (paper §4.1), so a semantic label is encoded as *false*.
    AbsentFalse,
}

/// The meanings of semantic labels: for each label name, its parameter
/// list and the forward witness its defining analysis was verified
/// against.
#[derive(Debug, Clone, Default)]
pub struct SemanticMeanings {
    map: HashMap<LabelName, (Vec<PatVar>, ForwardWitness)>,
}

impl SemanticMeanings {
    /// No semantic labels: every unknown label is treated as absent.
    pub fn none() -> Self {
        SemanticMeanings::default()
    }

    /// The standard meanings: `notTainted(X)` means `notPointedTo(X, η)`
    /// (paper §2.4). Callers must verify the defining analysis before
    /// relying on this (see `cobalt-opts`).
    pub fn standard() -> Self {
        let mut m = SemanticMeanings::default();
        m.register(
            "notTainted".into(),
            vec!["X".into()],
            ForwardWitness::NotPointedTo(VarPat::pat("X")),
        );
        m
    }

    /// Registers the meaning of a semantic label.
    pub fn register(&mut self, name: LabelName, params: Vec<PatVar>, witness: ForwardWitness) {
        self.map.insert(name, (params, witness));
    }

    /// Looks up a meaning.
    pub fn lookup(&self, name: &LabelName) -> Option<&(Vec<PatVar>, ForwardWitness)> {
        self.map.get(name)
    }
}

/// A symbolic execution state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymState {
    /// The statement index `ι`.
    pub idx: TermId,
    /// The environment `ρ` (map Var → Loc).
    pub env: TermId,
    /// The store `σ` (map Loc → Value).
    pub store: TermId,
    /// The allocator `M`.
    pub alloc: TermId,
}

/// A base-expression position in a shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgShape {
    /// A variable operand (term of variable sort).
    Var(TermId),
    /// A constant operand (term of integer sort).
    Const(TermId),
}

/// A right-hand-side shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RhsShape {
    /// A variable reference.
    Var(TermId),
    /// A constant.
    Const(TermId),
    /// `*u`.
    Deref(TermId),
    /// `&u`.
    AddrOf(TermId),
    /// An operator application with a symbolic operator.
    Op(TermId, Vec<ArgShape>),
    /// An opaque expression (an expression-kind pattern variable).
    Opaque(TermId),
    /// The constant fold of an opaque expression (rewrite templates
    /// only).
    FoldOf(TermId),
}

/// A symbolic statement shape: one IL statement constructor with skolem
/// constants in the positions the obligation does not fix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Shape {
    /// `decl w`.
    Decl(TermId),
    /// `skip`.
    Skip,
    /// `w := rhs`.
    AssignVar(TermId, RhsShape),
    /// `*w := rhs`.
    AssignDeref(TermId, RhsShape),
    /// `w := new`.
    New(TermId),
    /// `w := f(arg)`.
    Call {
        /// Destination variable term.
        dst: TermId,
        /// Procedure-name term.
        proc: TermId,
        /// Argument shape.
        arg: ArgShape,
    },
    /// `if cond goto t1 else t2`.
    If {
        /// Condition shape.
        cond: ArgShape,
        /// Then-target term.
        t1: TermId,
        /// Else-target term.
        t2: TermId,
    },
    /// `return u`.
    Return(TermId),
}

impl Shape {
    /// Whether this is a `return` shape.
    pub fn is_return(&self) -> bool {
        matches!(self, Shape::Return(_))
    }
}

/// A symbolic binding of pattern variables to logic terms.
pub type Bind = BTreeMap<PatVar, TermId>;

/// The encoder. One per proof obligation; owns fresh-name generation
/// and accumulates emitted hypotheses in [`Enc::extra`].
pub struct Enc<'a> {
    /// The solver whose term bank the encoding populates.
    pub s: &'a mut Solver,
    defs: &'a LabelEnv,
    meanings: &'a SemanticMeanings,
    mode: TaintMode,
    /// Background hypotheses emitted during encoding (success
    /// conditions of the original program, axiom instances, …).
    pub extra: Vec<Formula>,
    /// All variable-sort terms seen (pattern variables and shape
    /// skolems), for environment-injectivity instances.
    pub var_terms: Vec<TermId>,
    /// Environment terms created by [`init_state`](Self::init_state).
    pub envs: Vec<TermId>,
    sk: u64,
}

impl<'a> Enc<'a> {
    /// Creates an encoder and interns the vocabulary: one constant per
    /// pattern variable.
    pub fn new(
        s: &'a mut Solver,
        defs: &'a LabelEnv,
        meanings: &'a SemanticMeanings,
        mode: TaintMode,
        kinds: &Kinds,
    ) -> (Self, Bind) {
        let mut enc = Enc {
            s,
            defs,
            meanings,
            mode,
            extra: Vec::new(),
            var_terms: Vec::new(),
            envs: Vec::new(),
            sk: 0,
        };
        // Declare the value constructors.
        for c in ["intval", "locval"] {
            enc.s.bank.constructor(c);
        }
        for c in ["varexpr", "cstexpr", "derefexpr", "addrexpr", "opexpr1", "opexpr2"] {
            enc.s.bank.constructor(c);
        }
        let mut bind = Bind::new();
        for (p, k) in kinds {
            let t = enc.s.bank.app0(&format!("pv${p}"));
            if *k == FragKind::Var {
                enc.var_terms.push(t);
            }
            bind.insert(p.clone(), t);
        }
        (enc, bind)
    }

    /// A fresh name.
    fn fresh_name(&mut self, base: &str) -> String {
        self.sk += 1;
        format!("{base}${}", self.sk)
    }

    /// A fresh constant.
    pub fn fresh(&mut self, base: &str) -> TermId {
        let name = self.fresh_name(base);
        self.s.bank.app0(&name)
    }

    /// A universally quantified pointwise fact about a store:
    /// `∀l. body(select(store, l))`, with the select as trigger.
    fn forall_store(
        &mut self,
        store: TermId,
        mk_body: impl FnOnce(&mut Self, TermId) -> Formula,
    ) -> Formula {
        let name = self.fresh_name("l");
        let lvar = self.s.bank.var(&name);
        let vsym = self.s.bank.sym(&name);
        let sel = self.s.select(store, lvar);
        let body = mk_body(self, sel);
        Formula::Forall {
            vars: vec![vsym],
            triggers: vec![sel],
            body: Box::new(body),
        }
    }

    /// A fresh variable-sort constant, registered for injectivity.
    pub fn fresh_var(&mut self, base: &str) -> TermId {
        let t = self.fresh(base);
        self.var_terms.push(t);
        t
    }

    fn app(&mut self, f: &str, args: Vec<TermId>) -> TermId {
        let s = self.s.bank.sym(f);
        self.s.bank.app(s, args)
    }

    /// `intval(t)`.
    pub fn intval(&mut self, t: TermId) -> TermId {
        self.app("intval", vec![t])
    }

    /// `locval(t)`, emitting the extractor instances
    /// `locOf(locval(t)) = t` and `isloc(locval(t))`.
    pub fn locval(&mut self, t: TermId) -> TermId {
        let lv = self.app("locval", vec![t]);
        let lof = self.app("locOf", vec![lv]);
        self.extra.push(Formula::Eq(lof, t));
        let il = self.app("isloc", vec![lv]);
        self.extra.push(Formula::Holds(il));
        lv
    }

    /// `ρ(v)` — the location of variable term `v` in `st`.
    pub fn loc(&mut self, st: &SymState, v: TermId) -> TermId {
        self.s.select(st.env, v)
    }

    /// `η(v)` — the value of variable term `v` in `st`.
    pub fn val(&mut self, st: &SymState, v: TermId) -> TermId {
        let l = self.loc(st, v);
        self.s.select(st.store, l)
    }

    /// The initial symbolic state of an obligation.
    pub fn init_state(&mut self, tag: &str) -> SymState {
        let st = SymState {
            idx: self.fresh(&format!("idx_{tag}")),
            env: self.fresh(&format!("env_{tag}")),
            store: self.fresh(&format!("store_{tag}")),
            alloc: self.fresh(&format!("alloc_{tag}")),
        };
        self.envs.push(st.env);
        st
    }

    /// Emits environment injectivity for every environment created by
    /// [`init_state`](Self::init_state).
    pub fn emit_env_injectivity_all(&mut self) {
        let envs = self.envs.clone();
        self.emit_env_injectivity(&envs);
    }

    /// Emits pairwise environment-injectivity instances for every
    /// variable-sort term seen so far: `v = w ∨ ρ(v) ≠ ρ(w)`.
    pub fn emit_env_injectivity(&mut self, envs: &[TermId]) {
        let vars = self.var_terms.clone();
        for env in envs {
            for i in 0..vars.len() {
                for j in (i + 1)..vars.len() {
                    let li = self.s.select(*env, vars[i]);
                    let lj = self.s.select(*env, vars[j]);
                    self.extra.push(Formula::or([
                        Formula::Eq(vars[i], vars[j]),
                        Formula::ne(li, lj),
                    ]));
                }
            }
        }
    }

    /// The expression *term* of a right-hand-side shape, used when an
    /// expression pattern variable is equated with the shape.
    pub fn rhs_expr_term(&mut self, rhs: &RhsShape) -> TermId {
        match rhs {
            RhsShape::Var(u) => self.app("varexpr", vec![*u]),
            RhsShape::Const(k) => self.app("cstexpr", vec![*k]),
            RhsShape::Deref(u) => self.app("derefexpr", vec![*u]),
            RhsShape::AddrOf(u) => self.app("addrexpr", vec![*u]),
            RhsShape::Op(o, args) => {
                let mut ts = vec![*o];
                for a in args {
                    ts.push(match a {
                        ArgShape::Var(u) => self.app("varexpr", vec![*u]),
                        ArgShape::Const(k) => self.app("cstexpr", vec![*k]),
                    });
                }
                let f = if args.len() == 1 { "opexpr1" } else { "opexpr2" };
                self.app(f, ts)
            }
            RhsShape::Opaque(e) | RhsShape::FoldOf(e) => *e,
        }
    }

    /// `evalExpr(σ, ρ, e)` as an opaque function application.
    pub fn eval_e(&mut self, st: &SymState, e: TermId) -> TermId {
        self.app("evalE", vec![st.store, st.env, e])
    }

    /// The value of an argument shape, emitting original-execution
    /// success hypotheses (`assume_success`) as needed.
    fn arg_value(&mut self, st: &SymState, a: &ArgShape) -> TermId {
        match a {
            ArgShape::Var(u) => self.val(st, *u),
            ArgShape::Const(k) => self.intval(*k),
        }
    }

    /// The value of a right-hand-side shape in `st`.
    ///
    /// When `assume_success` is set, hypotheses asserting that the
    /// *original* program's evaluation succeeded (dereferences hit
    /// locations, operands are integers) are pushed to `extra`.
    pub fn rhs_value(&mut self, st: &SymState, rhs: &RhsShape, assume_success: bool) -> TermId {
        match rhs {
            RhsShape::Var(u) => self.val(st, *u),
            RhsShape::Const(k) => self.intval(*k),
            RhsShape::AddrOf(u) => {
                let l = self.loc(st, *u);
                self.locval(l)
            }
            RhsShape::Deref(u) => {
                let pv = self.val(st, *u);
                let t = self.fresh("tgt");
                if assume_success {
                    let lv = self.locval(t);
                    self.extra.push(Formula::Eq(pv, lv));
                } else {
                    // Without the success assumption, use the extractor.
                    let lof = self.app("locOf", vec![pv]);
                    self.extra.push(Formula::Eq(t, lof));
                }
                self.s.select(st.store, t)
            }
            RhsShape::Op(o, args) => {
                let mut vals = vec![*o];
                for a in args {
                    let v = self.arg_value(st, a);
                    if assume_success {
                        // The original execution succeeded, so the
                        // operand is an integer.
                        let n = self.fresh("opn");
                        let iv = self.intval(n);
                        self.extra.push(Formula::Eq(v, iv));
                    }
                    vals.push(v);
                }
                let f = if args.len() == 1 { "opval1" } else { "opval2" };
                let r = self.app(f, vals);
                self.intval(r)
            }
            RhsShape::Opaque(e) => self.eval_e(st, *e),
            RhsShape::FoldOf(e) => {
                // foldsTo: the engine only applies a fold when the
                // expression evaluates to this constant in every state.
                let n = self.fresh("fold");
                let iv = self.intval(n);
                let ev = self.eval_e(st, *e);
                self.extra.push(Formula::Eq(ev, iv));
                iv
            }
        }
    }

    /// Emits the defining equation bridging `evalE` over a structural
    /// shape to its structural value.
    fn emit_eval_bridge(&mut self, st: &SymState, rhs: &RhsShape, value: TermId) {
        match rhs {
            RhsShape::Opaque(_) | RhsShape::FoldOf(_) => {}
            _ => {
                let et = self.rhs_expr_term(rhs);
                let ev = self.eval_e(st, et);
                self.extra.push(Formula::Eq(ev, value));
            }
        }
    }

    /// Emits allocator-freshness facts for `fresh` allocated in `st`.
    fn emit_freshness(&mut self, st: &SymState, fresh: TermId) {
        // Nothing in the store points to the fresh location.
        let lv = self.locval(fresh);
        let fact = self.forall_store(st.store, |_, sel| Formula::ne(sel, lv));
        self.extra.push(fact);
        // The fresh location differs from every known variable location.
        let vars = self.var_terms.clone();
        for v in vars {
            let l = self.loc(st, v);
            self.extra.push(Formula::ne(fresh, l));
        }
    }

    /// `succ(ι)`.
    pub fn succ(&mut self, idx: TermId) -> TermId {
        self.app("succ", vec![idx])
    }

    /// Steps a shape from `st`, emitting step equations and success
    /// hypotheses; returns the post-state.
    ///
    /// `taint_known` lists variable terms known `notPointedTo` in `st`,
    /// enabling call frame conditions.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::Unsupported`] for `return` shapes, whose
    /// post-state is interprocedural (obligation builders handle
    /// returns specially).
    pub fn step(
        &mut self,
        shape: &Shape,
        st: &SymState,
        taint_known: &[TermId],
        assume_success: bool,
    ) -> Result<SymState, VerifyError> {
        let next_idx = match shape {
            Shape::If { cond, t1, t2 } => {
                let cv = self.arg_value(st, cond);
                // The integer behind the condition value: known outright
                // for constant conditions, a success hypothesis of the
                // original program for variable ones.
                let n = match cond {
                    ArgShape::Const(k) => Some(*k),
                    ArgShape::Var(_) => {
                        if assume_success {
                            let n = self.fresh("cond");
                            let iv = self.intval(n);
                            self.extra.push(Formula::Eq(cv, iv));
                            Some(n)
                        } else {
                            None
                        }
                    }
                };
                let br = self.app("brTarget", vec![cv, *t1, *t2]);
                // Branch semantics, instantiated at this term.
                if let Some(n) = n {
                    let zero = self.s.bank.int(0);
                    self.extra.push(Formula::implies(
                        Formula::Eq(n, zero),
                        Formula::Eq(br, *t2),
                    ));
                    self.extra.push(Formula::implies(
                        Formula::ne(n, zero),
                        Formula::Eq(br, *t1),
                    ));
                }
                br
            }
            _ => self.succ(st.idx),
        };
        let mut next = SymState {
            idx: next_idx,
            env: st.env,
            store: st.store,
            alloc: st.alloc,
        };
        match shape {
            Shape::Skip | Shape::If { .. } => {}
            Shape::Decl(w) => {
                let fresh = self.app("freshLoc", vec![st.alloc]);
                self.emit_freshness(st, fresh);
                next.env = self.s.update(st.env, *w, fresh);
                let zero = self.s.bank.int(0);
                let z = self.intval(zero);
                next.store = self.s.update(st.store, fresh, z);
                next.alloc = self.app("allocNext", vec![st.alloc]);
            }
            Shape::AssignVar(w, rhs) => {
                let v = self.rhs_value(st, rhs, assume_success);
                self.emit_eval_bridge(st, rhs, v);
                let l = self.loc(st, *w);
                next.store = self.s.update(st.store, l, v);
            }
            Shape::AssignDeref(w, rhs) => {
                let pv = self.val(st, *w);
                let t = self.fresh("ptgt");
                if assume_success {
                    let lv = self.locval(t);
                    self.extra.push(Formula::Eq(pv, lv));
                } else {
                    let lof = self.app("locOf", vec![pv]);
                    self.extra.push(Formula::Eq(t, lof));
                }
                let v = self.rhs_value(st, rhs, assume_success);
                self.emit_eval_bridge(st, rhs, v);
                next.store = self.s.update(st.store, t, v);
            }
            Shape::New(w) => {
                let fresh = self.app("freshLoc", vec![st.alloc]);
                self.emit_freshness(st, fresh);
                let zero = self.s.bank.int(0);
                let z = self.intval(zero);
                let s1 = self.s.update(st.store, fresh, z);
                let l = self.loc(st, *w);
                let lv = self.locval(fresh);
                next.store = self.s.update(s1, l, lv);
                next.alloc = self.app("allocNext", vec![st.alloc]);
            }
            Shape::Call { dst, proc, arg } => {
                // The intraprocedural step-over `↪π` is a *function* of
                // the pre-state and the call (our interpreter is
                // deterministic), so the callee's effect is encoded as
                // uninterpreted functions of (σ, ρ, M, callee, argument)
                // rather than a fresh havoc — two identical calls from
                // identical states step identically, which is what lets
                // argument-propagation rewrites prove F3. The paper's
                // call axiom is layered on top as frame conditions.
                let argv = self.arg_value(st, arg);
                let callee_args = vec![st.store, st.env, st.alloc, *proc, argv];
                let callstore = self.app("callStore", callee_args.clone());
                let retval = self.app("callRet", callee_args.clone());
                let dst_loc = self.loc(st, *dst);
                next.store = self.s.update(callstore, dst_loc, retval);
                next.alloc = self.app("callAlloc", callee_args);
                for &v in taint_known {
                    let lv_loc = self.loc(st, v);
                    let pre = self.s.select(st.store, lv_loc);
                    let post = self.s.select(next.store, lv_loc);
                    // Value preserved unless v is the destination.
                    self.extra.push(Formula::or([
                        Formula::Eq(v, *dst),
                        Formula::Eq(post, pre),
                    ]));
                    // Still not pointed to after the call: the callee
                    // cannot fabricate a pointer to an unreachable
                    // local.
                    let lv = self.locval(lv_loc);
                    let fact =
                        self.forall_store(next.store, |_, sel| Formula::ne(sel, lv));
                    self.extra.push(fact);
                }
            }
            Shape::Return(_) => {
                return Err(VerifyError::Unsupported(
                    "return shapes have no intraprocedural successor".into(),
                ))
            }
        }
        Ok(next)
    }

    /// The tags of the statement shapes region obligations enumerate
    /// (F1, F2, B2, B3). `include_return` is set for B3, where a
    /// `return` may be the enabling statement.
    ///
    /// Each obligation builds **only its own** shape with
    /// [`shape_by_tag`](Self::shape_by_tag), keeping the skolem
    /// vocabulary (and hence the injectivity instances) small.
    pub fn shape_tags(include_return: bool) -> Vec<&'static str> {
        let mut out = vec![
            "decl",
            "skip",
            "assign_var",
            "assign_const",
            "assign_deref",
            "assign_addrof",
            "assign_op1v",
            "assign_op1c",
            "assign_op2vv",
            "assign_op2vc",
            "assign_op2cv",
            "store_var",
            "store_const",
            "store_deref",
            "store_addrof",
            "store_op1v",
            "store_op1c",
            "store_op2vv",
            "store_op2vc",
            "store_op2cv",
            "new",
            "call_var",
            "call_const",
            "if_var",
            "if_const",
        ];
        if include_return {
            out.push("return");
        }
        out
    }

    fn rhs_by_tag(&mut self, tag: &str) -> RhsShape {
        match tag {
            "var" => RhsShape::Var(self.fresh_var("u")),
            "const" => RhsShape::Const(self.fresh("k")),
            "deref" => RhsShape::Deref(self.fresh_var("u")),
            "addrof" => RhsShape::AddrOf(self.fresh_var("u")),
            "op1v" => {
                let o = self.fresh("op");
                let a = self.fresh_var("a");
                RhsShape::Op(o, vec![ArgShape::Var(a)])
            }
            "op1c" => {
                let o = self.fresh("op");
                let k = self.fresh("k");
                RhsShape::Op(o, vec![ArgShape::Const(k)])
            }
            "op2vv" => {
                let o = self.fresh("op");
                let a = self.fresh_var("a");
                let b = self.fresh_var("a");
                RhsShape::Op(o, vec![ArgShape::Var(a), ArgShape::Var(b)])
            }
            "op2vc" => {
                let o = self.fresh("op");
                let a = self.fresh_var("a");
                let k = self.fresh("k");
                RhsShape::Op(o, vec![ArgShape::Var(a), ArgShape::Const(k)])
            }
            "op2cv" => {
                let o = self.fresh("op");
                let k = self.fresh("k");
                let a = self.fresh_var("a");
                RhsShape::Op(o, vec![ArgShape::Const(k), ArgShape::Var(a)])
            }
            other => unreachable!("unknown rhs tag `{other}`"),
        }
    }

    /// Builds the single shape named by `tag` (see
    /// [`shape_tags`](Self::shape_tags)).
    ///
    /// # Panics
    ///
    /// Panics on an unknown tag.
    pub fn shape_by_tag(&mut self, tag: &str) -> Shape {
        if let Some(rhs_tag) = tag.strip_prefix("assign_") {
            let rhs = self.rhs_by_tag(rhs_tag);
            let w = self.fresh_var("w");
            return Shape::AssignVar(w, rhs);
        }
        if let Some(rhs_tag) = tag.strip_prefix("store_") {
            let rhs = self.rhs_by_tag(rhs_tag);
            let w = self.fresh_var("w");
            return Shape::AssignDeref(w, rhs);
        }
        match tag {
            "decl" => Shape::Decl(self.fresh_var("w")),
            "skip" => Shape::Skip,
            "new" => Shape::New(self.fresh_var("w")),
            "call_var" => {
                let u = self.fresh_var("u");
                let dst = self.fresh_var("w");
                let proc = self.fresh("f");
                Shape::Call {
                    dst,
                    proc,
                    arg: ArgShape::Var(u),
                }
            }
            "call_const" => {
                let k = self.fresh("k");
                let dst = self.fresh_var("w");
                let proc = self.fresh("f");
                Shape::Call {
                    dst,
                    proc,
                    arg: ArgShape::Const(k),
                }
            }
            "if_var" => {
                let u = self.fresh_var("u");
                let t1 = self.fresh("t");
                let t2 = self.fresh("t");
                Shape::If {
                    cond: ArgShape::Var(u),
                    t1,
                    t2,
                }
            }
            "if_const" => {
                let k = self.fresh("k");
                let t1 = self.fresh("t");
                let t2 = self.fresh("t");
                Shape::If {
                    cond: ArgShape::Const(k),
                    t1,
                    t2,
                }
            }
            "return" => Shape::Return(self.fresh_var("u")),
            other => unreachable!("unknown shape tag `{other}`"),
        }
    }

    /// Builds the shape of a rewrite pattern (`s` or `s'`) under the
    /// vocabulary binding: pattern variables become their constants.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::Unsupported`] for wildcard patterns, which
    /// cannot appear in rewrite rules.
    pub fn shape_of_pattern(&mut self, pat: &StmtPat, bind: &Bind) -> Result<Shape, VerifyError> {
        let var = |enc: &mut Enc<'_>, v: &VarPat| -> Result<TermId, VerifyError> {
            match v {
                VarPat::Pat(p) => bind.get(p).copied().ok_or_else(|| {
                    VerifyError::Unsupported(format!("unbound pattern variable `{p}`"))
                }),
                VarPat::Concrete(name) => {
                    let t = enc.s.bank.app0(&format!("var${name}"));
                    if !enc.var_terms.contains(&t) {
                        enc.var_terms.push(t);
                    }
                    Ok(t)
                }
            }
        };
        let cst = |enc: &mut Enc<'_>, c: &ConstPat| -> Result<TermId, VerifyError> {
            match c {
                ConstPat::Pat(p) => bind.get(p).copied().ok_or_else(|| {
                    VerifyError::Unsupported(format!("unbound pattern variable `{p}`"))
                }),
                ConstPat::Concrete(n) => Ok(enc.s.bank.int(*n)),
            }
        };
        let idx = |enc: &mut Enc<'_>, i: &IdxPat| -> Result<TermId, VerifyError> {
            match i {
                IdxPat::Pat(p) => bind.get(p).copied().ok_or_else(|| {
                    VerifyError::Unsupported(format!("unbound pattern variable `{p}`"))
                }),
                IdxPat::Concrete(n) => Ok(enc.s.bank.int(*n as i64)),
            }
        };
        let rhs = |enc: &mut Enc<'_>, e: &ExprPat| -> Result<RhsShape, VerifyError> {
            Ok(match e {
                ExprPat::Pat(p) => RhsShape::Opaque(bind.get(p).copied().ok_or_else(|| {
                    VerifyError::Unsupported(format!("unbound pattern variable `{p}`"))
                })?),
                ExprPat::Fold(p) => RhsShape::FoldOf(bind.get(p).copied().ok_or_else(|| {
                    VerifyError::Unsupported(format!("unbound pattern variable `{p}`"))
                })?),
                ExprPat::Any => {
                    return Err(VerifyError::Unsupported(
                        "wildcard expression in rewrite pattern".into(),
                    ))
                }
                ExprPat::Base(BasePat::Var(v)) => RhsShape::Var(var(enc, v)?),
                ExprPat::Base(BasePat::Const(c)) => RhsShape::Const(cst(enc, c)?),
                ExprPat::Deref(v) => RhsShape::Deref(var(enc, v)?),
                ExprPat::AddrOf(v) => RhsShape::AddrOf(var(enc, v)?),
                ExprPat::Op(kind, args) => {
                    let o = enc.op_kind_term(*kind);
                    let mut shapes = Vec::new();
                    for a in args {
                        shapes.push(match a {
                            BasePat::Var(v) => ArgShape::Var(var(enc, v)?),
                            BasePat::Const(c) => ArgShape::Const(cst(enc, c)?),
                        });
                    }
                    if shapes.is_empty() || shapes.len() > 2 {
                        return Err(VerifyError::Unsupported(
                            "operator patterns support arity 1-2".into(),
                        ));
                    }
                    RhsShape::Op(o, shapes)
                }
            })
        };
        Ok(match pat {
            StmtPat::Any | StmtPat::ReturnAny => {
                return Err(VerifyError::Unsupported(
                    "wildcard statement in rewrite pattern".into(),
                ))
            }
            StmtPat::Skip => Shape::Skip,
            StmtPat::Decl(v) => Shape::Decl(var(self, v)?),
            StmtPat::New(v) => Shape::New(var(self, v)?),
            StmtPat::Return(v) => Shape::Return(var(self, v)?),
            StmtPat::Assign(LhsPat::Var(v), e) => {
                let w = var(self, v)?;
                let r = rhs(self, e)?;
                Shape::AssignVar(w, r)
            }
            StmtPat::Assign(LhsPat::Deref(v), e) => {
                let w = var(self, v)?;
                let r = rhs(self, e)?;
                Shape::AssignDeref(w, r)
            }
            StmtPat::Assign(LhsPat::Any, _) => {
                return Err(VerifyError::Unsupported(
                    "wildcard left-hand side in rewrite pattern".into(),
                ))
            }
            StmtPat::Call { dst, proc, arg } => {
                let d = var(self, dst)?;
                let p = match proc {
                    ProcPat::Pat(p) => bind.get(p).copied().ok_or_else(|| {
                        VerifyError::Unsupported(format!("unbound pattern variable `{p}`"))
                    })?,
                    ProcPat::Concrete(name) => self.s.bank.app0(&format!("proc${name}")),
                };
                let a = match arg {
                    BasePat::Var(v) => ArgShape::Var(var(self, v)?),
                    BasePat::Const(c) => ArgShape::Const(cst(self, c)?),
                };
                Shape::Call {
                    dst: d,
                    proc: p,
                    arg: a,
                }
            }
            StmtPat::If {
                cond,
                then_target,
                else_target,
            } => {
                let c = match cond {
                    BasePat::Var(v) => ArgShape::Var(var(self, v)?),
                    BasePat::Const(c) => ArgShape::Const(cst(self, c)?),
                };
                Shape::If {
                    cond: c,
                    t1: idx(self, then_target)?,
                    t2: idx(self, else_target)?,
                }
            }
        })
    }

    fn op_kind_term(&mut self, kind: cobalt_il::OpKind) -> TermId {
        let name = format!("op${kind:?}");
        let s = self.s.bank.constructor(&name);
        self.s.bank.app(s, Vec::new())
    }

    /// The constant term for a specific operator kind (public alias).
    pub fn op_kind_term_pub(&mut self, kind: cobalt_il::OpKind) -> TermId {
        self.op_kind_term(kind)
    }

    /// The label-definition environment in use.
    pub fn label_defs(&self) -> &LabelEnv {
        self.defs
    }

    /// The semantic-label meanings in use.
    pub fn meanings(&self) -> &SemanticMeanings {
        self.meanings
    }

    /// The taint mode of this obligation.
    pub fn taint_mode(&self) -> TaintMode {
        self.mode
    }

    /// The term for a concrete program variable named in a pattern,
    /// registered for environment injectivity.
    pub fn concrete_var_term(&mut self, name: &str) -> TermId {
        let t = self.s.bank.app0(&format!("var${name}"));
        if !self.var_terms.contains(&t) {
            self.var_terms.push(t);
        }
        t
    }

    /// Public application helper.
    pub fn app_pub(&mut self, f: &str, args: Vec<TermId>) -> TermId {
        self.app(f, args)
    }

    /// A `∀l. body(select(store, l))` fact with the select as trigger.
    pub fn forall_store_pub(
        &mut self,
        store: TermId,
        mk_body: impl FnOnce(&mut Self, TermId) -> Formula,
    ) -> Formula {
        self.forall_store(store, mk_body)
    }

    /// A universally quantified pointwise relation between two stores:
    /// `∀l. body(select(s1, l), select(s2, l), l)`, with both selects as
    /// triggers so instantiation fires from either side.
    pub fn forall_stores2(
        &mut self,
        s1: TermId,
        s2: TermId,
        mk_body: impl FnOnce(&mut Self, TermId, TermId, TermId) -> Formula,
    ) -> Formula {
        let name = self.fresh_name("l");
        let lvar = self.s.bank.var(&name);
        let vsym = self.s.bank.sym(&name);
        let sel1 = self.s.select(s1, lvar);
        let sel2 = self.s.select(s2, lvar);
        let body = mk_body(self, sel1, sel2, lvar);
        Formula::Forall {
            vars: vec![vsym],
            triggers: vec![sel1, sel2],
            body: Box::new(body),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Solver, LabelEnv, SemanticMeanings) {
        (Solver::new(), LabelEnv::standard(), SemanticMeanings::standard())
    }

    #[test]
    fn vocabulary_constants_are_stable() {
        let (mut s, defs, m) = setup();
        let mut kinds = Kinds::new();
        kinds.insert("X".into(), FragKind::Var);
        kinds.insert("C".into(), FragKind::Const);
        let (enc, bind) = Enc::new(&mut s, &defs, &m, TaintMode::Semantic, &kinds);
        assert_eq!(bind.len(), 2);
        assert_eq!(enc.var_terms.len(), 1);
    }

    #[test]
    fn shape_enumeration_counts() {
        let tags = Enc::shape_tags(false);
        assert_eq!(tags.len(), 2 + 9 + 9 + 1 + 2 + 2);
        let with_ret = Enc::shape_tags(true);
        assert_eq!(with_ret.len(), tags.len() + 1);
        // Tags are unique and all constructible.
        let mut sorted = with_ret.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), with_ret.len());
        let (mut s, defs, m) = setup();
        let kinds = Kinds::new();
        let (mut enc, _) = Enc::new(&mut s, &defs, &m, TaintMode::Semantic, &kinds);
        for tag in with_ret {
            let _ = enc.shape_by_tag(tag);
        }
    }

    #[test]
    fn step_assign_updates_store() {
        let (mut s, defs, m) = setup();
        let kinds = Kinds::new();
        let (mut enc, _) = Enc::new(&mut s, &defs, &m, TaintMode::Semantic, &kinds);
        let st = enc.init_state("a");
        let w = enc.fresh_var("w");
        let k = enc.fresh("k");
        let shape = Shape::AssignVar(w, RhsShape::Const(k));
        let next = enc.step(&shape, &st, &[], true).unwrap();
        assert_ne!(next.store, st.store);
        assert_eq!(next.env, st.env);
        assert_eq!(next.alloc, st.alloc);
        assert_ne!(next.idx, st.idx);
    }

    #[test]
    fn step_return_unsupported() {
        let (mut s, defs, m) = setup();
        let kinds = Kinds::new();
        let (mut enc, _) = Enc::new(&mut s, &defs, &m, TaintMode::Semantic, &kinds);
        let st = enc.init_state("a");
        let u = enc.fresh_var("u");
        assert!(enc.step(&Shape::Return(u), &st, &[], true).is_err());
    }

    #[test]
    fn shape_of_rewrite_pattern() {
        let (mut s, defs, m) = setup();
        let mut kinds = Kinds::new();
        kinds.insert("X".into(), FragKind::Var);
        kinds.insert("Y".into(), FragKind::Var);
        let (mut enc, bind) = Enc::new(&mut s, &defs, &m, TaintMode::Semantic, &kinds);
        let pat = StmtPat::Assign(
            LhsPat::Var(VarPat::pat("X")),
            ExprPat::Base(BasePat::Var(VarPat::pat("Y"))),
        );
        let shape = enc.shape_of_pattern(&pat, &bind).unwrap();
        match shape {
            Shape::AssignVar(w, RhsShape::Var(u)) => {
                assert_eq!(w, bind[&"X".into()]);
                assert_eq!(u, bind[&"Y".into()]);
            }
            other => panic!("unexpected shape {other:?}"),
        }
        assert!(enc.shape_of_pattern(&StmtPat::Any, &bind).is_err());
    }
}
