//! Crash-safe verification sessions: a [`Session`] wraps a
//! [`Verifier`] and a persistent proof journal so that a killed or
//! deadline-expired run resumes *warm* — already-proved obligations are
//! replayed from the journal instead of re-proved, failures and
//! resource-limited obligations are re-attempted (resuming their
//! [`RetryPolicy`](crate::RetryPolicy) escalation where it left off),
//! and any journal corruption degrades to re-proving, never to a
//! trusted-but-wrong outcome. See `DESIGN.md` §10.
//!
//! # Fingerprints
//!
//! A cached outcome is only reused when its **content fingerprint**
//! matches: an FNV-64 hash over the rule's full AST (its `Debug`
//! rendering), the obligation id, the obligation's actual logical
//! encoding (every hypothesis and the goal, rendered against the term
//! bank), and the prover limit tiers. Any semantic change — to the
//! rule, to the obligation builders, to the encoding, or to the limits
//! the proof would run under — changes the fingerprint and invalidates
//! the cache entry. The per-report wall-clock deadline is deliberately
//! *not* part of the fingerprint: it bounds a run, not a proof, so a
//! resumed run may use a different deadline and still reuse outcomes.
//!
//! # Degradation
//!
//! A journal that cannot be written mid-run (disk full, injected
//! `journal.write`/`journal.fsync` fault) switches the session to
//! uncached verification: proving continues, nothing is lost except
//! warmth, and [`Session::degraded`] reports why.

use crate::checker::{ObligationOutcome, Report, Verifier};
use crate::error::VerifyError;
use crate::oblig::{obligations_for_analysis_with, obligations_for_optimization_with, Prepared};
use cobalt_dsl::{Optimization, PureAnalysis};
use cobalt_logic::Limits;
use cobalt_support::journal::{Fnv64, Journal, LoadReport, LockOutcome};
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::time::{Duration, Instant};

/// How long [`Session::with_journal`] waits for the journal's advisory
/// lock before degrading to uncached verification. Long enough to ride
/// out a sibling's append bursts, short enough that a wedged holder
/// cannot wedge us.
pub const DEFAULT_LOCK_WAIT: Duration = Duration::from_secs(5);

/// Version tag mixed into every fingerprint; bump on any change to the
/// fingerprint inputs or the record format so stale journals invalidate
/// wholesale instead of aliasing.
const FINGERPRINT_VERSION: &str = "cobalt-oblig-fp-v1";

/// Record format version written as each record's first field.
const RECORD_VERSION: &str = "v1";

/// Stable content fingerprint of one prepared obligation.
///
/// Inputs: the fingerprint version, the rule's `Debug` AST rendering
/// (`rule_src`), the obligation id, every hypothesis and the goal of
/// the proof task rendered against the solver's term bank, and the
/// retry policy's limit tiers. 64 bits of FNV-1a — collisions are
/// vanishingly unlikely within one registry, and a collision could
/// only replay a *proved* outcome of a different obligation, which the
/// next fresh run would correct.
pub fn fingerprint_obligation(rule_src: &str, p: &Prepared, tiers: &[Limits]) -> u64 {
    let mut h = Fnv64::new();
    h.write(FINGERPRINT_VERSION.as_bytes()).write(b"\0");
    h.write(rule_src.as_bytes()).write(b"\0");
    h.write(p.id.as_bytes()).write(b"\0");
    for hyp in &p.task.hypotheses {
        h.write(hyp.display(&p.solver.bank).as_bytes()).write(b"\n");
    }
    h.write(b"|-\n");
    h.write(p.task.goal.display(&p.solver.bank).as_bytes());
    h.write(b"\0");
    for tier in tiers {
        h.write(format!("{tier:?}").as_bytes()).write(b"\0");
    }
    h.finish()
}

/// One journaled obligation outcome, as parsed back from a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct JournalEntry {
    pub fingerprint: u64,
    pub rule: String,
    pub id: String,
    pub proved: bool,
    pub resource_limited: bool,
    pub attempts: u32,
    pub escalations: u32,
    /// Next limit tier to attempt (tiers `0..tier` are already
    /// exhausted); how escalation state survives a crash.
    pub tier: u32,
    pub elapsed_us: u64,
    pub detail: String,
}

impl JournalEntry {
    /// Encodes the entry as a journal payload: tab-separated
    /// `key=value` fields behind a version tag, values escaped.
    pub fn encode(&self) -> Vec<u8> {
        format!(
            "{RECORD_VERSION}\tfp={:016x}\trule={}\tid={}\tproved={}\trl={}\tattempts={}\tesc={}\ttier={}\telapsed_us={}\tdetail={}",
            self.fingerprint,
            escape(&self.rule),
            escape(&self.id),
            u8::from(self.proved),
            u8::from(self.resource_limited),
            self.attempts,
            self.escalations,
            self.tier,
            self.elapsed_us,
            escape(&self.detail),
        )
        .into_bytes()
    }

    /// Decodes a journal payload. `None` for records of an unknown
    /// version or shape — such records are *skipped* (treated as not
    /// cached), never trusted and never fatal.
    pub fn decode(payload: &[u8]) -> Option<JournalEntry> {
        let text = std::str::from_utf8(payload).ok()?;
        let mut fields = text.split('\t');
        if fields.next()? != RECORD_VERSION {
            return None;
        }
        let mut entry = JournalEntry {
            fingerprint: 0,
            rule: String::new(),
            id: String::new(),
            proved: false,
            resource_limited: false,
            attempts: 0,
            escalations: 0,
            tier: 0,
            elapsed_us: 0,
            detail: String::new(),
        };
        let mut seen = 0u32;
        for field in fields {
            let (key, value) = field.split_once('=')?;
            match key {
                "fp" => entry.fingerprint = u64::from_str_radix(value, 16).ok()?,
                "rule" => entry.rule = unescape(value)?,
                "id" => entry.id = unescape(value)?,
                "proved" => entry.proved = value == "1",
                "rl" => entry.resource_limited = value == "1",
                "attempts" => entry.attempts = value.parse().ok()?,
                "esc" => entry.escalations = value.parse().ok()?,
                "tier" => entry.tier = value.parse().ok()?,
                "elapsed_us" => entry.elapsed_us = value.parse().ok()?,
                "detail" => entry.detail = unescape(value)?,
                _ => continue, // forward-compatible: unknown keys ignored
            }
            seen += 1;
        }
        // Every v1 field is required (detail may be empty but present).
        if seen < 10 {
            return None;
        }
        Some(entry)
    }
}

use cobalt_support::journal::{escape_field as escape, unescape_field as unescape};

// `ResumeMode` moved to `cobalt-support::journal` (it is shared with
// the engine's fixpoint sessions); re-exported here so existing users
// keep compiling.
pub use cobalt_support::journal::ResumeMode;

/// A cached record plus its exact on-disk payload (kept so unchanged
/// outcomes are carried into the compacted journal byte-for-byte).
#[derive(Debug, Clone)]
struct Cached {
    entry: JournalEntry,
    raw: Vec<u8>,
}

/// A resumable verification session. See the [module docs](self).
#[derive(Debug)]
pub struct Session {
    verifier: Verifier,
    journal: Option<Journal>,
    cache: HashMap<u64, Cached>,
    /// Payloads belonging to this session's outcomes (reused raw
    /// records and fresh appends, in discharge order); what
    /// [`finish`](Self::finish) compacts the journal down to.
    session_payloads: Vec<Vec<u8>>,
    loaded: LoadReport,
    degraded: Option<String>,
}

impl Session {
    /// A session without a journal: verification behaves exactly like
    /// calling the [`Verifier`] directly (nothing cached, nothing
    /// persisted).
    pub fn new(verifier: Verifier) -> Session {
        Session {
            verifier,
            journal: None,
            cache: HashMap::new(),
            session_payloads: Vec::new(),
            loaded: LoadReport::default(),
            degraded: None,
        }
    }

    /// Opens (creating if absent) the proof journal at `path` under its
    /// advisory exclusive lock and builds the resume cache from its
    /// intact records. Corrupt tails are discarded by the journal
    /// loader — see [`load_report`](Self::load_report) for what was
    /// recovered.
    ///
    /// The lock makes one journal shareable by concurrent `cobalt
    /// verify --journal same-path` processes: exactly one holds it at a
    /// time. A session that cannot acquire it within
    /// [`DEFAULT_LOCK_WAIT`] (or hits an injected `journal.lock` fault)
    /// starts **degraded** — verification proceeds uncached with
    /// unchanged verdicts and exit codes, and
    /// [`degraded`](Self::degraded) says why.
    ///
    /// # Errors
    ///
    /// Returns the `io::Error` if the journal file cannot be opened at
    /// all (bad path, permissions, injected `journal.load` fault).
    /// Corruption inside the file is *not* an error, and neither is
    /// lock contention.
    pub fn with_journal(
        verifier: Verifier,
        path: impl AsRef<Path>,
        mode: ResumeMode,
    ) -> io::Result<Session> {
        Self::with_journal_wait(verifier, path, mode, DEFAULT_LOCK_WAIT)
    }

    /// [`with_journal`](Self::with_journal) with an explicit lock-wait
    /// budget (tests and impatient callers).
    ///
    /// # Errors
    ///
    /// Same contract as [`with_journal`](Self::with_journal).
    pub fn with_journal_wait(
        verifier: Verifier,
        path: impl AsRef<Path>,
        mode: ResumeMode,
        lock_wait: Duration,
    ) -> io::Result<Session> {
        let mut opened = match Journal::open_locked(path, lock_wait)? {
            LockOutcome::Acquired(opened) => opened,
            LockOutcome::Contended { reason } => {
                return Ok(Session {
                    verifier,
                    journal: None,
                    cache: HashMap::new(),
                    session_payloads: Vec::new(),
                    loaded: LoadReport::default(),
                    degraded: Some(format!("journal lock unavailable ({reason})")),
                })
            }
        };
        let mut cache = HashMap::new();
        match mode {
            ResumeMode::Fresh => {
                opened.journal.compact(&[] as &[&[u8]])?;
                opened.report = LoadReport::default();
            }
            ResumeMode::Resume => {
                for raw in &opened.records {
                    // Later records win: a re-proof appended after an
                    // old failure supersedes it.
                    if let Some(entry) = JournalEntry::decode(raw) {
                        cache.insert(
                            entry.fingerprint,
                            Cached {
                                entry,
                                raw: raw.clone(),
                            },
                        );
                    }
                }
            }
        }
        Ok(Session {
            verifier,
            journal: Some(opened.journal),
            cache,
            session_payloads: Vec::new(),
            loaded: opened.report,
            degraded: None,
        })
    }

    /// The wrapped verifier.
    pub fn verifier(&self) -> &Verifier {
        &self.verifier
    }

    /// What the journal loader recovered and discarded at open.
    pub fn load_report(&self) -> &LoadReport {
        &self.loaded
    }

    /// Why journaling was disabled mid-run, if it was. Verification
    /// results are unaffected — only caching is lost.
    pub fn degraded(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    /// Verifies an optimization, replaying journaled outcomes where
    /// fingerprints match and journaling every fresh outcome as it
    /// lands.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] if the optimization cannot be encoded
    /// (same contract as [`Verifier::verify_optimization`]).
    pub fn verify_optimization(&mut self, opt: &Optimization) -> Result<Report, VerifyError> {
        self.verifier.lint_gate(&opt.name, |ctx, opts| {
            cobalt_lint::lint_optimization(opt, ctx, opts)
        })?;
        let prepared = obligations_for_optimization_with(
            opt,
            &self.verifier.env,
            &self.verifier.meanings,
            self.verifier.bank_mode,
        )?;
        let rule_src = format!("{opt:?}");
        Ok(self.run(opt.name.clone(), &rule_src, prepared))
    }

    /// Verifies a pure analysis with the same journaling behaviour as
    /// [`verify_optimization`](Self::verify_optimization).
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] if the analysis cannot be encoded.
    pub fn verify_analysis(&mut self, analysis: &PureAnalysis) -> Result<Report, VerifyError> {
        self.verifier.lint_gate(&analysis.name, |ctx, opts| {
            cobalt_lint::lint_analysis(analysis, ctx, opts)
        })?;
        let prepared = obligations_for_analysis_with(
            analysis,
            &self.verifier.env,
            &self.verifier.meanings,
            self.verifier.bank_mode,
        )?;
        let rule_src = format!("{analysis:?}");
        Ok(self.run(analysis.name.clone(), &rule_src, prepared))
    }

    /// Compacts the journal down to this session's outcomes (atomic
    /// temp-file + rename), dropping superseded and stale records.
    /// Call once after the last report; skipping it costs nothing but
    /// disk — the journal stays correct, just uncompacted.
    ///
    /// A compaction failure degrades (the appended journal is still
    /// valid) rather than erroring.
    pub fn finish(&mut self) {
        if let Some(journal) = &mut self.journal {
            if let Err(e) = journal.compact(&self.session_payloads) {
                self.degrade(format!("journal compaction failed: {e}"));
                return;
            }
        }
        // Compaction ends this session's journaling; dropping the
        // handle releases the advisory lock so another session (this
        // process or another) can take over the journal immediately.
        self.journal = None;
    }

    fn degrade(&mut self, reason: String) {
        self.journal = None;
        if self.degraded.is_none() {
            self.degraded = Some(reason);
        }
    }

    /// The session analogue of `Verifier::discharge_all`: per
    /// obligation, replay a cached proof, or discharge (resuming
    /// escalation for a known resource-limited failure) and journal the
    /// outcome. Fresh obligations go through the verifier's batch
    /// discharge, so a parallel (`jobs > 1`) verifier fans them out
    /// across its pool; the journaling sink receives outcomes in
    /// obligation order, so journal bytes are identical to a
    /// sequential run's.
    fn run(&mut self, name: String, rule_src: &str, prepared: Vec<Prepared>) -> Report {
        let start = Instant::now();
        let report_deadline = self
            .verifier
            .policy
            .report_deadline
            .and_then(|d| start.checked_add(d));
        let tiers = self.verifier.policy.tiers.clone();
        let total = prepared.len();
        // Partition: cache hits replay immediately into their slots,
        // everything else queues for (possibly parallel) discharge.
        let mut outcome_slots: Vec<Option<ObligationOutcome>> = Vec::with_capacity(total);
        outcome_slots.resize_with(total, || None);
        let mut payload_slots: Vec<Option<Vec<u8>>> = Vec::with_capacity(total);
        payload_slots.resize_with(total, || None);
        let mut fresh: Vec<(Prepared, usize)> = Vec::new();
        let mut fresh_meta: Vec<(usize, u64, usize)> = Vec::new(); // (orig idx, fp, start_tier)
        for (idx, p) in prepared.into_iter().enumerate() {
            let fp = fingerprint_obligation(rule_src, &p, &tiers);
            let hit = self.cache.get(&fp);
            if let Some(cached) = hit {
                if cached.entry.proved {
                    outcome_slots[idx] = Some(ObligationOutcome {
                        id: p.id,
                        proved: true,
                        elapsed: Duration::from_micros(cached.entry.elapsed_us),
                        detail: String::new(),
                        attempts: cached.entry.attempts,
                        escalations: cached.entry.escalations,
                        resource_limited: false,
                        cached: true,
                    });
                    payload_slots[idx] = Some(cached.raw.clone());
                    continue;
                }
            }
            // A recorded resource-limited failure resumes at the tier
            // after the last one it exhausted; open-branch and panic
            // failures (deterministic, but the rule or encoding may
            // have been the problem last time the fingerprint was
            // computed — it matches, so they simply retry) start cold.
            let start_tier = match hit {
                Some(c) if c.entry.resource_limited => c.entry.tier as usize,
                _ => 0,
            };
            fresh_meta.push((idx, fp, start_tier));
            fresh.push((p, start_tier));
        }
        // Split borrows so the journaling sink can write while the
        // verifier discharges.
        let verifier = &self.verifier;
        let journal = &mut self.journal;
        let degraded = &mut self.degraded;
        let fresh_outcomes = verifier.discharge_batch(fresh, report_deadline, |fi, outcome| {
            let (orig_idx, fp, start_tier) = fresh_meta[fi];
            let entry = JournalEntry {
                fingerprint: fp,
                rule: name.clone(),
                id: outcome.id.clone(),
                proved: outcome.proved,
                resource_limited: outcome.resource_limited,
                attempts: outcome.attempts,
                escalations: outcome.escalations,
                tier: (start_tier as u32).saturating_add(outcome.attempts),
                elapsed_us: outcome.elapsed.as_micros().min(u128::from(u64::MAX)) as u64,
                detail: outcome.detail.clone(),
            };
            let payload = entry.encode();
            // Append + fsync as each outcome lands (in obligation
            // order); an I/O failure (or injected `journal.write`/
            // `journal.fsync` fault) disables journaling for the rest
            // of the session instead of failing verification.
            if let Some(j) = journal.as_mut() {
                if let Err(e) = j.append(&payload).and_then(|()| j.sync()) {
                    *journal = None;
                    if degraded.is_none() {
                        *degraded = Some(format!("journal write failed: {e}"));
                    }
                    return;
                }
            }
            payload_slots[orig_idx] = Some(payload);
        });
        for (fi, outcome) in fresh_outcomes.into_iter().enumerate() {
            outcome_slots[fresh_meta[fi].0] = Some(outcome);
        }
        self.session_payloads
            .extend(payload_slots.into_iter().flatten());
        Report {
            name,
            outcomes: outcome_slots
                .into_iter()
                .map(|o| o.expect("every obligation produced exactly one outcome"))
                .collect(),
            elapsed: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> JournalEntry {
        JournalEntry {
            fingerprint: 0xdead_beef_0123_4567,
            rule: "const_prop".into(),
            id: "F2/assign_var".into(),
            proved: false,
            resource_limited: true,
            attempts: 2,
            escalations: 1,
            tier: 2,
            elapsed_us: 1234,
            detail: "deadline;\twith\ttabs\nand newlines\\".into(),
        }
    }

    #[test]
    fn record_roundtrip_preserves_every_field() {
        let e = entry();
        let decoded = JournalEntry::decode(&e.encode()).expect("roundtrip");
        assert_eq!(decoded, e);
    }

    #[test]
    fn decode_rejects_unknown_versions_and_junk_without_panicking() {
        assert_eq!(JournalEntry::decode(b""), None);
        assert_eq!(JournalEntry::decode(b"v0\tfp=00"), None);
        assert_eq!(JournalEntry::decode(b"v1"), None, "missing fields");
        assert_eq!(JournalEntry::decode(b"v1\tfp=nothex"), None);
        assert_eq!(JournalEntry::decode(&[0xff, 0xfe, 0x00]), None, "not utf-8");
        let mut truncated = entry().encode();
        truncated.truncate(truncated.len() / 2);
        // Either decodes to None or to nothing usable; must not panic.
        let _ = JournalEntry::decode(&truncated);
    }

    #[test]
    fn unknown_keys_are_ignored_for_forward_compat() {
        let mut payload = entry().encode();
        payload.extend_from_slice(b"\tfuture_field=whatever");
        assert_eq!(JournalEntry::decode(&payload), Some(entry()));
    }

    #[test]
    fn escape_roundtrips_control_characters() {
        for s in ["", "plain", "tab\there", "line\nbreak", "back\\slash\r"] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s));
        }
        assert_eq!(unescape("bad\\x"), None);
        assert_eq!(unescape("dangling\\"), None);
    }

    #[test]
    fn fingerprint_depends_on_rule_id_and_tiers() {
        use cobalt_dsl::LabelEnv;
        use crate::enc::SemanticMeanings;
        let opt = cobalt_opts_fixture();
        let prepared = crate::oblig::obligations_for_optimization(
            &opt,
            &LabelEnv::standard(),
            &SemanticMeanings::standard(),
        )
        .unwrap();
        let p = &prepared[0];
        let tiers = crate::RetryPolicy::default().tiers;
        let base = fingerprint_obligation("rule-src", p, &tiers);
        assert_eq!(
            base,
            fingerprint_obligation("rule-src", p, &tiers),
            "deterministic"
        );
        assert_ne!(base, fingerprint_obligation("rule-src-2", p, &tiers));
        assert_ne!(
            base,
            fingerprint_obligation("rule-src", p, &tiers[..1]),
            "limit tiers are fingerprint inputs"
        );
        let mut renamed = crate::oblig::obligations_for_optimization(
            &opt,
            &LabelEnv::standard(),
            &SemanticMeanings::standard(),
        )
        .unwrap();
        renamed[0].id.push('!');
        assert_ne!(base, fingerprint_obligation("rule-src", &renamed[0], &tiers));
    }

    /// The doc-comment const_prop rule, rebuilt here as a fixture.
    fn cobalt_opts_fixture() -> Optimization {
        use cobalt_dsl::*;
        Optimization::new(
            "const_prop",
            TransformPattern {
                direction: Direction::Forward,
                guard: GuardSpec::Region(RegionGuard {
                    psi1: Guard::Stmt(StmtPat::Assign(
                        LhsPat::Var(VarPat::pat("Y")),
                        ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
                    )),
                    psi2: Guard::not_label("mayDef", vec![LabelArgPat::Var(VarPat::pat("Y"))]),
                }),
                from: StmtPat::Assign(
                    LhsPat::Var(VarPat::pat("X")),
                    ExprPat::Base(BasePat::Var(VarPat::pat("Y"))),
                ),
                to: StmtPat::Assign(
                    LhsPat::Var(VarPat::pat("X")),
                    ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
                ),
                where_clause: Guard::True,
                witness: Witness::Forward(ForwardWitness::VarEqConst(
                    VarPat::pat("Y"),
                    ConstPat::pat("C"),
                )),
            },
        )
    }
}
