//! Error type for the soundness checker.

use cobalt_lint::Diagnostics;
use std::error::Error;
use std::fmt;

/// An error constructing the proof obligations of an optimization.
///
/// Note that a *failed proof* is not an error — it is reported through
/// [`crate::ObligationOutcome`]; `VerifyError` means the optimization
/// could not even be encoded (e.g. a pattern variable is used at two
/// different fragment kinds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A pattern variable occurs at positions of two different kinds.
    KindConflict {
        /// The pattern variable.
        var: String,
        /// The first kind seen.
        first: String,
        /// The conflicting kind.
        second: String,
    },
    /// The optimization uses a construct the checker cannot encode.
    Unsupported(String),
    /// The rule was rejected by the pre-verification lint gate before
    /// any obligation reached the prover; the diagnostics name exactly
    /// what is malformed (DESIGN.md §9).
    Lint(Diagnostics),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::KindConflict { var, first, second } => write!(
                f,
                "pattern variable `{var}` is used both as a {first} and as a {second}"
            ),
            VerifyError::Unsupported(msg) => write!(f, "unsupported construct: {msg}"),
            VerifyError::Lint(diags) => {
                let codes: Vec<&str> = diags
                    .iter()
                    .filter(|d| d.severity == cobalt_lint::Severity::Error)
                    .map(|d| d.code)
                    .collect();
                write!(
                    f,
                    "rejected by lint before proving: {} error(s) [{}]",
                    diags.error_count(),
                    codes.join(", ")
                )
            }
        }
    }
}

impl Error for VerifyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = VerifyError::KindConflict {
            var: "X".into(),
            first: "variable".into(),
            second: "constant".into(),
        };
        assert!(e.to_string().contains("`X`"));
        assert!(VerifyError::Unsupported("foo".into())
            .to_string()
            .contains("foo"));
    }
}
