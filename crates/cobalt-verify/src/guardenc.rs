//! Compilation of guards `ψ` and witnesses `P` into logic formulas over
//! symbolic statement shapes.
//!
//! This is the analogue of the paper's "optimization-dependent axioms…
//! generated automatically from the Cobalt label definitions" (§5.1):
//! label definitions are expanded definitionally against the shape
//! (their `case` arms select on the shape's statement constructor), the
//! syntactic primitives become equations between the shape's skolems
//! and the pattern-variable constants, and semantic labels become their
//! verified witness meanings.

use crate::enc::{ArgShape, Bind, Enc, RhsShape, Shape, SymState, TaintMode};
use crate::error::VerifyError;
use cobalt_dsl::{
    BackwardWitness, BasePat, ConstPat, ExprPat, ForwardWitness, Guard, IdxPat, LabelArgPat,
    LhsPat, ProcPat, StmtPat, VarPat,
};
use cobalt_logic::{Formula, TermId};

const MAX_DEPTH: usize = 32;

/// The context a guard is encoded against: the statement shape, the
/// primary pre-state, and the execution step pairs (one for forward
/// obligations, two for backward lockstep obligations).
#[derive(Debug, Clone)]
pub struct GuardCtx<'b> {
    /// The statement shape at the node.
    pub shape: &'b Shape,
    /// The primary pre-state (used for semantic label meanings).
    pub st: SymState,
    /// Pre/post state pairs, for the `unchanged` primitive.
    pub steps: Vec<(SymState, SymState)>,
}

impl Enc<'_> {
    /// Encodes `ψ` (or `¬ψ` when `negated`) at the shape, returning the
    /// formula together with the variable terms that are *definitely*
    /// `notPointedTo` whenever the formula holds (used for call frame
    /// conditions).
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::Unsupported`] for constructs outside the
    /// encodable fragment (see module docs).
    pub fn encode_guard(
        &mut self,
        g: &Guard,
        ctx: &GuardCtx<'_>,
        bind: &Bind,
        negated: bool,
    ) -> Result<(Formula, Vec<TermId>), VerifyError> {
        self.encode_guard_depth(g, ctx, bind, negated, 0)
    }

    fn encode_guard_depth(
        &mut self,
        g: &Guard,
        ctx: &GuardCtx<'_>,
        bind: &Bind,
        negated: bool,
        depth: usize,
    ) -> Result<(Formula, Vec<TermId>), VerifyError> {
        if depth > MAX_DEPTH {
            return Err(VerifyError::Unsupported(
                "label definitions recurse too deeply".into(),
            ));
        }
        Ok(match g {
            Guard::True => (polarize(Formula::True, negated), vec![]),
            Guard::False => (polarize(Formula::False, negated), vec![]),
            Guard::Not(inner) => self.encode_guard_depth(inner, ctx, bind, !negated, depth)?,
            Guard::And(gs) => {
                let mut parts = Vec::new();
                let mut taints = Vec::new();
                for g in gs {
                    let (f, t) = self.encode_guard_depth(g, ctx, bind, negated, depth)?;
                    parts.push(f);
                    if !negated {
                        taints.extend(t);
                    }
                }
                let f = if negated {
                    Formula::or(parts)
                } else {
                    Formula::and(parts)
                };
                (f, taints)
            }
            Guard::Or(gs) => {
                let mut parts = Vec::new();
                let mut taints = Vec::new();
                for g in gs {
                    let (f, t) = self.encode_guard_depth(g, ctx, bind, negated, depth)?;
                    parts.push(f);
                    if negated {
                        taints.extend(t);
                    }
                }
                let f = if negated {
                    Formula::and(parts)
                } else {
                    Formula::or(parts)
                };
                (f, taints)
            }
            Guard::Stmt(pat) => {
                let m = self.match_stmt_shape(pat, ctx.shape, bind)?;
                match m {
                    None => (polarize(Formula::False, negated), vec![]),
                    Some((newbind, conds)) => {
                        if newbind.len() > bind.len() {
                            return Err(VerifyError::Unsupported(
                                "statement guard binds pattern variables not in the vocabulary"
                                    .into(),
                            ));
                        }
                        let f = Formula::and(conds);
                        (polarize(f, negated), vec![])
                    }
                }
            }
            Guard::Label(name, args) => {
                if let Some(def) = self.label_defs().lookup(name).cloned() {
                    if def.params.len() != args.len() {
                        return Err(VerifyError::Unsupported(format!(
                            "label `{name}` arity mismatch"
                        )));
                    }
                    let mut inner = Bind::new();
                    for (p, a) in def.params.iter().zip(args) {
                        let t = self.label_arg_term(a, bind)?;
                        inner.insert(p.clone(), t);
                    }
                    self.encode_guard_depth(&def.body, ctx, &inner, negated, depth + 1)?
                } else {
                    // Semantic label.
                    match self.taint_mode() {
                        TaintMode::AbsentFalse => (polarize(Formula::False, negated), vec![]),
                        TaintMode::Semantic => {
                            let Some((params, witness)) = self.meanings().lookup(name).cloned()
                            else {
                                return Ok((polarize(Formula::False, negated), vec![]));
                            };
                            if params.len() != args.len() {
                                return Err(VerifyError::Unsupported(format!(
                                    "semantic label `{name}` arity mismatch"
                                )));
                            }
                            let mut inner = Bind::new();
                            let mut taints = Vec::new();
                            for (p, a) in params.iter().zip(args) {
                                let t = self.label_arg_term(a, bind)?;
                                inner.insert(p.clone(), t);
                            }
                            if !negated {
                                if let ForwardWitness::NotPointedTo(VarPat::Pat(p)) = &witness {
                                    if let Some(&t) = inner.get(p) {
                                        taints.push(t);
                                    }
                                }
                            }
                            let f = self.fwd_witness(&witness, &ctx.st, &inner)?;
                            (polarize(f, negated), taints)
                        }
                    }
                }
            }
            Guard::SyntacticDef(vp) => {
                let tv = self.var_pat_term(vp, bind)?;
                let f = match ctx.shape {
                    Shape::Decl(w)
                    | Shape::AssignVar(w, _)
                    | Shape::New(w)
                    | Shape::Call { dst: w, .. } => Formula::Eq(tv, *w),
                    Shape::Skip
                    | Shape::AssignDeref(_, _)
                    | Shape::If { .. }
                    | Shape::Return(_) => Formula::False,
                };
                (polarize(f, negated), vec![])
            }
            Guard::SyntacticUse(vp) => {
                let tv = self.var_pat_term(vp, bind)?;
                let reads = self.shape_reads(ctx.shape)?;
                let f = Formula::or(reads.into_iter().map(|r| Formula::Eq(tv, r)));
                (polarize(f, negated), vec![])
            }
            Guard::Unchanged(ep) => {
                let mut parts = Vec::new();
                let mut taints = Vec::new();
                // Semantic content: evalExpr is preserved across each
                // execution's step.
                let e = self.expr_pat_term(ep, bind)?;
                for (pre, post) in &ctx.steps {
                    let before = self.eval_e(pre, e);
                    let after = self.eval_e(post, e);
                    parts.push(Formula::Eq(after, before));
                }
                // For structural expressions, the conditions the engine
                // evaluator actually checks (which the semantic equation
                // follows from) are encoded too — they are what makes
                // the witness preservation provable.
                if !matches!(ep, ExprPat::Pat(_)) {
                    let reads: Vec<&VarPat> = match ep {
                        ExprPat::Base(BasePat::Var(v)) | ExprPat::Deref(v) => vec![v],
                        ExprPat::Op(_, args) => args
                            .iter()
                            .filter_map(|a| match a {
                                BasePat::Var(v) => Some(v),
                                BasePat::Const(_) => None,
                            })
                            .collect(),
                        _ => vec![],
                    };
                    for v in reads {
                        let g = Guard::not_label(
                            "mayDef",
                            vec![LabelArgPat::Var(v.clone())],
                        );
                        let (f, t) = self.encode_guard_depth(&g, ctx, bind, false, depth + 1)?;
                        parts.push(f);
                        taints.extend(t);
                    }
                    if matches!(ep, ExprPat::Deref(_)) {
                        match ctx.shape {
                            Shape::AssignDeref(_, _) | Shape::Call { .. } => {
                                parts.push(Formula::False);
                            }
                            Shape::AssignVar(w, _) | Shape::New(w) => {
                                // The assigned variable must be
                                // unaliased (the paper §6 corner case).
                                let f = self.not_pointed_to_term(*w, &ctx.st);
                                match self.taint_mode() {
                                    TaintMode::AbsentFalse => parts.push(Formula::False),
                                    TaintMode::Semantic => {
                                        parts.push(f);
                                        taints.push(*w);
                                    }
                                }
                            }
                            Shape::Decl(_)
                            | Shape::Skip
                            | Shape::If { .. }
                            | Shape::Return(_) => {}
                        }
                    }
                }
                if negated {
                    taints.clear();
                }
                (polarize(Formula::and(parts), negated), taints)
            }
            Guard::ConstEq(a, b) => {
                let ta = self.const_pat_term(a, bind)?;
                let tb = self.const_pat_term(b, bind)?;
                (polarize(Formula::Eq(ta, tb), negated), vec![])
            }
            Guard::VarEq(a, b) => {
                let ta = self.var_pat_term(a, bind)?;
                let tb = self.var_pat_term(b, bind)?;
                (polarize(Formula::Eq(ta, tb), negated), vec![])
            }
            Guard::CaseStmt { arms, default } => {
                for (pat, arm_guard) in arms {
                    match self.match_stmt_shape(pat, ctx.shape, bind)? {
                        None => continue,
                        Some((newbind, conds)) => {
                            if !conds.is_empty() {
                                return Err(VerifyError::Unsupported(
                                    "conditionally matching case arm (arm selection must be \
                                     structural)"
                                        .into(),
                                ));
                            }
                            return self
                                .encode_guard_depth(arm_guard, ctx, &newbind, negated, depth);
                        }
                    }
                }
                self.encode_guard_depth(default, ctx, bind, negated, depth)?
            }
        })
    }

    /// Collects the variable terms that are definitely `notPointedTo`
    /// whenever the guard holds — a lightweight pre-pass used before
    /// stepping call shapes (frame conditions need the taints, and the
    /// full guard encoding needs the post-state).
    pub fn definite_taints(
        &mut self,
        g: &Guard,
        shape: &Shape,
        bind: &Bind,
    ) -> Result<Vec<TermId>, VerifyError> {
        self.definite_taints_depth(g, shape, bind, false, 0)
    }

    fn definite_taints_depth(
        &mut self,
        g: &Guard,
        shape: &Shape,
        bind: &Bind,
        negated: bool,
        depth: usize,
    ) -> Result<Vec<TermId>, VerifyError> {
        if depth > MAX_DEPTH {
            return Err(VerifyError::Unsupported(
                "label definitions recurse too deeply".into(),
            ));
        }
        Ok(match g {
            Guard::Not(inner) => {
                self.definite_taints_depth(inner, shape, bind, !negated, depth)?
            }
            Guard::And(gs) if !negated => {
                let mut out = Vec::new();
                for g in gs {
                    out.extend(self.definite_taints_depth(g, shape, bind, false, depth)?);
                }
                out
            }
            Guard::Or(gs) if negated => {
                let mut out = Vec::new();
                for g in gs {
                    out.extend(self.definite_taints_depth(g, shape, bind, true, depth)?);
                }
                out
            }
            Guard::Label(name, args) => {
                if let Some(def) = self.label_defs().lookup(name).cloned() {
                    if def.params.len() != args.len() {
                        return Err(VerifyError::Unsupported(format!(
                            "label `{name}` arity mismatch"
                        )));
                    }
                    let mut inner = Bind::new();
                    for (p, a) in def.params.iter().zip(args) {
                        let t = self.label_arg_term(a, bind)?;
                        inner.insert(p.clone(), t);
                    }
                    self.definite_taints_depth(&def.body, shape, &inner, negated, depth + 1)?
                } else if !negated && self.taint_mode() == TaintMode::Semantic {
                    if let Some((params, ForwardWitness::NotPointedTo(VarPat::Pat(p)))) =
                        self.meanings().lookup(name).cloned()
                    {
                        let pos = params.iter().position(|q| q == &p);
                        match pos.and_then(|i| args.get(i)) {
                            Some(a) => vec![self.label_arg_term(a, bind)?],
                            None => vec![],
                        }
                    } else {
                        vec![]
                    }
                } else {
                    vec![]
                }
            }
            Guard::CaseStmt { arms, default } => {
                for (pat, arm_guard) in arms {
                    match self.match_stmt_shape(pat, shape, bind)? {
                        None => continue,
                        Some((newbind, conds)) => {
                            if !conds.is_empty() {
                                return Err(VerifyError::Unsupported(
                                    "conditionally matching case arm".into(),
                                ));
                            }
                            return self.definite_taints_depth(
                                arm_guard, shape, &newbind, negated, depth,
                            );
                        }
                    }
                }
                self.definite_taints_depth(default, shape, bind, negated, depth)?
            }
            _ => vec![],
        })
    }

    /// Structurally matches a statement pattern against a shape.
    ///
    /// `Ok(None)` means the constructors cannot match; `Ok(Some((bind',
    /// conds)))` means the pattern matches when all equations in
    /// `conds` hold, with arm-local pattern variables bound in `bind'`.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::Unsupported`] for patterns outside the
    /// encodable fragment.
    pub fn match_stmt_shape(
        &mut self,
        pat: &StmtPat,
        shape: &Shape,
        bind: &Bind,
    ) -> Result<Option<(Bind, Vec<Formula>)>, VerifyError> {
        let mut b = bind.clone();
        let mut conds = Vec::new();
        let ok = self.match_stmt_inner(pat, shape, &mut b, &mut conds)?;
        Ok(if ok { Some((b, conds)) } else { None })
    }

    fn bind_var(
        &mut self,
        vp: &VarPat,
        term: TermId,
        bind: &mut Bind,
        conds: &mut Vec<Formula>,
    ) -> Result<(), VerifyError> {
        match vp {
            VarPat::Pat(p) => match bind.get(p) {
                Some(&t) => conds.push(Formula::Eq(t, term)),
                None => {
                    bind.insert(p.clone(), term);
                }
            },
            VarPat::Concrete(name) => {
                let t = self.concrete_var_term(name.as_str());
                conds.push(Formula::Eq(t, term));
            }
        }
        Ok(())
    }

    fn bind_const(
        &mut self,
        cp: &ConstPat,
        term: TermId,
        bind: &mut Bind,
        conds: &mut Vec<Formula>,
    ) {
        match cp {
            ConstPat::Pat(p) => match bind.get(p) {
                Some(&t) => conds.push(Formula::Eq(t, term)),
                None => {
                    bind.insert(p.clone(), term);
                }
            },
            ConstPat::Concrete(n) => {
                let lit = self.s.bank.int(*n);
                conds.push(Formula::Eq(lit, term));
            }
        }
    }

    fn match_arg(
        &mut self,
        pat: &BasePat,
        arg: &ArgShape,
        bind: &mut Bind,
        conds: &mut Vec<Formula>,
    ) -> Result<bool, VerifyError> {
        match (pat, arg) {
            (BasePat::Var(vp), ArgShape::Var(u)) => {
                self.bind_var(vp, *u, bind, conds)?;
                Ok(true)
            }
            (BasePat::Const(cp), ArgShape::Const(k)) => {
                self.bind_const(cp, *k, bind, conds);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn match_rhs(
        &mut self,
        pat: &ExprPat,
        rhs: &RhsShape,
        bind: &mut Bind,
        conds: &mut Vec<Formula>,
    ) -> Result<bool, VerifyError> {
        match (pat, rhs) {
            (ExprPat::Any, _) => Ok(true),
            (ExprPat::Pat(p), _) => {
                if matches!(rhs, RhsShape::FoldOf(_)) {
                    return Ok(false);
                }
                let et = self.rhs_expr_term(rhs);
                match bind.get(p) {
                    Some(&t) => conds.push(Formula::Eq(t, et)),
                    None => {
                        bind.insert(p.clone(), et);
                    }
                }
                Ok(true)
            }
            (ExprPat::Base(BasePat::Var(vp)), RhsShape::Var(u)) => {
                self.bind_var(vp, *u, bind, conds)?;
                Ok(true)
            }
            (ExprPat::Base(BasePat::Const(cp)), RhsShape::Const(k)) => {
                self.bind_const(cp, *k, bind, conds);
                Ok(true)
            }
            (ExprPat::Deref(vp), RhsShape::Deref(u))
            | (ExprPat::AddrOf(vp), RhsShape::AddrOf(u)) => {
                self.bind_var(vp, *u, bind, conds)?;
                Ok(true)
            }
            (ExprPat::Op(kind, pats), RhsShape::Op(o, args)) => {
                if pats.len() != args.len() {
                    return Ok(false);
                }
                let kt = self.op_kind_term_pub(*kind);
                conds.push(Formula::Eq(kt, *o));
                for (p, a) in pats.iter().zip(args) {
                    if !self.match_arg(p, a, bind, conds)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            (ExprPat::Fold(_), _) => Ok(false),
            _ => Ok(false),
        }
    }

    fn match_stmt_inner(
        &mut self,
        pat: &StmtPat,
        shape: &Shape,
        bind: &mut Bind,
        conds: &mut Vec<Formula>,
    ) -> Result<bool, VerifyError> {
        match (pat, shape) {
            (StmtPat::Any, _) => Ok(true),
            (StmtPat::Skip, Shape::Skip) => Ok(true),
            (StmtPat::Decl(vp), Shape::Decl(w)) | (StmtPat::New(vp), Shape::New(w)) => {
                self.bind_var(vp, *w, bind, conds)?;
                Ok(true)
            }
            (StmtPat::Assign(lhs, ep), Shape::AssignVar(w, rhs)) => {
                match lhs {
                    LhsPat::Var(vp) => self.bind_var(vp, *w, bind, conds)?,
                    LhsPat::Any => {}
                    LhsPat::Deref(_) => return Ok(false),
                }
                self.match_rhs(ep, rhs, bind, conds)
            }
            (StmtPat::Assign(lhs, ep), Shape::AssignDeref(w, rhs)) => {
                match lhs {
                    LhsPat::Deref(vp) => self.bind_var(vp, *w, bind, conds)?,
                    LhsPat::Any => {}
                    LhsPat::Var(_) => return Ok(false),
                }
                self.match_rhs(ep, rhs, bind, conds)
            }
            (
                StmtPat::Call { dst, proc, arg },
                Shape::Call {
                    dst: d,
                    proc: f,
                    arg: a,
                },
            ) => {
                self.bind_var(dst, *d, bind, conds)?;
                match proc {
                    ProcPat::Pat(p) => match bind.get(p) {
                        Some(&t) => conds.push(Formula::Eq(t, *f)),
                        None => {
                            bind.insert(p.clone(), *f);
                        }
                    },
                    ProcPat::Concrete(name) => {
                        let t = self.s.bank.app0(&format!("proc${name}"));
                        conds.push(Formula::Eq(t, *f));
                    }
                }
                self.match_arg(arg, a, bind, conds)
            }
            (
                StmtPat::If {
                    cond,
                    then_target,
                    else_target,
                },
                Shape::If { cond: c, t1, t2 },
            ) => {
                if !self.match_arg(cond, c, bind, conds)? {
                    return Ok(false);
                }
                for (ip, t) in [(then_target, t1), (else_target, t2)] {
                    match ip {
                        IdxPat::Pat(p) => match bind.get(p) {
                            Some(&b) => conds.push(Formula::Eq(b, *t)),
                            None => {
                                bind.insert(p.clone(), *t);
                            }
                        },
                        IdxPat::Concrete(n) => {
                            let lit = self.s.bank.int(*n as i64);
                            conds.push(Formula::Eq(lit, *t));
                        }
                    }
                }
                Ok(true)
            }
            (StmtPat::Return(vp), Shape::Return(u)) => {
                self.bind_var(vp, *u, bind, conds)?;
                Ok(true)
            }
            (StmtPat::ReturnAny, Shape::Return(_)) => Ok(true),
            _ => Ok(false),
        }
    }

    /// The variable terms whose *contents* the shape reads.
    pub fn shape_reads(&mut self, shape: &Shape) -> Result<Vec<TermId>, VerifyError> {
        let rhs_reads = |rhs: &RhsShape| -> Result<Vec<TermId>, VerifyError> {
            Ok(match rhs {
                RhsShape::Var(u) | RhsShape::Deref(u) => vec![*u],
                RhsShape::Const(_) | RhsShape::AddrOf(_) => vec![],
                RhsShape::Op(_, args) => args
                    .iter()
                    .filter_map(|a| match a {
                        ArgShape::Var(u) => Some(*u),
                        ArgShape::Const(_) => None,
                    })
                    .collect(),
                RhsShape::Opaque(_) | RhsShape::FoldOf(_) => {
                    return Err(VerifyError::Unsupported(
                        "syntactic use of an opaque expression".into(),
                    ))
                }
            })
        };
        Ok(match shape {
            Shape::Decl(_) | Shape::Skip | Shape::New(_) => vec![],
            Shape::AssignVar(_, rhs) => rhs_reads(rhs)?,
            Shape::AssignDeref(w, rhs) => {
                let mut r = vec![*w];
                r.extend(rhs_reads(rhs)?);
                r
            }
            Shape::Call { arg, .. } => match arg {
                ArgShape::Var(u) => vec![*u],
                ArgShape::Const(_) => vec![],
            },
            Shape::If { cond, .. } => match cond {
                ArgShape::Var(u) => vec![*u],
                ArgShape::Const(_) => vec![],
            },
            Shape::Return(u) => vec![*u],
        })
    }

    /// Encodes a forward witness `P(η)` at a state.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::Unsupported`] for unencodable forms.
    pub fn fwd_witness(
        &mut self,
        w: &ForwardWitness,
        st: &SymState,
        bind: &Bind,
    ) -> Result<Formula, VerifyError> {
        Ok(match w {
            ForwardWitness::True => Formula::True,
            ForwardWitness::VarEqConst(x, c) => {
                let xt = self.var_pat_term(x, bind)?;
                let ct = self.const_pat_term(c, bind)?;
                let v = self.val(st, xt);
                let iv = self.intval(ct);
                Formula::Eq(v, iv)
            }
            ForwardWitness::VarEqVar(x, y) => {
                let xt = self.var_pat_term(x, bind)?;
                let yt = self.var_pat_term(y, bind)?;
                let vx = self.val(st, xt);
                let vy = self.val(st, yt);
                Formula::Eq(vx, vy)
            }
            ForwardWitness::VarEqExpr(x, ep) => {
                let xt = self.var_pat_term(x, bind)?;
                let vx = self.val(st, xt);
                match ep {
                    ExprPat::Pat(p) => {
                        let e = *bind.get(p).ok_or_else(|| {
                            VerifyError::Unsupported(format!("unbound pattern variable `{p}`"))
                        })?;
                        let ev = self.eval_e(st, e);
                        Formula::Eq(vx, ev)
                    }
                    ExprPat::Base(BasePat::Var(y)) => {
                        let yt = self.var_pat_term(y, bind)?;
                        let vy = self.val(st, yt);
                        Formula::Eq(vx, vy)
                    }
                    ExprPat::Base(BasePat::Const(c)) => {
                        let ct = self.const_pat_term(c, bind)?;
                        let iv = self.intval(ct);
                        Formula::Eq(vx, iv)
                    }
                    ExprPat::AddrOf(p) => {
                        let pt = self.var_pat_term(p, bind)?;
                        let l = self.loc(st, pt);
                        let lv = self.locval(l);
                        Formula::Eq(vx, lv)
                    }
                    ExprPat::Deref(p) => {
                        // η(X) = η(*P): P holds a location whose content
                        // equals X's value. Encoded with the locOf
                        // extractor to stay quantifier-free.
                        let pt = self.var_pat_term(p, bind)?;
                        let pv = self.val(st, pt);
                        let il = self.app_pub("isloc", vec![pv]);
                        let lof = self.app_pub("locOf", vec![pv]);
                        let target = self.s.select(st.store, lof);
                        // Inverse construction: a location value is the
                        // locval of its extractor image.
                        let lv = self.locval(lof);
                        self.extra.push(Formula::implies(
                            Formula::Holds(il),
                            Formula::Eq(pv, lv),
                        ));
                        // Bridge evalE over *P to its structural value,
                        // so `unchanged(*P)` hypotheses connect states.
                        let et = self.expr_pat_term(ep, bind)?;
                        let ev = self.eval_e(st, et);
                        self.extra.push(Formula::Eq(ev, target));
                        Formula::and([Formula::Holds(il), Formula::Eq(vx, target)])
                    }
                    other => {
                        return Err(VerifyError::Unsupported(format!(
                            "witness expression form `{other}`"
                        )))
                    }
                }
            }
            ForwardWitness::NotPointedTo(x) => {
                let xt = self.var_pat_term(x, bind)?;
                let l = self.loc(st, xt);
                let lv = self.locval(l);
                self.forall_store_pub(st.store, |_, sel| Formula::ne(sel, lv))
            }
            ForwardWitness::And(ws) => {
                let mut parts = Vec::new();
                for w in ws {
                    parts.push(self.fwd_witness(w, st, bind)?);
                }
                Formula::and(parts)
            }
        })
    }

    /// The `notPointedTo(v, η)` formula for a variable term: no
    /// location in the store holds a pointer to `v`'s location.
    pub fn not_pointed_to_term(&mut self, v: TermId, st: &SymState) -> Formula {
        let l = self.loc(st, v);
        let lv = self.locval(l);
        self.forall_store_pub(st.store, |_, sel| Formula::ne(sel, lv))
    }

    /// Encodes a backward witness `P(η_old, η_new)`.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::Unsupported`] for unencodable forms.
    pub fn bwd_witness(
        &mut self,
        w: &BackwardWitness,
        old: &SymState,
        new: &SymState,
        bind: &Bind,
    ) -> Result<Formula, VerifyError> {
        let mut parts = vec![
            Formula::Eq(old.idx, new.idx),
            Formula::Eq(old.env, new.env),
            Formula::Eq(old.alloc, new.alloc),
        ];
        match w {
            BackwardWitness::Identical => {
                parts.push(self.forall_stores2(old.store, new.store, |_, s1, s2, _| {
                    Formula::Eq(s1, s2)
                }));
            }
            BackwardWitness::AgreeExcept(x) => {
                let xt = self.var_pat_term(x, bind)?;
                let lx = self.loc(old, xt);
                parts.push(self.forall_stores2(old.store, new.store, |_, s1, s2, l| {
                    Formula::or([Formula::Eq(l, lx), Formula::Eq(s1, s2)])
                }));
            }
        }
        Ok(Formula::and(parts))
    }

    /// The goal formula "the two post-states are fully equal", used by
    /// F3 and the assignment case of B3.
    pub fn states_equal(&mut self, a: &SymState, b: &SymState) -> Formula {
        let pointwise =
            self.forall_stores2(a.store, b.store, |_, s1, s2, _| Formula::Eq(s1, s2));
        Formula::and([
            Formula::Eq(a.idx, b.idx),
            Formula::Eq(a.env, b.env),
            Formula::Eq(a.alloc, b.alloc),
            pointwise,
        ])
    }

    fn var_pat_term(&mut self, vp: &VarPat, bind: &Bind) -> Result<TermId, VerifyError> {
        match vp {
            VarPat::Pat(p) => bind.get(p).copied().ok_or_else(|| {
                VerifyError::Unsupported(format!("unbound pattern variable `{p}`"))
            }),
            VarPat::Concrete(name) => Ok(self.concrete_var_term(name.as_str())),
        }
    }

    fn const_pat_term(&mut self, cp: &ConstPat, bind: &Bind) -> Result<TermId, VerifyError> {
        match cp {
            ConstPat::Pat(p) => bind.get(p).copied().ok_or_else(|| {
                VerifyError::Unsupported(format!("unbound pattern variable `{p}`"))
            }),
            ConstPat::Concrete(n) => Ok(self.s.bank.int(*n)),
        }
    }

    fn expr_pat_term(&mut self, ep: &ExprPat, bind: &Bind) -> Result<TermId, VerifyError> {
        match ep {
            ExprPat::Pat(p) => bind.get(p).copied().ok_or_else(|| {
                VerifyError::Unsupported(format!("unbound pattern variable `{p}`"))
            }),
            ExprPat::Base(BasePat::Var(vp)) => {
                let u = self.var_pat_term(vp, bind)?;
                Ok(self.app_pub("varexpr", vec![u]))
            }
            ExprPat::Base(BasePat::Const(cp)) => {
                let k = self.const_pat_term(cp, bind)?;
                Ok(self.app_pub("cstexpr", vec![k]))
            }
            ExprPat::Deref(vp) => {
                let u = self.var_pat_term(vp, bind)?;
                Ok(self.app_pub("derefexpr", vec![u]))
            }
            ExprPat::AddrOf(vp) => {
                let u = self.var_pat_term(vp, bind)?;
                Ok(self.app_pub("addrexpr", vec![u]))
            }
            other => Err(VerifyError::Unsupported(format!(
                "expression pattern `{other}` in this position"
            ))),
        }
    }

    fn label_arg_term(&mut self, a: &LabelArgPat, bind: &Bind) -> Result<TermId, VerifyError> {
        match a {
            LabelArgPat::Var(vp) => self.var_pat_term(vp, bind),
            LabelArgPat::Const(cp) => self.const_pat_term(cp, bind),
            LabelArgPat::Expr(ExprPat::Pat(p)) => bind.get(p).copied().ok_or_else(|| {
                VerifyError::Unsupported(format!("unbound pattern variable `{p}`"))
            }),
            LabelArgPat::Expr(e) => self.expr_pat_term(e, bind),
        }
    }
}

fn polarize(f: Formula, negated: bool) -> Formula {
    if negated {
        f.negate()
    } else {
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enc::TaintMode;
    use crate::vocab::Kinds;
    use cobalt_dsl::{FragKind, Guard, LabelArgPat, LabelEnv};
    use cobalt_logic::{ProofTask, Solver};

    use crate::enc::SemanticMeanings;

    fn kinds_xy() -> Kinds {
        let mut k = Kinds::new();
        k.insert("Y".into(), FragKind::Var);
        k.insert("C".into(), FragKind::Const);
        k
    }

    #[test]
    fn not_maydef_on_plain_assignment_gives_disequality() {
        let mut s = Solver::new();
        let defs = LabelEnv::standard();
        let m = SemanticMeanings::standard();
        let kinds = kinds_xy();
        let (mut enc, bind) = Enc::new(&mut s, &defs, &m, TaintMode::Semantic, &kinds);
        let st = enc.init_state("a");
        let w = enc.fresh_var("w");
        let k = enc.fresh("k");
        let shape = Shape::AssignVar(w, RhsShape::Const(k));
        let ctx = GuardCtx {
            shape: &shape,
            st,
            steps: vec![],
        };
        let g = Guard::not_label("mayDef", vec![LabelArgPat::Var(VarPat::pat("Y"))]);
        let (f, taints) = enc.encode_guard(&g, &ctx, &bind, false).unwrap();
        assert!(taints.is_empty());
        // ¬mayDef(Y) at `w := k` should boil down to ¬(Y = w).
        let y = bind[&"Y".into()];
        let display = f.display(&enc.s.bank);
        assert!(
            display.contains("pv$Y") && display.contains("not"),
            "{display}"
        );
        // And it should be provable that the formula implies Y ≠ w.
        let task = ProofTask {
            hypotheses: vec![f],
            goal: Formula::ne(y, w),
        };
        assert!(enc.s.prove(&task).is_proved());
    }

    #[test]
    fn not_maydef_on_pointer_store_yields_taint() {
        let mut s = Solver::new();
        let defs = LabelEnv::standard();
        let m = SemanticMeanings::standard();
        let kinds = kinds_xy();
        let (mut enc, bind) = Enc::new(&mut s, &defs, &m, TaintMode::Semantic, &kinds);
        let st = enc.init_state("a");
        let w = enc.fresh_var("w");
        let u = enc.fresh_var("u");
        let shape = Shape::AssignDeref(w, RhsShape::Var(u));
        let g = Guard::not_label("mayDef", vec![LabelArgPat::Var(VarPat::pat("Y"))]);
        // Taint pre-pass.
        let taints = enc.definite_taints(&g, &shape, &bind).unwrap();
        assert_eq!(taints, vec![bind[&"Y".into()]]);
        // Full encoding produces the notPointedTo meaning.
        let ctx = GuardCtx {
            shape: &shape,
            st,
            steps: vec![],
        };
        let (f, taints2) = enc.encode_guard(&g, &ctx, &bind, false).unwrap();
        assert_eq!(taints2, taints);
        assert!(f.display(&enc.s.bank).contains("forall"));
    }

    #[test]
    fn backward_mode_makes_pointer_store_guard_false() {
        let mut s = Solver::new();
        let defs = LabelEnv::standard();
        let m = SemanticMeanings::standard();
        let kinds = kinds_xy();
        let (mut enc, bind) = Enc::new(&mut s, &defs, &m, TaintMode::AbsentFalse, &kinds);
        let st = enc.init_state("a");
        let w = enc.fresh_var("w");
        let u = enc.fresh_var("u");
        let shape = Shape::AssignDeref(w, RhsShape::Var(u));
        let ctx = GuardCtx {
            shape: &shape,
            st,
            steps: vec![],
        };
        let g = Guard::not_label("mayDef", vec![LabelArgPat::Var(VarPat::pat("Y"))]);
        let (f, _) = enc.encode_guard(&g, &ctx, &bind, false).unwrap();
        assert_eq!(f, Formula::False);
    }

    #[test]
    fn stmt_guard_match_and_mismatch() {
        let mut s = Solver::new();
        let defs = LabelEnv::standard();
        let m = SemanticMeanings::standard();
        let kinds = kinds_xy();
        let (mut enc, bind) = Enc::new(&mut s, &defs, &m, TaintMode::Semantic, &kinds);
        let st = enc.init_state("a");
        let w = enc.fresh_var("w");
        let k = enc.fresh("k");
        let shape = Shape::AssignVar(w, RhsShape::Const(k));
        let ctx = GuardCtx {
            shape: &shape,
            st,
            steps: vec![],
        };
        // stmt(Y := C) against `w := k`: conditions Y = w ∧ C = k.
        let g = Guard::Stmt(StmtPat::Assign(
            LhsPat::Var(VarPat::pat("Y")),
            ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
        ));
        let (f, _) = enc.encode_guard(&g, &ctx, &bind, false).unwrap();
        let d = f.display(&enc.s.bank);
        assert!(d.contains("pv$Y") && d.contains("pv$C"), "{d}");
        // Against skip: statically false.
        let skip = Shape::Skip;
        let ctx2 = GuardCtx {
            shape: &skip,
            st,
            steps: vec![],
        };
        let (f2, _) = enc.encode_guard(&g, &ctx2, &bind, false).unwrap();
        assert_eq!(f2, Formula::False);
    }

    #[test]
    fn syntactic_use_of_shape() {
        let mut s = Solver::new();
        let defs = LabelEnv::standard();
        let m = SemanticMeanings::standard();
        let kinds = kinds_xy();
        let (mut enc, bind) = Enc::new(&mut s, &defs, &m, TaintMode::Semantic, &kinds);
        let st = enc.init_state("a");
        let u1 = enc.fresh_var("u");
        let u2 = enc.fresh_var("u");
        let o = enc.fresh("op");
        let w = enc.fresh_var("w");
        let shape = Shape::AssignVar(
            w,
            RhsShape::Op(o, vec![ArgShape::Var(u1), ArgShape::Var(u2)]),
        );
        let ctx = GuardCtx {
            shape: &shape,
            st,
            steps: vec![],
        };
        let g = Guard::SyntacticUse(VarPat::pat("Y"));
        let (f, _) = enc.encode_guard(&g, &ctx, &bind, true).unwrap();
        // ¬syntacticUse(Y) = ¬(Y = u1 ∨ Y = u2).
        let d = f.display(&enc.s.bank);
        assert!(d.starts_with("(not"), "{d}");
        assert!(d.contains("pv$Y"), "{d}");
    }
}
