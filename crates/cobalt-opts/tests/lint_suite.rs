//! Every rule the crate ships — sound or deliberately buggy — must be
//! lint-clean. This pins down the division of labor (DESIGN.md §9):
//! the linter rejects *structural* defects (unbound variables, unknown
//! labels, wildcard templates); the §6 buggy variants carry *semantic*
//! bugs, which only the prover can catch, so they lint clean too. A
//! buggy variant that trips the linter would mean the regression it
//! guards (the prover rejecting it) is being masked by a cheaper check.

use cobalt_dsl::LabelEnv;
use cobalt_lint::{lint_analysis, lint_optimization, LintContext, RuleLintOptions};

fn ctx_parts() -> (LabelEnv, Vec<cobalt_dsl::PureAnalysis>) {
    (LabelEnv::standard(), cobalt_opts::all_analyses())
}

#[test]
fn every_shipped_analysis_is_lint_clean() {
    let (env, analyses) = ctx_parts();
    let ctx = LintContext::new(&env).with_analyses(&analyses);
    let opts = RuleLintOptions::default();
    for a in &analyses {
        let diags = lint_analysis(a, &ctx, &opts);
        assert!(
            diags.is_empty(),
            "analysis `{}` is not lint-clean:\n{}",
            a.name,
            diags.render_human()
        );
    }
}

#[test]
fn every_sound_optimization_is_lint_clean() {
    let (env, analyses) = ctx_parts();
    let ctx = LintContext::new(&env).with_analyses(&analyses);
    let opts = RuleLintOptions::default();
    for o in cobalt_opts::all_optimizations() {
        let diags = lint_optimization(&o, &ctx, &opts);
        assert!(
            diags.is_empty(),
            "optimization `{}` is not lint-clean:\n{}",
            o.name,
            diags.render_human()
        );
    }
}

#[test]
fn buggy_variants_lint_clean_because_their_bugs_are_semantic() {
    let (env, analyses) = ctx_parts();
    let ctx = LintContext::new(&env).with_analyses(&analyses);
    let opts = RuleLintOptions::default();
    for o in cobalt_opts::buggy_optimizations() {
        let diags = lint_optimization(&o, &ctx, &opts);
        assert!(
            diags.is_empty(),
            "buggy variant `{}` tripped the linter — its bug must stay \
             the prover's to catch:\n{}",
            o.name,
            diags.render_human()
        );
    }
}

#[test]
fn default_and_pre_pipelines_are_drawn_from_linted_rules() {
    // The pipelines are subsets of the registry, so they inherit
    // cleanliness; this guards against a pipeline-only rule sneaking in
    // unlinted.
    let names: Vec<String> = cobalt_opts::all_optimizations()
        .iter()
        .map(|o| o.name.to_string())
        .collect();
    for o in cobalt_opts::default_pipeline()
        .iter()
        .chain(cobalt_opts::pre_pipeline().iter())
    {
        assert!(
            names.iter().any(|n| *n == o.name),
            "pipeline rule `{}` is not in the linted registry",
            o.name
        );
    }
}
