//! Verify every optimization and analysis in the suite, printing a
//! per-obligation summary — the dry run for experiment E1.
use cobalt_dsl::LabelEnv;
use cobalt_verify::{SemanticMeanings, Verifier};

fn main() {
    let verifier = Verifier::new(LabelEnv::standard(), SemanticMeanings::standard());
    let mut all_ok = true;
    for analysis in cobalt_opts::all_analyses() {
        let start = std::time::Instant::now();
        match verifier.verify_analysis(&analysis) {
            Ok(report) => {
                println!("{} ({:?})", report.summary(), start.elapsed());
                if !report.all_proved() {
                    all_ok = false;
                    for o in &report.outcomes {
                        if !o.proved {
                            println!("  FAILED {}: {}", o.id, truncate(&o.detail));
                        }
                    }
                }
            }
            Err(e) => {
                all_ok = false;
                println!("{}: ENCODING ERROR: {e}", analysis.name);
            }
        }
    }
    for opt in cobalt_opts::all_optimizations() {
        let start = std::time::Instant::now();
        match verifier.verify_optimization(&opt) {
            Ok(report) => {
                println!("{} ({:?})", report.summary(), start.elapsed());
                if !report.all_proved() {
                    all_ok = false;
                    for o in &report.outcomes {
                        if !o.proved {
                            println!("  FAILED {}: {}", o.id, truncate(&o.detail));
                        }
                    }
                }
            }
            Err(e) => {
                all_ok = false;
                println!("{}: ENCODING ERROR: {e}", opt.name);
            }
        }
    }
    for opt in cobalt_opts::buggy_optimizations() {
        match verifier.verify_optimization(&opt) {
            Ok(report) => {
                println!(
                    "{} — expected to FAIL: {}",
                    report.summary(),
                    if report.all_proved() { "UNEXPECTEDLY PROVED (BAD)" } else { "correctly rejected" }
                );
                if report.all_proved() {
                    all_ok = false;
                }
            }
            Err(e) => println!("{}: encoding error: {e}", opt.name),
        }
    }
    println!("overall: {}", if all_ok { "OK" } else { "PROBLEMS" });
}

fn truncate(s: &str) -> String {
    let t: String = s.chars().take(220).collect();
    t
}
