# The Cobalt optimization suite in surface syntax.
# Parsed by cobalt_dsl::parse_suite; the test in src/registry.rs checks
# that these definitions are identical to the Rust-built registry
# (profitability heuristics, which are arbitrary Rust code, attach on
# the Rust side).

forward const_prop {
    stmt(Y := C)
    followed by !mayDef(Y)
    until X := Y => X := C
    with witness eta(Y) == C
}

forward const_prop_branch {
    stmt(Y := C)
    followed by !mayDef(Y)
    until if Y goto I1 else I2 => if C goto I1 else I2
    with witness eta(Y) == C
}

forward const_prop_call {
    stmt(Y := C)
    followed by !mayDef(Y)
    until X := F(Y) => X := F(C)
    with witness eta(Y) == C
}

local const_fold {
    rewrite X := E => X := fold(E)
}

forward copy_prop {
    stmt(Y := Z)
    followed by !mayDef(Y) && !mayDef(Z)
    until X := Y => X := Z
    with witness eta(Y) == eta(Z)
}

forward cse {
    stmt(X := E) && unchanged(E)
    followed by unchanged(E) && !mayDef(X)
    until Y := E => Y := X
    with witness eta(X) == eta(E)
}

forward load_elim {
    stmt(X := *P) && unchanged(*P)
    followed by unchanged(*P) && !mayDef(X)
    until Y := *P => Y := X
    with witness eta(X) == eta(*P)
}

local branch_fold_true {
    rewrite if C goto I1 else I2 => if C goto I1 else I1
    where !(C == 0)
}

local branch_fold_false {
    rewrite if C goto I1 else I2 => if C goto I2 else I2
    where C == 0
}

local self_assign_removal {
    rewrite X := X => skip
}

backward dae {
    (stmt(X := ...) || stmt(return ...)) && !mayUse(X)
    preceded by !mayUse(X)
    since X := E => skip
    with witness old/X == new/X
}

backward pre_duplicate {
    stmt(X := E) && !mayUse(X)
    preceded by unchanged(E) && !mayDef(X) && !mayUse(X)
    since skip => X := E
    with witness old/X == new/X
}

analysis taint {
    stmt(decl X)
    followed by !stmt(... := &X)
    defines notTainted(X)
    with witness notPointedTo(X)
}
