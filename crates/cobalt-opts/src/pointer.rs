//! The taintedness pointer analysis (paper Example 4, §2.4).

use cobalt_dsl::{
    ExprPat, ForwardWitness, Guard, LabelArgPat, LhsPat, PureAnalysis, RegionGuard, StmtPat,
    VarPat,
};

/// The `notTainted` pure analysis:
///
/// ```text
/// stmt(decl X) followed by ¬stmt(… := &X)
/// defines notTainted(X)
/// with witness notPointedTo(X, η)
/// ```
///
/// A variable is *not tainted* at a node if on all paths to it the
/// variable was declared and its address never taken since. The label
/// feeds the pointer-aware `mayDef`/`mayUse` definitions
/// (`cobalt_dsl::stdlib`), making forward optimizations less
/// conservative around pointer stores and calls.
pub fn taint_analysis() -> PureAnalysis {
    PureAnalysis {
        name: "taint".into(),
        guard: RegionGuard {
            psi1: Guard::Stmt(StmtPat::Decl(VarPat::pat("X"))),
            psi2: Guard::Stmt(StmtPat::Assign(
                LhsPat::Any,
                ExprPat::AddrOf(VarPat::pat("X")),
            ))
            .negate(),
        },
        defines: (
            "notTainted".into(),
            vec![LabelArgPat::Var(VarPat::pat("X"))],
        ),
        witness: ForwardWitness::NotPointedTo(VarPat::pat("X")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobalt_dsl::LabelEnv;
    use cobalt_engine::{AnalyzedProc, Engine};
    use cobalt_il::parse_program;

    #[test]
    fn taint_tracks_address_taking_through_branches() {
        let prog = parse_program(
            "proc main(x) {
                decl y;
                decl z;
                if x goto 3 else 4;
                p := &y;
                a := z;
                return a;
             }",
        )
        .unwrap();
        let engine = Engine::new(LabelEnv::standard());
        let mut ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
        engine.run_pure_analysis(&mut ap, &taint_analysis()).unwrap();
        let has = |i: usize, v: &str| {
            ap.labels[i]
                .iter()
                .any(|l| l.to_string() == format!("notTainted({v})"))
        };
        // At the merge (node 4), y may have been address-taken on one
        // path: not notTainted. z is clean everywhere after its decl.
        assert!(!has(4, "y"));
        assert!(has(4, "z"));
        // Before the branch, y is still clean.
        assert!(has(2, "y"));
    }

    #[test]
    fn label_matches_concrete_pointer_behaviour() {
        // Cross-validate the analysis against the interpreter's
        // is_pointed_to on straight-line programs.
        use cobalt_il::{Interp, StepOutcome, Var};
        let prog = parse_program(
            "proc main(x) {
                decl y;
                decl q;
                q := &y;
                decl z;
                z := 1;
                return z;
             }",
        )
        .unwrap();
        let engine = Engine::new(LabelEnv::standard());
        let mut ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
        engine.run_pure_analysis(&mut ap, &taint_analysis()).unwrap();
        let interp = Interp::new(&prog);
        let mut st = interp.initial_state(0).unwrap();
        loop {
            let i = st.index();
            for label in &ap.labels[i] {
                if label.name.as_str() == "notTainted" {
                    let v = label.args[0].to_string();
                    assert!(
                        !st.is_pointed_to(&Var::new(&v)),
                        "label notTainted({v}) contradicts concrete state at node {i}"
                    );
                }
            }
            match interp.step(st).unwrap() {
                StepOutcome::Continue(next) => st = next,
                StepOutcome::Done(_) => break,
            }
        }
    }
}
