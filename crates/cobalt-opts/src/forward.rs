//! The forward dataflow optimizations of the suite (paper §2.1, §6).

use cobalt_dsl::{
    BasePat, ConstPat, Direction, ExprPat, ForwardWitness, Guard, GuardSpec, LabelArgPat, LhsPat,
    Optimization, RegionGuard, StmtPat, TransformPattern, VarPat, Witness,
};

fn var(p: &str) -> VarPat {
    VarPat::pat(p)
}

fn assign(x: &str, e: ExprPat) -> StmtPat {
    StmtPat::Assign(LhsPat::Var(var(x)), e)
}

fn evar(p: &str) -> ExprPat {
    ExprPat::Base(BasePat::Var(var(p)))
}

fn econst(p: &str) -> ExprPat {
    ExprPat::Base(BasePat::Const(ConstPat::pat(p)))
}

fn not_may_def(p: &str) -> Guard {
    Guard::not_label("mayDef", vec![LabelArgPat::Var(var(p))])
}

/// Constant propagation (paper Example 1):
///
/// ```text
/// stmt(Y := C) followed by ¬mayDef(Y)
/// until X := Y ⇒ X := C
/// with witness η(Y) = C
/// ```
pub fn const_prop() -> Optimization {
    Optimization::new(
        "const_prop",
        TransformPattern {
            direction: Direction::Forward,
            guard: GuardSpec::Region(RegionGuard {
                psi1: Guard::Stmt(assign("Y", econst("C"))),
                psi2: not_may_def("Y"),
            }),
            from: assign("X", evar("Y")),
            to: assign("X", econst("C")),
            where_clause: Guard::True,
            witness: Witness::Forward(ForwardWitness::VarEqConst(var("Y"), ConstPat::pat("C"))),
        },
    )
}

/// Copy propagation:
///
/// ```text
/// stmt(Y := Z) followed by ¬mayDef(Y) ∧ ¬mayDef(Z)
/// until X := Y ⇒ X := Z
/// with witness η(Y) = η(Z)
/// ```
pub fn copy_prop() -> Optimization {
    Optimization::new(
        "copy_prop",
        TransformPattern {
            direction: Direction::Forward,
            guard: GuardSpec::Region(RegionGuard {
                psi1: Guard::Stmt(assign("Y", evar("Z"))),
                psi2: Guard::and([not_may_def("Y"), not_may_def("Z")]),
            }),
            from: assign("X", evar("Y")),
            to: assign("X", evar("Z")),
            where_clause: Guard::True,
            witness: Witness::Forward(ForwardWitness::VarEqVar(var("Y"), var("Z"))),
        },
    )
}

/// Common subexpression elimination, covering arithmetic expressions
/// and — because `E` may instantiate to `*P` — redundant loads:
///
/// ```text
/// stmt(X := E) ∧ unchanged(E)
/// followed by unchanged(E) ∧ ¬mayDef(X)
/// until Y := E ⇒ Y := X
/// with witness η(X) = η(E)
/// ```
///
/// The `unchanged(E)` conjunct in `ψ1` excludes enabling statements
/// whose own execution changes `E` (e.g. `x := x + 1`).
pub fn cse() -> Optimization {
    let e = || ExprPat::Pat("E".into());
    Optimization::new(
        "cse",
        TransformPattern {
            direction: Direction::Forward,
            guard: GuardSpec::Region(RegionGuard {
                psi1: Guard::and([Guard::Stmt(assign("X", e())), Guard::Unchanged(e())]),
                psi2: Guard::and([Guard::Unchanged(e()), not_may_def("X")]),
            }),
            from: assign("Y", e()),
            to: assign("Y", evar("X")),
            where_clause: Guard::True,
            witness: Witness::Forward(ForwardWitness::VarEqExpr(var("X"), e())),
        },
    )
    .with_choose(|delta, _| {
        // Profitability: only eliminate *computations*. Rewriting a
        // constant or copy RHS to another variable is legal but
        // regresses what const/copy propagation achieve (and the two
        // passes would oscillate forever).
        delta
            .iter()
            .filter(|site| {
                !matches!(
                    site.subst.get(&"E".into()),
                    Some(cobalt_dsl::Binding::Expr(cobalt_il::Expr::Base(_)))
                )
            })
            .cloned()
            .collect()
    })
}

/// Redundant load elimination — the structural `X := *P` instance of
/// CSE, written separately because it is the optimization whose buggy
/// variant motivates §6 of the paper (see [`crate::buggy`]):
///
/// ```text
/// stmt(X := *P) ∧ unchanged(*P)
/// followed by unchanged(*P) ∧ ¬mayDef(X)
/// until Y := *P ⇒ Y := X
/// with witness η(X) = η(*P)
/// ```
pub fn load_elim() -> Optimization {
    let load = || ExprPat::Deref(var("P"));
    Optimization::new(
        "load_elim",
        TransformPattern {
            direction: Direction::Forward,
            guard: GuardSpec::Region(RegionGuard {
                psi1: Guard::and([Guard::Stmt(assign("X", load())), Guard::Unchanged(load())]),
                psi2: Guard::and([Guard::Unchanged(load()), not_may_def("X")]),
            }),
            from: assign("Y", load()),
            to: assign("Y", evar("X")),
            where_clause: Guard::True,
            witness: Witness::Forward(ForwardWitness::VarEqExpr(var("X"), load())),
        },
    )
}

/// Constant folding, a node-local rewrite:
///
/// ```text
/// rewrite X := E ⇒ X := fold(E)
/// ```
///
/// The engine only applies the rewrite when `E` folds (an operator
/// application over constants evaluating without fault); non-foldable
/// sites are not legal transformations.
pub fn const_fold() -> Optimization {
    Optimization::new(
        "const_fold",
        TransformPattern {
            direction: Direction::Forward,
            guard: GuardSpec::Local,
            from: assign("X", ExprPat::Pat("E".into())),
            to: assign("X", ExprPat::Fold("E".into())),
            where_clause: Guard::True,
            witness: Witness::Forward(ForwardWitness::True),
        },
    )
    .with_choose(|delta, _| {
        // Folding an already-constant RHS (E = c) is legal but useless;
        // skip it so the pass reaches a fixpoint.
        delta
            .iter()
            .filter(|site| {
                !matches!(
                    site.subst.get(&"E".into()),
                    Some(cobalt_dsl::Binding::Expr(cobalt_il::Expr::Base(
                        cobalt_il::BaseExpr::Const(_)
                    )))
                )
            })
            .cloned()
            .collect()
    })
}

/// Branch folding for a statically true condition:
///
/// ```text
/// rewrite if C goto I1 else I2 ⇒ if C goto I1 else I1  where ¬(C = 0)
/// ```
///
/// Both targets become the taken one; the statement stays a single
/// statement, as Cobalt requires.
pub fn branch_fold_true() -> Optimization {
    Optimization::new(
        "branch_fold_true",
        TransformPattern {
            direction: Direction::Forward,
            guard: GuardSpec::Local,
            from: StmtPat::If {
                cond: BasePat::Const(ConstPat::pat("C")),
                then_target: cobalt_dsl::IdxPat::pat("I1"),
                else_target: cobalt_dsl::IdxPat::pat("I2"),
            },
            to: StmtPat::If {
                cond: BasePat::Const(ConstPat::pat("C")),
                then_target: cobalt_dsl::IdxPat::pat("I1"),
                else_target: cobalt_dsl::IdxPat::pat("I1"),
            },
            where_clause: Guard::ConstEq(ConstPat::pat("C"), ConstPat::Concrete(0)).negate(),
            witness: Witness::Forward(ForwardWitness::True),
        },
    )
}

/// Branch folding for a statically false condition:
///
/// ```text
/// rewrite if C goto I1 else I2 ⇒ if C goto I2 else I2  where C = 0
/// ```
pub fn branch_fold_false() -> Optimization {
    Optimization::new(
        "branch_fold_false",
        TransformPattern {
            direction: Direction::Forward,
            guard: GuardSpec::Local,
            from: StmtPat::If {
                cond: BasePat::Const(ConstPat::pat("C")),
                then_target: cobalt_dsl::IdxPat::pat("I1"),
                else_target: cobalt_dsl::IdxPat::pat("I2"),
            },
            to: StmtPat::If {
                cond: BasePat::Const(ConstPat::pat("C")),
                then_target: cobalt_dsl::IdxPat::pat("I2"),
                else_target: cobalt_dsl::IdxPat::pat("I2"),
            },
            where_clause: Guard::ConstEq(ConstPat::pat("C"), ConstPat::Concrete(0)),
            witness: Witness::Forward(ForwardWitness::True),
        },
    )
}

/// Constant propagation into branch conditions:
///
/// ```text
/// stmt(Y := C) followed by ¬mayDef(Y)
/// until if Y goto I1 else I2 ⇒ if C goto I1 else I2
/// with witness η(Y) = C
/// ```
///
/// Feeds `branch_fold_true`/`branch_fold_false`, which only fire on
/// constant conditions.
pub fn const_prop_branch() -> Optimization {
    Optimization::new(
        "const_prop_branch",
        TransformPattern {
            direction: Direction::Forward,
            guard: GuardSpec::Region(RegionGuard {
                psi1: Guard::Stmt(assign("Y", econst("C"))),
                psi2: not_may_def("Y"),
            }),
            from: StmtPat::If {
                cond: BasePat::Var(var("Y")),
                then_target: cobalt_dsl::IdxPat::pat("I1"),
                else_target: cobalt_dsl::IdxPat::pat("I2"),
            },
            to: StmtPat::If {
                cond: BasePat::Const(ConstPat::pat("C")),
                then_target: cobalt_dsl::IdxPat::pat("I1"),
                else_target: cobalt_dsl::IdxPat::pat("I2"),
            },
            where_clause: Guard::True,
            witness: Witness::Forward(ForwardWitness::VarEqConst(var("Y"), ConstPat::pat("C"))),
        },
    )
}

/// Constant propagation into call arguments:
///
/// ```text
/// stmt(Y := C) followed by ¬mayDef(Y)
/// until X := F(Y) ⇒ X := F(C)
/// with witness η(Y) = C
/// ```
///
/// The F3 proof relies on `↪π` being a *function* of the call's
/// argument value: two calls with equal arguments from equal states
/// step identically.
pub fn const_prop_call() -> Optimization {
    Optimization::new(
        "const_prop_call",
        TransformPattern {
            direction: Direction::Forward,
            guard: GuardSpec::Region(RegionGuard {
                psi1: Guard::Stmt(assign("Y", econst("C"))),
                psi2: not_may_def("Y"),
            }),
            from: StmtPat::Call {
                dst: var("X"),
                proc: cobalt_dsl::ProcPat::Pat("F".into()),
                arg: BasePat::Var(var("Y")),
            },
            to: StmtPat::Call {
                dst: var("X"),
                proc: cobalt_dsl::ProcPat::Pat("F".into()),
                arg: BasePat::Const(ConstPat::pat("C")),
            },
            where_clause: Guard::True,
            witness: Witness::Forward(ForwardWitness::VarEqConst(var("Y"), ConstPat::pat("C"))),
        },
    )
}

/// Self-assignment removal:
///
/// ```text
/// rewrite X := X ⇒ skip
/// ```
///
/// Used as the cleanup pass of the PRE pipeline (paper §2.3).
pub fn self_assign_removal() -> Optimization {
    Optimization::new(
        "self_assign_removal",
        TransformPattern {
            direction: Direction::Forward,
            guard: GuardSpec::Local,
            from: assign("X", evar("X")),
            to: StmtPat::Skip,
            where_clause: Guard::True,
            witness: Witness::Forward(ForwardWitness::True),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobalt_dsl::LabelEnv;
    use cobalt_engine::{AnalyzedProc, Engine};
    use cobalt_il::parse_program;

    fn apply_to(opt: &Optimization, src: &str) -> cobalt_il::Proc {
        let prog = parse_program(src).unwrap();
        let engine = Engine::new(LabelEnv::standard());
        let ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
        engine.apply(&ap, opt).unwrap().0
    }

    #[test]
    fn copy_prop_rewrites() {
        let p = apply_to(
            &copy_prop(),
            "proc main(x) { a := x; b := a; return b; }",
        );
        assert_eq!(p.stmts[1].to_string(), "b := x");
    }

    #[test]
    fn copy_prop_killed_by_source_redefinition() {
        let p = apply_to(
            &copy_prop(),
            "proc main(x) { a := x; x := 1; b := a; return b; }",
        );
        assert_eq!(p.stmts[2].to_string(), "b := a");
    }

    #[test]
    fn cse_eliminates_recomputation() {
        let p = apply_to(
            &cse(),
            "proc main(x) { a := x + 1; b := x + 1; return b; }",
        );
        assert_eq!(p.stmts[1].to_string(), "b := a");
    }

    #[test]
    fn cse_blocked_by_operand_change() {
        let p = apply_to(
            &cse(),
            "proc main(x) { a := x + 1; x := 2; b := x + 1; return b; }",
        );
        assert_eq!(p.stmts[2].to_string(), "b := x + 1");
    }

    #[test]
    fn cse_excludes_self_changing_enabler() {
        // x := x + 1 must not enable x + 1 (its own execution changes it).
        let p = apply_to(
            &cse(),
            "proc main(x) { x := x + 1; b := x + 1; return b; }",
        );
        assert_eq!(p.stmts[1].to_string(), "b := x + 1");
    }

    #[test]
    fn load_elim_requires_no_aliasing_stores() {
        // Without taint facts, the intervening y := 1 may alias *p.
        let p = apply_to(
            &load_elim(),
            "proc main(x) {
                decl y;
                decl p;
                p := &y;
                a := *p;
                y := 1;
                b := *p;
                return b;
             }",
        );
        assert_eq!(p.stmts[5].to_string(), "b := *p");
    }

    #[test]
    fn load_elim_fires_with_taint_analysis() {
        // z is never address-taken, so y := 1 cannot alias *p … but p
        // points to y! The taint analysis marks z notTainted; writing z
        // then cannot change *p.
        let prog = parse_program(
            "proc main(x) {
                decl y;
                decl p;
                decl z;
                decl a;
                decl b;
                p := &y;
                a := *p;
                z := 1;
                b := *p;
                return b;
             }",
        )
        .unwrap();
        let engine = Engine::new(LabelEnv::standard());
        let mut ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
        engine
            .run_pure_analysis(&mut ap, &crate::pointer::taint_analysis())
            .unwrap();
        let (p, applied) = engine.apply(&ap, &load_elim()).unwrap();
        assert_eq!(applied.len(), 1, "{}", cobalt_il::pretty_proc(&p));
        assert_eq!(p.stmts[8].to_string(), "b := a");
    }

    #[test]
    fn const_fold_folds_and_reaches_fixpoint() {
        let p = apply_to(
            &const_fold(),
            "proc main(x) { a := 2 + 3; b := a + 1; return b; }",
        );
        assert_eq!(p.stmts[0].to_string(), "a := 5");
        assert_eq!(p.stmts[1].to_string(), "b := a + 1");
        // Re-running makes no further changes (choose drops constants).
        let prog2 = cobalt_il::Program::new(vec![p]);
        let engine = Engine::new(LabelEnv::standard());
        let ap = AnalyzedProc::new(prog2.main().unwrap().clone()).unwrap();
        let (_, applied) = engine.apply(&ap, &const_fold()).unwrap();
        assert!(applied.is_empty());
    }

    #[test]
    fn branch_folding_both_directions() {
        let p = apply_to(
            &branch_fold_true(),
            "proc main(x) { if 1 goto 2 else 1; skip; return x; }",
        );
        assert_eq!(p.stmts[0].to_string(), "if 1 goto 2 else 2");
        let p = apply_to(
            &branch_fold_false(),
            "proc main(x) { if 0 goto 2 else 1; skip; return x; }",
        );
        assert_eq!(p.stmts[0].to_string(), "if 0 goto 1 else 1");
        // Variable conditions are untouched by both.
        let p = apply_to(
            &branch_fold_true(),
            "proc main(x) { if x goto 2 else 1; skip; return x; }",
        );
        assert_eq!(p.stmts[0].to_string(), "if x goto 2 else 1");
    }

    #[test]
    fn self_assignment_removed() {
        let p = apply_to(
            &self_assign_removal(),
            "proc main(x) { a := x; a := a; return a; }",
        );
        assert_eq!(p.stmts[1].to_string(), "skip");
        assert_eq!(p.stmts[0].to_string(), "a := x");
    }

    #[test]
    fn semantics_preserved_on_examples() {
        use cobalt_il::Interp;
        let cases = [
            (const_prop(), "proc main(x) { a := 2; b := 3; c := a; d := c + b; return d; }"),
            (copy_prop(), "proc main(x) { a := x; b := a; c := b + a; return c; }"),
            (cse(), "proc main(x) { a := x * x; b := x * x; c := a + b; return c; }"),
            (const_fold(), "proc main(x) { a := 6 * 7; b := a + x; return b; }"),
        ];
        let engine = Engine::new(LabelEnv::standard());
        for (opt, src) in cases {
            let prog = parse_program(src).unwrap();
            let (optimized, _) = engine
                .optimize_program(&prog, &[], std::slice::from_ref(&opt), 4)
                .unwrap();
            for arg in [-2, 0, 5] {
                let orig = Interp::new(&prog).run(arg);
                let new = Interp::new(&optimized).run(arg);
                match (orig, new) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "{}: arg {arg}", opt.name),
                    (Err(_), _) => {}
                    (Ok(v), Err(e)) => {
                        panic!("{}: original returned {v}, optimized failed: {e}", opt.name)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod branch_call_prop_tests {
    use super::*;
    use cobalt_dsl::LabelEnv;
    use cobalt_engine::Engine;
    use cobalt_il::{parse_program, Interp};

    #[test]
    fn constants_reach_branch_conditions_and_fold() {
        // const_prop_branch feeds branch folding: the flag-guarded
        // branch becomes statically decided.
        let src = "proc main(x) {
            decl flag;
            flag := 1;
            if flag goto 3 else 4;
            x := x + 10;
            return x;
        }";
        let prog = parse_program(src).unwrap();
        let engine = Engine::new(LabelEnv::standard());
        let (optimized, n) = engine
            .optimize_program(
                &prog,
                &[],
                &[const_prop_branch(), branch_fold_true()],
                2,
            )
            .unwrap();
        assert!(n >= 2, "only {n} rewrites");
        let main = optimized.main().unwrap();
        assert_eq!(main.stmts[2].to_string(), "if 1 goto 3 else 3");
        for arg in [0, 5] {
            assert_eq!(
                Interp::new(&prog).run(arg).unwrap(),
                Interp::new(&optimized).run(arg).unwrap()
            );
        }
    }

    #[test]
    fn constants_reach_call_arguments() {
        let src = "proc main(x) {
            decl k;
            decl r;
            k := 7;
            r := helper(k);
            return r;
        }
        proc helper(n) {
            decl t;
            t := n * n;
            return t;
        }";
        let prog = parse_program(src).unwrap();
        let engine = Engine::new(LabelEnv::standard());
        let (optimized, n) = engine
            .optimize_program(&prog, &[], &[const_prop_call()], 1)
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(
            optimized.main().unwrap().stmts[3].to_string(),
            "r := helper(7)"
        );
        assert_eq!(
            Interp::new(&prog).run(0).unwrap(),
            Interp::new(&optimized).run(0).unwrap()
        );
    }

    #[test]
    fn branch_propagation_respects_kills() {
        let src = "proc main(x) {
            decl flag;
            flag := 1;
            flag := x;
            if flag goto 4 else 5;
            return x;
            return flag;
        }";
        let prog = parse_program(src).unwrap();
        let engine = Engine::new(LabelEnv::standard());
        let (optimized, n) = engine
            .optimize_program(&prog, &[], &[const_prop_branch()], 1)
            .unwrap();
        assert_eq!(n, 0, "{}", cobalt_il::pretty_proc(optimized.main().unwrap()));
    }
}
