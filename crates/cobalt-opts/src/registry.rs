//! The registry of the optimization suite — the paper's "dozen Cobalt
//! optimizations and analyses" (§5.1), plus the deliberately buggy
//! variants of §6.

use cobalt_dsl::{Optimization, PureAnalysis};

/// Every sound optimization in the suite — the registry the checker
/// proves (experiment E1). For *running* the suite, prefer
/// [`default_pipeline`]: PRE's code-duplication pass is staged through
/// [`pre_pipeline`] exactly as paper §2.3 prescribes (round-robining it
/// against DAE makes two individually-sound passes fight: DAE removes
/// the full redundancy, duplication legally re-inserts it).
pub fn all_optimizations() -> Vec<Optimization> {
    vec![
        crate::const_prop(),
        crate::const_prop_branch(),
        crate::const_prop_call(),
        crate::const_fold(),
        crate::copy_prop(),
        crate::cse(),
        crate::load_elim(),
        crate::branch_fold_true(),
        crate::branch_fold_false(),
        crate::self_assign_removal(),
        crate::dae(),
        crate::pre_duplicate(),
    ]
}

/// Every pure analysis in the suite.
pub fn all_analyses() -> Vec<PureAnalysis> {
    vec![crate::taint_analysis()]
}

/// The default engine pipeline: every optimization except the PRE
/// duplication pass, which belongs in its own staged [`pre_pipeline`].
pub fn default_pipeline() -> Vec<Optimization> {
    all_optimizations()
        .into_iter()
        .filter(|o| o.name != "pre_duplicate")
        .collect()
}

/// The deliberately unsound variants (paper §6), for exercising the
/// checker's bug-finding.
pub fn buggy_optimizations() -> Vec<Optimization> {
    vec![crate::buggy::load_elim_no_alias()]
}

/// The PRE pipeline of paper §2.3: duplicate partially redundant
/// computations, eliminate the now-full redundancies with CSE, clean up
/// self-assignments, then remove dead code.
pub fn pre_pipeline() -> Vec<Optimization> {
    vec![
        crate::pre_duplicate(),
        crate::cse(),
        crate::self_assign_removal(),
        crate::dae(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_size_matches_paper_scale() {
        // "We have implemented and automatically proven sound a dozen
        // Cobalt optimizations and analyses."
        let n = all_optimizations().len() + all_analyses().len();
        assert!(n >= 11, "suite has {n} entries");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = all_optimizations().iter().map(|o| o.name.clone()).collect();
        names.extend(all_analyses().iter().map(|a| a.name.clone()));
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}

#[cfg(test)]
mod surface_syntax_tests {
    use super::*;

    /// The suite's surface-syntax file parses to exactly the registry's
    /// transformation patterns (heuristics are Rust-side and excluded
    /// from the comparison, as the paper's factoring prescribes).
    #[test]
    fn suite_file_matches_registry() {
        let src = include_str!("../suite/suite.cob");
        let suite = cobalt_dsl::parse_suite(src).unwrap();
        let (opts, analyses) = (suite.optimizations, suite.analyses);
        let built = all_optimizations();
        assert_eq!(opts.len(), built.len());
        for parsed in &opts {
            let reference = built
                .iter()
                .find(|o| o.name == parsed.name)
                .unwrap_or_else(|| panic!("`{}` not in registry", parsed.name));
            assert_eq!(
                parsed.pattern, reference.pattern,
                "surface syntax drifted for `{}`",
                parsed.name
            );
        }
        let built_analyses = all_analyses();
        assert_eq!(analyses.len(), built_analyses.len());
        for parsed in &analyses {
            let reference = built_analyses
                .iter()
                .find(|a| a.name == parsed.name)
                .unwrap();
            assert_eq!(parsed.guard, reference.guard);
            assert_eq!(parsed.defines, reference.defines);
            assert_eq!(parsed.witness, reference.witness);
        }
    }
}
