//! The backward dataflow optimizations: dead assignment elimination
//! (paper Example 2) and the code-duplication pass of partial
//! redundancy elimination (paper Example 3).

use cobalt_dsl::{
    BackwardWitness, Binding, Direction, ExprPat, Guard, GuardSpec, LabelArgPat, LhsPat,
    MatchSite, Optimization, RegionGuard, StmtPat, TransformPattern, VarPat, Witness,
};
use cobalt_il::{Proc, Stmt};

fn var(p: &str) -> VarPat {
    VarPat::pat(p)
}

fn not_may_use(p: &str) -> Guard {
    Guard::not_label("mayUse", vec![LabelArgPat::Var(var(p))])
}

fn not_may_def(p: &str) -> Guard {
    Guard::not_label("mayDef", vec![LabelArgPat::Var(var(p))])
}

/// Dead assignment elimination (paper Example 2):
///
/// ```text
/// (stmt(X := …) ∨ stmt(return …)) ∧ ¬mayUse(X)
/// preceded by ¬mayUse(X)
/// since X := E ⇒ skip
/// with witness η_old/X = η_new/X
/// ```
pub fn dae() -> Optimization {
    Optimization::new(
        "dae",
        TransformPattern {
            direction: Direction::Backward,
            guard: GuardSpec::Region(RegionGuard {
                psi1: Guard::and([
                    Guard::or([
                        Guard::Stmt(StmtPat::Assign(LhsPat::Var(var("X")), ExprPat::Any)),
                        Guard::Stmt(StmtPat::ReturnAny),
                    ]),
                    not_may_use("X"),
                ]),
                psi2: not_may_use("X"),
            }),
            from: StmtPat::Assign(LhsPat::Var(var("X")), ExprPat::Pat("E".into())),
            to: StmtPat::Skip,
            where_clause: Guard::True,
            witness: Witness::Backward(BackwardWitness::AgreeExcept(var("X"))),
        },
    )
}

/// The code-duplication pass of PRE (paper Example 3):
///
/// ```text
/// stmt(X := E) ∧ ¬mayUse(X)
/// preceded by unchanged(E) ∧ ¬mayDef(X) ∧ ¬mayUse(X)
/// since skip ⇒ X := E
/// with witness η_old/X = η_new/X
/// filtered through choose
/// ```
///
/// The profitability heuristic selects only insertions that convert a
/// partial redundancy into a full one: the same assignment `X := E`
/// must occur somewhere else in the procedure (the legality guard
/// already guarantees it occurs on every path *after* the skip).
pub fn pre_duplicate() -> Optimization {
    let e = || ExprPat::Pat("E".into());
    Optimization::new(
        "pre_duplicate",
        TransformPattern {
            direction: Direction::Backward,
            guard: GuardSpec::Region(RegionGuard {
                psi1: Guard::and([
                    Guard::Stmt(StmtPat::Assign(LhsPat::Var(var("X")), e())),
                    not_may_use("X"),
                ]),
                psi2: Guard::and([Guard::Unchanged(e()), not_may_def("X"), not_may_use("X")]),
            }),
            from: StmtPat::Skip,
            to: StmtPat::Assign(LhsPat::Var(var("X")), e()),
            where_clause: Guard::True,
            witness: Witness::Backward(BackwardWitness::AgreeExcept(var("X"))),
        },
    )
    .with_choose(choose_duplications)
}

/// Selects the insertion sites whose assignment text occurs verbatim
/// elsewhere in the procedure — the simple profitability heuristic of
/// the PRE pipeline. Arbitrarily complex heuristics are allowed here;
/// none of this affects soundness (paper §2.3).
fn choose_duplications(delta: &[MatchSite], proc: &Proc) -> Vec<MatchSite> {
    delta
        .iter()
        .filter(|site| {
            let (Some(Binding::Var(x)), Some(Binding::Expr(e))) = (
                site.subst.get(&"X".into()),
                site.subst.get(&"E".into()),
            ) else {
                return false;
            };
            proc.stmts.iter().enumerate().any(|(i, s)| {
                i != site.index
                    && matches!(s, Stmt::Assign(cobalt_il::Lhs::Var(v), rhs)
                        if v == x && rhs == e)
            })
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobalt_dsl::LabelEnv;
    use cobalt_engine::{AnalyzedProc, Engine};
    use cobalt_il::{parse_program, pretty_proc, Interp};

    fn apply_to(opt: &Optimization, src: &str) -> cobalt_il::Proc {
        let prog = parse_program(src).unwrap();
        let engine = Engine::new(LabelEnv::standard());
        let ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
        engine.apply(&ap, opt).unwrap().0
    }

    #[test]
    fn dae_removes_dead_assignment() {
        let p = apply_to(
            &dae(),
            "proc main(x) { decl y; y := 5; y := x; return y; }",
        );
        assert_eq!(p.stmts[1].to_string(), "skip");
        assert_eq!(p.stmts[2].to_string(), "y := x");
    }

    #[test]
    fn dae_keeps_live_assignment() {
        let p = apply_to(
            &dae(),
            "proc main(x) { decl y; y := 5; z := y; y := x; return y; }",
        );
        assert_eq!(p.stmts[1].to_string(), "y := 5");
        // But z := y is itself dead.
        assert_eq!(p.stmts[2].to_string(), "skip");
    }

    #[test]
    fn dae_respects_pointer_reads() {
        // *p may read y; y := 5 is not dead.
        let p = apply_to(
            &dae(),
            "proc main(x) {
                decl y;
                decl p;
                p := &y;
                y := 5;
                z := *p;
                y := x;
                return z;
             }",
        );
        assert_eq!(p.stmts[3].to_string(), "y := 5");
    }

    #[test]
    fn dae_preserves_semantics() {
        let src = "proc main(x) {
            decl y;
            decl z;
            y := x + 1;
            z := y * 2;
            y := 0;
            z := z + x;
            y := z;
            return z;
        }";
        let prog = parse_program(src).unwrap();
        let engine = Engine::new(LabelEnv::standard());
        let (optimized, n) = engine.optimize_program(&prog, &[], &[dae()], 4).unwrap();
        assert!(n > 0);
        for arg in [-3, 0, 7] {
            assert_eq!(
                Interp::new(&prog).run(arg).unwrap(),
                Interp::new(&optimized).run(arg).unwrap()
            );
        }
    }

    #[test]
    fn pre_duplication_on_paper_example() {
        // The §2.3 code fragment: x := a + b is partially redundant.
        let src = "proc main(q) {
            decl a;
            decl b;
            decl x;
            b := q + 1;
            if q goto 5 else 8;
            a := 2;
            x := a + b;
            if 1 goto 9 else 9;
            skip;
            x := a + b;
            return x;
        }";
        let prog = parse_program(src).unwrap();
        let engine = Engine::new(LabelEnv::standard());
        let ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
        let (p, applied) = engine.apply(&ap, &pre_duplicate()).unwrap();
        assert_eq!(applied.len(), 1, "{}", pretty_proc(&p));
        assert_eq!(p.stmts[8].to_string(), "x := a + b");
        // Semantics preserved.
        for arg in [0, 1, 5] {
            assert_eq!(
                Interp::new(&prog).run(arg).unwrap(),
                Interp::new(&cobalt_il::Program::new(vec![p.clone()])).run(arg).unwrap()
            );
        }
    }

    #[test]
    fn pre_duplication_requires_all_paths_to_recompute() {
        // No later x := a + b on every path: the skip must stay.
        let src = "proc main(q) {
            decl a;
            decl b;
            decl x;
            skip;
            if q goto 5 else 6;
            x := a + b;
            return x;
        }";
        let prog = parse_program(src).unwrap();
        let engine = Engine::new(LabelEnv::standard());
        let ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
        let (_, applied) = engine.apply(&ap, &pre_duplicate()).unwrap();
        assert!(applied.is_empty());
    }
}
