//! Deliberately unsound optimization variants, reproducing the
//! debugging story of paper §6.
//!
//! The initial version of the authors' redundant-load elimination
//! "precluded pointer stores from the witnessing region, to ensure that
//! the value of `*X` was not modified. However, a failed soundness
//! proof made us realize that even a direct assignment `Y := …` can
//! change the value of `*X`, because `X` could point to `Y`."
//!
//! [`load_elim_no_alias`] is that buggy version: its region guard
//! excludes pointer stores and calls but allows arbitrary direct
//! assignments. The checker rejects it (see the `unsound_rejected`
//! integration test), and the differential tests exhibit a concrete
//! program it miscompiles.

use cobalt_dsl::{
    Direction, ExprPat, ForwardWitness, Guard, GuardSpec, LhsPat, Optimization,
    ProcPat, RegionGuard, StmtPat, TransformPattern, VarPat, Witness,
};

fn var(p: &str) -> VarPat {
    VarPat::pat(p)
}

/// "No pointer store, no call, no redefinition of `X` or `P`" — the
/// plausible-but-wrong innocuousness condition: it misses direct
/// assignments to variables `*P` may alias.
fn no_store_no_call_no_def() -> Guard {
    Guard::and([
        // Not a pointer store.
        Guard::Stmt(StmtPat::Assign(
            LhsPat::Deref(var("$Q")),
            ExprPat::Any,
        ))
        .negate(),
        // Not a call.
        Guard::Stmt(StmtPat::Call {
            dst: var("$D"),
            proc: ProcPat::Pat("$F".into()),
            arg: cobalt_dsl::BasePat::Var(var("$Z")),
        })
        .negate(),
        Guard::Stmt(StmtPat::Call {
            dst: var("$D"),
            proc: ProcPat::Pat("$F".into()),
            arg: cobalt_dsl::BasePat::Const(cobalt_dsl::ConstPat::pat("$C")),
        })
        .negate(),
        // X and P keep their values (syntactically).
        Guard::SyntacticDef(var("X")).negate(),
        Guard::SyntacticDef(var("P")).negate(),
    ])
}

/// The unsound redundant-load elimination of paper §6:
///
/// ```text
/// stmt(X := *P)
/// followed by ⟨no pointer stores, no calls, no defs of X or P⟩
/// until Y := *P ⇒ Y := X
/// with witness η(X) = η(*P)
/// ```
///
/// Compare with the sound `cobalt_opts::load_elim`, whose region uses
/// `unchanged(*P)` and therefore accounts for aliased direct
/// assignments via taint information.
pub fn load_elim_no_alias() -> Optimization {
    let load = || ExprPat::Deref(var("P"));
    Optimization::new(
        "buggy_load_elim_no_alias",
        TransformPattern {
            direction: Direction::Forward,
            guard: GuardSpec::Region(RegionGuard {
                psi1: Guard::Stmt(StmtPat::Assign(LhsPat::Var(var("X")), load())),
                psi2: no_store_no_call_no_def(),
            }),
            from: StmtPat::Assign(LhsPat::Var(var("Y")), load()),
            to: StmtPat::Assign(
                LhsPat::Var(var("Y")),
                ExprPat::Base(cobalt_dsl::BasePat::Var(var("X"))),
            ),
            where_clause: Guard::True,
            witness: Witness::Forward(ForwardWitness::VarEqExpr(var("X"), load())),
        },
    )
}

/// A program the buggy optimization miscompiles: `p` points to `y`, and
/// the direct assignment `y := 9` between the two loads changes `*p`.
///
/// Running the original returns 9; after `load_elim_no_alias` rewrites
/// the second load to `b := a`, it returns 7.
pub fn counterexample_program() -> cobalt_il::Program {
    cobalt_il::parse_program(COUNTEREXAMPLE_SRC).expect("counterexample program parses")
}

/// Source text of [`counterexample_program`].
pub const COUNTEREXAMPLE_SRC: &str = "proc main(x) {
    decl y;
    decl p;
    decl a;
    decl b;
    p := &y;
    y := 7;
    a := *p;
    y := 9;
    b := *p;
    return b;
}";

#[cfg(test)]
mod tests {
    use super::*;
    use cobalt_dsl::LabelEnv;
    use cobalt_engine::{AnalyzedProc, Engine};
    use cobalt_il::{Interp, Value};

    #[test]
    fn buggy_optimization_changes_behaviour() {
        let prog = counterexample_program();
        assert_eq!(Interp::new(&prog).run(0).unwrap(), Value::Int(9));

        let engine = Engine::new(LabelEnv::standard());
        let ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
        let (bad, applied) = engine.apply(&ap, &load_elim_no_alias()).unwrap();
        assert_eq!(applied.len(), 1, "buggy opt should fire");
        assert_eq!(bad.stmts[8].to_string(), "b := a");
        let bad_prog = cobalt_il::Program::new(vec![bad]);
        // Miscompiled: returns the stale value.
        assert_eq!(Interp::new(&bad_prog).run(0).unwrap(), Value::Int(7));
    }

    #[test]
    fn sound_load_elim_declines_the_counterexample() {
        let prog = counterexample_program();
        let engine = Engine::new(LabelEnv::standard());
        let ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
        let (_, applied) = engine.apply(&ap, &crate::load_elim()).unwrap();
        assert!(applied.is_empty());
    }
}
