//! # cobalt-opts
//!
//! The optimization suite of *Lerner, Millstein & Chambers,
//! "Automatically Proving the Correctness of Compiler Optimizations"
//! (PLDI 2003)* — "a dozen Cobalt optimizations and analyses" (§5.1),
//! written against `cobalt-dsl`, executable with `cobalt-engine`, and
//! provable with `cobalt-verify`:
//!
//! * forward: [constant propagation](const_prop),
//!   [constant folding](const_fold), [copy propagation](copy_prop),
//!   [common subexpression elimination](cse),
//!   [redundant load elimination](load_elim),
//!   [branch folding](branch_fold_true) (both directions),
//!   [self-assignment removal](self_assign_removal);
//! * backward: [dead assignment elimination](dae),
//!   [PRE code duplication](pre_duplicate) with its profitability
//!   heuristic (§2.3);
//! * pure analyses: the [taintedness pointer analysis](taint_analysis)
//!   (§2.4);
//! * and, for the §6 debugging story, the deliberately
//!   [unsound load elimination](buggy::load_elim_no_alias) that the
//!   checker rejects.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use cobalt_dsl::LabelEnv;
//! use cobalt_engine::Engine;
//! use cobalt_il::parse_program;
//!
//! let prog = parse_program("proc main(x) { a := 2; b := a; c := a + b; return c; }")?;
//! let engine = Engine::new(LabelEnv::standard());
//! let (optimized, applied) = engine.optimize_program(
//!     &prog,
//!     &cobalt_opts::all_analyses(),
//!     &cobalt_opts::default_pipeline(),
//!     4,
//! )?;
//! assert!(applied > 0);
//! # let _ = optimized;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backward;
pub mod buggy;
pub mod forward;
pub mod pointer;
pub mod registry;

pub use backward::{dae, pre_duplicate};
pub use forward::{
    branch_fold_false, branch_fold_true, const_fold, const_prop, const_prop_branch,
    const_prop_call, copy_prop, cse, load_elim, self_assign_removal,
};
pub use pointer::taint_analysis;
pub use registry::{all_analyses, all_optimizations, buggy_optimizations, default_pipeline, pre_pipeline};
