use cobalt_logic::{Formula, Limits, ProofTask, Solver};

fn main() {
    let mut s = Solver::with_limits(Limits { max_splits: 200, ..Default::default() });
    let store = s.bank.app0("store");
    let env = s.bank.app0("env");
    let x = s.bank.app0("X");
    let y = s.bank.app0("Y");
    let c = s.bank.app0("C");
    let iv = s.bank.constructor("intval");
    let ivc = s.bank.app(iv, vec![c]);
    let selx = s.select(env, x);
    let sely = s.select(env, y);
    let valy = s.select(store, sely);
    let hyp1 = Formula::Eq(valy, ivc);
    let hyp2 = Formula::or([Formula::Eq(x, y), Formula::ne(selx, sely)]);
    let ve = s.bank.sym("varexpr");
    let vey = s.bank.app(ve, vec![y]);
    let ce = s.bank.sym("cstexpr");
    let cec = s.bank.app(ce, vec![c]);
    let ev = s.bank.sym("evalE");
    let e1 = s.bank.app(ev, vec![store, env, vey]);
    let e2 = s.bank.app(ev, vec![store, env, cec]);
    let hyp3 = Formula::Eq(e1, valy);
    let hyp4 = Formula::Eq(e2, ivc);
    let u1 = s.update(store, selx, valy);
    let u2 = s.update(store, selx, ivc);
    let lsym = s.bank.sym("l");
    let lvar = s.bank.var("l");
    let s1 = s.select(u1, lvar);
    let s2 = s.select(u2, lvar);
    let goal = Formula::Forall {
        vars: vec![lsym],
        triggers: vec![s1, s2],
        body: Box::new(Formula::Eq(s1, s2)),
    };
    let out = s.prove(&ProofTask { hypotheses: vec![Formula::True, hyp1, hyp3, hyp4, hyp2], goal });
    println!("{out:?}");
}
