//! Property tests for the prover against independent oracles.
//!
//! Soundness is the property that matters most — a prover that "proves"
//! invalid obligations would silently certify unsound optimizations —
//! so every generator below builds problems whose validity is decided
//! by an oracle that shares no code with the solver: a plain union-find
//! for equality reasoning, concrete map evaluation for arrays, and
//! truth-table enumeration for propositional structure.

use cobalt_logic::{Formula, ProofTask, Solver};
use cobalt_support::prop::{any_bool, vec, Config};
use cobalt_support::{prop_assert_eq, props};

// ---------------------------------------------------------------------
// Equality closure over constants, oracle: naive union-find.
// ---------------------------------------------------------------------

fn uf_find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        x = parent[x];
    }
    x
}

props! {
    config = Config::with_cases(128);

    fn equality_reasoning_matches_union_find(
        eqs in vec((0usize..6, 0usize..6), 0..8),
        goal in (0usize..6, 0usize..6),
    ) {
        // Oracle.
        let mut parent: Vec<usize> = (0..6).collect();
        for &(a, b) in &eqs {
            let (ra, rb) = (uf_find(&mut parent, a), uf_find(&mut parent, b));
            parent[ra] = rb;
        }
        let expected = uf_find(&mut parent, goal.0) == uf_find(&mut parent, goal.1);

        // Prover.
        let mut s = Solver::new();
        let consts: Vec<_> = (0..6).map(|i| s.bank.app0(&format!("c{i}"))).collect();
        let hyps: Vec<Formula> = eqs
            .iter()
            .map(|&(a, b)| Formula::Eq(consts[a], consts[b]))
            .collect();
        let out = s.prove(&ProofTask {
            hypotheses: hyps,
            goal: Formula::Eq(consts[goal.0], consts[goal.1]),
        });
        // Completeness: implied equalities are proved. Soundness: a
        // non-implied equality has a countermodel (distinct values per
        // class) and must NOT be proved.
        prop_assert_eq!(out.is_proved(), expected);
    }

    fn congruence_is_sound(
        eqs in vec((0usize..4, 0usize..4), 0..5),
        probe in (0usize..4, 0usize..4),
    ) {
        // Oracle on f-applications: f(a) = f(b) iff a ~ b (freeness).
        let mut parent: Vec<usize> = (0..4).collect();
        for &(a, b) in &eqs {
            let (ra, rb) = (uf_find(&mut parent, a), uf_find(&mut parent, b));
            parent[ra] = rb;
        }
        let expected = uf_find(&mut parent, probe.0) == uf_find(&mut parent, probe.1);

        let mut s = Solver::new();
        let f = s.bank.sym("f");
        let consts: Vec<_> = (0..4).map(|i| s.bank.app0(&format!("c{i}"))).collect();
        let apps: Vec<_> = consts.iter().map(|&c| s.bank.app(f, vec![c])).collect();
        let hyps: Vec<Formula> = eqs
            .iter()
            .map(|&(a, b)| Formula::Eq(consts[a], consts[b]))
            .collect();
        let out = s.prove(&ProofTask {
            hypotheses: hyps,
            goal: Formula::Eq(apps[probe.0], apps[probe.1]),
        });
        // f(a) = f(b) is implied exactly when a ~ b for a free f.
        prop_assert_eq!(out.is_proved(), expected);
    }

    // -----------------------------------------------------------------
    // Arrays with concrete integer keys, oracle: a BTreeMap.
    // -----------------------------------------------------------------

    fn array_reads_match_concrete_maps(
        writes in vec((0i64..5, 0i64..100), 1..8),
        probe in 0i64..5,
        corrupt in any_bool(),
    ) {
        use std::collections::BTreeMap;
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        for &(k, v) in &writes {
            model.insert(k, v);
        }
        let Some(&expected) = model.get(&probe) else {
            // Reading an unwritten key yields the base map's value;
            // nothing to check.
            return Ok(());
        };

        let mut s = Solver::new();
        let base = s.bank.app0("m0");
        let mut m = base;
        for &(k, v) in &writes {
            let kt = s.bank.int(k);
            let vt = s.bank.int(v);
            m = s.update(m, kt, vt);
        }
        let probe_t = s.bank.int(probe);
        let read = s.select(m, probe_t);
        let claim = if corrupt { expected + 1 } else { expected };
        let claim_t = s.bank.int(claim);
        let out = s.prove(&ProofTask {
            hypotheses: vec![],
            goal: Formula::Eq(read, claim_t),
        });
        prop_assert_eq!(out.is_proved(), !corrupt);
    }

    // -----------------------------------------------------------------
    // Propositional structure, oracle: truth tables.
    // -----------------------------------------------------------------

    fn propositional_implication_matches_truth_tables(
        clauses in vec(vec((0usize..4, any_bool()), 1..3), 0..4),
        goal_atom in 0usize..4,
        goal_neg in any_bool(),
    ) {
        // Oracle: hyps ⊨ goal iff every assignment satisfying all
        // clauses satisfies the goal literal.
        let eval_lit = |assign: usize, (atom, neg): (usize, bool)| -> bool {
            let v = assign & (1 << atom) != 0;
            if neg { !v } else { v }
        };
        let mut expected = true;
        for assign in 0..16usize {
            let hyps_hold = clauses
                .iter()
                .all(|cl| cl.iter().any(|&l| eval_lit(assign, l)));
            if hyps_hold && !eval_lit(assign, (goal_atom, goal_neg)) {
                expected = false;
                break;
            }
        }

        let mut s = Solver::new();
        let atoms: Vec<_> = (0..4).map(|i| s.bank.app0(&format!("p{i}"))).collect();
        let lit = |(atom, neg): (usize, bool)| -> Formula {
            let f = Formula::Holds(atoms[atom]);
            if neg {
                f.negate()
            } else {
                f
            }
        };
        let hyps: Vec<Formula> = clauses
            .iter()
            .map(|cl| Formula::or(cl.iter().map(|&l| lit(l))))
            .collect();
        let out = s.prove(&ProofTask {
            hypotheses: hyps,
            goal: lit((goal_atom, goal_neg)),
        });
        prop_assert_eq!(out.is_proved(), expected, "clauses {:?}", clauses);
    }
}
