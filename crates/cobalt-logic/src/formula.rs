//! First-order formulas over [`crate::TermBank`] terms.
//!
//! The fragment matches what the Cobalt soundness obligations need:
//! equalities between terms, boolean predicates (terms asserted true),
//! the propositional connectives, and universal/existential quantifiers
//! with optional instantiation triggers (Simplify-style "patterns").

use crate::term::{Sym, TermBank, TermId};

/// A first-order formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// The true formula.
    True,
    /// The false formula.
    False,
    /// Term equality `t₁ = t₂`.
    Eq(TermId, TermId),
    /// A boolean predicate: the term (typically an application of a
    /// predicate symbol) holds.
    Holds(TermId),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction.
    And(Vec<Formula>),
    /// N-ary disjunction.
    Or(Vec<Formula>),
    /// Implication `p ⇒ q`.
    Implies(Box<Formula>, Box<Formula>),
    /// Biconditional `p ⇔ q`.
    Iff(Box<Formula>, Box<Formula>),
    /// Universal quantification over the named variables, with optional
    /// trigger terms guiding instantiation (every trigger variable must
    /// be among the bound variables).
    Forall {
        /// The bound variable symbols.
        vars: Vec<Sym>,
        /// Trigger patterns; empty means "instantiate by enumeration".
        triggers: Vec<TermId>,
        /// The body.
        body: Box<Formula>,
    },
    /// Existential quantification.
    Exists {
        /// The bound variable symbols.
        vars: Vec<Sym>,
        /// The body.
        body: Box<Formula>,
    },
}

impl Formula {
    /// `¬p`, simplifying double negation.
    pub fn negate(self) -> Formula {
        match self {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(p) => *p,
            p => Formula::Not(Box::new(p)),
        }
    }

    /// `p ∧ q ∧ …`, flattening and dropping `true`.
    pub fn and(parts: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(ps) => out.extend(ps),
                p => out.push(p),
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.pop().expect("len checked"),
            _ => Formula::And(out),
        }
    }

    /// `p ∨ q ∨ …`, flattening and dropping `false`.
    pub fn or(parts: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(ps) => out.extend(ps),
                p => out.push(p),
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.pop().expect("len checked"),
            _ => Formula::Or(out),
        }
    }

    /// `p ⇒ q`.
    pub fn implies(p: Formula, q: Formula) -> Formula {
        Formula::Implies(Box::new(p), Box::new(q))
    }

    /// `t₁ ≠ t₂`.
    pub fn ne(a: TermId, b: TermId) -> Formula {
        Formula::Not(Box::new(Formula::Eq(a, b)))
    }

    /// Converts to negation normal form: negations pushed to the atoms,
    /// `Implies`/`Iff` expanded.
    pub fn nnf(self) -> Formula {
        self.nnf_inner(false)
    }

    fn nnf_inner(self, negated: bool) -> Formula {
        match self {
            Formula::True => {
                if negated {
                    Formula::False
                } else {
                    Formula::True
                }
            }
            Formula::False => {
                if negated {
                    Formula::True
                } else {
                    Formula::False
                }
            }
            f @ (Formula::Eq(_, _) | Formula::Holds(_)) => {
                if negated {
                    Formula::Not(Box::new(f))
                } else {
                    f
                }
            }
            Formula::Not(p) => p.nnf_inner(!negated),
            Formula::And(ps) => {
                let parts = ps.into_iter().map(|p| p.nnf_inner(negated));
                if negated {
                    Formula::or(parts)
                } else {
                    Formula::and(parts)
                }
            }
            Formula::Or(ps) => {
                let parts = ps.into_iter().map(|p| p.nnf_inner(negated));
                if negated {
                    Formula::and(parts)
                } else {
                    Formula::or(parts)
                }
            }
            Formula::Implies(p, q) => {
                // p ⇒ q  ≡  ¬p ∨ q
                if negated {
                    Formula::and([p.nnf_inner(false), q.nnf_inner(true)])
                } else {
                    Formula::or([p.nnf_inner(true), q.nnf_inner(false)])
                }
            }
            Formula::Iff(p, q) => {
                // p ⇔ q ≡ (p ⇒ q) ∧ (q ⇒ p); ¬(p ⇔ q) ≡ (p ∧ ¬q) ∨ (q ∧ ¬p)
                let (p2, q2) = (p.clone(), q.clone());
                if negated {
                    Formula::or([
                        Formula::and([p.nnf_inner(false), q.nnf_inner(true)]),
                        Formula::and([q2.nnf_inner(false), p2.nnf_inner(true)]),
                    ])
                } else {
                    Formula::and([
                        Formula::or([p.nnf_inner(true), q.nnf_inner(false)]),
                        Formula::or([q2.nnf_inner(true), p2.nnf_inner(false)]),
                    ])
                }
            }
            Formula::Forall { vars, triggers, body } => {
                let body = Box::new(body.nnf_inner(negated));
                if negated {
                    Formula::Exists { vars, body }
                } else {
                    Formula::Forall { vars, triggers, body }
                }
            }
            Formula::Exists { vars, body } => {
                let body = Box::new(body.nnf_inner(negated));
                if negated {
                    Formula::Forall {
                        vars,
                        triggers: Vec::new(),
                        body,
                    }
                } else {
                    Formula::Exists { vars, body }
                }
            }
        }
    }

    /// Substitutes terms for free variables throughout the formula.
    ///
    /// Bound variables shadow the substitution. The map is a small
    /// slice, not a hash table: bindings come from quantifier prefixes
    /// of a handful of variables, where a linear scan is both faster
    /// and allocation-free for the hot instantiation path.
    pub fn subst(&self, bank: &mut TermBank, map: &[(Sym, TermId)]) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Eq(a, b) => Formula::Eq(bank.subst(*a, map), bank.subst(*b, map)),
            Formula::Holds(t) => Formula::Holds(bank.subst(*t, map)),
            Formula::Not(p) => Formula::Not(Box::new(p.subst(bank, map))),
            Formula::And(ps) => Formula::And(ps.iter().map(|p| p.subst(bank, map)).collect()),
            Formula::Or(ps) => Formula::Or(ps.iter().map(|p| p.subst(bank, map)).collect()),
            Formula::Implies(p, q) => {
                Formula::Implies(Box::new(p.subst(bank, map)), Box::new(q.subst(bank, map)))
            }
            Formula::Iff(p, q) => {
                Formula::Iff(Box::new(p.subst(bank, map)), Box::new(q.subst(bank, map)))
            }
            Formula::Forall { vars, triggers, body } => {
                let inner: Vec<(Sym, TermId)> = map
                    .iter()
                    .copied()
                    .filter(|(s, _)| !vars.contains(s))
                    .collect();
                Formula::Forall {
                    vars: vars.clone(),
                    triggers: triggers
                        .iter()
                        .map(|&t| bank.subst(t, &inner))
                        .collect(),
                    body: Box::new(body.subst(bank, &inner)),
                }
            }
            Formula::Exists { vars, body } => {
                let inner: Vec<(Sym, TermId)> = map
                    .iter()
                    .copied()
                    .filter(|(s, _)| !vars.contains(s))
                    .collect();
                Formula::Exists {
                    vars: vars.clone(),
                    body: Box::new(body.subst(bank, &inner)),
                }
            }
        }
    }

    /// Renders the formula for diagnostics.
    pub fn display(&self, bank: &TermBank) -> String {
        match self {
            Formula::True => "true".into(),
            Formula::False => "false".into(),
            Formula::Eq(a, b) => format!("(= {} {})", bank.display(*a), bank.display(*b)),
            Formula::Holds(t) => bank.display(*t),
            Formula::Not(p) => format!("(not {})", p.display(bank)),
            Formula::And(ps) => {
                let parts: Vec<_> = ps.iter().map(|p| p.display(bank)).collect();
                format!("(and {})", parts.join(" "))
            }
            Formula::Or(ps) => {
                let parts: Vec<_> = ps.iter().map(|p| p.display(bank)).collect();
                format!("(or {})", parts.join(" "))
            }
            Formula::Implies(p, q) => {
                format!("(=> {} {})", p.display(bank), q.display(bank))
            }
            Formula::Iff(p, q) => format!("(iff {} {})", p.display(bank), q.display(bank)),
            Formula::Forall { vars, body, .. } => {
                let names: Vec<_> = vars.iter().map(|&v| bank.sym_name(v).to_string()).collect();
                format!("(forall ({}) {})", names.join(" "), body.display(bank))
            }
            Formula::Exists { vars, body } => {
                let names: Vec<_> = vars.iter().map(|&v| bank.sym_name(v).to_string()).collect();
                format!("(exists ({}) {})", names.join(" "), body.display(bank))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_or_simplification() {
        assert_eq!(Formula::and([]), Formula::True);
        assert_eq!(Formula::or([]), Formula::False);
        assert_eq!(Formula::and([Formula::True, Formula::True]), Formula::True);
        assert_eq!(Formula::and([Formula::False]), Formula::False);
        assert_eq!(
            Formula::or([Formula::False, Formula::True]),
            Formula::True
        );
    }

    #[test]
    fn nnf_pushes_negations() {
        let mut b = TermBank::new();
        let x = b.app0("x");
        let y = b.app0("y");
        let f = Formula::implies(Formula::Eq(x, y), Formula::Holds(x)).negate();
        let nnf = f.nnf();
        // ¬(x=y ⇒ P) ≡ x=y ∧ ¬P
        assert_eq!(
            nnf,
            Formula::And(vec![
                Formula::Eq(x, y),
                Formula::Not(Box::new(Formula::Holds(x)))
            ])
        );
    }

    #[test]
    fn nnf_of_negated_forall_is_exists() {
        let mut b = TermBank::new();
        let v = b.sym("V");
        let x = b.var("V");
        let f = Formula::Forall {
            vars: vec![v],
            triggers: vec![],
            body: Box::new(Formula::Holds(x)),
        }
        .negate()
        .nnf();
        match f {
            Formula::Exists { vars, body } => {
                assert_eq!(vars, vec![v]);
                assert_eq!(*body, Formula::Not(Box::new(Formula::Holds(x))));
            }
            other => panic!("expected exists, got {other:?}"),
        }
    }

    #[test]
    fn nnf_iff_expansion() {
        let mut b = TermBank::new();
        let x = b.app0("x");
        let f = Formula::Iff(
            Box::new(Formula::Holds(x)),
            Box::new(Formula::True),
        )
        .nnf();
        // (P ⇔ true) simplifies all the way to P.
        assert_eq!(f.display(&b), "x");
    }

    #[test]
    fn subst_respects_shadowing() {
        let mut b = TermBank::new();
        let vsym = b.sym("V");
        let v = b.var("V");
        let a = b.app0("a");
        let map = vec![(vsym, a)];
        let open = Formula::Holds(v);
        assert_eq!(open.subst(&mut b, &map), Formula::Holds(a));
        let closed = Formula::Forall {
            vars: vec![vsym],
            triggers: vec![],
            body: Box::new(Formula::Holds(v)),
        };
        assert_eq!(closed.subst(&mut b, &map), closed);
    }

    #[test]
    fn display_roundtrips_structure() {
        let mut b = TermBank::new();
        let x = b.app0("x");
        let y = b.app0("y");
        let f = Formula::and([Formula::Eq(x, y), Formula::ne(x, y)]);
        assert_eq!(f.display(&b), "(and (= x y) (not (= x y)))");
    }
}
