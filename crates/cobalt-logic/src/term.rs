//! Hash-consed first-order terms.
//!
//! All terms live in a [`TermBank`], which interns structurally equal
//! terms to the same [`TermId`]. Function symbols are interned strings;
//! a symbol may be declared a *constructor*, in which case the solver
//! treats distinct constructors as disjoint and every constructor as
//! injective (the free-datatype theory used to model IL statements,
//! expressions, and values).
//!
//! # Layered banks
//!
//! A bank may sit on top of a frozen **base** ([`TermBank::freeze`] /
//! [`TermBank::with_base`]): lookups fall through to the base, new
//! interning lands in the overlay, and ids number continuously past the
//! base. This is how a batch of proof obligations shares one interned
//! vocabulary: the batch's encoding is frozen once, and each obligation
//! gets a cheap private overlay for search-time terms (skolems,
//! instantiation results), so parallel workers never contend on — or
//! mutate — shared state.

use cobalt_support::{FastMap, FastSet};
use std::fmt;
use std::sync::Arc;

/// An interned function or variable symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }
}

/// An interned term; indexes into its [`TermBank`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub(crate) u32);

impl TermId {
    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }
}

/// The structure of a term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermData {
    /// A function application `f(t₁, …, tₙ)`; constants are nullary.
    App(Sym, Vec<TermId>),
    /// An integer literal. Distinct literals are distinct values.
    Int(i64),
    /// A free variable, used in quantified formulas and trigger
    /// patterns. Variables never appear in ground assertions.
    Var(Sym),
}

/// The arena of interned symbols and terms.
///
/// # Examples
///
/// ```
/// use cobalt_logic::TermBank;
/// let mut bank = TermBank::new();
/// let f = bank.sym("f");
/// let a = bank.app0("a");
/// let fa1 = bank.app(f, vec![a]);
/// let fa2 = bank.app(f, vec![a]);
/// assert_eq!(fa1, fa2); // hash-consed
/// ```
#[derive(Debug, Clone, Default)]
pub struct TermBank {
    /// Frozen lower layer, if this bank is an overlay. At most one
    /// level deep: a base is never itself an overlay.
    base: Option<Arc<TermBank>>,
    sym_names: Vec<String>,
    sym_memo: FastMap<String, Sym>,
    terms: Vec<TermData>,
    term_memo: FastMap<TermData, TermId>,
    constructors: Vec<bool>,
    /// `has_var`, precomputed at intern time (arguments are always
    /// interned first, so one lookup per argument suffices).
    var_flags: Vec<bool>,
    /// Base symbols promoted to constructors by this overlay. Rare:
    /// encoding interns constructor symbols up front, so overlays
    /// normally only add fresh ones.
    ctor_promotions: FastSet<Sym>,
}

impl TermBank {
    /// Creates an empty bank.
    pub fn new() -> Self {
        TermBank::default()
    }

    /// Freezes this bank into a shareable base layer.
    ///
    /// # Panics
    ///
    /// Panics if this bank is itself an overlay (bases are one level).
    pub fn freeze(self) -> Arc<TermBank> {
        assert!(self.base.is_none(), "cannot freeze an overlay bank");
        Arc::new(self)
    }

    /// Creates an empty overlay on top of a frozen base: every base
    /// symbol and term is visible, and new interning is private to the
    /// overlay.
    pub fn with_base(base: Arc<TermBank>) -> Self {
        assert!(base.base.is_none(), "bank bases do not nest");
        TermBank {
            base: Some(base),
            ..TermBank::default()
        }
    }

    fn base_syms(&self) -> usize {
        self.base.as_ref().map_or(0, |b| b.sym_names.len())
    }

    fn base_terms(&self) -> usize {
        self.base.as_ref().map_or(0, |b| b.terms.len())
    }

    /// Interns a symbol name.
    pub fn sym(&mut self, name: &str) -> Sym {
        if let Some(s) = self.find_sym(name) {
            return s;
        }
        let s = Sym((self.base_syms() + self.sym_names.len()) as u32);
        self.sym_names.push(name.to_string());
        self.sym_memo.insert(name.to_string(), s);
        self.constructors.push(false);
        s
    }

    /// Looks a symbol up by name without interning it.
    pub fn find_sym(&self, name: &str) -> Option<Sym> {
        if let Some(b) = &self.base {
            if let Some(&s) = b.sym_memo.get(name) {
                return Some(s);
            }
        }
        self.sym_memo.get(name).copied()
    }

    /// Interns a symbol and marks it as a constructor: the solver treats
    /// applications of distinct constructors as never equal, and every
    /// constructor as injective.
    pub fn constructor(&mut self, name: &str) -> Sym {
        let s = self.sym(name);
        let bs = self.base_syms();
        if s.idx() < bs {
            if !self.base.as_ref().expect("base symbol implies base").constructors[s.idx()] {
                self.ctor_promotions.insert(s);
            }
        } else {
            self.constructors[s.idx() - bs] = true;
        }
        s
    }

    /// Whether `s` was declared a constructor.
    pub fn is_constructor(&self, s: Sym) -> bool {
        let bs = self.base_syms();
        if s.idx() < bs {
            self.base.as_ref().expect("base symbol implies base").constructors[s.idx()]
                || (!self.ctor_promotions.is_empty() && self.ctor_promotions.contains(&s))
        } else {
            self.constructors[s.idx() - bs]
        }
    }

    /// The name of a symbol.
    pub fn sym_name(&self, s: Sym) -> &str {
        let bs = self.base_syms();
        if s.idx() < bs {
            &self.base.as_ref().expect("base symbol implies base").sym_names[s.idx()]
        } else {
            &self.sym_names[s.idx() - bs]
        }
    }

    fn intern(&mut self, data: TermData) -> TermId {
        if let Some(b) = &self.base {
            if let Some(&t) = b.term_memo.get(&data) {
                return t;
            }
        }
        if let Some(&t) = self.term_memo.get(&data) {
            return t;
        }
        let hv = match &data {
            TermData::Var(_) => true,
            TermData::Int(_) => false,
            TermData::App(_, args) => args.iter().any(|&a| self.has_var(a)),
        };
        let t = TermId((self.base_terms() + self.terms.len()) as u32);
        self.terms.push(data.clone());
        self.var_flags.push(hv);
        self.term_memo.insert(data, t);
        t
    }

    /// Interns a function application.
    pub fn app(&mut self, f: Sym, args: Vec<TermId>) -> TermId {
        self.intern(TermData::App(f, args))
    }

    /// Interns a nullary application (a constant) by name.
    pub fn app0(&mut self, name: &str) -> TermId {
        let f = self.sym(name);
        self.app(f, Vec::new())
    }

    /// Interns an integer literal.
    pub fn int(&mut self, n: i64) -> TermId {
        self.intern(TermData::Int(n))
    }

    /// Interns a free variable by name.
    pub fn var(&mut self, name: &str) -> TermId {
        let s = self.sym(name);
        self.intern(TermData::Var(s))
    }

    /// The structure of a term.
    pub fn data(&self, t: TermId) -> &TermData {
        let bt = self.base_terms();
        if t.idx() < bt {
            &self.base.as_ref().expect("base term implies base").terms[t.idx()]
        } else {
            &self.terms[t.idx() - bt]
        }
    }

    /// Number of interned terms (including any base layer's).
    pub fn len(&self) -> usize {
        self.base_terms() + self.terms.len()
    }

    /// Whether the bank contains no terms.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `t` contains any [`TermData::Var`] leaf. O(1): the flag
    /// is computed once when the term is interned.
    pub fn has_var(&self, t: TermId) -> bool {
        let bt = self.base_terms();
        if t.idx() < bt {
            self.base.as_ref().expect("base term implies base").var_flags[t.idx()]
        } else {
            self.var_flags[t.idx() - bt]
        }
    }

    /// Capture-free substitution of variables by terms.
    pub fn subst(&mut self, t: TermId, map: &[(Sym, TermId)]) -> TermId {
        if !self.has_var(t) {
            return t;
        }
        match self.data(t).clone() {
            TermData::Var(v) => map
                .iter()
                .find(|&&(s, _)| s == v)
                .map_or(t, |&(_, r)| r),
            TermData::Int(_) => t,
            TermData::App(f, args) => {
                let new_args: Vec<TermId> = args.iter().map(|&a| self.subst(a, map)).collect();
                if new_args == args {
                    t
                } else {
                    self.app(f, new_args)
                }
            }
        }
    }

    /// Renders a term as an S-expression, for diagnostics.
    pub fn display(&self, t: TermId) -> String {
        let mut out = String::new();
        self.write_term(t, &mut out);
        out
    }

    fn write_term(&self, t: TermId, out: &mut String) {
        use fmt::Write as _;
        match self.data(t) {
            TermData::Int(n) => {
                let _ = write!(out, "{n}");
            }
            TermData::Var(v) => {
                let _ = write!(out, "?{}", self.sym_name(*v));
            }
            TermData::App(f, args) => {
                if args.is_empty() {
                    let _ = write!(out, "{}", self.sym_name(*f));
                } else {
                    let _ = write!(out, "({}", self.sym_name(*f));
                    for &a in args {
                        out.push(' ');
                        self.write_term(a, out);
                    }
                    out.push(')');
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedupes() {
        let mut b = TermBank::new();
        let f = b.sym("f");
        let x = b.app0("x");
        let y = b.app0("y");
        let t1 = b.app(f, vec![x, y]);
        let t2 = b.app(f, vec![x, y]);
        let t3 = b.app(f, vec![y, x]);
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
        assert_eq!(b.int(5), b.int(5));
        assert_ne!(b.int(5), b.int(6));
    }

    #[test]
    fn constructor_flag() {
        let mut b = TermBank::new();
        let c = b.constructor("cons");
        let f = b.sym("f");
        assert!(b.is_constructor(c));
        assert!(!b.is_constructor(f));
        // Re-interning the same name preserves identity.
        assert_eq!(b.sym("cons"), c);
    }

    #[test]
    fn substitution() {
        let mut b = TermBank::new();
        let f = b.sym("f");
        let v = b.var("X");
        let a = b.app0("a");
        let t = b.app(f, vec![v, a]);
        let vsym = b.sym("X");
        let map = vec![(vsym, a)];
        let t2 = b.subst(t, &map);
        assert_eq!(b.display(t2), "(f a a)");
        // Substituting a variable not in the map is the identity.
        let w = b.var("Y");
        assert_eq!(b.subst(w, &map), w);
    }

    #[test]
    fn has_var_detection() {
        let mut b = TermBank::new();
        let f = b.sym("f");
        let v = b.var("X");
        let a = b.app0("a");
        let t = b.app(f, vec![a, v]);
        let g = b.app(f, vec![a, a]);
        assert!(b.has_var(t));
        assert!(!b.has_var(g));
    }

    #[test]
    fn display_forms() {
        let mut b = TermBank::new();
        let sel = b.sym("select");
        let m = b.app0("m");
        let k = b.int(3);
        let t = b.app(sel, vec![m, k]);
        assert_eq!(b.display(t), "(select m 3)");
    }

    #[test]
    fn overlay_sees_base_and_extends_it() {
        let mut base = TermBank::new();
        let f = base.sym("f");
        let a = base.app0("a");
        let fa = base.app(f, vec![a]);
        let n_terms = base.len();
        let frozen = base.freeze();

        let mut o1 = TermBank::with_base(frozen.clone());
        let mut o2 = TermBank::with_base(frozen);
        // Base lookups return base ids, no new interning.
        assert_eq!(o1.sym("f"), f);
        assert_eq!(o1.app0("a"), a);
        assert_eq!(o1.app(f, vec![a]), fa);
        assert_eq!(o1.len(), n_terms);
        // Fresh terms number past the base and stay private.
        let b1 = o1.app0("fresh");
        let b2 = o2.app0("other");
        assert_eq!(b1.idx(), n_terms);
        assert_eq!(b2.idx(), n_terms);
        assert_eq!(o1.display(b1), "fresh");
        assert_eq!(o2.display(b2), "other");
        // Structural operations cross the layer boundary.
        let fb = o1.app(f, vec![b1]);
        assert_eq!(o1.display(fb), "(f fresh)");
        assert!(!o1.has_var(fb));
        let v = o1.var("X");
        let fv = o1.app(f, vec![v]);
        assert!(o1.has_var(fv));
    }

    #[test]
    fn overlay_constructor_promotion() {
        let mut base = TermBank::new();
        let c = base.constructor("ctor");
        let plain = base.sym("plain");
        let frozen = base.freeze();
        let mut o = TermBank::with_base(frozen);
        assert!(o.is_constructor(c));
        assert!(!o.is_constructor(plain));
        // Promoting a base symbol in the overlay is overlay-local.
        assert_eq!(o.constructor("plain"), plain);
        assert!(o.is_constructor(plain));
        // Fresh overlay constructors work as usual.
        let fresh = o.constructor("fresh_ctor");
        assert!(o.is_constructor(fresh));
        let fresh_plain = o.sym("fresh_plain");
        assert!(!o.is_constructor(fresh_plain));
    }
}
