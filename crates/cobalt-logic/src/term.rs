//! Hash-consed first-order terms.
//!
//! All terms live in a [`TermBank`], which interns structurally equal
//! terms to the same [`TermId`]. Function symbols are interned strings;
//! a symbol may be declared a *constructor*, in which case the solver
//! treats distinct constructors as disjoint and every constructor as
//! injective (the free-datatype theory used to model IL statements,
//! expressions, and values).

use std::collections::HashMap;
use std::fmt;

/// An interned function or variable symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

/// An interned term; indexes into its [`TermBank`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub(crate) u32);

impl TermId {
    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }
}

/// The structure of a term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermData {
    /// A function application `f(t₁, …, tₙ)`; constants are nullary.
    App(Sym, Vec<TermId>),
    /// An integer literal. Distinct literals are distinct values.
    Int(i64),
    /// A free variable, used in quantified formulas and trigger
    /// patterns. Variables never appear in ground assertions.
    Var(Sym),
}

/// The arena of interned symbols and terms.
///
/// # Examples
///
/// ```
/// use cobalt_logic::TermBank;
/// let mut bank = TermBank::new();
/// let f = bank.sym("f");
/// let a = bank.app0("a");
/// let fa1 = bank.app(f, vec![a]);
/// let fa2 = bank.app(f, vec![a]);
/// assert_eq!(fa1, fa2); // hash-consed
/// ```
#[derive(Debug, Clone, Default)]
pub struct TermBank {
    sym_names: Vec<String>,
    sym_memo: HashMap<String, Sym>,
    terms: Vec<TermData>,
    term_memo: HashMap<TermData, TermId>,
    constructors: Vec<bool>,
}

impl TermBank {
    /// Creates an empty bank.
    pub fn new() -> Self {
        TermBank::default()
    }

    /// Interns a symbol name.
    pub fn sym(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.sym_memo.get(name) {
            return s;
        }
        let s = Sym(self.sym_names.len() as u32);
        self.sym_names.push(name.to_string());
        self.sym_memo.insert(name.to_string(), s);
        self.constructors.push(false);
        s
    }

    /// Interns a symbol and marks it as a constructor: the solver treats
    /// applications of distinct constructors as never equal, and every
    /// constructor as injective.
    pub fn constructor(&mut self, name: &str) -> Sym {
        let s = self.sym(name);
        self.constructors[s.0 as usize] = true;
        s
    }

    /// Whether `s` was declared a constructor.
    pub fn is_constructor(&self, s: Sym) -> bool {
        self.constructors[s.0 as usize]
    }

    /// The name of a symbol.
    pub fn sym_name(&self, s: Sym) -> &str {
        &self.sym_names[s.0 as usize]
    }

    fn intern(&mut self, data: TermData) -> TermId {
        if let Some(&t) = self.term_memo.get(&data) {
            return t;
        }
        let t = TermId(self.terms.len() as u32);
        self.terms.push(data.clone());
        self.term_memo.insert(data, t);
        t
    }

    /// Interns a function application.
    pub fn app(&mut self, f: Sym, args: Vec<TermId>) -> TermId {
        self.intern(TermData::App(f, args))
    }

    /// Interns a nullary application (a constant) by name.
    pub fn app0(&mut self, name: &str) -> TermId {
        let f = self.sym(name);
        self.app(f, Vec::new())
    }

    /// Interns an integer literal.
    pub fn int(&mut self, n: i64) -> TermId {
        self.intern(TermData::Int(n))
    }

    /// Interns a free variable by name.
    pub fn var(&mut self, name: &str) -> TermId {
        let s = self.sym(name);
        self.intern(TermData::Var(s))
    }

    /// The structure of a term.
    pub fn data(&self, t: TermId) -> &TermData {
        &self.terms[t.idx()]
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the bank contains no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Whether `t` contains any [`TermData::Var`] leaf.
    pub fn has_var(&self, t: TermId) -> bool {
        match self.data(t) {
            TermData::Var(_) => true,
            TermData::Int(_) => false,
            TermData::App(_, args) => {
                let args = args.clone();
                args.iter().any(|&a| self.has_var(a))
            }
        }
    }

    /// Capture-free substitution of variables by terms.
    pub fn subst(&mut self, t: TermId, map: &HashMap<Sym, TermId>) -> TermId {
        match self.data(t).clone() {
            TermData::Var(v) => map.get(&v).copied().unwrap_or(t),
            TermData::Int(_) => t,
            TermData::App(f, args) => {
                let new_args: Vec<TermId> = args.iter().map(|&a| self.subst(a, map)).collect();
                if new_args == args {
                    t
                } else {
                    self.app(f, new_args)
                }
            }
        }
    }

    /// Renders a term as an S-expression, for diagnostics.
    pub fn display(&self, t: TermId) -> String {
        let mut out = String::new();
        self.write_term(t, &mut out);
        out
    }

    fn write_term(&self, t: TermId, out: &mut String) {
        use fmt::Write as _;
        match self.data(t) {
            TermData::Int(n) => {
                let _ = write!(out, "{n}");
            }
            TermData::Var(v) => {
                let _ = write!(out, "?{}", self.sym_name(*v));
            }
            TermData::App(f, args) => {
                if args.is_empty() {
                    let _ = write!(out, "{}", self.sym_name(*f));
                } else {
                    let _ = write!(out, "({}", self.sym_name(*f));
                    for &a in args.clone().iter() {
                        out.push(' ');
                        self.write_term(a, out);
                    }
                    out.push(')');
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedupes() {
        let mut b = TermBank::new();
        let f = b.sym("f");
        let x = b.app0("x");
        let y = b.app0("y");
        let t1 = b.app(f, vec![x, y]);
        let t2 = b.app(f, vec![x, y]);
        let t3 = b.app(f, vec![y, x]);
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
        assert_eq!(b.int(5), b.int(5));
        assert_ne!(b.int(5), b.int(6));
    }

    #[test]
    fn constructor_flag() {
        let mut b = TermBank::new();
        let c = b.constructor("cons");
        let f = b.sym("f");
        assert!(b.is_constructor(c));
        assert!(!b.is_constructor(f));
        // Re-interning the same name preserves identity.
        assert_eq!(b.sym("cons"), c);
    }

    #[test]
    fn substitution() {
        let mut b = TermBank::new();
        let f = b.sym("f");
        let v = b.var("X");
        let a = b.app0("a");
        let t = b.app(f, vec![v, a]);
        let vsym = b.sym("X");
        let mut map = HashMap::new();
        map.insert(vsym, a);
        let t2 = b.subst(t, &map);
        assert_eq!(b.display(t2), "(f a a)");
        // Substituting a variable not in the map is the identity.
        let w = b.var("Y");
        assert_eq!(b.subst(w, &map), w);
    }

    #[test]
    fn has_var_detection() {
        let mut b = TermBank::new();
        let f = b.sym("f");
        let v = b.var("X");
        let a = b.app0("a");
        let t = b.app(f, vec![a, v]);
        let g = b.app(f, vec![a, a]);
        assert!(b.has_var(t));
        assert!(!b.has_var(g));
    }

    #[test]
    fn display_forms() {
        let mut b = TermBank::new();
        let sel = b.sym("select");
        let m = b.app0("m");
        let k = b.int(3);
        let t = b.app(sel, vec![m, k]);
        assert_eq!(b.display(t), "(select m 3)");
    }
}
