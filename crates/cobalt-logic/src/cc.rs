//! Congruence closure over hash-consed terms, with disequalities and a
//! free-constructor theory.
//!
//! This is the ground decision core of the prover: a union-find over
//! [`TermId`]s with congruence propagation (Nelson–Oppen style use
//! lists), plus:
//!
//! * **disequality tracking** — asserting `a ≠ b` and later deriving
//!   `a = b` is a conflict;
//! * **constructors** — applications of distinct constructor symbols are
//!   never equal; merging two applications of the *same* constructor
//!   merges their arguments (injectivity); distinct integer literals are
//!   distinct values.

use crate::term::{Sym, TermBank, TermData, TermId};
use cobalt_support::FastMap;

/// A congruence signature: a function symbol applied to the class
/// representatives of its arguments. Two applications with the same
/// signature are equal by congruence. Inline for the common arities so
/// that registration — which re-derives signatures on every split
/// alternative after a rewind — does not allocate per application.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum SigKey {
    K1(Sym, TermId),
    K2(Sym, TermId, TermId),
    K3(Sym, TermId, TermId, TermId),
    KN(Sym, Vec<TermId>),
}

/// One reversible mutation, recorded while at least one savepoint is
/// outstanding and replayed in reverse by [`Cc::restore`].
#[derive(Debug, Clone)]
enum TrailOp {
    /// A term was registered (undo: clear its membership flag; the
    /// use-list/signature/constructor entries it created are trailed
    /// individually).
    Registered(TermId),
    /// `parent[t]` was overwritten; the old value.
    Parent(TermId, TermId),
    /// `size[t]` was overwritten; the old value.
    Size(TermId, u32),
    /// A signature was inserted (signatures are never overwritten).
    SigInsert(SigKey),
    /// `moved` use-list entries went from `from`'s tail onto `to`'s.
    UseMove {
        from: TermId,
        to: TermId,
        moved: usize,
    },
    /// A term was pushed onto `root`'s use list.
    UseListPush(TermId),
    /// A disequality was watched under both its endpoint roots.
    DiseqPush(TermId, TermId),
    /// `moved` diseq-watch entries went from `from`'s tail onto `to`'s.
    DiseqMove {
        from: TermId,
        to: TermId,
        moved: usize,
    },
    /// A constructor witness was recorded for a previously witness-free
    /// class (witnesses are never overwritten).
    CtorInsert(TermId),
    /// The conflict flag was set (it was `None` before: merges stop at
    /// the first conflict).
    Conflict,
}

/// A congruence-closure context.
///
/// Cloning a `Cc` is how a caller forks independent equivalence
/// classes over the shared (append-only) [`TermBank`]. The solver's
/// tableau search instead uses the cheaper [`save`](Cc::save) /
/// [`restore`](Cc::restore) undo trail: a savepoint marks the trail,
/// every subsequent mutation is recorded, and `restore` rewinds to the
/// mark — so case splits reuse one context instead of re-closing (or
/// deep-cloning) per branch.
#[derive(Debug, Clone, Default)]
pub struct Cc {
    parent: Vec<TermId>,
    size: Vec<u32>,
    /// Terms whose use lists, signatures, and constructor witnesses
    /// have been built. Registration is *demand-driven* (see
    /// [`register`](Cc::register)): a caller working over a large
    /// shared bank registers only the terms its problem mentions, so
    /// the cost of closure tracks the problem, not the bank.
    registered: Vec<bool>,
    use_list: FastMap<TermId, Vec<TermId>>,
    sig: FastMap<SigKey, TermId>,
    /// Asserted disequalities, watched under the *current root* of each
    /// endpoint (so every disequality appears in exactly two lists —
    /// or one, with multiplicity, if the roots later coincide in a
    /// conflict). Unions re-home the dying root's watch list, so both
    /// violation checking in [`merge`](Cc::merge) and the
    /// [`are_diseq`](Cc::are_diseq) query touch only the disequalities
    /// incident to the classes involved, never the whole set.
    diseq_watch: FastMap<TermId, Vec<(TermId, TermId)>>,
    /// Per-class witness that the class contains a constructor
    /// application or integer literal, keyed by representative.
    ctor: FastMap<TermId, TermId>,
    conflict: Option<String>,
    /// Bumped on every observable state change (registration, union,
    /// disequality, rewind). Callers memoize derived results — e.g.
    /// a theory-propagation pass that came up empty — keyed on this:
    /// same version, same answers. Rewinds bump it too, so a restored
    /// state never aliases the version of the state it replaced.
    version: u64,
    trail: Vec<TrailOp>,
    saves: Vec<usize>,
}

impl Cc {
    /// Creates an empty context.
    pub fn new() -> Self {
        Cc::default()
    }

    /// Whether any savepoint is outstanding (mutations are trailed and
    /// path compression is suspended: compressing across an undone
    /// merge would corrupt restored classes).
    fn trailing(&self) -> bool {
        !self.saves.is_empty()
    }

    /// Marks a savepoint. Every mutation until the matching
    /// [`restore`](Cc::restore) is recorded on the undo trail.
    /// Savepoints nest.
    pub fn save(&mut self) {
        self.saves.push(self.trail.len());
    }

    /// Rewinds to the most recent savepoint, undoing every mutation
    /// (merges, registrations, disequalities, a derived conflict) since.
    ///
    /// # Panics
    ///
    /// Panics if no savepoint is outstanding.
    pub fn restore(&mut self) {
        let mark = self.saves.pop().expect("restore without a matching save");
        self.version += 1;
        while self.trail.len() > mark {
            match self.trail.pop().expect("len checked") {
                TrailOp::Registered(t) => {
                    self.registered[t.idx()] = false;
                }
                TrailOp::Parent(t, old) => self.parent[t.idx()] = old,
                TrailOp::Size(t, old) => self.size[t.idx()] = old,
                TrailOp::SigInsert(key) => {
                    self.sig.remove(&key);
                }
                TrailOp::UseMove { from, to, moved } => {
                    if moved > 0 {
                        let dst = self
                            .use_list
                            .get_mut(&to)
                            .expect("use-move target list present");
                        let tail = dst.split_off(dst.len() - moved);
                        self.use_list.insert(from, tail);
                    }
                }
                TrailOp::UseListPush(root) => {
                    self.use_list
                        .get_mut(&root)
                        .expect("pushed use list present")
                        .pop();
                }
                TrailOp::CtorInsert(t) => {
                    self.ctor.remove(&t);
                }
                TrailOp::DiseqPush(ra, rb) => {
                    self.diseq_watch
                        .get_mut(&ra)
                        .expect("watched diseq list present")
                        .pop();
                    self.diseq_watch
                        .get_mut(&rb)
                        .expect("watched diseq list present")
                        .pop();
                }
                TrailOp::DiseqMove { from, to, moved } => {
                    if moved > 0 {
                        let dst = self
                            .diseq_watch
                            .get_mut(&to)
                            .expect("diseq-move target list present");
                        let tail = dst.split_off(dst.len() - moved);
                        self.diseq_watch.insert(from, tail);
                    }
                }
                TrailOp::Conflict => self.conflict = None,
            }
        }
    }

    /// Pops every outstanding savepoint, rewinding to the state before
    /// the first [`save`](Cc::save). Convenient when a search unwinds
    /// through several nested splits at once.
    pub fn restore_all(&mut self) {
        while self.trailing() {
            self.restore();
        }
    }

    /// The state-change counter (see the `version` field): any two
    /// observably different states of this context report different
    /// versions, so equal versions mean cached query results are still
    /// valid.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether a contradiction has been derived.
    pub fn in_conflict(&self) -> bool {
        self.conflict.is_some()
    }

    /// Description of the contradiction, if any.
    pub fn conflict(&self) -> Option<&str> {
        self.conflict.as_deref()
    }

    /// Grows the union-find arrays to cover every bank term, with fresh
    /// terms as their own (singleton) classes. Idempotent and never
    /// trailed: identity *is* the virgin state, so stale capacity left
    /// behind by a rewind is harmless.
    ///
    /// Must be called after any batch of term creation and before
    /// registering or merging the new terms.
    pub fn ensure(&mut self, bank: &TermBank) {
        let n = bank.len();
        if self.parent.len() < n {
            self.parent.extend((self.parent.len()..n).map(|i| TermId(i as u32)));
            self.size.resize(n, 1);
            self.registered.resize(n, false);
        }
    }

    /// Registers `t` and (recursively) its subterms: builds their use
    /// lists, signatures, and constructor witnesses, propagating any
    /// congruences that fall out.
    ///
    /// Registration is demand-driven so that closure over a large
    /// shared bank costs only the terms the caller actually mentions;
    /// unregistered terms still answer [`find`](Cc::find) queries as
    /// their own singleton classes. Congruence closure is conservative
    /// — extra terms never add equalities among existing ones — so the
    /// equivalence relation over the registered set is the same as if
    /// the whole bank had been registered.
    ///
    /// Call [`ensure`](Cc::ensure) first after minting new terms.
    pub fn register(&mut self, t: TermId, bank: &TermBank) {
        if self.registered[t.idx()] {
            return;
        }
        self.version += 1;
        self.registered[t.idx()] = true;
        if self.trailing() {
            self.trail.push(TrailOp::Registered(t));
        }
        match bank.data(t) {
            TermData::App(f, args) => {
                let f = *f;
                for &a in args {
                    self.register(a, bank);
                }
                for &a in args {
                    let ra = self.find(a);
                    self.use_list.entry(ra).or_default().push(t);
                    if self.trailing() {
                        self.trail.push(TrailOp::UseListPush(ra));
                    }
                }
                if bank.is_constructor(f) {
                    self.ctor.insert(t, t);
                    if self.trailing() {
                        self.trail.push(TrailOp::CtorInsert(t));
                    }
                }
                let key = self.sig_key(f, args);
                if let Some(&q) = self.sig.get(&key) {
                    self.merge(t, q, bank);
                } else {
                    if self.trailing() {
                        self.trail.push(TrailOp::SigInsert(key.clone()));
                    }
                    self.sig.insert(key, t);
                }
            }
            TermData::Int(_) => {
                self.ctor.insert(t, t);
                if self.trailing() {
                    self.trail.push(TrailOp::CtorInsert(t));
                }
            }
            TermData::Var(_) => {}
        }
    }

    /// Registers every bank term, propagating congruences that involve
    /// them. Convenience for callers whose problem spans the whole
    /// bank; the solver instead registers its relevant set on demand.
    pub fn sync(&mut self, bank: &TermBank) {
        self.ensure(bank);
        for i in 0..bank.len() {
            self.register(TermId(i as u32), bank);
        }
    }

    /// The congruence signature of `f` applied to `args`, with each
    /// argument resolved to its current class representative.
    fn sig_key(&mut self, f: Sym, args: &[TermId]) -> SigKey {
        match *args {
            [a] => SigKey::K1(f, self.find(a)),
            [a, b] => SigKey::K2(f, self.find(a), self.find(b)),
            [a, b, c] => SigKey::K3(f, self.find(a), self.find(b), self.find(c)),
            _ => SigKey::KN(f, args.iter().map(|&t| self.find(t)).collect()),
        }
    }

    /// The class representative of `t`, with path compression (skipped
    /// while a savepoint is outstanding — compressed pointers must not
    /// outlive the merges they shortcut).
    pub fn find(&mut self, t: TermId) -> TermId {
        // Terms minted since the last `ensure` are necessarily unmerged:
        // their class is the identity.
        if t.idx() >= self.parent.len() {
            return t;
        }
        let mut root = t;
        while self.parent[root.idx()] != root {
            root = self.parent[root.idx()];
        }
        if self.saves.is_empty() {
            let mut cur = t;
            while self.parent[cur.idx()] != root {
                let next = self.parent[cur.idx()];
                self.parent[cur.idx()] = root;
                cur = next;
            }
        }
        root
    }

    /// Whether `a` and `b` are known equal.
    pub fn are_eq(&mut self, a: TermId, b: TermId) -> bool {
        self.find(a) == self.find(b)
    }

    /// Whether `a ≠ b` is known, either from an asserted disequality or
    /// from the constructor theory.
    pub fn are_diseq(&mut self, a: TermId, b: TermId, bank: &TermBank) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        // Watched by current root: only disequalities incident to `a`'s
        // class can separate the pair.
        let n = self.diseq_watch.get(&ra).map_or(0, Vec::len);
        for i in 0..n {
            let (x, y) = self.diseq_watch[&ra][i];
            let (rx, ry) = (self.find(x), self.find(y));
            if (rx, ry) == (ra, rb) || (rx, ry) == (rb, ra) {
                return true;
            }
        }
        if let (Some(&ca), Some(&cb)) = (self.ctor.get(&ra), self.ctor.get(&rb)) {
            return match ctor_clash(bank, ca, cb) {
                Some(CtorRel::Clash(_)) => true,
                Some(CtorRel::SameCtor) => {
                    // Injectivity: same-constructor applications are
                    // distinct exactly when some argument pair is.
                    match (bank.data(ca).clone(), bank.data(cb).clone()) {
                        (TermData::App(_, ax), TermData::App(_, ay)) => ax
                            .into_iter()
                            .zip(ay)
                            .any(|(x, y)| self.are_diseq(x, y, bank)),
                        _ => false,
                    }
                }
                None => false,
            };
        }
        false
    }

    /// Asserts `a = b`, propagating congruences, injectivity, and
    /// checking disequalities and constructor disjointness.
    ///
    /// On contradiction the context enters the conflict state (see
    /// [`in_conflict`](Self::in_conflict)); further operations are
    /// harmless no-ops.
    pub fn merge(&mut self, a: TermId, b: TermId, bank: &TermBank) {
        if self.conflict.is_some() {
            return;
        }
        let mut pending = vec![(a, b)];
        while let Some((x, y)) = pending.pop() {
            if self.conflict.is_some() {
                return;
            }
            let mut rx = self.find(x);
            let mut ry = self.find(y);
            if rx == ry {
                continue;
            }
            // Union by size: ry joins rx.
            if self.size[rx.idx()] < self.size[ry.idx()] {
                std::mem::swap(&mut rx, &mut ry);
            }
            // Constructor theory.
            match (self.ctor.get(&rx).copied(), self.ctor.get(&ry).copied()) {
                (Some(cx), Some(cy)) => match ctor_clash(bank, cx, cy) {
                    Some(CtorRel::SameCtor) => {
                        if let (TermData::App(_, ax), TermData::App(_, ay)) =
                            (bank.data(cx).clone(), bank.data(cy).clone())
                        {
                            pending.extend(ax.into_iter().zip(ay));
                        }
                    }
                    Some(CtorRel::Clash(msg)) => {
                        if self.trailing() {
                            self.trail.push(TrailOp::Conflict);
                        }
                        self.version += 1;
                        self.conflict = Some(msg);
                        return;
                    }
                    None => {}
                },
                (None, Some(cy)) => {
                    self.ctor.insert(rx, cy);
                    if self.trailing() {
                        self.trail.push(TrailOp::CtorInsert(rx));
                    }
                }
                _ => {}
            }
            if self.trailing() {
                self.trail.push(TrailOp::Parent(ry, self.parent[ry.idx()]));
                self.trail.push(TrailOp::Size(rx, self.size[rx.idx()]));
            }
            self.version += 1;
            self.parent[ry.idx()] = rx;
            self.size[rx.idx()] += self.size[ry.idx()];
            // Re-normalize signatures of applications that used ry.
            let moved = self.use_list.remove(&ry).unwrap_or_default();
            for p in &moved {
                let (f, args) = match bank.data(*p) {
                    TermData::App(f, args) => (*f, args),
                    _ => continue,
                };
                let key = self.sig_key(f, args);
                match self.sig.get(&key) {
                    Some(&q) => {
                        if self.find(q) != self.find(*p) {
                            pending.push((*p, q));
                        }
                    }
                    None => {
                        if self.trailing() {
                            self.trail.push(TrailOp::SigInsert(key.clone()));
                        }
                        self.sig.insert(key, *p);
                    }
                }
            }
            if self.trailing() {
                self.trail.push(TrailOp::UseMove {
                    from: ry,
                    to: rx,
                    moved: moved.len(),
                });
            }
            self.use_list.entry(rx).or_default().extend(moved);
            // Re-home ry's watched disequalities onto rx. Only the moved
            // entries can be newly violated: a violation means both
            // endpoints now share a root, which requires one of them to
            // have been rooted at the dying class ry.
            let moved_d = self.diseq_watch.remove(&ry).unwrap_or_default();
            if self.trailing() {
                self.trail.push(TrailOp::DiseqMove {
                    from: ry,
                    to: rx,
                    moved: moved_d.len(),
                });
            }
            self.diseq_watch
                .entry(rx)
                .or_default()
                .extend(moved_d.iter().copied());
            for &(u, v) in &moved_d {
                if self.find(u) == self.find(v) {
                    if self.trailing() {
                        self.trail.push(TrailOp::Conflict);
                    }
                    self.version += 1;
                    self.conflict = Some(format!(
                        "asserted disequality violated: {} = {}",
                        bank.display(u),
                        bank.display(v)
                    ));
                    return;
                }
            }
        }
    }

    /// Asserts `a ≠ b`.
    ///
    /// Conflicts immediately if `a = b` is already known.
    pub fn assert_diseq(&mut self, a: TermId, b: TermId, bank: &TermBank) {
        if self.conflict.is_some() {
            return;
        }
        if self.are_eq(a, b) {
            if self.trailing() {
                self.trail.push(TrailOp::Conflict);
            }
            self.conflict = Some(format!(
                "disequality {} ≠ {} contradicts known equality",
                bank.display(a),
                bank.display(b)
            ));
            return;
        }
        let (ra, rb) = (self.find(a), self.find(b));
        self.version += 1;
        self.diseq_watch.entry(ra).or_default().push((a, b));
        self.diseq_watch.entry(rb).or_default().push((a, b));
        if self.trailing() {
            self.trail.push(TrailOp::DiseqPush(ra, rb));
        }
    }

    /// The constructor application or integer literal known to be in
    /// `t`'s class, if any.
    pub fn ctor_of(&mut self, t: TermId) -> Option<TermId> {
        let r = self.find(t);
        self.ctor.get(&r).copied()
    }
}

#[derive(Debug, PartialEq, Eq)]
enum CtorRel {
    SameCtor,
    Clash(String),
}

/// Classifies the relationship between two constructor witnesses.
fn ctor_clash(bank: &TermBank, a: TermId, b: TermId) -> Option<CtorRel> {
    match (bank.data(a), bank.data(b)) {
        (TermData::Int(m), TermData::Int(n)) => {
            if m == n {
                None
            } else {
                Some(CtorRel::Clash(format!("distinct integers {m} and {n}")))
            }
        }
        (TermData::Int(n), TermData::App(f, _)) | (TermData::App(f, _), TermData::Int(n)) => {
            Some(CtorRel::Clash(format!(
                "integer {n} vs constructor {}",
                bank.sym_name(*f)
            )))
        }
        (TermData::App(f, _), TermData::App(g, _)) => {
            if f == g {
                Some(CtorRel::SameCtor)
            } else {
                Some(CtorRel::Clash(format!(
                    "distinct constructors {} and {}",
                    bank.sym_name(*f),
                    bank.sym_name(*g)
                )))
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TermBank, Cc) {
        (TermBank::new(), Cc::new())
    }

    #[test]
    fn transitivity() {
        let (mut b, mut cc) = setup();
        let x = b.app0("x");
        let y = b.app0("y");
        let z = b.app0("z");
        cc.sync(&b);
        cc.merge(x, y, &b);
        cc.merge(y, z, &b);
        assert!(cc.are_eq(x, z));
    }

    #[test]
    fn congruence_propagates() {
        let (mut b, mut cc) = setup();
        let f = b.sym("f");
        let x = b.app0("x");
        let y = b.app0("y");
        let fx = b.app(f, vec![x]);
        let fy = b.app(f, vec![y]);
        cc.sync(&b);
        assert!(!cc.are_eq(fx, fy));
        cc.merge(x, y, &b);
        assert!(cc.are_eq(fx, fy));
    }

    #[test]
    fn congruence_on_terms_created_after_merge() {
        let (mut b, mut cc) = setup();
        let f = b.sym("f");
        let x = b.app0("x");
        let y = b.app0("y");
        cc.sync(&b);
        cc.merge(x, y, &b);
        let fx = b.app(f, vec![x]);
        let fy = b.app(f, vec![y]);
        cc.sync(&b);
        assert!(cc.are_eq(fx, fy));
    }

    #[test]
    fn nested_congruence() {
        let (mut b, mut cc) = setup();
        let f = b.sym("f");
        let g = b.sym("g");
        let x = b.app0("x");
        let y = b.app0("y");
        let gx = b.app(g, vec![x]);
        let gy = b.app(g, vec![y]);
        let fgx = b.app(f, vec![gx]);
        let fgy = b.app(f, vec![gy]);
        cc.sync(&b);
        cc.merge(x, y, &b);
        assert!(cc.are_eq(fgx, fgy));
    }

    #[test]
    fn diseq_conflict() {
        let (mut b, mut cc) = setup();
        let x = b.app0("x");
        let y = b.app0("y");
        let z = b.app0("z");
        cc.sync(&b);
        cc.assert_diseq(x, z, &b);
        assert!(!cc.in_conflict());
        cc.merge(x, y, &b);
        assert!(!cc.in_conflict());
        cc.merge(y, z, &b);
        assert!(cc.in_conflict());
    }

    #[test]
    fn distinct_int_literals_conflict() {
        let (mut b, mut cc) = setup();
        let one = b.int(1);
        let two = b.int(2);
        let x = b.app0("x");
        cc.sync(&b);
        cc.merge(x, one, &b);
        cc.merge(x, two, &b);
        assert!(cc.in_conflict());
    }

    #[test]
    fn distinct_constructors_conflict() {
        let (mut b, mut cc) = setup();
        let skip = b.constructor("skip");
        let decl = b.constructor("decl");
        let x = b.app0("x");
        let s = b.app(skip, vec![]);
        let d = b.app(decl, vec![x]);
        cc.sync(&b);
        cc.merge(s, d, &b);
        assert!(cc.in_conflict());
    }

    #[test]
    fn constructor_injectivity() {
        let (mut b, mut cc) = setup();
        let pair = b.constructor("pair");
        let (x, y, u, v) = (b.app0("x"), b.app0("y"), b.app0("u"), b.app0("v"));
        let p1 = b.app(pair, vec![x, y]);
        let p2 = b.app(pair, vec![u, v]);
        cc.sync(&b);
        cc.merge(p1, p2, &b);
        assert!(!cc.in_conflict());
        assert!(cc.are_eq(x, u));
        assert!(cc.are_eq(y, v));
    }

    #[test]
    fn injectivity_can_conflict_transitively() {
        let (mut b, mut cc) = setup();
        let c = b.constructor("c");
        let one = b.int(1);
        let two = b.int(2);
        let c1 = b.app(c, vec![one]);
        let c2 = b.app(c, vec![two]);
        cc.sync(&b);
        cc.merge(c1, c2, &b);
        assert!(cc.in_conflict());
    }

    #[test]
    fn are_diseq_via_constructors() {
        let (mut b, mut cc) = setup();
        let skip = b.constructor("skip");
        let decl = b.constructor("decl");
        let x = b.app0("x");
        let s = b.app(skip, vec![]);
        let d = b.app(decl, vec![x]);
        let c = b.app0("cur");
        cc.sync(&b);
        cc.merge(c, s, &b);
        assert!(cc.are_diseq(c, d, &b));
        let one = b.int(1);
        let zero = b.int(0);
        cc.sync(&b);
        assert!(cc.are_diseq(one, zero, &b));
    }

    #[test]
    fn injectivity_propagates_into_are_diseq() {
        // locval(a) ≠ locval(b) follows from a ≠ b without a case
        // split, because constructors are injective.
        let (mut b, mut cc) = setup();
        let locval = b.constructor("locval");
        let (x, y) = (b.app0("x"), b.app0("y"));
        let lx = b.app(locval, vec![x]);
        let ly = b.app(locval, vec![y]);
        cc.sync(&b);
        assert!(!cc.are_diseq(lx, ly, &b));
        cc.assert_diseq(x, y, &b);
        assert!(cc.are_diseq(lx, ly, &b));
        // Nested: locval(locval(x)) vs locval(locval(y)).
        let llx = b.app(locval, vec![lx]);
        let lly = b.app(locval, vec![ly]);
        cc.sync(&b);
        assert!(cc.are_diseq(llx, lly, &b));
    }

    #[test]
    fn clone_isolates_branches() {
        let (mut b, mut cc) = setup();
        let x = b.app0("x");
        let y = b.app0("y");
        cc.sync(&b);
        let mut branch = cc.clone();
        branch.merge(x, y, &b);
        assert!(branch.are_eq(x, y));
        assert!(!cc.are_eq(x, y));
    }

    #[test]
    fn save_restore_undoes_merges() {
        let (mut b, mut cc) = setup();
        let f = b.sym("f");
        let x = b.app0("x");
        let y = b.app0("y");
        let fx = b.app(f, vec![x]);
        let fy = b.app(f, vec![y]);
        cc.sync(&b);
        cc.save();
        cc.merge(x, y, &b);
        assert!(cc.are_eq(x, y));
        assert!(cc.are_eq(fx, fy));
        cc.restore();
        assert!(!cc.are_eq(x, y));
        assert!(!cc.are_eq(fx, fy));
        // The context is fully reusable after the rewind.
        cc.merge(x, y, &b);
        assert!(cc.are_eq(fx, fy));
    }

    #[test]
    fn save_restore_undoes_syncs() {
        let (mut b, mut cc) = setup();
        let f = b.sym("f");
        let x = b.app0("x");
        let y = b.app0("y");
        cc.sync(&b);
        cc.merge(x, y, &b);
        cc.save();
        let fx = b.app(f, vec![x]);
        let fy = b.app(f, vec![y]);
        cc.sync(&b);
        assert!(cc.are_eq(fx, fy));
        cc.restore();
        // fx/fy were deregistered; re-syncing re-registers them and
        // re-derives the congruence from the surviving x = y merge.
        cc.sync(&b);
        assert!(cc.are_eq(fx, fy));
        assert!(cc.are_eq(x, y));
    }

    #[test]
    fn demand_registration_tracks_the_problem_not_the_bank() {
        // Registering only the terms a problem mentions yields the same
        // equivalence relation over them as registering the whole bank,
        // while foreign terms stay untouched singleton classes.
        let (mut b, mut cc) = setup();
        let f = b.sym("f");
        let g = b.sym("g");
        let x = b.app0("x");
        let y = b.app0("y");
        let fx = b.app(f, vec![x]);
        let fy = b.app(f, vec![y]);
        let gx = b.app(g, vec![x]);
        let gy = b.app(g, vec![y]);
        cc.ensure(&b);
        cc.register(fx, &b);
        cc.register(fy, &b);
        cc.merge(x, y, &b);
        assert!(cc.are_eq(fx, fy));
        // gx/gy were never registered: no use lists, no congruence, and
        // find answers identity for them.
        assert_eq!(cc.find(gx), gx);
        assert!(!cc.are_eq(gx, gy));
        // Late registration catches up on the standing merge.
        cc.register(gx, &b);
        cc.register(gy, &b);
        assert!(cc.are_eq(gx, gy));
    }

    #[test]
    fn find_is_identity_beyond_ensure() {
        let (mut b, mut cc) = setup();
        let x = b.app0("x");
        cc.ensure(&b);
        cc.register(x, &b);
        let late = b.app0("late");
        // Minted after the last `ensure`: still a valid singleton query.
        assert_eq!(cc.find(late), late);
        assert!(!cc.are_eq(x, late));
    }

    #[test]
    fn save_restore_undoes_demand_registration() {
        let (mut b, mut cc) = setup();
        let f = b.sym("f");
        let x = b.app0("x");
        let y = b.app0("y");
        let fx = b.app(f, vec![x]);
        let fy = b.app(f, vec![y]);
        cc.ensure(&b);
        cc.register(x, &b);
        cc.register(y, &b);
        cc.merge(x, y, &b);
        cc.save();
        cc.register(fx, &b);
        cc.register(fy, &b);
        assert!(cc.are_eq(fx, fy));
        cc.restore();
        // fx/fy were deregistered; re-registering re-derives the
        // congruence from the surviving x = y merge.
        assert!(!cc.are_eq(fx, fy));
        cc.register(fx, &b);
        cc.register(fy, &b);
        assert!(cc.are_eq(fx, fy));
        assert!(cc.are_eq(x, y));
    }

    #[test]
    fn save_restore_undoes_diseqs_and_conflicts() {
        let (mut b, mut cc) = setup();
        let x = b.app0("x");
        let y = b.app0("y");
        cc.sync(&b);
        cc.save();
        cc.assert_diseq(x, y, &b);
        cc.merge(x, y, &b);
        assert!(cc.in_conflict());
        cc.restore();
        assert!(!cc.in_conflict());
        assert!(!cc.are_eq(x, y));
        assert!(!cc.are_diseq(x, y, &b));
        cc.merge(x, y, &b);
        assert!(cc.are_eq(x, y));
        assert!(!cc.in_conflict());
    }

    #[test]
    fn save_restore_undoes_ctor_conflict() {
        let (mut b, mut cc) = setup();
        let one = b.int(1);
        let two = b.int(2);
        let x = b.app0("x");
        cc.sync(&b);
        cc.merge(x, one, &b);
        cc.save();
        cc.merge(x, two, &b);
        assert!(cc.in_conflict());
        cc.restore();
        assert!(!cc.in_conflict());
        assert!(cc.are_eq(x, one));
        assert_eq!(cc.ctor_of(x), Some(one));
    }

    #[test]
    fn nested_savepoints_rewind_in_order() {
        let (mut b, mut cc) = setup();
        let x = b.app0("x");
        let y = b.app0("y");
        let z = b.app0("z");
        cc.sync(&b);
        cc.save();
        cc.merge(x, y, &b);
        cc.save();
        cc.merge(y, z, &b);
        assert!(cc.are_eq(x, z));
        cc.restore();
        assert!(cc.are_eq(x, y));
        assert!(!cc.are_eq(x, z));
        cc.restore();
        assert!(!cc.are_eq(x, y));
    }

    #[test]
    fn restore_all_pops_every_savepoint() {
        let (mut b, mut cc) = setup();
        let x = b.app0("x");
        let y = b.app0("y");
        let z = b.app0("z");
        cc.sync(&b);
        cc.save();
        cc.merge(x, y, &b);
        cc.save();
        cc.merge(y, z, &b);
        cc.save();
        cc.assert_diseq(x, z, &b);
        assert!(cc.in_conflict());
        cc.restore_all();
        assert!(!cc.in_conflict());
        assert!(!cc.are_eq(x, y));
        assert!(!cc.are_eq(y, z));
        // After restore_all the trail is quiescent: path compression is
        // legal again and mutations are permanent.
        cc.merge(x, z, &b);
        assert!(cc.are_eq(x, z));
    }

    #[test]
    fn save_restore_matches_clone_semantics() {
        // Trail-based rewind and the clone-per-branch scheme must agree
        // on every query, since the solver switched from the latter to
        // the former.
        let (mut b, mut cc) = setup();
        let pair = b.constructor("pair");
        let (x, y, u, v) = (b.app0("x"), b.app0("y"), b.app0("u"), b.app0("v"));
        let p1 = b.app(pair, vec![x, y]);
        let p2 = b.app(pair, vec![u, v]);
        cc.sync(&b);
        let mut cloned = cc.clone();
        cloned.merge(p1, p2, &b);
        cc.save();
        cc.merge(p1, p2, &b);
        for &(s, t) in &[(x, u), (y, v), (p1, p2), (x, y)] {
            assert_eq!(cc.are_eq(s, t), cloned.are_eq(s, t));
            assert_eq!(cc.are_diseq(s, t, &b), cloned.are_diseq(s, t, &b));
        }
        cc.restore();
        assert!(!cc.are_eq(x, u));
        assert!(!cc.are_eq(p1, p2));
    }

    #[test]
    fn conflict_is_sticky_and_safe() {
        let (mut b, mut cc) = setup();
        let one = b.int(1);
        let two = b.int(2);
        cc.sync(&b);
        cc.merge(one, two, &b);
        assert!(cc.in_conflict());
        let x = b.app0("x");
        cc.sync(&b);
        cc.merge(x, one, &b);
        cc.assert_diseq(x, two, &b);
        assert!(cc.in_conflict());
        assert!(cc.conflict().is_some());
    }
}
