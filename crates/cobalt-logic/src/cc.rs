//! Congruence closure over hash-consed terms, with disequalities and a
//! free-constructor theory.
//!
//! This is the ground decision core of the prover: a union-find over
//! [`TermId`]s with congruence propagation (Nelson–Oppen style use
//! lists), plus:
//!
//! * **disequality tracking** — asserting `a ≠ b` and later deriving
//!   `a = b` is a conflict;
//! * **constructors** — applications of distinct constructor symbols are
//!   never equal; merging two applications of the *same* constructor
//!   merges their arguments (injectivity); distinct integer literals are
//!   distinct values.

use crate::term::{Sym, TermBank, TermData, TermId};
use std::collections::HashMap;

/// A congruence-closure context.
///
/// Cloning a `Cc` is how the solver branches: the clone shares the
/// (append-only) [`TermBank`] but has independent equivalence classes.
#[derive(Debug, Clone, Default)]
pub struct Cc {
    parent: Vec<TermId>,
    size: Vec<u32>,
    use_list: HashMap<TermId, Vec<TermId>>,
    sig: HashMap<(Sym, Vec<TermId>), TermId>,
    diseqs: Vec<(TermId, TermId)>,
    /// Per-class witness that the class contains a constructor
    /// application or integer literal, keyed by representative.
    ctor: HashMap<TermId, TermId>,
    conflict: Option<String>,
    /// Number of bank terms already registered.
    synced: usize,
}

impl Cc {
    /// Creates an empty context.
    pub fn new() -> Self {
        Cc::default()
    }

    /// Whether a contradiction has been derived.
    pub fn in_conflict(&self) -> bool {
        self.conflict.is_some()
    }

    /// Description of the contradiction, if any.
    pub fn conflict(&self) -> Option<&str> {
        self.conflict.as_deref()
    }

    /// Registers all bank terms created since the last call, propagating
    /// congruences that involve them.
    ///
    /// Must be called after any batch of term creation and before
    /// queries involving the new terms.
    pub fn sync(&mut self, bank: &TermBank) {
        while self.synced < bank.len() {
            let t = TermId(self.synced as u32);
            self.synced += 1;
            self.parent.push(t);
            self.size.push(1);
            match bank.data(t).clone() {
                TermData::App(f, args) => {
                    for &a in &args {
                        let ra = self.find(a);
                        self.use_list.entry(ra).or_default().push(t);
                    }
                    if bank.is_constructor(f) {
                        self.ctor.insert(t, t);
                    }
                    let key = (f, args.iter().map(|&a| self.find(a)).collect::<Vec<_>>());
                    if let Some(&q) = self.sig.get(&key) {
                        self.merge(t, q, bank);
                    } else {
                        self.sig.insert(key, t);
                    }
                }
                TermData::Int(_) => {
                    self.ctor.insert(t, t);
                }
                TermData::Var(_) => {}
            }
        }
    }

    /// The class representative of `t`, with path compression.
    pub fn find(&mut self, t: TermId) -> TermId {
        let mut root = t;
        while self.parent[root.idx()] != root {
            root = self.parent[root.idx()];
        }
        let mut cur = t;
        while self.parent[cur.idx()] != root {
            let next = self.parent[cur.idx()];
            self.parent[cur.idx()] = root;
            cur = next;
        }
        root
    }

    /// Whether `a` and `b` are known equal.
    pub fn are_eq(&mut self, a: TermId, b: TermId) -> bool {
        self.find(a) == self.find(b)
    }

    /// Whether `a ≠ b` is known, either from an asserted disequality or
    /// from the constructor theory.
    pub fn are_diseq(&mut self, a: TermId, b: TermId, bank: &TermBank) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        for i in 0..self.diseqs.len() {
            let (x, y) = self.diseqs[i];
            let (rx, ry) = (self.find(x), self.find(y));
            if (rx, ry) == (ra, rb) || (rx, ry) == (rb, ra) {
                return true;
            }
        }
        if let (Some(&ca), Some(&cb)) = (self.ctor.get(&ra), self.ctor.get(&rb)) {
            return match ctor_clash(bank, ca, cb) {
                Some(CtorRel::Clash(_)) => true,
                Some(CtorRel::SameCtor) => {
                    // Injectivity: same-constructor applications are
                    // distinct exactly when some argument pair is.
                    match (bank.data(ca).clone(), bank.data(cb).clone()) {
                        (TermData::App(_, ax), TermData::App(_, ay)) => ax
                            .into_iter()
                            .zip(ay)
                            .any(|(x, y)| self.are_diseq(x, y, bank)),
                        _ => false,
                    }
                }
                None => false,
            };
        }
        false
    }

    /// Asserts `a = b`, propagating congruences, injectivity, and
    /// checking disequalities and constructor disjointness.
    ///
    /// On contradiction the context enters the conflict state (see
    /// [`in_conflict`](Self::in_conflict)); further operations are
    /// harmless no-ops.
    pub fn merge(&mut self, a: TermId, b: TermId, bank: &TermBank) {
        if self.conflict.is_some() {
            return;
        }
        let mut pending = vec![(a, b)];
        while let Some((x, y)) = pending.pop() {
            if self.conflict.is_some() {
                return;
            }
            let mut rx = self.find(x);
            let mut ry = self.find(y);
            if rx == ry {
                continue;
            }
            // Union by size: ry joins rx.
            if self.size[rx.idx()] < self.size[ry.idx()] {
                std::mem::swap(&mut rx, &mut ry);
            }
            // Constructor theory.
            match (self.ctor.get(&rx).copied(), self.ctor.get(&ry).copied()) {
                (Some(cx), Some(cy)) => match ctor_clash(bank, cx, cy) {
                    Some(CtorRel::SameCtor) => {
                        if let (TermData::App(_, ax), TermData::App(_, ay)) =
                            (bank.data(cx).clone(), bank.data(cy).clone())
                        {
                            pending.extend(ax.into_iter().zip(ay));
                        }
                    }
                    Some(CtorRel::Clash(msg)) => {
                        self.conflict = Some(msg);
                        return;
                    }
                    None => {}
                },
                (None, Some(cy)) => {
                    self.ctor.insert(rx, cy);
                }
                _ => {}
            }
            self.parent[ry.idx()] = rx;
            self.size[rx.idx()] += self.size[ry.idx()];
            // Re-normalize signatures of applications that used ry.
            let moved = self.use_list.remove(&ry).unwrap_or_default();
            for p in &moved {
                let (f, args) = match bank.data(*p) {
                    TermData::App(f, args) => (*f, args.clone()),
                    _ => continue,
                };
                let key = (f, args.iter().map(|&t| self.find(t)).collect::<Vec<_>>());
                match self.sig.get(&key) {
                    Some(&q) => {
                        if self.find(q) != self.find(*p) {
                            pending.push((*p, q));
                        }
                    }
                    None => {
                        self.sig.insert(key, *p);
                    }
                }
            }
            self.use_list.entry(rx).or_default().extend(moved);
            // Disequality check.
            for i in 0..self.diseqs.len() {
                let (u, v) = self.diseqs[i];
                if self.find(u) == self.find(v) {
                    self.conflict = Some(format!(
                        "asserted disequality violated: {} = {}",
                        bank.display(u),
                        bank.display(v)
                    ));
                    return;
                }
            }
        }
    }

    /// Asserts `a ≠ b`.
    ///
    /// Conflicts immediately if `a = b` is already known.
    pub fn assert_diseq(&mut self, a: TermId, b: TermId, bank: &TermBank) {
        if self.conflict.is_some() {
            return;
        }
        if self.are_eq(a, b) {
            self.conflict = Some(format!(
                "disequality {} ≠ {} contradicts known equality",
                bank.display(a),
                bank.display(b)
            ));
            return;
        }
        self.diseqs.push((a, b));
    }

    /// The constructor application or integer literal known to be in
    /// `t`'s class, if any.
    pub fn ctor_of(&mut self, t: TermId) -> Option<TermId> {
        let r = self.find(t);
        self.ctor.get(&r).copied()
    }
}

#[derive(Debug, PartialEq, Eq)]
enum CtorRel {
    SameCtor,
    Clash(String),
}

/// Classifies the relationship between two constructor witnesses.
fn ctor_clash(bank: &TermBank, a: TermId, b: TermId) -> Option<CtorRel> {
    match (bank.data(a), bank.data(b)) {
        (TermData::Int(m), TermData::Int(n)) => {
            if m == n {
                None
            } else {
                Some(CtorRel::Clash(format!("distinct integers {m} and {n}")))
            }
        }
        (TermData::Int(n), TermData::App(f, _)) | (TermData::App(f, _), TermData::Int(n)) => {
            Some(CtorRel::Clash(format!(
                "integer {n} vs constructor {}",
                bank.sym_name(*f)
            )))
        }
        (TermData::App(f, _), TermData::App(g, _)) => {
            if f == g {
                Some(CtorRel::SameCtor)
            } else {
                Some(CtorRel::Clash(format!(
                    "distinct constructors {} and {}",
                    bank.sym_name(*f),
                    bank.sym_name(*g)
                )))
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TermBank, Cc) {
        (TermBank::new(), Cc::new())
    }

    #[test]
    fn transitivity() {
        let (mut b, mut cc) = setup();
        let x = b.app0("x");
        let y = b.app0("y");
        let z = b.app0("z");
        cc.sync(&b);
        cc.merge(x, y, &b);
        cc.merge(y, z, &b);
        assert!(cc.are_eq(x, z));
    }

    #[test]
    fn congruence_propagates() {
        let (mut b, mut cc) = setup();
        let f = b.sym("f");
        let x = b.app0("x");
        let y = b.app0("y");
        let fx = b.app(f, vec![x]);
        let fy = b.app(f, vec![y]);
        cc.sync(&b);
        assert!(!cc.are_eq(fx, fy));
        cc.merge(x, y, &b);
        assert!(cc.are_eq(fx, fy));
    }

    #[test]
    fn congruence_on_terms_created_after_merge() {
        let (mut b, mut cc) = setup();
        let f = b.sym("f");
        let x = b.app0("x");
        let y = b.app0("y");
        cc.sync(&b);
        cc.merge(x, y, &b);
        let fx = b.app(f, vec![x]);
        let fy = b.app(f, vec![y]);
        cc.sync(&b);
        assert!(cc.are_eq(fx, fy));
    }

    #[test]
    fn nested_congruence() {
        let (mut b, mut cc) = setup();
        let f = b.sym("f");
        let g = b.sym("g");
        let x = b.app0("x");
        let y = b.app0("y");
        let gx = b.app(g, vec![x]);
        let gy = b.app(g, vec![y]);
        let fgx = b.app(f, vec![gx]);
        let fgy = b.app(f, vec![gy]);
        cc.sync(&b);
        cc.merge(x, y, &b);
        assert!(cc.are_eq(fgx, fgy));
    }

    #[test]
    fn diseq_conflict() {
        let (mut b, mut cc) = setup();
        let x = b.app0("x");
        let y = b.app0("y");
        let z = b.app0("z");
        cc.sync(&b);
        cc.assert_diseq(x, z, &b);
        assert!(!cc.in_conflict());
        cc.merge(x, y, &b);
        assert!(!cc.in_conflict());
        cc.merge(y, z, &b);
        assert!(cc.in_conflict());
    }

    #[test]
    fn distinct_int_literals_conflict() {
        let (mut b, mut cc) = setup();
        let one = b.int(1);
        let two = b.int(2);
        let x = b.app0("x");
        cc.sync(&b);
        cc.merge(x, one, &b);
        cc.merge(x, two, &b);
        assert!(cc.in_conflict());
    }

    #[test]
    fn distinct_constructors_conflict() {
        let (mut b, mut cc) = setup();
        let skip = b.constructor("skip");
        let decl = b.constructor("decl");
        let x = b.app0("x");
        let s = b.app(skip, vec![]);
        let d = b.app(decl, vec![x]);
        cc.sync(&b);
        cc.merge(s, d, &b);
        assert!(cc.in_conflict());
    }

    #[test]
    fn constructor_injectivity() {
        let (mut b, mut cc) = setup();
        let pair = b.constructor("pair");
        let (x, y, u, v) = (b.app0("x"), b.app0("y"), b.app0("u"), b.app0("v"));
        let p1 = b.app(pair, vec![x, y]);
        let p2 = b.app(pair, vec![u, v]);
        cc.sync(&b);
        cc.merge(p1, p2, &b);
        assert!(!cc.in_conflict());
        assert!(cc.are_eq(x, u));
        assert!(cc.are_eq(y, v));
    }

    #[test]
    fn injectivity_can_conflict_transitively() {
        let (mut b, mut cc) = setup();
        let c = b.constructor("c");
        let one = b.int(1);
        let two = b.int(2);
        let c1 = b.app(c, vec![one]);
        let c2 = b.app(c, vec![two]);
        cc.sync(&b);
        cc.merge(c1, c2, &b);
        assert!(cc.in_conflict());
    }

    #[test]
    fn are_diseq_via_constructors() {
        let (mut b, mut cc) = setup();
        let skip = b.constructor("skip");
        let decl = b.constructor("decl");
        let x = b.app0("x");
        let s = b.app(skip, vec![]);
        let d = b.app(decl, vec![x]);
        let c = b.app0("cur");
        cc.sync(&b);
        cc.merge(c, s, &b);
        assert!(cc.are_diseq(c, d, &b));
        let one = b.int(1);
        let zero = b.int(0);
        cc.sync(&b);
        assert!(cc.are_diseq(one, zero, &b));
    }

    #[test]
    fn injectivity_propagates_into_are_diseq() {
        // locval(a) ≠ locval(b) follows from a ≠ b without a case
        // split, because constructors are injective.
        let (mut b, mut cc) = setup();
        let locval = b.constructor("locval");
        let (x, y) = (b.app0("x"), b.app0("y"));
        let lx = b.app(locval, vec![x]);
        let ly = b.app(locval, vec![y]);
        cc.sync(&b);
        assert!(!cc.are_diseq(lx, ly, &b));
        cc.assert_diseq(x, y, &b);
        assert!(cc.are_diseq(lx, ly, &b));
        // Nested: locval(locval(x)) vs locval(locval(y)).
        let llx = b.app(locval, vec![lx]);
        let lly = b.app(locval, vec![ly]);
        cc.sync(&b);
        assert!(cc.are_diseq(llx, lly, &b));
    }

    #[test]
    fn clone_isolates_branches() {
        let (mut b, mut cc) = setup();
        let x = b.app0("x");
        let y = b.app0("y");
        cc.sync(&b);
        let mut branch = cc.clone();
        branch.merge(x, y, &b);
        assert!(branch.are_eq(x, y));
        assert!(!cc.are_eq(x, y));
    }

    #[test]
    fn conflict_is_sticky_and_safe() {
        let (mut b, mut cc) = setup();
        let one = b.int(1);
        let two = b.int(2);
        cc.sync(&b);
        cc.merge(one, two, &b);
        assert!(cc.in_conflict());
        let x = b.app0("x");
        cc.sync(&b);
        cc.merge(x, one, &b);
        cc.assert_diseq(x, two, &b);
        assert!(cc.in_conflict());
        assert!(cc.conflict().is_some());
    }
}
