//! The proof search engine: a tableau over the congruence-closure core,
//! with an integrated select/update array theory and trigger-based
//! quantifier instantiation.
//!
//! This plays the role Simplify plays in the paper (§5.1): it receives
//! the optimization-specific proof obligations together with background
//! axioms and attempts to discharge them fully automatically. The
//! obligations are *validity* checks `hypotheses ⊨ goal`; the solver
//! refutes `hypotheses ∧ ¬goal` by closing every tableau branch.
//!
//! Theories:
//!
//! * **EUF** with free constructors — see [`crate::cc`].
//! * **Arrays** (`select`/`update`): read-over-write is decided by
//!   merging when indices are known equal or known distinct, and by
//!   case-splitting on index equality otherwise.
//! * **Quantifiers**: universal hypotheses are instantiated by syntactic
//!   matching of their trigger patterns against ground terms
//!   (Simplify-style matching); existential hypotheses (and universal
//!   goals) are skolemized.

use crate::cc::Cc;
use crate::formula::Formula;
use crate::term::{Sym, TermBank, TermData, TermId};
use cobalt_support::fault;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The function symbol used for array reads.
pub const SELECT: &str = "select";
/// The function symbol used for functional array writes.
pub const UPDATE: &str = "update";

/// Resource limits for proof search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of case splits across the whole search.
    pub max_splits: usize,
    /// Maximum quantifier-instantiation rounds per branch.
    pub max_inst_rounds: usize,
    /// Hard cap on interned terms (guards runaway instantiation).
    pub max_terms: usize,
    /// Wall-clock deadline for one `prove` call. `None` means no
    /// deadline; exceeding it yields a resource-limit
    /// [`Outcome::Unknown`], never an error or a hang.
    pub deadline: Option<Duration>,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_splits: 20_000,
            max_inst_rounds: 4,
            max_terms: 200_000,
            deadline: None,
        }
    }
}

/// A cooperative resource budget for proof search, complementing the
/// structural caps in [`Limits`]: a wall-clock deadline, an optional
/// step cap (each search-loop iteration, asserted formula, split, and
/// generated instance counts as one step), and a cancel flag an outside
/// thread may set to abandon the search at the next check.
///
/// Exhausting any of these produces a resource-limit
/// [`Outcome::Unknown`] — bounded effort is a report, never a crash.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Wall-clock deadline for one `prove` call. When [`Limits`] also
    /// carries a deadline, the smaller of the two wins.
    pub deadline: Option<Duration>,
    /// Maximum number of search steps.
    pub max_steps: Option<u64>,
    /// Cooperative cancellation: set to `true` from any thread to make
    /// the search give up at its next budget check.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl Budget {
    /// A budget with only a wall-clock deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        Budget {
            deadline: Some(deadline),
            ..Budget::default()
        }
    }
}

/// How often (in steps) the meter consults the clock and cancel flag;
/// structural caps are checked on every step.
const METER_CHECK_INTERVAL: u64 = 16;

/// Runtime state of a [`Budget`] during one `prove` call.
struct Meter {
    start: Instant,
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    steps: u64,
    cancel: Option<Arc<AtomicBool>>,
}

impl Meter {
    fn new(start: Instant, limits: &Limits, budget: &Budget) -> Self {
        let duration = match (limits.deadline, budget.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Meter {
            start,
            deadline: duration.and_then(|d| start.checked_add(d)),
            max_steps: budget.max_steps,
            steps: 0,
            cancel: budget.cancel.clone(),
        }
    }

    /// Advances the meter by one step; returns the give-up reason once
    /// the budget is exhausted.
    fn tick(&mut self) -> Option<String> {
        self.steps += 1;
        if let Some(cap) = self.max_steps {
            if self.steps > cap {
                return Some(format!("step cap of {cap} exceeded"));
            }
        }
        if self.steps == 1 || self.steps % METER_CHECK_INTERVAL == 0 {
            if let Some(flag) = &self.cancel {
                if flag.load(Ordering::Relaxed) {
                    return Some(format!(
                        "cancelled by caller after {:.1?}",
                        self.start.elapsed()
                    ));
                }
            }
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    return Some(format!(
                        "deadline exceeded after {:.1?}",
                        self.start.elapsed()
                    ));
                }
            }
        }
        None
    }
}

/// Statistics from a successful proof.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Number of case splits explored.
    pub splits: usize,
    /// Number of quantifier instances generated.
    pub instances: usize,
    /// Number of tableau branches closed.
    pub branches: usize,
}

/// Why a proof attempt came back [`Outcome::Unknown`]. The distinction
/// drives retry policy: a resource limit is worth retrying with a
/// bigger budget, an open branch is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnknownKind {
    /// The search saturated with an open branch — evidence (not proof)
    /// that the goal does not follow from the hypotheses.
    OpenBranch,
    /// The search gave up on a resource limit: case splits, interned
    /// terms, instantiation rounds, steps, deadline, or cancellation.
    ResourceLimit,
}

/// The outcome of a proof attempt.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The goal is valid under the hypotheses.
    Proved {
        /// Search statistics.
        stats: Stats,
        /// Wall-clock time spent.
        elapsed: Duration,
    },
    /// The search found a branch it could not close (potential
    /// counterexample) or hit a resource limit.
    Unknown {
        /// Why the search gave up.
        reason: String,
        /// Whether the failure was a resource limit or a saturated open
        /// branch.
        kind: UnknownKind,
        /// The literals of the first open branch — the paper's
        /// "counterexample context" (§7), used for error reporting.
        /// Clamped to [`MAX_CONTEXT_LITERALS`] entries.
        open_branch: Vec<String>,
        /// Search statistics up to the point of giving up.
        stats: Stats,
        /// Wall-clock time spent.
        elapsed: Duration,
    },
}

impl Outcome {
    /// Whether the obligation was proved.
    pub fn is_proved(&self) -> bool {
        matches!(self, Outcome::Proved { .. })
    }

    /// Whether the attempt gave up on a resource limit (splits, terms,
    /// rounds, steps, deadline, or cancellation) rather than saturating
    /// with an open branch. Resource-limited attempts are candidates
    /// for retrying with a larger budget.
    pub fn is_resource_limited(&self) -> bool {
        matches!(
            self,
            Outcome::Unknown {
                kind: UnknownKind::ResourceLimit,
                ..
            }
        )
    }

    /// Time spent on the attempt.
    pub fn elapsed(&self) -> Duration {
        match self {
            Outcome::Proved { elapsed, .. } | Outcome::Unknown { elapsed, .. } => *elapsed,
        }
    }

    /// Search statistics, whether or not the proof succeeded.
    pub fn stats(&self) -> &Stats {
        match self {
            Outcome::Proved { stats, .. } | Outcome::Unknown { stats, .. } => stats,
        }
    }
}

/// Most literals kept in a counterexample context; the rest collapse
/// into a `… (+N more)` marker.
pub const MAX_CONTEXT_LITERALS: usize = 12;

/// Longest rendered literal kept in a counterexample context; longer
/// ones are cut at a char boundary with a `…` suffix.
pub const MAX_CONTEXT_LITERAL_CHARS: usize = 200;

/// Clamps a counterexample context in place: at most `max_lits`
/// literals, each at most `max_chars` characters, with a trailing
/// `… (+N more)` marker when literals were dropped. Large proof
/// obligations otherwise produce unbounded multi-KB failure strings.
pub fn clamp_context(lits: &mut Vec<String>, max_lits: usize, max_chars: usize) {
    for lit in lits.iter_mut() {
        if lit.chars().count() > max_chars {
            let cut = lit
                .char_indices()
                .nth(max_chars.saturating_sub(1))
                .map_or(lit.len(), |(i, _)| i);
            lit.truncate(cut);
            lit.push('…');
        }
    }
    if lits.len() > max_lits {
        let dropped = lits.len() - max_lits;
        lits.truncate(max_lits);
        lits.push(format!("… (+{dropped} more)"));
    }
}

/// A proof obligation: `hypotheses ⊨ goal`.
#[derive(Debug, Clone)]
pub struct ProofTask {
    /// Formulas assumed true.
    pub hypotheses: Vec<Formula>,
    /// The formula to establish.
    pub goal: Formula,
}

/// The theorem prover.
///
/// # Examples
///
/// ```
/// use cobalt_logic::{Formula, ProofTask, Solver};
/// let mut solver = Solver::new();
/// let x = solver.bank.app0("x");
/// let y = solver.bank.app0("y");
/// let task = ProofTask {
///     hypotheses: vec![Formula::Eq(x, y)],
///     goal: Formula::Eq(y, x),
/// };
/// assert!(solver.prove(&task).is_proved());
/// ```
#[derive(Debug, Default)]
pub struct Solver {
    /// The term arena. Public so callers can build hypothesis and goal
    /// terms directly in it.
    pub bank: TermBank,
    limits: Limits,
    budget: Budget,
    skolem_counter: u64,
}

impl Solver {
    /// Creates a solver with default limits.
    pub fn new() -> Self {
        Solver::default()
    }

    /// Creates a solver with the given limits.
    pub fn with_limits(limits: Limits) -> Self {
        Solver {
            limits,
            ..Solver::default()
        }
    }

    /// Replaces the resource limits (e.g. after terms have already been
    /// built in the bank).
    pub fn set_limits(&mut self, limits: Limits) {
        self.limits = limits;
    }

    /// Replaces the cooperative budget (deadline, step cap, cancel
    /// flag) applied to every subsequent `prove` call.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Installs and returns a cancel flag: set it to `true` from any
    /// thread and the running `prove` gives up at its next budget
    /// check, reporting a resource-limit [`Outcome::Unknown`].
    pub fn cancel_flag(&mut self) -> Arc<AtomicBool> {
        let flag = Arc::new(AtomicBool::new(false));
        self.install_cancel(flag.clone());
        flag
    }

    /// Installs an externally shared cancel flag (e.g. a worker pool's
    /// fail-fast token), leaving the rest of the budget untouched.
    /// Unlike [`cancel_flag`](Self::cancel_flag), many solvers may
    /// share one flag: tripping it stands every one of them down.
    pub fn install_cancel(&mut self, flag: Arc<AtomicBool>) {
        self.budget.cancel = Some(flag);
    }

    /// The distinguished "true" constant used to encode predicates.
    pub fn tt(&mut self) -> TermId {
        let s = self.bank.constructor("$true");
        self.bank.app(s, Vec::new())
    }

    /// Builds `select(map, key)`.
    pub fn select(&mut self, map: TermId, key: TermId) -> TermId {
        let s = self.bank.sym(SELECT);
        self.bank.app(s, vec![map, key])
    }

    /// Builds `update(map, key, value)`.
    pub fn update(&mut self, map: TermId, key: TermId, value: TermId) -> TermId {
        let s = self.bank.sym(UPDATE);
        self.bank.app(s, vec![map, key, value])
    }

    /// Attempts to prove the task, refuting `hypotheses ∧ ¬goal`.
    ///
    /// Effort is bounded by the solver's [`Limits`] and [`Budget`]:
    /// when any cap, deadline, or cancellation is hit the search stops
    /// and reports a resource-limit [`Outcome::Unknown`] — it never
    /// runs unbounded.
    pub fn prove(&mut self, task: &ProofTask) -> Outcome {
        let start = Instant::now();
        fault::point("solver.prove");
        // Degenerate limits short-circuit before any work: a term cap
        // at or below the already-interned bank can make no progress
        // (previously this was only noticed once instantiation began).
        if self.bank.len() >= self.limits.max_terms {
            return Outcome::Unknown {
                reason: format!(
                    "term limit of {} exceeded before search began ({} terms interned)",
                    self.limits.max_terms,
                    self.bank.len()
                ),
                kind: UnknownKind::ResourceLimit,
                open_branch: Vec::new(),
                stats: Stats::default(),
                elapsed: start.elapsed(),
            };
        }
        // A cancelled or zero-budget call must not start a tableau at
        // all: NNF conversion and the congruence-closure sync below do
        // real work proportional to the obligation, and a parallel
        // sibling that tripped our cancel flag expects us to stand down
        // now, not after the meter's first in-search check.
        if let Some(flag) = &self.budget.cancel {
            if flag.load(Ordering::Relaxed) {
                return Outcome::Unknown {
                    reason: "cancelled by caller before search began".into(),
                    kind: UnknownKind::ResourceLimit,
                    open_branch: Vec::new(),
                    stats: Stats::default(),
                    elapsed: start.elapsed(),
                };
            }
        }
        let effective_deadline = match (self.limits.deadline, self.budget.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if effective_deadline.is_some_and(|d| d <= start.elapsed()) {
            return Outcome::Unknown {
                reason: "deadline exceeded before search began".into(),
                kind: UnknownKind::ResourceLimit,
                open_branch: Vec::new(),
                stats: Stats::default(),
                elapsed: start.elapsed(),
            };
        }
        let mut formulas: Vec<Formula> = Vec::with_capacity(task.hypotheses.len() + 1);
        for h in &task.hypotheses {
            formulas.push(h.clone().nnf());
        }
        formulas.push(task.goal.clone().negate().nnf());
        let mut cc = Cc::new();
        cc.sync(&self.bank);
        let mut relevant = HashSet::new();
        for f in &formulas {
            mark_formula(&self.bank, &mut relevant, f);
        }
        let branch = Branch {
            cc,
            todo: formulas,
            splits: Vec::new(),
            foralls: Vec::new(),
            done_instances: HashSet::new(),
            inst_rounds: 0,
            relevant,
        };
        let meter = Meter::new(start, &self.limits, &self.budget);
        let mut search = Search {
            solver: self,
            stats: Stats::default(),
            limit_hit: None,
            meter,
        };
        let closed = search.close(branch);
        let stats = search.stats.clone();
        let elapsed = start.elapsed();
        match closed {
            BranchResult::Closed => Outcome::Proved { stats, elapsed },
            BranchResult::Open(lits) => {
                let (reason, kind) = match search.limit_hit {
                    Some(reason) => (reason, UnknownKind::ResourceLimit),
                    None => (
                        "open branch: goal not provable from hypotheses".into(),
                        UnknownKind::OpenBranch,
                    ),
                };
                Outcome::Unknown {
                    reason,
                    kind,
                    open_branch: lits,
                    stats,
                    elapsed,
                }
            }
        }
    }

    fn fresh_skolem(&mut self, base: &str) -> TermId {
        self.skolem_counter += 1;
        let name = format!("$sk_{}_{}", base, self.skolem_counter);
        self.bank.app0(&name)
    }
}

#[derive(Debug, Clone)]
struct Branch {
    cc: Cc,
    todo: Vec<Formula>,
    splits: Vec<Vec<Formula>>,
    foralls: Vec<Formula>,
    done_instances: HashSet<(usize, Vec<TermId>)>,
    inst_rounds: usize,
    /// Terms appearing in formulas asserted on *this* branch. The term
    /// bank is shared between branches, so theory propagation and
    /// trigger matching must ignore foreign terms (e.g. skolems minted
    /// by sibling branches) or the search degenerates.
    relevant: HashSet<TermId>,
}

/// Adds `t` and all its subterms to the relevant set.
fn mark_term(bank: &TermBank, relevant: &mut HashSet<TermId>, t: TermId) {
    if !relevant.insert(t) {
        return;
    }
    if let TermData::App(_, args) = bank.data(t) {
        for &a in args.clone().iter() {
            mark_term(bank, relevant, a);
        }
    }
}

/// Adds every term of a formula to the relevant set.
fn mark_formula(bank: &TermBank, relevant: &mut HashSet<TermId>, f: &Formula) {
    match f {
        Formula::True | Formula::False => {}
        Formula::Eq(a, b) => {
            mark_term(bank, relevant, *a);
            mark_term(bank, relevant, *b);
        }
        Formula::Holds(t) => mark_term(bank, relevant, *t),
        Formula::Not(p) => mark_formula(bank, relevant, p),
        Formula::And(ps) | Formula::Or(ps) => {
            for p in ps {
                mark_formula(bank, relevant, p);
            }
        }
        Formula::Implies(p, q) | Formula::Iff(p, q) => {
            mark_formula(bank, relevant, p);
            mark_formula(bank, relevant, q);
        }
        Formula::Forall { body, .. } | Formula::Exists { body, .. } => {
            mark_formula(bank, relevant, body);
        }
    }
}

enum BranchResult {
    Closed,
    /// Literals describing the open branch.
    Open(Vec<String>),
}

struct Search<'a> {
    solver: &'a mut Solver,
    stats: Stats,
    limit_hit: Option<String>,
    meter: Meter,
}

impl Search<'_> {
    /// Advances the budget meter; returns true (and records the limit)
    /// when the budget is exhausted.
    fn out_of_budget(&mut self) -> bool {
        if self.limit_hit.is_some() {
            return true;
        }
        if let Some(reason) = self.meter.tick() {
            self.limit_hit = Some(reason);
            return true;
        }
        false
    }

    /// Attempts to close a branch; returns `Closed` if a contradiction
    /// was derived on every sub-branch.
    fn close(&mut self, mut branch: Branch) -> BranchResult {
        loop {
            if self.out_of_budget() {
                return BranchResult::Open(vec![]);
            }
            // 1. Assert pending formulas into the congruence core.
            while let Some(f) = branch.todo.pop() {
                if self.out_of_budget() {
                    return BranchResult::Open(vec![]);
                }
                if self.assert_formula(&mut branch, f) {
                    // conflict
                    self.stats.branches += 1;
                    return BranchResult::Closed;
                }
            }
            if branch.cc.in_conflict() {
                self.stats.branches += 1;
                return BranchResult::Closed;
            }
            // 2. Array theory propagation.
            match self.propagate_arrays(&mut branch) {
                ArrayStep::Progress => continue,
                ArrayStep::Conflict => {
                    self.stats.branches += 1;
                    return BranchResult::Closed;
                }
                ArrayStep::Split(k1, k2) => {
                    return self.split(
                        branch,
                        vec![Formula::Eq(k1, k2), Formula::ne(k1, k2)],
                    );
                }
                ArrayStep::Quiet => {}
            }
            // 3. Boolean case splits.
            if let Some(pos) = self.pick_split(&mut branch) {
                let disjuncts = branch.splits.remove(pos);
                let mut remaining = Vec::new();
                let mut satisfied = false;
                for d in disjuncts {
                    match self.literal_status(&mut branch, &d) {
                        LitStatus::True => {
                            satisfied = true;
                            break;
                        }
                        LitStatus::False => {}
                        LitStatus::Undecided => remaining.push(d),
                    }
                }
                if satisfied {
                    continue;
                }
                match remaining.len() {
                    0 => {
                        self.stats.branches += 1;
                        return BranchResult::Closed;
                    }
                    1 => {
                        branch.todo.push(remaining.pop().expect("len checked"));
                        continue;
                    }
                    _ => return self.split(branch, remaining),
                }
            }
            // 4. Quantifier instantiation.
            if branch.inst_rounds < self.solver.limits.max_inst_rounds {
                branch.inst_rounds += 1;
                let instances = self.instantiate(&mut branch);
                if !instances.is_empty() {
                    self.stats.instances += instances.len();
                    branch.todo.extend(instances);
                    continue;
                }
            } else if !branch.foralls.is_empty() && self.limit_hit.is_none() {
                // The round cap stopped us from even attempting another
                // instantiation round while universals remained; more
                // rounds might have closed the branch, so report a
                // resource limit rather than a definitive open branch.
                // (A branch that *saturated* — a round produced no new
                // instances — ends with inst_rounds below the cap and
                // is reported as genuinely open.)
                self.limit_hit = Some(format!(
                    "instantiation-round limit of {} reached with universals unsaturated",
                    self.solver.limits.max_inst_rounds
                ));
            }
            // Nothing more to do: the branch stays open.
            return BranchResult::Open(self.describe_branch(&mut branch));
        }
    }

    /// Splits the branch on the given alternatives; closed iff all close.
    fn split(&mut self, branch: Branch, alternatives: Vec<Formula>) -> BranchResult {
        fault::point("solver.split");
        if self.out_of_budget() {
            return BranchResult::Open(vec![]);
        }
        self.stats.splits += 1;
        if std::env::var_os("COBALT_LOGIC_DEBUG").is_some() && self.stats.splits <= 64 {
            let parts: Vec<String> = alternatives
                .iter()
                .map(|a| a.display(&self.solver.bank))
                .collect();
            eprintln!("[split {}] {}", self.stats.splits, parts.join("  |  "));
        }
        if self.stats.splits > self.solver.limits.max_splits {
            self.limit_hit = Some(format!(
                "case-split limit of {} exceeded",
                self.solver.limits.max_splits
            ));
            return BranchResult::Open(vec![]);
        }
        let n = alternatives.len();
        let mut branch = Some(branch);
        for (i, alt) in alternatives.into_iter().enumerate() {
            let mut sub = if i + 1 == n {
                branch.take().expect("taken once, on the last alternative")
            } else {
                branch.as_ref().expect("present until last").clone()
            };
            sub.todo.push(alt);
            let res = self.close(sub);
            if std::env::var_os("COBALT_LOGIC_DEBUG").is_some() && self.stats.splits <= 64 {
                eprintln!(
                    "[alt {i} of split] {}",
                    match &res {
                        BranchResult::Closed => "closed",
                        BranchResult::Open(_) => "open",
                    }
                );
            }
            match res {
                BranchResult::Closed => {}
                open => return open,
            }
        }
        BranchResult::Closed
    }

    /// Asserts one NNF formula; returns true on immediate conflict.
    fn assert_formula(&mut self, branch: &mut Branch, f: Formula) -> bool {
        mark_formula(&self.solver.bank, &mut branch.relevant, &f);
        match f {
            Formula::True => false,
            Formula::False => true,
            Formula::Eq(a, b) => {
                branch.cc.sync(&self.solver.bank);
                branch.cc.merge(a, b, &self.solver.bank);
                branch.cc.in_conflict()
            }
            Formula::Holds(t) => {
                let tt = self.solver.tt();
                branch.cc.sync(&self.solver.bank);
                branch.cc.merge(t, tt, &self.solver.bank);
                branch.cc.in_conflict()
            }
            Formula::Not(inner) => match *inner {
                Formula::Eq(a, b) => {
                    branch.cc.sync(&self.solver.bank);
                    branch.cc.assert_diseq(a, b, &self.solver.bank);
                    branch.cc.in_conflict()
                }
                Formula::Holds(t) => {
                    let tt = self.solver.tt();
                    branch.cc.sync(&self.solver.bank);
                    branch.cc.assert_diseq(t, tt, &self.solver.bank);
                    branch.cc.in_conflict()
                }
                other => {
                    // NNF guarantees negation only wraps atoms.
                    branch.todo.push(other.negate().nnf());
                    false
                }
            },
            Formula::And(ps) => {
                branch.todo.extend(ps);
                false
            }
            Formula::Or(ps) => {
                branch.splits.push(ps);
                false
            }
            f @ Formula::Forall { .. } => {
                branch.foralls.push(f);
                false
            }
            Formula::Exists { vars, body } => {
                if std::env::var_os("COBALT_LOGIC_DEBUG").is_some() {
                    eprintln!(
                        "[skolemize] splits={} foralls={} inst_rounds={}",
                        branch.splits.len(),
                        branch.foralls.len(),
                        branch.inst_rounds
                    );
                }
                let mut map = HashMap::new();
                for v in vars {
                    let name = self.solver.bank.sym_name(v).to_string();
                    let sk = self.solver.fresh_skolem(&name);
                    map.insert(v, sk);
                }
                let inst = body.subst(&mut self.solver.bank, &map);
                branch.todo.push(inst);
                false
            }
            Formula::Implies(_, _) | Formula::Iff(_, _) => {
                branch.todo.push(f.nnf());
                false
            }
        }
    }

    fn literal_status(&mut self, branch: &mut Branch, f: &Formula) -> LitStatus {
        branch.cc.sync(&self.solver.bank);
        match f {
            Formula::True => LitStatus::True,
            Formula::False => LitStatus::False,
            Formula::Eq(a, b) => {
                if branch.cc.are_eq(*a, *b) {
                    LitStatus::True
                } else if branch.cc.are_diseq(*a, *b, &self.solver.bank) {
                    LitStatus::False
                } else {
                    LitStatus::Undecided
                }
            }
            Formula::Holds(t) => {
                let tt = self.solver.tt();
                branch.cc.sync(&self.solver.bank);
                if branch.cc.are_eq(*t, tt) {
                    LitStatus::True
                } else if branch.cc.are_diseq(*t, tt, &self.solver.bank) {
                    LitStatus::False
                } else {
                    LitStatus::Undecided
                }
            }
            Formula::Not(inner) => match self.literal_status(branch, inner) {
                LitStatus::True => LitStatus::False,
                LitStatus::False => LitStatus::True,
                LitStatus::Undecided => LitStatus::Undecided,
            },
            _ => LitStatus::Undecided,
        }
    }

    fn pick_split(&mut self, branch: &mut Branch) -> Option<usize> {
        if branch.splits.is_empty() {
            None
        } else {
            // Prefer the smallest disjunction (cheapest split).
            let mut best = 0;
            for i in 1..branch.splits.len() {
                if branch.splits[i].len() < branch.splits[best].len() {
                    best = i;
                }
            }
            Some(best)
        }
    }

    /// Array theory: for every `select(m, k)` whose map class contains
    /// an `update(m2, k2, v2)`, resolve by index (dis)equality or
    /// request a case split.
    fn propagate_arrays(&mut self, branch: &mut Branch) -> ArrayStep {
        branch.cc.sync(&self.solver.bank);
        let select_sym = self.solver.bank.sym(SELECT);
        let update_sym = self.solver.bank.sym(UPDATE);
        let n = self.solver.bank.len();
        let mut selects = Vec::new();
        let mut updates = Vec::new();
        for i in 0..n {
            let t = TermId(i as u32);
            if !branch.relevant.contains(&t) {
                continue;
            }
            match self.solver.bank.data(t) {
                TermData::App(f, args) if *f == select_sym && args.len() == 2
                    && !self.solver.bank.has_var(t) => {
                        selects.push((t, args[0], args[1]));
                    }
                TermData::App(f, args) if *f == update_sym && args.len() == 3
                    && !self.solver.bank.has_var(t) => {
                        updates.push((t, args[0], args[1], args[2]));
                    }
                _ => {}
            }
        }
        let mut pending_split: Option<(TermId, TermId)> = None;
        let mut progress = false;
        for &(s, m, k) in &selects {
            for &(u, m2, k2, v2) in &updates {
                if !branch.cc.are_eq(u, m) {
                    continue;
                }
                if branch.cc.are_eq(k, k2) {
                    if !branch.cc.are_eq(s, v2) {
                        branch.cc.merge(s, v2, &self.solver.bank);
                        progress = true;
                        if branch.cc.in_conflict() {
                            return ArrayStep::Conflict;
                        }
                    }
                } else if branch.cc.are_diseq(k, k2, &self.solver.bank) {
                    if self.solver.bank.len() >= self.solver.limits.max_terms {
                        self.limit_hit = Some("term limit exceeded".into());
                        return ArrayStep::Quiet;
                    }
                    let s2 = self.solver.select(m2, k);
                    mark_term(&self.solver.bank, &mut branch.relevant, s2);
                    branch.cc.sync(&self.solver.bank);
                    if !branch.cc.are_eq(s, s2) {
                        branch.cc.merge(s, s2, &self.solver.bank);
                        progress = true;
                        if branch.cc.in_conflict() {
                            return ArrayStep::Conflict;
                        }
                    }
                } else if pending_split.is_none() {
                    pending_split = Some((k, k2));
                }
            }
        }
        if progress {
            ArrayStep::Progress
        } else if let Some((k, k2)) = pending_split {
            ArrayStep::Split(k, k2)
        } else {
            ArrayStep::Quiet
        }
    }

    /// Trigger-based instantiation of universal hypotheses.
    fn instantiate(&mut self, branch: &mut Branch) -> Vec<Formula> {
        let mut out = Vec::new();
        let foralls = branch.foralls.clone();
        for (fi, f) in foralls.iter().enumerate() {
            let Formula::Forall { vars, triggers, body } = f else {
                continue;
            };
            let bindings = if triggers.is_empty() {
                self.enumerate_bindings(branch, vars)
            } else {
                let mut all = Vec::new();
                for &trig in triggers {
                    all.extend(self.match_trigger(branch, trig, vars));
                }
                all
            };
            for binding in bindings {
                let key: Vec<TermId> = vars.iter().map(|v| binding[v]).collect();
                if !branch.done_instances.insert((fi, key)) {
                    continue;
                }
                if self.solver.bank.len() >= self.solver.limits.max_terms {
                    self.limit_hit = Some("term limit exceeded during instantiation".into());
                    return out;
                }
                if self.out_of_budget() {
                    return out;
                }
                let inst = body.subst(&mut self.solver.bank, &binding);
                out.push(inst);
            }
        }
        out
    }

    /// For trigger-less single-variable quantifiers: every ground term
    /// relevant to the branch (capped).
    fn enumerate_bindings(
        &mut self,
        branch: &Branch,
        vars: &[Sym],
    ) -> Vec<HashMap<Sym, TermId>> {
        if vars.len() != 1 {
            return Vec::new();
        }
        const ENUM_CAP: usize = 512;
        let mut relevant: Vec<TermId> = branch.relevant.iter().copied().collect();
        relevant.sort_unstable();
        let mut out = Vec::new();
        for t in relevant.into_iter().take(ENUM_CAP) {
            if matches!(self.solver.bank.data(t), TermData::Var(_)) || self.solver.bank.has_var(t)
            {
                continue;
            }
            let mut m = HashMap::new();
            m.insert(vars[0], t);
            out.push(m);
        }
        out
    }

    /// Matches one trigger pattern against the branch's ground terms.
    fn match_trigger(
        &mut self,
        branch: &mut Branch,
        trigger: TermId,
        vars: &[Sym],
    ) -> Vec<HashMap<Sym, TermId>> {
        let mut out = Vec::new();
        let mut relevant: Vec<TermId> = branch.relevant.iter().copied().collect();
        relevant.sort_unstable();
        for t in relevant {
            if self.solver.bank.has_var(t) {
                continue;
            }
            let mut binding = HashMap::new();
            if self.match_pattern(trigger, t, &mut binding)
                && vars.iter().all(|v| binding.contains_key(v))
            {
                out.push(binding);
            }
        }
        out
    }

    fn match_pattern(
        &self,
        pat: TermId,
        t: TermId,
        binding: &mut HashMap<Sym, TermId>,
    ) -> bool {
        match self.solver.bank.data(pat).clone() {
            TermData::Var(v) => match binding.get(&v) {
                Some(&prev) => prev == t,
                None => {
                    binding.insert(v, t);
                    true
                }
            },
            TermData::Int(n) => matches!(self.solver.bank.data(t), TermData::Int(m) if *m == n),
            TermData::App(f, pargs) => match self.solver.bank.data(t).clone() {
                TermData::App(g, targs) if g == f && targs.len() == pargs.len() => pargs
                    .iter()
                    .zip(targs.iter())
                    .all(|(&p, &a)| self.match_pattern(p, a, binding)),
                _ => false,
            },
        }
    }

    /// Renders the open branch as a counterexample context (the paper's
    /// §7 error-reporting artifact): the equivalence classes the branch
    /// committed to among named constants, plus whatever remained
    /// undecided or unsaturated.
    fn describe_branch(&mut self, branch: &mut Branch) -> Vec<String> {
        let mut out = Vec::new();
        // Merged classes among the branch's named constants.
        let mut named: Vec<TermId> = branch
            .relevant
            .iter()
            .copied()
            .filter(|&t| matches!(self.solver.bank.data(t), TermData::App(_, args) if args.is_empty()))
            .collect();
        named.sort_unstable();
        let mut classes: HashMap<TermId, Vec<TermId>> = HashMap::new();
        for t in named {
            let r = branch.cc.find(t);
            classes.entry(r).or_default().push(t);
        }
        let mut class_lines: Vec<String> = classes
            .values()
            .filter(|members| members.len() > 1)
            .map(|members| {
                let names: Vec<String> = members
                    .iter()
                    .map(|&t| self.solver.bank.display(t))
                    .collect();
                format!("assumed equal: {}", names.join(" = "))
            })
            .collect();
        class_lines.sort();
        out.extend(class_lines.into_iter().take(6));
        // Render only as many groups as could survive the clamp below;
        // large VCs would otherwise build multi-KB strings just to
        // throw them away.
        let room = MAX_CONTEXT_LITERALS + 1;
        let mut dropped = 0usize;
        for group in &branch.splits {
            if out.len() >= room {
                dropped += 1;
                continue;
            }
            let parts: Vec<String> = group
                .iter()
                .map(|g| g.display(&self.solver.bank))
                .collect();
            out.push(format!("undecided: (or {})", parts.join(" ")));
        }
        for f in &branch.foralls {
            if out.len() >= room {
                dropped += 1;
                continue;
            }
            out.push(format!("unsaturated: {}", f.display(&self.solver.bank)));
        }
        out.extend(std::iter::repeat_with(String::new).take(dropped));
        clamp_context(&mut out, MAX_CONTEXT_LITERALS, MAX_CONTEXT_LITERAL_CHARS);
        out
    }
}

enum LitStatus {
    True,
    False,
    Undecided,
}

enum ArrayStep {
    Quiet,
    Progress,
    Conflict,
    Split(TermId, TermId),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prove(solver: &mut Solver, hyps: Vec<Formula>, goal: Formula) -> bool {
        solver
            .prove(&ProofTask {
                hypotheses: hyps,
                goal,
            })
            .is_proved()
    }

    #[test]
    fn euf_transitivity_and_congruence() {
        let mut s = Solver::new();
        let f = s.bank.sym("f");
        let (x, y, z) = (s.bank.app0("x"), s.bank.app0("y"), s.bank.app0("z"));
        let fx = s.bank.app(f, vec![x]);
        let fz = s.bank.app(f, vec![z]);
        assert!(prove(
            &mut s,
            vec![Formula::Eq(x, y), Formula::Eq(y, z)],
            Formula::Eq(fx, fz)
        ));
    }

    #[test]
    fn unprovable_goal_is_unknown() {
        let mut s = Solver::new();
        let (x, y) = (s.bank.app0("x"), s.bank.app0("y"));
        let out = s.prove(&ProofTask {
            hypotheses: vec![],
            goal: Formula::Eq(x, y),
        });
        assert!(!out.is_proved());
        if let Outcome::Unknown { reason, .. } = out {
            assert!(reason.contains("open branch"), "{reason}");
        }
    }

    #[test]
    fn modus_ponens_via_disjunction() {
        let mut s = Solver::new();
        let p = s.bank.app0("p");
        let q = s.bank.app0("q");
        let hyp1 = Formula::implies(Formula::Holds(p), Formula::Holds(q));
        let hyp2 = Formula::Holds(p);
        assert!(prove(&mut s, vec![hyp1, hyp2], Formula::Holds(q)));
    }

    #[test]
    fn case_split_on_disjunction() {
        let mut s = Solver::new();
        let (a, b, c) = (s.bank.app0("a"), s.bank.app0("b"), s.bank.app0("c"));
        // (a=c ∨ b=c) ∧ a=b ⊨ b=c
        let hyp = Formula::or([Formula::Eq(a, c), Formula::Eq(b, c)]);
        assert!(prove(
            &mut s,
            vec![hyp, Formula::Eq(a, b)],
            Formula::Eq(b, c)
        ));
    }

    #[test]
    fn read_over_write_same_key() {
        let mut s = Solver::new();
        let m = s.bank.app0("m");
        let k = s.bank.app0("k");
        let v = s.bank.app0("v");
        let upd = s.update(m, k, v);
        let sel = s.select(upd, k);
        assert!(prove(&mut s, vec![], Formula::Eq(sel, v)));
    }

    #[test]
    fn read_over_write_distinct_key() {
        let mut s = Solver::new();
        let m = s.bank.app0("m");
        let (k1, k2) = (s.bank.app0("k1"), s.bank.app0("k2"));
        let v = s.bank.app0("v");
        let upd = s.update(m, k1, v);
        let sel = s.select(upd, k2);
        let sel0 = s.select(m, k2);
        assert!(prove(
            &mut s,
            vec![Formula::ne(k1, k2)],
            Formula::Eq(sel, sel0)
        ));
    }

    #[test]
    fn read_over_write_requires_case_split() {
        let mut s = Solver::new();
        let m = s.bank.app0("m");
        let (k1, k2) = (s.bank.app0("k1"), s.bank.app0("k2"));
        let v = s.bank.app0("v");
        let upd = s.update(m, k1, v);
        let sel = s.select(upd, k2);
        let sel0 = s.select(m, k2);
        // Without knowing k1 vs k2: select(update(m,k1,v),k2) is either v
        // (if k1=k2) or select(m,k2). Prove the disjunction.
        let goal = Formula::or([Formula::Eq(sel, v), Formula::Eq(sel, sel0)]);
        assert!(prove(&mut s, vec![], goal));
    }

    #[test]
    fn nested_updates() {
        let mut s = Solver::new();
        let m = s.bank.app0("m");
        let (k1, k2) = (s.bank.app0("k1"), s.bank.app0("k2"));
        let (v1, v2) = (s.bank.app0("v1"), s.bank.app0("v2"));
        let u1 = s.update(m, k1, v1);
        let u2 = s.update(u1, k2, v2);
        let sel = s.select(u2, k1);
        // k1 ≠ k2 ⊨ select(update(update(m,k1,v1),k2,v2), k1) = v1
        assert!(prove(
            &mut s,
            vec![Formula::ne(k1, k2)],
            Formula::Eq(sel, v1)
        ));
    }

    #[test]
    fn constructors_discriminate() {
        let mut s = Solver::new();
        let skip = s.bank.constructor("skip");
        let decl = s.bank.constructor("decl");
        let x = s.bank.app0("x");
        let sk = s.bank.app(skip, vec![]);
        let dc = s.bank.app(decl, vec![x]);
        let cur = s.bank.app0("cur");
        // cur = skip ⊨ ¬(cur = decl(x))
        assert!(prove(
            &mut s,
            vec![Formula::Eq(cur, sk)],
            Formula::ne(cur, dc)
        ));
    }

    #[test]
    fn constructor_injectivity_proves_arg_equality() {
        let mut s = Solver::new();
        let c = s.bank.constructor("intval");
        let (x, y) = (s.bank.app0("x"), s.bank.app0("y"));
        let cx = s.bank.app(c, vec![x]);
        let cy = s.bank.app(c, vec![y]);
        assert!(prove(
            &mut s,
            vec![Formula::Eq(cx, cy)],
            Formula::Eq(x, y)
        ));
    }

    #[test]
    fn distinct_int_literals() {
        let mut s = Solver::new();
        let zero = s.bank.int(0);
        let one = s.bank.int(1);
        assert!(prove(&mut s, vec![], Formula::ne(zero, one)));
    }

    #[test]
    fn skolemization_of_universal_goal() {
        let mut s = Solver::new();
        // hyp: ∀v. f(v) = a  ⊨  goal: ∀w. f(w) = a
        let fsym = s.bank.sym("f");
        let a = s.bank.app0("a");
        let vsym = s.bank.sym("V");
        let v = s.bank.var("V");
        let fv = s.bank.app(fsym, vec![v]);
        let hyp = Formula::Forall {
            vars: vec![vsym],
            triggers: vec![fv],
            body: Box::new(Formula::Eq(fv, a)),
        };
        let wsym = s.bank.sym("W");
        let w = s.bank.var("W");
        let fw = s.bank.app(fsym, vec![w]);
        let goal = Formula::Forall {
            vars: vec![wsym],
            triggers: vec![],
            body: Box::new(Formula::Eq(fw, a)),
        };
        assert!(prove(&mut s, vec![hyp], goal));
    }

    #[test]
    fn instantiation_with_guard() {
        let mut s = Solver::new();
        // ∀v. v ≠ k ⇒ select(m, v) = select(n, v); c ≠ k
        // ⊨ select(m, c) = select(n, c)
        let (m, n, k, c) = (
            s.bank.app0("m"),
            s.bank.app0("n"),
            s.bank.app0("k"),
            s.bank.app0("c"),
        );
        let vsym = s.bank.sym("V");
        let v = s.bank.var("V");
        let sel_mv = s.select(m, v);
        let sel_nv = s.select(n, v);
        let hyp = Formula::Forall {
            vars: vec![vsym],
            triggers: vec![sel_mv],
            body: Box::new(Formula::implies(
                Formula::ne(v, k),
                Formula::Eq(sel_mv, sel_nv),
            )),
        };
        let sel_mc = s.select(m, c);
        let sel_nc = s.select(n, c);
        assert!(prove(
            &mut s,
            vec![hyp, Formula::ne(c, k)],
            Formula::Eq(sel_mc, sel_nc)
        ));
    }

    #[test]
    fn enumeration_fallback_for_triggerless_forall() {
        let mut s = Solver::new();
        let p = s.bank.sym("p");
        let a = s.bank.app0("a");
        let vsym = s.bank.sym("V");
        let v = s.bank.var("V");
        let pv = s.bank.app(p, vec![v]);
        let hyp = Formula::Forall {
            vars: vec![vsym],
            triggers: vec![],
            body: Box::new(Formula::Holds(pv)),
        };
        let pa = s.bank.app(p, vec![a]);
        assert!(prove(&mut s, vec![hyp], Formula::Holds(pa)));
    }

    #[test]
    fn split_limit_reports_unknown() {
        let mut s = Solver::with_limits(Limits {
            max_splits: 1,
            ..Limits::default()
        });
        let atoms: Vec<TermId> = (0..6).map(|i| s.bank.app0(&format!("a{i}"))).collect();
        let target = s.bank.app0("t");
        let hyps: Vec<Formula> = atoms
            .chunks(2)
            .map(|c| Formula::or([Formula::Eq(c[0], target), Formula::Eq(c[1], target)]))
            .collect();
        let impossible = Formula::Eq(atoms[0], atoms[1]);
        let out = s.prove(&ProofTask {
            hypotheses: hyps,
            goal: impossible,
        });
        assert!(!out.is_proved());
    }

    /// A task needing many case splits: n binary disjunctions over
    /// fresh atoms with an impossible goal.
    fn split_heavy_task(s: &mut Solver, n: usize) -> ProofTask {
        let atoms: Vec<TermId> = (0..2 * n).map(|i| s.bank.app0(&format!("a{i}"))).collect();
        let target = s.bank.app0("t");
        let hyps: Vec<Formula> = atoms
            .chunks(2)
            .map(|c| Formula::or([Formula::Eq(c[0], target), Formula::Eq(c[1], target)]))
            .collect();
        ProofTask {
            hypotheses: hyps,
            goal: Formula::Eq(atoms[0], atoms[1]),
        }
    }

    #[test]
    fn deadline_zero_reports_resource_limit() {
        let mut s = Solver::with_limits(Limits {
            deadline: Some(Duration::ZERO),
            ..Limits::default()
        });
        let task = split_heavy_task(&mut s, 8);
        let out = s.prove(&task);
        assert!(out.is_resource_limited(), "{out:?}");
        if let Outcome::Unknown { reason, .. } = &out {
            assert!(reason.contains("deadline exceeded"), "{reason}");
        }
    }

    #[test]
    fn budget_deadline_merges_with_limits_deadline() {
        let mut s = Solver::with_limits(Limits {
            deadline: Some(Duration::from_secs(3600)),
            ..Limits::default()
        });
        s.set_budget(Budget::with_deadline(Duration::ZERO));
        let task = split_heavy_task(&mut s, 8);
        assert!(s.prove(&task).is_resource_limited());
    }

    #[test]
    fn step_cap_reports_resource_limit() {
        let mut s = Solver::new();
        s.set_budget(Budget {
            max_steps: Some(3),
            ..Budget::default()
        });
        let task = split_heavy_task(&mut s, 8);
        let out = s.prove(&task);
        assert!(out.is_resource_limited(), "{out:?}");
        if let Outcome::Unknown { reason, .. } = &out {
            assert!(reason.contains("step cap"), "{reason}");
        }
    }

    #[test]
    fn cancel_flag_aborts_search() {
        let mut s = Solver::new();
        let flag = s.cancel_flag();
        flag.store(true, Ordering::Relaxed);
        let task = split_heavy_task(&mut s, 8);
        let out = s.prove(&task);
        assert!(out.is_resource_limited(), "{out:?}");
        if let Outcome::Unknown { reason, .. } = &out {
            assert!(reason.contains("cancelled"), "{reason}");
        }
    }

    #[test]
    fn cancelled_solver_never_starts_a_tableau() {
        // Regression: a pre-tripped cancel flag (a parallel sibling
        // found an unsound obligation) must fast-fail before NNF and
        // congruence-closure setup, like the zero-deadline path.
        let mut s = Solver::new();
        let flag = s.cancel_flag();
        flag.store(true, Ordering::Relaxed);
        // A provable goal: only the fast-fail can explain an Unknown.
        let (x, y) = (s.bank.app0("x"), s.bank.app0("y"));
        let out = s.prove(&ProofTask {
            hypotheses: vec![Formula::Eq(x, y)],
            goal: Formula::Eq(y, x),
        });
        assert!(out.is_resource_limited(), "{out:?}");
        let Outcome::Unknown { reason, stats, .. } = out else {
            panic!("expected Unknown");
        };
        assert!(reason.contains("cancelled by caller before search"), "{reason}");
        assert_eq!(stats, Stats::default(), "no search work may have happened");
    }

    #[test]
    fn expired_deadline_never_starts_a_tableau() {
        let mut s = Solver::new();
        s.set_budget(Budget::with_deadline(Duration::ZERO));
        let (x, y) = (s.bank.app0("x"), s.bank.app0("y"));
        let out = s.prove(&ProofTask {
            hypotheses: vec![Formula::Eq(x, y)],
            goal: Formula::Eq(y, x),
        });
        assert!(out.is_resource_limited(), "{out:?}");
        let Outcome::Unknown { reason, stats, .. } = out else {
            panic!("expected Unknown");
        };
        assert!(reason.contains("before search began"), "{reason}");
        assert_eq!(stats, Stats::default());
    }

    #[test]
    fn budget_does_not_disturb_successful_proofs() {
        let mut s = Solver::new();
        s.set_budget(Budget::with_deadline(Duration::from_secs(60)));
        let f = s.bank.sym("f");
        let (x, y) = (s.bank.app0("x"), s.bank.app0("y"));
        let fx = s.bank.app(f, vec![x]);
        let fy = s.bank.app(f, vec![y]);
        assert!(prove(&mut s, vec![Formula::Eq(x, y)], Formula::Eq(fx, fy)));
    }

    #[test]
    fn degenerate_zero_limits_fail_fast_without_panic() {
        // Regression: max_terms 0 used to be noticed only once
        // instantiation began; it must short-circuit before search.
        let mut s = Solver::with_limits(Limits {
            max_splits: 0,
            max_terms: 0,
            max_inst_rounds: 0,
            deadline: None,
        });
        let (x, y) = (s.bank.app0("x"), s.bank.app0("y"));
        let start = Instant::now();
        let out = s.prove(&ProofTask {
            hypotheses: vec![Formula::Eq(x, y)],
            goal: Formula::Eq(y, x),
        });
        assert!(out.is_resource_limited(), "{out:?}");
        if let Outcome::Unknown { reason, .. } = &out {
            assert!(reason.contains("term limit"), "{reason}");
        }
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn split_limit_is_flagged_as_resource_limit() {
        let mut s = Solver::with_limits(Limits {
            max_splits: 1,
            ..Limits::default()
        });
        let task = split_heavy_task(&mut s, 3);
        let out = s.prove(&task);
        assert!(!out.is_proved());
        assert!(out.is_resource_limited(), "{out:?}");
    }

    #[test]
    fn saturated_open_branch_is_not_resource_limited() {
        let mut s = Solver::new();
        let (x, y) = (s.bank.app0("x"), s.bank.app0("y"));
        let out = s.prove(&ProofTask {
            hypotheses: vec![],
            goal: Formula::Eq(x, y),
        });
        assert!(!out.is_proved());
        assert!(!out.is_resource_limited(), "{out:?}");
    }

    #[test]
    fn inst_round_cap_with_unsaturated_foralls_is_a_limit() {
        let mut s = Solver::with_limits(Limits {
            max_inst_rounds: 0,
            ..Limits::default()
        });
        let p = s.bank.sym("p");
        let a = s.bank.app0("a");
        let vsym = s.bank.sym("V");
        let v = s.bank.var("V");
        let pv = s.bank.app(p, vec![v]);
        let hyp = Formula::Forall {
            vars: vec![vsym],
            triggers: vec![],
            body: Box::new(Formula::Holds(pv)),
        };
        let pa = s.bank.app(p, vec![a]);
        let out = s.prove(&ProofTask {
            hypotheses: vec![hyp],
            goal: Formula::Holds(pa),
        });
        assert!(!out.is_proved());
        assert!(out.is_resource_limited(), "{out:?}");
    }

    #[test]
    fn open_branch_context_is_clamped() {
        let mut s = Solver::new();
        // 30 unsaturated universals (two vars, no triggers: never
        // instantiated) → far more context lines than the clamp
        // allows; one of them mentions an enormous ground term so a
        // single rendered literal would exceed the length clamp too.
        let p = s.bank.sym("p");
        let f = s.bank.sym("f");
        let mut deep = s.bank.app0("leaf_with_a_rather_long_name");
        for _ in 0..80 {
            deep = s.bank.app(f, vec![deep]);
        }
        let mut hyps = Vec::new();
        for i in 0..30 {
            let vsym = s.bank.sym(&format!("V{i}"));
            let wsym = s.bank.sym(&format!("W{i}"));
            let v = s.bank.var(&format!("V{i}"));
            let w = s.bank.var(&format!("W{i}"));
            let body = s.bank.app(p, vec![v, w, deep]);
            hyps.push(Formula::Forall {
                vars: vec![vsym, wsym],
                triggers: vec![],
                body: Box::new(Formula::Holds(body)),
            });
        }
        let (x, y) = (s.bank.app0("x"), s.bank.app0("y"));
        let out = s.prove(&ProofTask {
            hypotheses: hyps,
            goal: Formula::Eq(x, y),
        });
        let Outcome::Unknown { open_branch, .. } = out else {
            panic!("expected Unknown");
        };
        assert!(
            open_branch.len() <= MAX_CONTEXT_LITERALS + 1,
            "{} lines",
            open_branch.len()
        );
        assert!(
            open_branch.last().unwrap().contains("more)"),
            "expected a (+N more) marker, got {:?}",
            open_branch.last()
        );
        for lit in &open_branch {
            assert!(
                lit.chars().count() <= MAX_CONTEXT_LITERAL_CHARS,
                "literal too long: {} chars",
                lit.chars().count()
            );
        }
    }

    #[test]
    fn clamp_context_helper_behaviour() {
        let mut lits: Vec<String> = (0..20).map(|i| format!("lit{i}")).collect();
        clamp_context(&mut lits, 5, 100);
        assert_eq!(lits.len(), 6);
        assert_eq!(lits[5], "… (+15 more)");
        let mut long = vec!["x".repeat(500)];
        clamp_context(&mut long, 5, 10);
        assert!(long[0].chars().count() <= 10);
        assert!(long[0].ends_with('…'));
        let mut small = vec!["a".to_string()];
        clamp_context(&mut small, 5, 10);
        assert_eq!(small, vec!["a".to_string()]);
    }

    #[test]
    fn fault_point_in_prove_is_isolated_by_caller() {
        cobalt_support::fault::with_faults("solver.prove:panic@1", || {
            let result = std::panic::catch_unwind(|| {
                let mut s = Solver::new();
                let x = s.bank.app0("x");
                s.prove(&ProofTask {
                    hypotheses: vec![],
                    goal: Formula::Eq(x, x),
                })
            });
            assert!(result.is_err(), "injected panic must fire");
        });
    }

    #[test]
    fn iff_in_hypotheses() {
        let mut s = Solver::new();
        let p = s.bank.app0("p");
        let q = s.bank.app0("q");
        let hyp = Formula::Iff(Box::new(Formula::Holds(p)), Box::new(Formula::Holds(q)));
        assert!(prove(
            &mut s,
            vec![hyp, Formula::Holds(q)],
            Formula::Holds(p)
        ));
    }

    #[test]
    fn proof_by_contradiction_with_negated_predicate() {
        let mut s = Solver::new();
        let p = s.bank.app0("p");
        assert!(prove(
            &mut s,
            vec![Formula::Holds(p).negate(), Formula::Holds(p)],
            Formula::False
        ));
    }

    #[test]
    fn stats_are_recorded() {
        let mut s = Solver::new();
        let m = s.bank.app0("m");
        let (k1, k2) = (s.bank.app0("k1"), s.bank.app0("k2"));
        let v = s.bank.app0("v");
        let upd = s.update(m, k1, v);
        let sel = s.select(upd, k2);
        let sel0 = s.select(m, k2);
        let goal = Formula::or([Formula::Eq(sel, v), Formula::Eq(sel, sel0)]);
        let out = s.prove(&ProofTask {
            hypotheses: vec![],
            goal,
        });
        match out {
            Outcome::Proved { stats, .. } => {
                assert!(stats.branches >= 1);
            }
            other => panic!("expected proof, got {other:?}"),
        }
    }
}
