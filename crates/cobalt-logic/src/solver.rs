//! The proof search engine: a tableau over the congruence-closure core,
//! with an integrated select/update array theory and trigger-based
//! quantifier instantiation.
//!
//! This plays the role Simplify plays in the paper (§5.1): it receives
//! the optimization-specific proof obligations together with background
//! axioms and attempts to discharge them fully automatically. The
//! obligations are *validity* checks `hypotheses ⊨ goal`; the solver
//! refutes `hypotheses ∧ ¬goal` by closing every tableau branch.
//!
//! Theories:
//!
//! * **EUF** with free constructors — see [`crate::cc`].
//! * **Arrays** (`select`/`update`): read-over-write is decided by
//!   merging when indices are known equal or known distinct, and by
//!   case-splitting on index equality otherwise.
//! * **Quantifiers**: universal hypotheses are instantiated by syntactic
//!   matching of their trigger patterns against ground terms
//!   (Simplify-style matching); existential hypotheses (and universal
//!   goals) are skolemized.

use crate::cc::Cc;
use crate::formula::Formula;
use crate::term::{Sym, TermBank, TermData, TermId};
use cobalt_support::fault;
use cobalt_support::{FastMap, FastSet};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The function symbol used for array reads.
pub const SELECT: &str = "select";
/// The function symbol used for functional array writes.
pub const UPDATE: &str = "update";

/// Resource limits for proof search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of case splits across the whole search.
    pub max_splits: usize,
    /// Maximum quantifier-instantiation rounds per branch.
    pub max_inst_rounds: usize,
    /// Hard cap on interned terms (guards runaway instantiation).
    pub max_terms: usize,
    /// Wall-clock deadline for one `prove` call. `None` means no
    /// deadline; exceeding it yields a resource-limit
    /// [`Outcome::Unknown`], never an error or a hang.
    pub deadline: Option<Duration>,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_splits: 20_000,
            max_inst_rounds: 4,
            max_terms: 200_000,
            deadline: None,
        }
    }
}

/// A cooperative resource budget for proof search, complementing the
/// structural caps in [`Limits`]: a wall-clock deadline, an optional
/// step cap (each search-loop iteration, asserted formula, split, and
/// generated instance counts as one step), and a cancel flag an outside
/// thread may set to abandon the search at the next check.
///
/// Exhausting any of these produces a resource-limit
/// [`Outcome::Unknown`] — bounded effort is a report, never a crash.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Wall-clock deadline for one `prove` call. When [`Limits`] also
    /// carries a deadline, the smaller of the two wins.
    pub deadline: Option<Duration>,
    /// Maximum number of search steps.
    pub max_steps: Option<u64>,
    /// Cooperative cancellation: set to `true` from any thread to make
    /// the search give up at its next budget check.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl Budget {
    /// A budget with only a wall-clock deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        Budget {
            deadline: Some(deadline),
            ..Budget::default()
        }
    }
}

/// How often (in steps) the meter consults the clock and cancel flag;
/// structural caps are checked on every step.
const METER_CHECK_INTERVAL: u64 = 16;

/// Runtime state of a [`Budget`] during one `prove` call.
struct Meter {
    start: Instant,
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    steps: u64,
    cancel: Option<Arc<AtomicBool>>,
}

impl Meter {
    fn new(start: Instant, limits: &Limits, budget: &Budget) -> Self {
        let duration = match (limits.deadline, budget.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Meter {
            start,
            deadline: duration.and_then(|d| start.checked_add(d)),
            max_steps: budget.max_steps,
            steps: 0,
            cancel: budget.cancel.clone(),
        }
    }

    /// Advances the meter by one step; returns the give-up reason once
    /// the budget is exhausted.
    fn tick(&mut self) -> Option<String> {
        self.steps += 1;
        if let Some(cap) = self.max_steps {
            if self.steps > cap {
                return Some(format!("step cap of {cap} exceeded"));
            }
        }
        if self.steps == 1 || self.steps % METER_CHECK_INTERVAL == 0 {
            if let Some(flag) = &self.cancel {
                if flag.load(Ordering::Relaxed) {
                    return Some(format!(
                        "cancelled by caller after {:.1?}",
                        self.start.elapsed()
                    ));
                }
            }
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    return Some(format!(
                        "deadline exceeded after {:.1?}",
                        self.start.elapsed()
                    ));
                }
            }
        }
        None
    }
}

/// Statistics from a successful proof.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Number of case splits explored.
    pub splits: usize,
    /// Number of quantifier instances generated.
    pub instances: usize,
    /// Number of tableau branches closed.
    pub branches: usize,
}

/// Why a proof attempt came back [`Outcome::Unknown`]. The distinction
/// drives retry policy: a resource limit is worth retrying with a
/// bigger budget, an open branch is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnknownKind {
    /// The search saturated with an open branch — evidence (not proof)
    /// that the goal does not follow from the hypotheses.
    OpenBranch,
    /// The search gave up on a resource limit: case splits, interned
    /// terms, instantiation rounds, steps, deadline, or cancellation.
    ResourceLimit,
}

/// The outcome of a proof attempt.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The goal is valid under the hypotheses.
    Proved {
        /// Search statistics.
        stats: Stats,
        /// Wall-clock time spent.
        elapsed: Duration,
    },
    /// The search found a branch it could not close (potential
    /// counterexample) or hit a resource limit.
    Unknown {
        /// Why the search gave up.
        reason: String,
        /// Whether the failure was a resource limit or a saturated open
        /// branch.
        kind: UnknownKind,
        /// The literals of the first open branch — the paper's
        /// "counterexample context" (§7), used for error reporting.
        /// Clamped to [`MAX_CONTEXT_LITERALS`] entries.
        open_branch: Vec<String>,
        /// Search statistics up to the point of giving up.
        stats: Stats,
        /// Wall-clock time spent.
        elapsed: Duration,
    },
}

impl Outcome {
    /// Whether the obligation was proved.
    pub fn is_proved(&self) -> bool {
        matches!(self, Outcome::Proved { .. })
    }

    /// Whether the attempt gave up on a resource limit (splits, terms,
    /// rounds, steps, deadline, or cancellation) rather than saturating
    /// with an open branch. Resource-limited attempts are candidates
    /// for retrying with a larger budget.
    pub fn is_resource_limited(&self) -> bool {
        matches!(
            self,
            Outcome::Unknown {
                kind: UnknownKind::ResourceLimit,
                ..
            }
        )
    }

    /// Time spent on the attempt.
    pub fn elapsed(&self) -> Duration {
        match self {
            Outcome::Proved { elapsed, .. } | Outcome::Unknown { elapsed, .. } => *elapsed,
        }
    }

    /// Search statistics, whether or not the proof succeeded.
    pub fn stats(&self) -> &Stats {
        match self {
            Outcome::Proved { stats, .. } | Outcome::Unknown { stats, .. } => stats,
        }
    }
}

/// Most literals kept in a counterexample context; the rest collapse
/// into a `… (+N more)` marker.
pub const MAX_CONTEXT_LITERALS: usize = 12;

/// Longest rendered literal kept in a counterexample context; longer
/// ones are cut at a char boundary with a `…` suffix.
pub const MAX_CONTEXT_LITERAL_CHARS: usize = 200;

/// Clamps a counterexample context in place: at most `max_lits`
/// literals, each at most `max_chars` characters, with a trailing
/// `… (+N more)` marker when literals were dropped. Large proof
/// obligations otherwise produce unbounded multi-KB failure strings.
pub fn clamp_context(lits: &mut Vec<String>, max_lits: usize, max_chars: usize) {
    for lit in lits.iter_mut() {
        if lit.chars().count() > max_chars {
            let cut = lit
                .char_indices()
                .nth(max_chars.saturating_sub(1))
                .map_or(lit.len(), |(i, _)| i);
            lit.truncate(cut);
            lit.push('…');
        }
    }
    if lits.len() > max_lits {
        let dropped = lits.len() - max_lits;
        lits.truncate(max_lits);
        lits.push(format!("… (+{dropped} more)"));
    }
}

/// A proof obligation: `hypotheses ⊨ goal`.
#[derive(Debug, Clone)]
pub struct ProofTask {
    /// Formulas assumed true.
    pub hypotheses: Vec<Formula>,
    /// The formula to establish.
    pub goal: Formula,
}

/// The theorem prover.
///
/// # Examples
///
/// ```
/// use cobalt_logic::{Formula, ProofTask, Solver};
/// let mut solver = Solver::new();
/// let x = solver.bank.app0("x");
/// let y = solver.bank.app0("y");
/// let task = ProofTask {
///     hypotheses: vec![Formula::Eq(x, y)],
///     goal: Formula::Eq(y, x),
/// };
/// assert!(solver.prove(&task).is_proved());
/// ```
#[derive(Debug, Default)]
pub struct Solver {
    /// The term arena. Public so callers can build hypothesis and goal
    /// terms directly in it.
    pub bank: TermBank,
    limits: Limits,
    budget: Budget,
    skolem_counter: u64,
    /// Congruence-closure context kept warm between `prove` calls.
    /// The permanent (below-savepoint) layer only ever registers bank
    /// terms — hash-consing guarantees a merge-free sync — so the next
    /// call resumes from it instead of re-registering every term.
    cc_cache: Option<Cc>,
}

impl Solver {
    /// Creates a solver with default limits.
    pub fn new() -> Self {
        Solver::default()
    }

    /// Creates a solver with the given limits.
    pub fn with_limits(limits: Limits) -> Self {
        Solver {
            limits,
            ..Solver::default()
        }
    }

    /// Creates a solver whose bank overlays a frozen shared base (see
    /// [`TermBank::with_base`]): the base vocabulary is visible, and
    /// search-time terms (skolems, instances) stay private to this
    /// solver. Batch verification uses this to encode a rule's
    /// obligations once and prove each against a cheap overlay.
    pub fn with_base_bank(base: Arc<TermBank>) -> Self {
        Solver {
            bank: TermBank::with_base(base),
            ..Solver::default()
        }
    }

    /// Replaces the resource limits (e.g. after terms have already been
    /// built in the bank).
    pub fn set_limits(&mut self, limits: Limits) {
        self.limits = limits;
    }

    /// Replaces the cooperative budget (deadline, step cap, cancel
    /// flag) applied to every subsequent `prove` call.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Installs and returns a cancel flag: set it to `true` from any
    /// thread and the running `prove` gives up at its next budget
    /// check, reporting a resource-limit [`Outcome::Unknown`].
    pub fn cancel_flag(&mut self) -> Arc<AtomicBool> {
        let flag = Arc::new(AtomicBool::new(false));
        self.install_cancel(flag.clone());
        flag
    }

    /// Installs an externally shared cancel flag (e.g. a worker pool's
    /// fail-fast token), leaving the rest of the budget untouched.
    /// Unlike [`cancel_flag`](Self::cancel_flag), many solvers may
    /// share one flag: tripping it stands every one of them down.
    pub fn install_cancel(&mut self, flag: Arc<AtomicBool>) {
        self.budget.cancel = Some(flag);
    }

    /// The distinguished "true" constant used to encode predicates.
    pub fn tt(&mut self) -> TermId {
        let s = self.bank.constructor("$true");
        self.bank.app(s, Vec::new())
    }

    /// Builds `select(map, key)`.
    pub fn select(&mut self, map: TermId, key: TermId) -> TermId {
        let s = self.bank.sym(SELECT);
        self.bank.app(s, vec![map, key])
    }

    /// Builds `update(map, key, value)`.
    pub fn update(&mut self, map: TermId, key: TermId, value: TermId) -> TermId {
        let s = self.bank.sym(UPDATE);
        self.bank.app(s, vec![map, key, value])
    }

    /// Attempts to prove the task, refuting `hypotheses ∧ ¬goal`.
    ///
    /// Effort is bounded by the solver's [`Limits`] and [`Budget`]:
    /// when any cap, deadline, or cancellation is hit the search stops
    /// and reports a resource-limit [`Outcome::Unknown`] — it never
    /// runs unbounded.
    pub fn prove(&mut self, task: &ProofTask) -> Outcome {
        let start = Instant::now();
        fault::point("solver.prove");
        // Degenerate limits short-circuit before any work. The term cap
        // bounds terms *minted during this call* — never the bank's
        // total size, which depends on how much vocabulary the caller
        // (or a shared base layer) interned up front — so only a cap of
        // zero can make no progress at all.
        if self.limits.max_terms == 0 {
            return Outcome::Unknown {
                reason: "term limit of 0 exceeded before search began".into(),
                kind: UnknownKind::ResourceLimit,
                open_branch: Vec::new(),
                stats: Stats::default(),
                elapsed: start.elapsed(),
            };
        }
        // A cancelled or zero-budget call must not start a tableau at
        // all: NNF conversion and the congruence-closure sync below do
        // real work proportional to the obligation, and a parallel
        // sibling that tripped our cancel flag expects us to stand down
        // now, not after the meter's first in-search check.
        if let Some(flag) = &self.budget.cancel {
            if flag.load(Ordering::Relaxed) {
                return Outcome::Unknown {
                    reason: "cancelled by caller before search began".into(),
                    kind: UnknownKind::ResourceLimit,
                    open_branch: Vec::new(),
                    stats: Stats::default(),
                    elapsed: start.elapsed(),
                };
            }
        }
        let effective_deadline = match (self.limits.deadline, self.budget.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if effective_deadline.is_some_and(|d| d <= start.elapsed()) {
            return Outcome::Unknown {
                reason: "deadline exceeded before search began".into(),
                kind: UnknownKind::ResourceLimit,
                open_branch: Vec::new(),
                stats: Stats::default(),
                elapsed: start.elapsed(),
            };
        }
        // Canonicalize the NNF hypothesis set before building any search
        // state: flatten conjunctions, drop `true`, dedup structural
        // repeats, and close immediately on an explicit `false` or an
        // exact literal/negation pair (the cheap contradictions that
        // otherwise cost a full tableau setup to notice).
        let mut work: VecDeque<Formula> =
            task.hypotheses.iter().map(|h| h.clone().nnf()).collect();
        work.push_back(task.goal.clone().negate().nnf());
        let mut formulas: Vec<Formula> = Vec::with_capacity(work.len());
        let mut seen: FastSet<Formula> = FastSet::default();
        let mut contradiction = false;
        while let Some(f) = work.pop_front() {
            match f {
                Formula::True => {}
                Formula::False => {
                    contradiction = true;
                    break;
                }
                Formula::And(ps) => {
                    for p in ps.into_iter().rev() {
                        work.push_front(p);
                    }
                }
                f => {
                    let neg = match &f {
                        Formula::Not(p) => Some((**p).clone()),
                        Formula::Eq(..) | Formula::Holds(..) => {
                            Some(Formula::Not(Box::new(f.clone())))
                        }
                        _ => None,
                    };
                    if neg.is_some_and(|n| seen.contains(&n)) {
                        contradiction = true;
                        break;
                    }
                    if seen.insert(f.clone()) {
                        formulas.push(f);
                    }
                }
            }
        }
        if contradiction {
            return Outcome::Proved {
                stats: Stats {
                    branches: 1,
                    ..Stats::default()
                },
                elapsed: start.elapsed(),
            };
        }
        let start_terms = self.bank.len();
        let mut cc = self.cc_cache.take().unwrap_or_default();
        cc.ensure(&self.bank);
        let mut relevant = RelevantSet::new(&self.bank);
        for f in &formulas {
            relevant.mark_formula(&self.bank, f);
        }
        // Register the task's relevant terms — and only those — into
        // the permanent layer. Under a batch-shared bank the bank holds
        // a whole rule's vocabulary; registering every bank term would
        // make each obligation pay for its siblings. The permanent
        // layer stays merge-free (hash-consing keeps virgin signatures
        // unique), keeping the cached context reusable forever.
        for &(t, _) in &relevant.order {
            cc.register(t, &self.bank);
        }
        // Base savepoint: every search-time effect (merges, diseqs,
        // registrations of minted terms) lands on the undo trail and is
        // rewound before the context goes back in the cache.
        cc.save();
        let reg_upto = relevant.order.len();
        let mut branch = Branch {
            cc,
            todo: formulas,
            splits: Vec::new(),
            consumed_log: Vec::new(),
            foralls: Vec::new(),
            done_instances: FastSet::default(),
            done_order: Vec::new(),
            inst_rounds: 0,
            relevant,
            reg_upto,
            array_quiet_at: None,
        };
        let meter = Meter::new(start, &self.limits, &self.budget);
        let mut search = Search {
            solver: self,
            stats: Stats::default(),
            limit_hit: None,
            meter,
            start_terms,
            debug: std::env::var_os("COBALT_LOGIC_DEBUG").is_some(),
        };
        let closed = search.close(&mut branch);
        let stats = search.stats.clone();
        let limit_hit = search.limit_hit.take();
        let mut cc = branch.cc;
        cc.restore_all();
        self.cc_cache = Some(cc);
        let elapsed = start.elapsed();
        match closed {
            BranchResult::Closed => Outcome::Proved { stats, elapsed },
            BranchResult::Open(lits) => {
                let (reason, kind) = match limit_hit {
                    Some(reason) => (reason, UnknownKind::ResourceLimit),
                    None => (
                        "open branch: goal not provable from hypotheses".into(),
                        UnknownKind::OpenBranch,
                    ),
                };
                Outcome::Unknown {
                    reason,
                    kind,
                    open_branch: lits,
                    stats,
                    elapsed,
                }
            }
        }
    }

    fn fresh_skolem(&mut self, base: &str) -> TermId {
        self.skolem_counter += 1;
        let name = format!("$sk_{}_{}", base, self.skolem_counter);
        self.bank.app0(&name)
    }
}

#[derive(Debug)]
struct Branch {
    cc: Cc,
    todo: Vec<Formula>,
    splits: Vec<PendingSplit>,
    /// Positions in `splits` consumed by case splitting, in consumption
    /// order. Consumption is flagged in place (never removed) so that a
    /// branch restore can un-flag exactly the entries consumed since
    /// the savepoint — a length pair in [`BranchMark`] — instead of
    /// deep-cloning every pending disjunction per split alternative.
    consumed_log: Vec<usize>,
    foralls: Vec<Formula>,
    done_instances: FastSet<(usize, InstKey)>,
    /// Insertion journal for `done_instances`, so a branch restore can
    /// pop exactly the keys recorded since the savepoint.
    done_order: Vec<(usize, InstKey)>,
    inst_rounds: usize,
    /// Terms appearing in formulas asserted on *this* branch. The term
    /// bank is shared between branches (and, under a base layer, with
    /// the whole batch), so theory propagation and trigger matching
    /// must ignore foreign terms (e.g. skolems minted by sibling
    /// branches) or the search degenerates.
    relevant: RelevantSet,
    /// How many entries of `relevant.order` have been registered in the
    /// congruence core. The core registers relevant terms on demand
    /// (never the whole shared bank); this watermark is what
    /// [`Search::sync_cc`] advances, and a branch restore rewinds it in
    /// lockstep with the relevant-set rollback and the `Cc` trail.
    reg_upto: usize,
    /// Memo for [`Search::propagate_arrays`]: the `(cc version,
    /// selects, updates)` fingerprint of the last pass that came up
    /// quiet. The scan is a deterministic function of exactly that
    /// state, so matching fingerprints let the pass return `Quiet`
    /// without rescanning. Never rolled back: `Cc::restore` bumps the
    /// version, so a stale memo can only miss, not lie.
    array_quiet_at: Option<(u64, usize, usize)>,
}

/// The argument tuple identifying one instance of a universal: the
/// terms bound to its variables, in prefix order. Inline for the
/// overwhelmingly common arities — instantiation re-derives every
/// candidate binding each round and skips the already-done ones, so
/// the skip path must not allocate just to build a set key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum InstKey {
    One(TermId),
    Two(TermId, TermId),
    Many(Vec<TermId>),
}

impl InstKey {
    fn of(vars: &[Sym], binding: &Binding) -> InstKey {
        let get = |i: usize| bound(binding, vars[i]).expect("binding covers all vars");
        match vars.len() {
            1 => InstKey::One(get(0)),
            2 => InstKey::Two(get(0), get(1)),
            _ => InstKey::Many((0..vars.len()).map(get).collect()),
        }
    }
}

/// A pending boolean disjunction awaiting a case split.
#[derive(Debug)]
struct PendingSplit {
    formulas: Vec<Formula>,
    consumed: bool,
}

/// The branch's relevant terms, indexed for the hot loops: a membership
/// set, a deterministic *mark order* (every output-affecting iteration
/// walks it, never numeric `TermId` order — ids depend on the bank
/// layout, which differs between a fresh and a batch-shared bank), a
/// per-top-symbol index of ground applications for trigger matching,
/// and pre-classified `select`/`update` applications for the array
/// theory.
#[derive(Debug, Default)]
struct RelevantSet {
    set: FastSet<TermId>,
    /// Marked terms in mark order; the symbol is `Some(f)` exactly when
    /// the term was indexed under `by_top[f]` (a ground application).
    order: Vec<(TermId, Option<Sym>)>,
    /// Ground applications by top symbol, in mark order.
    by_top: FastMap<Sym, Vec<TermId>>,
    /// Ground `select(m, k)` applications: `(term, m, k)`.
    selects: Vec<(TermId, TermId, TermId)>,
    /// Ground `update(m, k, v)` applications: `(term, m, k, v)`.
    updates: Vec<(TermId, TermId, TermId, TermId)>,
    select_sym: Option<Sym>,
    update_sym: Option<Sym>,
}

/// A [`RelevantSet`] checkpoint; everything is append-only, so lengths
/// suffice.
#[derive(Debug, Clone, Copy)]
struct RelevantMark {
    order_len: usize,
    selects_len: usize,
    updates_len: usize,
}

impl RelevantSet {
    fn new(bank: &TermBank) -> Self {
        RelevantSet {
            // All function symbols in an obligation are interned before
            // `prove` (search only mints skolem constants and
            // substitution instances), so resolving once here is sound.
            select_sym: bank.find_sym(SELECT),
            update_sym: bank.find_sym(UPDATE),
            ..RelevantSet::default()
        }
    }

    /// Adds `t` and all its subterms.
    fn mark_term(&mut self, bank: &TermBank, t: TermId) {
        if !self.set.insert(t) {
            return;
        }
        let mut top = None;
        if let TermData::App(f, args) = bank.data(t) {
            let f = *f;
            for &a in args {
                self.mark_term(bank, a);
            }
            if !bank.has_var(t) {
                top = Some(f);
                self.by_top.entry(f).or_default().push(t);
                if Some(f) == self.select_sym && args.len() == 2 {
                    self.selects.push((t, args[0], args[1]));
                } else if Some(f) == self.update_sym && args.len() == 3 {
                    self.updates.push((t, args[0], args[1], args[2]));
                }
            }
        }
        self.order.push((t, top));
    }

    /// Adds every term of a formula.
    fn mark_formula(&mut self, bank: &TermBank, f: &Formula) {
        match f {
            Formula::True | Formula::False => {}
            Formula::Eq(a, b) => {
                self.mark_term(bank, *a);
                self.mark_term(bank, *b);
            }
            Formula::Holds(t) => self.mark_term(bank, *t),
            Formula::Not(p) => self.mark_formula(bank, p),
            Formula::And(ps) | Formula::Or(ps) => {
                for p in ps {
                    self.mark_formula(bank, p);
                }
            }
            Formula::Implies(p, q) | Formula::Iff(p, q) => {
                self.mark_formula(bank, p);
                self.mark_formula(bank, q);
            }
            Formula::Forall { body, .. } | Formula::Exists { body, .. } => {
                self.mark_formula(bank, body);
            }
        }
    }

    fn checkpoint(&self) -> RelevantMark {
        RelevantMark {
            order_len: self.order.len(),
            selects_len: self.selects.len(),
            updates_len: self.updates.len(),
        }
    }

    fn rollback(&mut self, mark: RelevantMark) {
        while self.order.len() > mark.order_len {
            let (t, top) = self.order.pop().expect("len checked");
            self.set.remove(&t);
            if let Some(f) = top {
                self.by_top
                    .get_mut(&f)
                    .expect("indexed symbol has a bucket")
                    .pop();
            }
        }
        self.selects.truncate(mark.selects_len);
        self.updates.truncate(mark.updates_len);
    }
}

enum BranchResult {
    Closed,
    /// Literals describing the open branch.
    Open(Vec<String>),
}

struct Search<'a> {
    solver: &'a mut Solver,
    stats: Stats,
    limit_hit: Option<String>,
    meter: Meter,
    /// Bank size when the search began. The term cap bounds
    /// `bank.len() - start_terms` — terms *minted by this search* — so
    /// limits behave identically whether the bank is fresh or layered
    /// on a large shared base.
    start_terms: usize,
    /// `COBALT_LOGIC_DEBUG` presence, resolved once per search: the
    /// split loop is far too hot for a `getenv` per iteration.
    debug: bool,
}

/// Checkpoint of everything [`Search::split`] must rewind between
/// alternatives. Paired with a [`Cc::save`] savepoint taken at the same
/// moment.
struct BranchMark {
    todo_len: usize,
    splits_len: usize,
    consumed_len: usize,
    foralls_len: usize,
    done_len: usize,
    inst_rounds: usize,
    relevant: RelevantMark,
    reg_upto: usize,
}

impl Search<'_> {
    /// Advances the budget meter; returns true (and records the limit)
    /// when the budget is exhausted.
    fn out_of_budget(&mut self) -> bool {
        if self.limit_hit.is_some() {
            return true;
        }
        if let Some(reason) = self.meter.tick() {
            self.limit_hit = Some(reason);
            return true;
        }
        false
    }

    /// Terms interned since this search began.
    fn minted(&self) -> usize {
        self.solver.bank.len() - self.start_terms
    }

    /// Brings the congruence core up to date with the relevant set:
    /// registers every term marked since the last call. This — not a
    /// whole-bank sweep — is how new terms (skolems, instances, theory
    /// propagations) join the core, so closure cost tracks the branch's
    /// footprint even when the bank is shared across a whole batch of
    /// obligations.
    fn sync_cc(&mut self, branch: &mut Branch) {
        branch.cc.ensure(&self.solver.bank);
        while branch.reg_upto < branch.relevant.order.len() {
            let (t, _) = branch.relevant.order[branch.reg_upto];
            branch.cc.register(t, &self.solver.bank);
            branch.reg_upto += 1;
        }
    }

    /// Registers the distinguished `$true` constant, which backs
    /// `Holds` literals without ever being marked relevant (it must not
    /// feed trigger matching or binding enumeration).
    fn register_tt(&mut self, branch: &mut Branch) -> TermId {
        let tt = self.solver.tt();
        branch.cc.ensure(&self.solver.bank);
        branch.cc.register(tt, &self.solver.bank);
        tt
    }

    /// Attempts to close a branch; returns `Closed` if a contradiction
    /// was derived on every sub-branch.
    fn close(&mut self, branch: &mut Branch) -> BranchResult {
        loop {
            if self.out_of_budget() {
                return BranchResult::Open(vec![]);
            }
            // 1. Assert pending formulas into the congruence core.
            let mut conflict = false;
            while let Some(f) = branch.todo.pop() {
                if self.out_of_budget() {
                    return BranchResult::Open(vec![]);
                }
                if self.assert_formula(branch, f) {
                    conflict = true;
                    break;
                }
            }
            if conflict || branch.cc.in_conflict() {
                self.stats.branches += 1;
                return BranchResult::Closed;
            }
            // 2. Array theory propagation.
            match self.propagate_arrays(branch) {
                ArrayStep::Progress => continue,
                ArrayStep::Conflict => {
                    self.stats.branches += 1;
                    return BranchResult::Closed;
                }
                ArrayStep::Split(k1, k2) => {
                    return self.split(
                        branch,
                        vec![Formula::Eq(k1, k2), Formula::ne(k1, k2)],
                    );
                }
                ArrayStep::Quiet => {}
            }
            // 3. Boolean case splits.
            if let Some(pos) = self.pick_split(branch) {
                branch.splits[pos].consumed = true;
                branch.consumed_log.push(pos);
                let mut remaining = Vec::new();
                let mut satisfied = false;
                for di in 0..branch.splits[pos].formulas.len() {
                    let d = branch.splits[pos].formulas[di].clone();
                    match self.literal_status(branch, &d) {
                        LitStatus::True => {
                            satisfied = true;
                            break;
                        }
                        LitStatus::False => {}
                        LitStatus::Undecided => remaining.push(d),
                    }
                }
                if satisfied {
                    continue;
                }
                match remaining.len() {
                    0 => {
                        self.stats.branches += 1;
                        return BranchResult::Closed;
                    }
                    1 => {
                        branch.todo.push(remaining.pop().expect("len checked"));
                        continue;
                    }
                    _ => return self.split(branch, remaining),
                }
            }
            // 4. Quantifier instantiation.
            if branch.inst_rounds < self.solver.limits.max_inst_rounds {
                branch.inst_rounds += 1;
                let instances = self.instantiate(branch);
                if !instances.is_empty() {
                    self.stats.instances += instances.len();
                    branch.todo.extend(instances);
                    continue;
                }
            } else if !branch.foralls.is_empty() && self.limit_hit.is_none() {
                // The round cap stopped us from even attempting another
                // instantiation round while universals remained; more
                // rounds might have closed the branch, so report a
                // resource limit rather than a definitive open branch.
                // (A branch that *saturated* — a round produced no new
                // instances — ends with inst_rounds below the cap and
                // is reported as genuinely open.)
                self.limit_hit = Some(format!(
                    "instantiation-round limit of {} reached with universals unsaturated",
                    self.solver.limits.max_inst_rounds
                ));
            }
            // Nothing more to do: the branch stays open.
            return BranchResult::Open(self.describe_branch(branch));
        }
    }

    fn mark(&mut self, branch: &mut Branch) -> BranchMark {
        branch.cc.save();
        BranchMark {
            todo_len: branch.todo.len(),
            splits_len: branch.splits.len(),
            consumed_len: branch.consumed_log.len(),
            foralls_len: branch.foralls.len(),
            done_len: branch.done_order.len(),
            inst_rounds: branch.inst_rounds,
            relevant: branch.relevant.checkpoint(),
            reg_upto: branch.reg_upto,
        }
    }

    fn restore(&mut self, branch: &mut Branch, mark: BranchMark) {
        branch.cc.restore();
        branch.todo.truncate(mark.todo_len);
        while branch.consumed_log.len() > mark.consumed_len {
            let pos = branch.consumed_log.pop().expect("len checked");
            branch.splits[pos].consumed = false;
        }
        branch.splits.truncate(mark.splits_len);
        branch.foralls.truncate(mark.foralls_len);
        while branch.done_order.len() > mark.done_len {
            let key = branch.done_order.pop().expect("len checked");
            branch.done_instances.remove(&key);
        }
        branch.inst_rounds = mark.inst_rounds;
        branch.relevant.rollback(mark.relevant);
        branch.reg_upto = mark.reg_upto;
    }

    /// Splits the branch on the given alternatives; closed iff all
    /// close. Alternatives share one branch via savepoint/rewind (the
    /// undo trail in [`Cc`]) instead of deep-cloning per alternative;
    /// an open result propagates straight out, leaving its savepoints
    /// for the prove-level `restore_all`.
    fn split(&mut self, branch: &mut Branch, alternatives: Vec<Formula>) -> BranchResult {
        fault::point("solver.split");
        if self.out_of_budget() {
            return BranchResult::Open(vec![]);
        }
        self.stats.splits += 1;
        if self.debug && self.stats.splits <= 64 {
            let parts: Vec<String> = alternatives
                .iter()
                .map(|a| a.display(&self.solver.bank))
                .collect();
            eprintln!("[split {}] {}", self.stats.splits, parts.join("  |  "));
        }
        if self.stats.splits > self.solver.limits.max_splits {
            self.limit_hit = Some(format!(
                "case-split limit of {} exceeded",
                self.solver.limits.max_splits
            ));
            return BranchResult::Open(vec![]);
        }
        // Splits only fire once the todo queue is drained, so the mark
        // below need not capture queue contents beyond its (zero) length.
        debug_assert!(branch.todo.is_empty(), "split on a non-drained todo queue");
        let n = alternatives.len();
        for (i, alt) in alternatives.into_iter().enumerate() {
            let last = i + 1 == n;
            // The last alternative continues in place: its effects are
            // covered by the enclosing savepoint (or the prove-level
            // base savepoint at the top).
            let mark = if last { None } else { Some(self.mark(branch)) };
            branch.todo.push(alt);
            let res = self.close(branch);
            if self.debug && self.stats.splits <= 64 {
                eprintln!(
                    "[alt {i} of split] {}",
                    match &res {
                        BranchResult::Closed => "closed",
                        BranchResult::Open(_) => "open",
                    }
                );
            }
            match res {
                BranchResult::Closed => {
                    if let Some(mark) = mark {
                        self.restore(branch, mark);
                    }
                }
                open => return open,
            }
        }
        BranchResult::Closed
    }

    /// Asserts one NNF formula; returns true on immediate conflict.
    fn assert_formula(&mut self, branch: &mut Branch, f: Formula) -> bool {
        branch.relevant.mark_formula(&self.solver.bank, &f);
        match f {
            Formula::True => false,
            Formula::False => true,
            Formula::Eq(a, b) => {
                self.sync_cc(branch);
                branch.cc.merge(a, b, &self.solver.bank);
                branch.cc.in_conflict()
            }
            Formula::Holds(t) => {
                let tt = self.register_tt(branch);
                self.sync_cc(branch);
                branch.cc.merge(t, tt, &self.solver.bank);
                branch.cc.in_conflict()
            }
            Formula::Not(inner) => match *inner {
                Formula::Eq(a, b) => {
                    self.sync_cc(branch);
                    branch.cc.assert_diseq(a, b, &self.solver.bank);
                    branch.cc.in_conflict()
                }
                Formula::Holds(t) => {
                    let tt = self.register_tt(branch);
                    self.sync_cc(branch);
                    branch.cc.assert_diseq(t, tt, &self.solver.bank);
                    branch.cc.in_conflict()
                }
                other => {
                    // NNF guarantees negation only wraps atoms.
                    branch.todo.push(other.negate().nnf());
                    false
                }
            },
            Formula::And(ps) => {
                branch.todo.extend(ps);
                false
            }
            Formula::Or(ps) => {
                branch.splits.push(PendingSplit {
                    formulas: ps,
                    consumed: false,
                });
                false
            }
            f @ Formula::Forall { .. } => {
                branch.foralls.push(f);
                false
            }
            Formula::Exists { vars, body } => {
                if self.debug {
                    eprintln!(
                        "[skolemize] splits={} foralls={} inst_rounds={}",
                        branch.splits.len(),
                        branch.foralls.len(),
                        branch.inst_rounds
                    );
                }
                let mut map = Vec::with_capacity(vars.len());
                for v in vars {
                    let name = self.solver.bank.sym_name(v).to_string();
                    let sk = self.solver.fresh_skolem(&name);
                    map.push((v, sk));
                }
                let inst = body.subst(&mut self.solver.bank, &map);
                branch.todo.push(inst);
                false
            }
            Formula::Implies(_, _) | Formula::Iff(_, _) => {
                branch.todo.push(f.nnf());
                false
            }
        }
    }

    fn literal_status(&mut self, branch: &mut Branch, f: &Formula) -> LitStatus {
        self.sync_cc(branch);
        match f {
            Formula::True => LitStatus::True,
            Formula::False => LitStatus::False,
            Formula::Eq(a, b) => {
                if branch.cc.are_eq(*a, *b) {
                    LitStatus::True
                } else if branch.cc.are_diseq(*a, *b, &self.solver.bank) {
                    LitStatus::False
                } else {
                    LitStatus::Undecided
                }
            }
            Formula::Holds(t) => {
                let tt = self.register_tt(branch);
                if branch.cc.are_eq(*t, tt) {
                    LitStatus::True
                } else if branch.cc.are_diseq(*t, tt, &self.solver.bank) {
                    LitStatus::False
                } else {
                    LitStatus::Undecided
                }
            }
            Formula::Not(inner) => match self.literal_status(branch, inner) {
                LitStatus::True => LitStatus::False,
                LitStatus::False => LitStatus::True,
                LitStatus::Undecided => LitStatus::Undecided,
            },
            _ => LitStatus::Undecided,
        }
    }

    fn pick_split(&mut self, branch: &mut Branch) -> Option<usize> {
        // Prefer the smallest unconsumed disjunction (cheapest split).
        let mut best: Option<usize> = None;
        for i in 0..branch.splits.len() {
            if branch.splits[i].consumed {
                continue;
            }
            if best.map_or(true, |b| {
                branch.splits[i].formulas.len() < branch.splits[b].formulas.len()
            }) {
                best = Some(i);
            }
        }
        best
    }

    /// Array theory: for every `select(m, k)` whose map class contains
    /// an `update(m2, k2, v2)`, resolve by index (dis)equality or
    /// request a case split. The candidates come pre-classified off the
    /// relevant set (no bank scan); length snapshots keep the iteration
    /// stable while read-over-write mints new selects into the set.
    fn propagate_arrays(&mut self, branch: &mut Branch) -> ArrayStep {
        self.sync_cc(branch);
        let n_selects = branch.relevant.selects.len();
        let n_updates = branch.relevant.updates.len();
        let memo_key = (branch.cc.version(), n_selects, n_updates);
        if branch.array_quiet_at == Some(memo_key) {
            return ArrayStep::Quiet;
        }
        let mut pending_split: Option<(TermId, TermId)> = None;
        let mut progress = false;
        for si in 0..n_selects {
            let (s, m, k) = branch.relevant.selects[si];
            for ui in 0..n_updates {
                let (u, m2, k2, v2) = branch.relevant.updates[ui];
                if !branch.cc.are_eq(u, m) {
                    continue;
                }
                if branch.cc.are_eq(k, k2) {
                    if !branch.cc.are_eq(s, v2) {
                        branch.cc.merge(s, v2, &self.solver.bank);
                        progress = true;
                        if branch.cc.in_conflict() {
                            return ArrayStep::Conflict;
                        }
                    }
                } else if branch.cc.are_diseq(k, k2, &self.solver.bank) {
                    if self.minted() >= self.solver.limits.max_terms {
                        self.limit_hit = Some("term limit exceeded".into());
                        return ArrayStep::Quiet;
                    }
                    let s2 = self.solver.select(m2, k);
                    branch.relevant.mark_term(&self.solver.bank, s2);
                    self.sync_cc(branch);
                    if !branch.cc.are_eq(s, s2) {
                        branch.cc.merge(s, s2, &self.solver.bank);
                        progress = true;
                        if branch.cc.in_conflict() {
                            return ArrayStep::Conflict;
                        }
                    }
                } else if pending_split.is_none() {
                    pending_split = Some((k, k2));
                }
            }
        }
        if progress {
            ArrayStep::Progress
        } else if let Some((k, k2)) = pending_split {
            ArrayStep::Split(k, k2)
        } else {
            branch.array_quiet_at = Some(memo_key);
            ArrayStep::Quiet
        }
    }

    /// Trigger-based instantiation of universal hypotheses.
    fn instantiate(&mut self, branch: &mut Branch) -> Vec<Formula> {
        let mut out = Vec::new();
        for fi in 0..branch.foralls.len() {
            let (vars, triggers) = match &branch.foralls[fi] {
                Formula::Forall { vars, triggers, .. } => (vars.clone(), triggers.clone()),
                _ => continue,
            };
            let bindings = if triggers.is_empty() {
                enumerate_bindings(&self.solver.bank, &branch.relevant, &vars)
            } else {
                let mut all = Vec::new();
                for &trig in &triggers {
                    match_trigger(&self.solver.bank, &branch.relevant, trig, &vars, &mut all);
                }
                all
            };
            for binding in bindings {
                let key = (fi, InstKey::of(&vars, &binding));
                if branch.done_instances.contains(&key) {
                    continue;
                }
                // Limit and budget checks come BEFORE the done-instance
                // bookkeeping: an instance discarded by a tripped limit
                // must stay eligible for a later round or a retry at a
                // larger budget, not be remembered as already produced.
                if self.minted() >= self.solver.limits.max_terms {
                    self.limit_hit = Some("term limit exceeded during instantiation".into());
                    return out;
                }
                if self.out_of_budget() {
                    return out;
                }
                branch.done_instances.insert(key.clone());
                branch.done_order.push(key);
                let Formula::Forall { body, .. } = &branch.foralls[fi] else {
                    unreachable!("checked above");
                };
                let body = (**body).clone();
                out.push(body.subst(&mut self.solver.bank, &binding));
            }
        }
        out
    }

    /// Renders the open branch as a counterexample context (the paper's
    /// §7 error-reporting artifact): the equivalence classes the branch
    /// committed to among named constants, plus whatever remained
    /// undecided or unsaturated. Iterates the relevant set in mark
    /// order — never numeric `TermId` order, which depends on the bank
    /// layout — so the rendering is identical under fresh and
    /// batch-shared banks.
    fn describe_branch(&mut self, branch: &mut Branch) -> Vec<String> {
        let mut out = Vec::new();
        // Merged classes among the branch's named constants.
        let named: Vec<TermId> = branch
            .relevant
            .order
            .iter()
            .map(|&(t, _)| t)
            .filter(|&t| matches!(self.solver.bank.data(t), TermData::App(_, args) if args.is_empty()))
            .collect();
        let mut classes: FastMap<TermId, Vec<TermId>> = FastMap::default();
        for t in named {
            let r = branch.cc.find(t);
            classes.entry(r).or_default().push(t);
        }
        let mut class_lines: Vec<String> = classes
            .values()
            .filter(|members| members.len() > 1)
            .map(|members| {
                let names: Vec<String> = members
                    .iter()
                    .map(|&t| self.solver.bank.display(t))
                    .collect();
                format!("assumed equal: {}", names.join(" = "))
            })
            .collect();
        class_lines.sort();
        out.extend(class_lines.into_iter().take(6));
        // Render only as many groups as could survive the clamp below;
        // large VCs would otherwise build multi-KB strings just to
        // throw them away.
        let room = MAX_CONTEXT_LITERALS + 1;
        let mut dropped = 0usize;
        for group in &branch.splits {
            if group.consumed {
                continue;
            }
            if out.len() >= room {
                dropped += 1;
                continue;
            }
            let parts: Vec<String> = group
                .formulas
                .iter()
                .map(|g| g.display(&self.solver.bank))
                .collect();
            out.push(format!("undecided: (or {})", parts.join(" ")));
        }
        for f in &branch.foralls {
            if out.len() >= room {
                dropped += 1;
                continue;
            }
            out.push(format!("unsaturated: {}", f.display(&self.solver.bank)));
        }
        out.extend(std::iter::repeat_with(String::new).take(dropped));
        clamp_context(&mut out, MAX_CONTEXT_LITERALS, MAX_CONTEXT_LITERAL_CHARS);
        out
    }
}

/// A quantifier-instantiation binding. A plain vector, not a hash
/// table: quantifier prefixes bind a handful of variables, and bindings
/// are created (and discarded) once per matching candidate — linear
/// scans win on both fronts.
type Binding = Vec<(Sym, TermId)>;

/// The term `v` is bound to, if any.
fn bound(binding: &Binding, v: Sym) -> Option<TermId> {
    binding.iter().find(|&&(s, _)| s == v).map(|&(_, t)| t)
}

/// For trigger-less single-variable quantifiers: every ground term
/// relevant to the branch (capped), in mark order.
fn enumerate_bindings(
    bank: &TermBank,
    relevant: &RelevantSet,
    vars: &[Sym],
) -> Vec<Binding> {
    if vars.len() != 1 {
        return Vec::new();
    }
    const ENUM_CAP: usize = 512;
    let mut out = Vec::new();
    for &(t, _) in relevant.order.iter().take(ENUM_CAP) {
        if matches!(bank.data(t), TermData::Var(_)) || bank.has_var(t) {
            continue;
        }
        out.push(vec![(vars[0], t)]);
    }
    out
}

/// Matches one trigger pattern against the branch's ground terms,
/// appending complete bindings to `out`. An application trigger only
/// consults the `by_top` bucket for its head symbol — the common case —
/// instead of scanning every relevant term.
fn match_trigger(
    bank: &TermBank,
    relevant: &RelevantSet,
    trigger: TermId,
    vars: &[Sym],
    out: &mut Vec<Binding>,
) {
    let candidates: Box<dyn Iterator<Item = TermId> + '_> = match bank.data(trigger) {
        TermData::App(f, _) => match relevant.by_top.get(f) {
            Some(bucket) => Box::new(bucket.iter().copied()),
            None => return,
        },
        // Rare non-application trigger: fall back to the full mark-order
        // scan of ground terms.
        _ => Box::new(
            relevant
                .order
                .iter()
                .map(|&(t, _)| t)
                .filter(|&t| !bank.has_var(t)),
        ),
    };
    for t in candidates {
        let mut binding = Binding::new();
        if match_pattern(bank, trigger, t, &mut binding)
            && vars.iter().all(|v| bound(&binding, *v).is_some())
        {
            out.push(binding);
        }
    }
}

fn match_pattern(
    bank: &TermBank,
    pat: TermId,
    t: TermId,
    binding: &mut Binding,
) -> bool {
    match bank.data(pat) {
        TermData::Var(v) => match bound(binding, *v) {
            Some(prev) => prev == t,
            None => {
                binding.push((*v, t));
                true
            }
        },
        TermData::Int(n) => matches!(bank.data(t), TermData::Int(m) if m == n),
        TermData::App(f, pargs) => match bank.data(t) {
            TermData::App(g, targs) if g == f && targs.len() == pargs.len() => pargs
                .iter()
                .zip(targs.iter())
                .all(|(&p, &a)| match_pattern(bank, p, a, binding)),
            _ => false,
        },
    }
}

enum LitStatus {
    True,
    False,
    Undecided,
}

enum ArrayStep {
    Quiet,
    Progress,
    Conflict,
    Split(TermId, TermId),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prove(solver: &mut Solver, hyps: Vec<Formula>, goal: Formula) -> bool {
        solver
            .prove(&ProofTask {
                hypotheses: hyps,
                goal,
            })
            .is_proved()
    }

    #[test]
    fn euf_transitivity_and_congruence() {
        let mut s = Solver::new();
        let f = s.bank.sym("f");
        let (x, y, z) = (s.bank.app0("x"), s.bank.app0("y"), s.bank.app0("z"));
        let fx = s.bank.app(f, vec![x]);
        let fz = s.bank.app(f, vec![z]);
        assert!(prove(
            &mut s,
            vec![Formula::Eq(x, y), Formula::Eq(y, z)],
            Formula::Eq(fx, fz)
        ));
    }

    #[test]
    fn unprovable_goal_is_unknown() {
        let mut s = Solver::new();
        let (x, y) = (s.bank.app0("x"), s.bank.app0("y"));
        let out = s.prove(&ProofTask {
            hypotheses: vec![],
            goal: Formula::Eq(x, y),
        });
        assert!(!out.is_proved());
        if let Outcome::Unknown { reason, .. } = out {
            assert!(reason.contains("open branch"), "{reason}");
        }
    }

    #[test]
    fn modus_ponens_via_disjunction() {
        let mut s = Solver::new();
        let p = s.bank.app0("p");
        let q = s.bank.app0("q");
        let hyp1 = Formula::implies(Formula::Holds(p), Formula::Holds(q));
        let hyp2 = Formula::Holds(p);
        assert!(prove(&mut s, vec![hyp1, hyp2], Formula::Holds(q)));
    }

    #[test]
    fn case_split_on_disjunction() {
        let mut s = Solver::new();
        let (a, b, c) = (s.bank.app0("a"), s.bank.app0("b"), s.bank.app0("c"));
        // (a=c ∨ b=c) ∧ a=b ⊨ b=c
        let hyp = Formula::or([Formula::Eq(a, c), Formula::Eq(b, c)]);
        assert!(prove(
            &mut s,
            vec![hyp, Formula::Eq(a, b)],
            Formula::Eq(b, c)
        ));
    }

    #[test]
    fn read_over_write_same_key() {
        let mut s = Solver::new();
        let m = s.bank.app0("m");
        let k = s.bank.app0("k");
        let v = s.bank.app0("v");
        let upd = s.update(m, k, v);
        let sel = s.select(upd, k);
        assert!(prove(&mut s, vec![], Formula::Eq(sel, v)));
    }

    #[test]
    fn read_over_write_distinct_key() {
        let mut s = Solver::new();
        let m = s.bank.app0("m");
        let (k1, k2) = (s.bank.app0("k1"), s.bank.app0("k2"));
        let v = s.bank.app0("v");
        let upd = s.update(m, k1, v);
        let sel = s.select(upd, k2);
        let sel0 = s.select(m, k2);
        assert!(prove(
            &mut s,
            vec![Formula::ne(k1, k2)],
            Formula::Eq(sel, sel0)
        ));
    }

    #[test]
    fn read_over_write_requires_case_split() {
        let mut s = Solver::new();
        let m = s.bank.app0("m");
        let (k1, k2) = (s.bank.app0("k1"), s.bank.app0("k2"));
        let v = s.bank.app0("v");
        let upd = s.update(m, k1, v);
        let sel = s.select(upd, k2);
        let sel0 = s.select(m, k2);
        // Without knowing k1 vs k2: select(update(m,k1,v),k2) is either v
        // (if k1=k2) or select(m,k2). Prove the disjunction.
        let goal = Formula::or([Formula::Eq(sel, v), Formula::Eq(sel, sel0)]);
        assert!(prove(&mut s, vec![], goal));
    }

    #[test]
    fn nested_updates() {
        let mut s = Solver::new();
        let m = s.bank.app0("m");
        let (k1, k2) = (s.bank.app0("k1"), s.bank.app0("k2"));
        let (v1, v2) = (s.bank.app0("v1"), s.bank.app0("v2"));
        let u1 = s.update(m, k1, v1);
        let u2 = s.update(u1, k2, v2);
        let sel = s.select(u2, k1);
        // k1 ≠ k2 ⊨ select(update(update(m,k1,v1),k2,v2), k1) = v1
        assert!(prove(
            &mut s,
            vec![Formula::ne(k1, k2)],
            Formula::Eq(sel, v1)
        ));
    }

    #[test]
    fn constructors_discriminate() {
        let mut s = Solver::new();
        let skip = s.bank.constructor("skip");
        let decl = s.bank.constructor("decl");
        let x = s.bank.app0("x");
        let sk = s.bank.app(skip, vec![]);
        let dc = s.bank.app(decl, vec![x]);
        let cur = s.bank.app0("cur");
        // cur = skip ⊨ ¬(cur = decl(x))
        assert!(prove(
            &mut s,
            vec![Formula::Eq(cur, sk)],
            Formula::ne(cur, dc)
        ));
    }

    #[test]
    fn constructor_injectivity_proves_arg_equality() {
        let mut s = Solver::new();
        let c = s.bank.constructor("intval");
        let (x, y) = (s.bank.app0("x"), s.bank.app0("y"));
        let cx = s.bank.app(c, vec![x]);
        let cy = s.bank.app(c, vec![y]);
        assert!(prove(
            &mut s,
            vec![Formula::Eq(cx, cy)],
            Formula::Eq(x, y)
        ));
    }

    #[test]
    fn distinct_int_literals() {
        let mut s = Solver::new();
        let zero = s.bank.int(0);
        let one = s.bank.int(1);
        assert!(prove(&mut s, vec![], Formula::ne(zero, one)));
    }

    #[test]
    fn skolemization_of_universal_goal() {
        let mut s = Solver::new();
        // hyp: ∀v. f(v) = a  ⊨  goal: ∀w. f(w) = a
        let fsym = s.bank.sym("f");
        let a = s.bank.app0("a");
        let vsym = s.bank.sym("V");
        let v = s.bank.var("V");
        let fv = s.bank.app(fsym, vec![v]);
        let hyp = Formula::Forall {
            vars: vec![vsym],
            triggers: vec![fv],
            body: Box::new(Formula::Eq(fv, a)),
        };
        let wsym = s.bank.sym("W");
        let w = s.bank.var("W");
        let fw = s.bank.app(fsym, vec![w]);
        let goal = Formula::Forall {
            vars: vec![wsym],
            triggers: vec![],
            body: Box::new(Formula::Eq(fw, a)),
        };
        assert!(prove(&mut s, vec![hyp], goal));
    }

    #[test]
    fn instantiation_with_guard() {
        let mut s = Solver::new();
        // ∀v. v ≠ k ⇒ select(m, v) = select(n, v); c ≠ k
        // ⊨ select(m, c) = select(n, c)
        let (m, n, k, c) = (
            s.bank.app0("m"),
            s.bank.app0("n"),
            s.bank.app0("k"),
            s.bank.app0("c"),
        );
        let vsym = s.bank.sym("V");
        let v = s.bank.var("V");
        let sel_mv = s.select(m, v);
        let sel_nv = s.select(n, v);
        let hyp = Formula::Forall {
            vars: vec![vsym],
            triggers: vec![sel_mv],
            body: Box::new(Formula::implies(
                Formula::ne(v, k),
                Formula::Eq(sel_mv, sel_nv),
            )),
        };
        let sel_mc = s.select(m, c);
        let sel_nc = s.select(n, c);
        assert!(prove(
            &mut s,
            vec![hyp, Formula::ne(c, k)],
            Formula::Eq(sel_mc, sel_nc)
        ));
    }

    #[test]
    fn enumeration_fallback_for_triggerless_forall() {
        let mut s = Solver::new();
        let p = s.bank.sym("p");
        let a = s.bank.app0("a");
        let vsym = s.bank.sym("V");
        let v = s.bank.var("V");
        let pv = s.bank.app(p, vec![v]);
        let hyp = Formula::Forall {
            vars: vec![vsym],
            triggers: vec![],
            body: Box::new(Formula::Holds(pv)),
        };
        let pa = s.bank.app(p, vec![a]);
        assert!(prove(&mut s, vec![hyp], Formula::Holds(pa)));
    }

    #[test]
    fn split_limit_reports_unknown() {
        let mut s = Solver::with_limits(Limits {
            max_splits: 1,
            ..Limits::default()
        });
        let atoms: Vec<TermId> = (0..6).map(|i| s.bank.app0(&format!("a{i}"))).collect();
        let target = s.bank.app0("t");
        let hyps: Vec<Formula> = atoms
            .chunks(2)
            .map(|c| Formula::or([Formula::Eq(c[0], target), Formula::Eq(c[1], target)]))
            .collect();
        let impossible = Formula::Eq(atoms[0], atoms[1]);
        let out = s.prove(&ProofTask {
            hypotheses: hyps,
            goal: impossible,
        });
        assert!(!out.is_proved());
    }

    /// A task needing many case splits: n binary disjunctions over
    /// fresh atoms with an impossible goal.
    fn split_heavy_task(s: &mut Solver, n: usize) -> ProofTask {
        let atoms: Vec<TermId> = (0..2 * n).map(|i| s.bank.app0(&format!("a{i}"))).collect();
        let target = s.bank.app0("t");
        let hyps: Vec<Formula> = atoms
            .chunks(2)
            .map(|c| Formula::or([Formula::Eq(c[0], target), Formula::Eq(c[1], target)]))
            .collect();
        ProofTask {
            hypotheses: hyps,
            goal: Formula::Eq(atoms[0], atoms[1]),
        }
    }

    #[test]
    fn deadline_zero_reports_resource_limit() {
        let mut s = Solver::with_limits(Limits {
            deadline: Some(Duration::ZERO),
            ..Limits::default()
        });
        let task = split_heavy_task(&mut s, 8);
        let out = s.prove(&task);
        assert!(out.is_resource_limited(), "{out:?}");
        if let Outcome::Unknown { reason, .. } = &out {
            assert!(reason.contains("deadline exceeded"), "{reason}");
        }
    }

    #[test]
    fn budget_deadline_merges_with_limits_deadline() {
        let mut s = Solver::with_limits(Limits {
            deadline: Some(Duration::from_secs(3600)),
            ..Limits::default()
        });
        s.set_budget(Budget::with_deadline(Duration::ZERO));
        let task = split_heavy_task(&mut s, 8);
        assert!(s.prove(&task).is_resource_limited());
    }

    #[test]
    fn step_cap_reports_resource_limit() {
        let mut s = Solver::new();
        s.set_budget(Budget {
            max_steps: Some(3),
            ..Budget::default()
        });
        let task = split_heavy_task(&mut s, 8);
        let out = s.prove(&task);
        assert!(out.is_resource_limited(), "{out:?}");
        if let Outcome::Unknown { reason, .. } = &out {
            assert!(reason.contains("step cap"), "{reason}");
        }
    }

    #[test]
    fn cancel_flag_aborts_search() {
        let mut s = Solver::new();
        let flag = s.cancel_flag();
        flag.store(true, Ordering::Relaxed);
        let task = split_heavy_task(&mut s, 8);
        let out = s.prove(&task);
        assert!(out.is_resource_limited(), "{out:?}");
        if let Outcome::Unknown { reason, .. } = &out {
            assert!(reason.contains("cancelled"), "{reason}");
        }
    }

    #[test]
    fn cancelled_solver_never_starts_a_tableau() {
        // Regression: a pre-tripped cancel flag (a parallel sibling
        // found an unsound obligation) must fast-fail before NNF and
        // congruence-closure setup, like the zero-deadline path.
        let mut s = Solver::new();
        let flag = s.cancel_flag();
        flag.store(true, Ordering::Relaxed);
        // A provable goal: only the fast-fail can explain an Unknown.
        let (x, y) = (s.bank.app0("x"), s.bank.app0("y"));
        let out = s.prove(&ProofTask {
            hypotheses: vec![Formula::Eq(x, y)],
            goal: Formula::Eq(y, x),
        });
        assert!(out.is_resource_limited(), "{out:?}");
        let Outcome::Unknown { reason, stats, .. } = out else {
            panic!("expected Unknown");
        };
        assert!(reason.contains("cancelled by caller before search"), "{reason}");
        assert_eq!(stats, Stats::default(), "no search work may have happened");
    }

    #[test]
    fn expired_deadline_never_starts_a_tableau() {
        let mut s = Solver::new();
        s.set_budget(Budget::with_deadline(Duration::ZERO));
        let (x, y) = (s.bank.app0("x"), s.bank.app0("y"));
        let out = s.prove(&ProofTask {
            hypotheses: vec![Formula::Eq(x, y)],
            goal: Formula::Eq(y, x),
        });
        assert!(out.is_resource_limited(), "{out:?}");
        let Outcome::Unknown { reason, stats, .. } = out else {
            panic!("expected Unknown");
        };
        assert!(reason.contains("before search began"), "{reason}");
        assert_eq!(stats, Stats::default());
    }

    #[test]
    fn budget_does_not_disturb_successful_proofs() {
        let mut s = Solver::new();
        s.set_budget(Budget::with_deadline(Duration::from_secs(60)));
        let f = s.bank.sym("f");
        let (x, y) = (s.bank.app0("x"), s.bank.app0("y"));
        let fx = s.bank.app(f, vec![x]);
        let fy = s.bank.app(f, vec![y]);
        assert!(prove(&mut s, vec![Formula::Eq(x, y)], Formula::Eq(fx, fy)));
    }

    #[test]
    fn degenerate_zero_limits_fail_fast_without_panic() {
        // Regression: max_terms 0 used to be noticed only once
        // instantiation began; it must short-circuit before search.
        let mut s = Solver::with_limits(Limits {
            max_splits: 0,
            max_terms: 0,
            max_inst_rounds: 0,
            deadline: None,
        });
        let (x, y) = (s.bank.app0("x"), s.bank.app0("y"));
        let start = Instant::now();
        let out = s.prove(&ProofTask {
            hypotheses: vec![Formula::Eq(x, y)],
            goal: Formula::Eq(y, x),
        });
        assert!(out.is_resource_limited(), "{out:?}");
        if let Outcome::Unknown { reason, .. } = &out {
            assert!(reason.contains("term limit"), "{reason}");
        }
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn split_limit_is_flagged_as_resource_limit() {
        let mut s = Solver::with_limits(Limits {
            max_splits: 1,
            ..Limits::default()
        });
        let task = split_heavy_task(&mut s, 3);
        let out = s.prove(&task);
        assert!(!out.is_proved());
        assert!(out.is_resource_limited(), "{out:?}");
    }

    #[test]
    fn saturated_open_branch_is_not_resource_limited() {
        let mut s = Solver::new();
        let (x, y) = (s.bank.app0("x"), s.bank.app0("y"));
        let out = s.prove(&ProofTask {
            hypotheses: vec![],
            goal: Formula::Eq(x, y),
        });
        assert!(!out.is_proved());
        assert!(!out.is_resource_limited(), "{out:?}");
    }

    #[test]
    fn inst_round_cap_with_unsaturated_foralls_is_a_limit() {
        let mut s = Solver::with_limits(Limits {
            max_inst_rounds: 0,
            ..Limits::default()
        });
        let p = s.bank.sym("p");
        let a = s.bank.app0("a");
        let vsym = s.bank.sym("V");
        let v = s.bank.var("V");
        let pv = s.bank.app(p, vec![v]);
        let hyp = Formula::Forall {
            vars: vec![vsym],
            triggers: vec![],
            body: Box::new(Formula::Holds(pv)),
        };
        let pa = s.bank.app(p, vec![a]);
        let out = s.prove(&ProofTask {
            hypotheses: vec![hyp],
            goal: Formula::Holds(pa),
        });
        assert!(!out.is_proved());
        assert!(out.is_resource_limited(), "{out:?}");
    }

    #[test]
    fn open_branch_context_is_clamped() {
        let mut s = Solver::new();
        // 30 unsaturated universals (two vars, no triggers: never
        // instantiated) → far more context lines than the clamp
        // allows; one of them mentions an enormous ground term so a
        // single rendered literal would exceed the length clamp too.
        let p = s.bank.sym("p");
        let f = s.bank.sym("f");
        let mut deep = s.bank.app0("leaf_with_a_rather_long_name");
        for _ in 0..80 {
            deep = s.bank.app(f, vec![deep]);
        }
        let mut hyps = Vec::new();
        for i in 0..30 {
            let vsym = s.bank.sym(&format!("V{i}"));
            let wsym = s.bank.sym(&format!("W{i}"));
            let v = s.bank.var(&format!("V{i}"));
            let w = s.bank.var(&format!("W{i}"));
            let body = s.bank.app(p, vec![v, w, deep]);
            hyps.push(Formula::Forall {
                vars: vec![vsym, wsym],
                triggers: vec![],
                body: Box::new(Formula::Holds(body)),
            });
        }
        let (x, y) = (s.bank.app0("x"), s.bank.app0("y"));
        let out = s.prove(&ProofTask {
            hypotheses: hyps,
            goal: Formula::Eq(x, y),
        });
        let Outcome::Unknown { open_branch, .. } = out else {
            panic!("expected Unknown");
        };
        assert!(
            open_branch.len() <= MAX_CONTEXT_LITERALS + 1,
            "{} lines",
            open_branch.len()
        );
        assert!(
            open_branch.last().unwrap().contains("more)"),
            "expected a (+N more) marker, got {:?}",
            open_branch.last()
        );
        for lit in &open_branch {
            assert!(
                lit.chars().count() <= MAX_CONTEXT_LITERAL_CHARS,
                "literal too long: {} chars",
                lit.chars().count()
            );
        }
    }

    #[test]
    fn clamp_context_helper_behaviour() {
        let mut lits: Vec<String> = (0..20).map(|i| format!("lit{i}")).collect();
        clamp_context(&mut lits, 5, 100);
        assert_eq!(lits.len(), 6);
        assert_eq!(lits[5], "… (+15 more)");
        let mut long = vec!["x".repeat(500)];
        clamp_context(&mut long, 5, 10);
        assert!(long[0].chars().count() <= 10);
        assert!(long[0].ends_with('…'));
        let mut small = vec!["a".to_string()];
        clamp_context(&mut small, 5, 10);
        assert_eq!(small, vec!["a".to_string()]);
    }

    #[test]
    fn fault_point_in_prove_is_isolated_by_caller() {
        cobalt_support::fault::with_faults("solver.prove:panic@1", || {
            let result = std::panic::catch_unwind(|| {
                let mut s = Solver::new();
                let x = s.bank.app0("x");
                s.prove(&ProofTask {
                    hypotheses: vec![],
                    goal: Formula::Eq(x, x),
                })
            });
            assert!(result.is_err(), "injected panic must fire");
        });
    }

    #[test]
    fn iff_in_hypotheses() {
        let mut s = Solver::new();
        let p = s.bank.app0("p");
        let q = s.bank.app0("q");
        let hyp = Formula::Iff(Box::new(Formula::Holds(p)), Box::new(Formula::Holds(q)));
        assert!(prove(
            &mut s,
            vec![hyp, Formula::Holds(q)],
            Formula::Holds(p)
        ));
    }

    #[test]
    fn proof_by_contradiction_with_negated_predicate() {
        let mut s = Solver::new();
        let p = s.bank.app0("p");
        assert!(prove(
            &mut s,
            vec![Formula::Holds(p).negate(), Formula::Holds(p)],
            Formula::False
        ));
    }

    #[test]
    fn solver_is_reusable_across_prove_calls() {
        // The cached congruence context must rewind completely between
        // calls: a merge assumed in one proof must not leak into the
        // next, and the next proof must still see the whole bank.
        let mut s = Solver::new();
        let f = s.bank.sym("f");
        let (x, y, z) = (s.bank.app0("x"), s.bank.app0("y"), s.bank.app0("z"));
        let fx = s.bank.app(f, vec![x]);
        let fy = s.bank.app(f, vec![y]);
        assert!(prove(&mut s, vec![Formula::Eq(x, y)], Formula::Eq(fx, fy)));
        // x = y was only an assumption of the previous task.
        let out = s.prove(&ProofTask {
            hypotheses: vec![],
            goal: Formula::Eq(x, y),
        });
        assert!(!out.is_proved());
        // And a third call still proves with hypotheses spanning the
        // whole (never-rolled-back) bank.
        assert!(prove(
            &mut s,
            vec![Formula::Eq(x, z), Formula::Eq(z, y)],
            Formula::Eq(fx, fy)
        ));
    }

    #[test]
    fn term_limit_counts_minted_terms_not_bank_size() {
        // A big up-front vocabulary must not eat into the search's term
        // budget: the cap bounds terms minted during prove.
        let mut s = Solver::new();
        for i in 0..100 {
            s.bank.app0(&format!("pre{i}"));
        }
        let (x, y) = (s.bank.app0("x"), s.bank.app0("y"));
        s.set_limits(Limits {
            max_terms: 1,
            ..Limits::default()
        });
        assert!(prove(&mut s, vec![Formula::Eq(x, y)], Formula::Eq(y, x)));
    }

    #[test]
    fn contradictory_hypotheses_close_without_search() {
        let mut s = Solver::new();
        let (x, y) = (s.bank.app0("x"), s.bank.app0("y"));
        let out = s.prove(&ProofTask {
            hypotheses: vec![Formula::Eq(x, y), Formula::ne(x, y)],
            goal: Formula::False,
        });
        match out {
            Outcome::Proved { stats, .. } => {
                assert_eq!(stats.branches, 1);
                assert_eq!(stats.splits, 0);
            }
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn false_hypothesis_proves_anything() {
        let mut s = Solver::new();
        let (x, y) = (s.bank.app0("x"), s.bank.app0("y"));
        assert!(prove(&mut s, vec![Formula::False], Formula::Eq(x, y)));
    }

    #[test]
    fn duplicate_hypotheses_are_deduplicated() {
        let mut s = Solver::new();
        let (a, b, c) = (s.bank.app0("a"), s.bank.app0("b"), s.bank.app0("c"));
        let disj = Formula::or([Formula::Eq(a, c), Formula::Eq(b, c)]);
        // Ten copies of the same disjunction must cost one split, not ten.
        let hyps: Vec<Formula> = std::iter::repeat_with(|| disj.clone())
            .take(10)
            .chain([Formula::Eq(a, b)])
            .collect();
        let out = s.prove(&ProofTask {
            hypotheses: hyps,
            goal: Formula::Eq(b, c),
        });
        match out {
            Outcome::Proved { stats, .. } => {
                assert!(stats.splits <= 1, "splits: {}", stats.splits);
            }
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn overlay_solver_proves_against_shared_base() {
        // Batch mode: encode a vocabulary once, freeze it, and prove in
        // an overlay. Skolems minted by the overlay stay private.
        let mut base = TermBank::new();
        let f = base.sym("f");
        let a = base.app0("a");
        let vsym = base.sym("V");
        let v = base.var("V");
        let fv = base.app(f, vec![v]);
        let hyp = Formula::Forall {
            vars: vec![vsym],
            triggers: vec![fv],
            body: Box::new(Formula::Eq(fv, a)),
        };
        let frozen = base.freeze();
        let mut s1 = Solver::with_base_bank(frozen.clone());
        let mut s2 = Solver::with_base_bank(frozen);
        let fa1 = {
            let aa = s1.bank.app0("a");
            s1.bank.app(f, vec![aa])
        };
        assert!(prove(&mut s1, vec![hyp.clone()], Formula::Eq(fa1, a)));
        let fa2 = {
            let aa = s2.bank.app0("a");
            s2.bank.app(f, vec![aa])
        };
        assert!(prove(&mut s2, vec![hyp], Formula::Eq(fa2, a)));
    }

    #[test]
    fn stats_are_recorded() {
        let mut s = Solver::new();
        let m = s.bank.app0("m");
        let (k1, k2) = (s.bank.app0("k1"), s.bank.app0("k2"));
        let v = s.bank.app0("v");
        let upd = s.update(m, k1, v);
        let sel = s.select(upd, k2);
        let sel0 = s.select(m, k2);
        let goal = Formula::or([Formula::Eq(sel, v), Formula::Eq(sel, sel0)]);
        let out = s.prove(&ProofTask {
            hypotheses: vec![],
            goal,
        });
        match out {
            Outcome::Proved { stats, .. } => {
                assert!(stats.branches >= 1);
            }
            other => panic!("expected proof, got {other:?}"),
        }
    }
}
