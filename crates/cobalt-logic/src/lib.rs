//! # cobalt-logic
//!
//! An automatic theorem prover for the ground-plus-light-quantifier
//! fragment needed by the Cobalt soundness checker — the stand-in for
//! the Simplify prover used in *Lerner, Millstein & Chambers,
//! "Automatically Proving the Correctness of Compiler Optimizations"
//! (PLDI 2003)*, §5.1.
//!
//! The prover combines:
//!
//! * hash-consed [terms](TermBank) with free constructors,
//! * [congruence closure](cc::Cc) with disequalities, constructor
//!   disjointness and injectivity,
//! * a `select`/`update` **array theory** (Simplify's built-in map
//!   axioms) decided by merging and index case splits,
//! * **tableau search** over the propositional structure, and
//! * Simplify-style **trigger-based quantifier instantiation** with
//!   skolemization of existentials.
//!
//! # Examples
//!
//! Read-over-write, the key lemma behind most dataflow obligations:
//!
//! ```
//! use cobalt_logic::{Formula, ProofTask, Solver};
//!
//! let mut solver = Solver::new();
//! let store = solver.bank.app0("store");
//! let (k, k2) = (solver.bank.app0("k"), solver.bank.app0("k2"));
//! let v = solver.bank.app0("v");
//! let upd = solver.update(store, k, v);
//! let read_back = solver.select(upd, k);
//! let read_other = solver.select(upd, k2);
//! let read_orig = solver.select(store, k2);
//!
//! // Reading the written key gives the written value…
//! assert!(solver
//!     .prove(&ProofTask { hypotheses: vec![], goal: Formula::Eq(read_back, v) })
//!     .is_proved());
//! // …and reading a *different* key is unaffected.
//! assert!(solver
//!     .prove(&ProofTask {
//!         hypotheses: vec![Formula::ne(k, k2)],
//!         goal: Formula::Eq(read_other, read_orig),
//!     })
//!     .is_proved());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
pub mod formula;
pub mod solver;
pub mod term;

pub use cc::Cc;
pub use formula::Formula;
pub use solver::{
    clamp_context, Budget, Limits, Outcome, ProofTask, Solver, Stats, UnknownKind, SELECT, UPDATE,
};
pub use term::{Sym, TermBank, TermData, TermId};
