//! Optimistic self-composition of a backward removal pattern —
//! the paper's §5.2 closing example:
//!
//! > "Whirlwind's framework automatically composes an optimization with
//! > itself, allowing a recursively defined optimization to be solved
//! > in an optimistic, iterative manner… a recursive version of
//! > dead-assignment elimination allows `X := E` to be removed even if
//! > `X` is used before being redefined, as long as it is only used by
//! > other dead assignments (possibly including itself)."
//!
//! Plain DAE cannot remove the mutually-dead cycle
//! `x := y; y := x` inside a loop — each keeps the other alive. The
//! recursive solver starts from the optimistic assumption that *every*
//! site the pattern syntactically matches is removable, then repeatedly
//! re-runs the optimization's own legality analysis on the procedure
//! with the still-assumed-removable sites replaced by the rewrite
//! template, dropping assumptions that the analysis does not confirm.
//! The greatest fixpoint is reached when the surviving assumption set
//! validates itself.
//!
//! At the fixpoint, every removed site is a legal site *of the
//! transformed procedure in which the other removals have already been
//! applied* — the sites justify each other. As the paper itself notes
//! (footnote 7), the soundness of this self-composition is **not**
//! covered by the machine-checked obligations; it rests on the
//! composition framework of Lerner–Grove–Chambers (POPL 2002) and, in
//! this reproduction, on the differential property tests.

use crate::analyzed::AnalyzedProc;
use crate::engine::Engine;
use crate::error::EngineError;
use cobalt_dsl::{MatchSite, Optimization};
use cobalt_il::Proc;

/// Applies `opt` recursively (composed with itself) to a procedure:
/// the optimistic greatest-fixpoint solution described in paper §5.2.
///
/// Returns the transformed procedure and the sites removed. For
/// patterns without mutual recursion this coincides with iterating
/// [`Engine::apply`] to a fixpoint; for cyclic dependencies (mutually
/// dead assignments) it removes strictly more.
///
/// # Errors
///
/// Propagates engine errors.
pub fn apply_recursive(
    engine: &Engine,
    proc: &Proc,
    opt: &Optimization,
) -> Result<(Proc, Vec<MatchSite>), EngineError> {
    // All syntactic candidates.
    let candidates: Vec<MatchSite> = {
        let ap = AnalyzedProc::new(proc.clone())?;
        let mut sites = Vec::new();
        for (i, stmt) in ap.proc.stmts.iter().enumerate() {
            if let Some(theta) = opt.pattern.from.try_match(stmt, &cobalt_dsl::Subst::new()) {
                if opt.pattern.to.instantiate(&theta).is_ok() {
                    sites.push(MatchSite {
                        index: i,
                        subst: theta,
                    });
                }
            }
        }
        sites
    };

    // Iterate A ↦ F(A) = { s ∈ candidates : θ_s compatible with the
    // dataflow facts of apply(A) at s's node } starting from the
    // optimistic A = candidates. The facts at a node do not depend on
    // the node's own statement, so computing them on the fully-applied
    // candidate realizes "uses by removed statements do not count —
    // possibly including the site itself". F is not monotone (removing
    // a site can both create and destroy legality elsewhere), so
    // repeats are detected and the plain iterated fixpoint is the
    // fallback.
    let region = match &opt.pattern.guard {
        cobalt_dsl::GuardSpec::Region(rg) if opt.pattern.where_clause == cobalt_dsl::Guard::True => {
            rg.clone()
        }
        // Local rewrites and node-local `where` conditions gain nothing
        // from self-composition; use the plain fixpoint.
        _ => return apply_plain_fixpoint(engine, proc, opt),
    };
    let ap0 = AnalyzedProc::new(proc.clone())?;
    let mut meter = engine.budget().meter();
    let mut assumed = candidates.clone();
    let mut seen: Vec<Vec<usize>> = Vec::new();
    for _ in 0..64 {
        meter.tick()?;
        let key: Vec<usize> = assumed.iter().map(|s| s.index).collect();
        if seen.contains(&key) {
            return apply_plain_fixpoint(engine, proc, opt);
        }
        seen.push(key);
        let context = engine.apply_sites(&ap0, opt, &assumed)?;
        let probe = AnalyzedProc::new(context)?.without_labels();
        let site_facts = match opt.pattern.direction {
            cobalt_dsl::Direction::Forward => {
                crate::dataflow::forward_in_facts_metered(&probe, engine.env(), &region, &mut meter)?
            }
            cobalt_dsl::Direction::Backward => {
                let cont = crate::dataflow::backward_cont_facts_metered(
                    &probe,
                    engine.env(),
                    &region,
                    &mut meter,
                )?;
                crate::dataflow::backward_site_facts(&probe, &cont)
            }
        };
        let mut next = Vec::new();
        for site in &candidates {
            let compatible = site_facts[site.index].iter().any(|fact| {
                let mut merged = site.subst.clone();
                merged.merge(fact)
            });
            if compatible {
                next.push(site.clone());
            }
        }
        if next.iter().map(|s| s.index).eq(assumed.iter().map(|s| s.index)) {
            let result = engine.apply_sites(&ap0, opt, &next)?;
            return Ok((result, next));
        }
        assumed = next;
    }
    apply_plain_fixpoint(engine, proc, opt)
}

/// The non-recursive baseline: iterate [`Engine::apply`] to a fixpoint.
fn apply_plain_fixpoint(
    engine: &Engine,
    proc: &Proc,
    opt: &Optimization,
) -> Result<(Proc, Vec<MatchSite>), EngineError> {
    let mut current = proc.clone();
    let mut all: Vec<MatchSite> = Vec::new();
    let mut meter = engine.budget().meter();
    loop {
        meter.tick()?;
        let ap = AnalyzedProc::new(current.clone())?;
        let (next, applied) = engine.apply(&ap, opt)?;
        if applied.is_empty() {
            return Ok((current, all));
        }
        all.extend(applied);
        current = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobalt_dsl::LabelEnv;
    use cobalt_il::{parse_program, pretty_proc, Interp, Program, Stmt};

    fn dae_like() -> Optimization {
        // Local mirror of cobalt_opts::dae (cobalt-engine cannot depend
        // on cobalt-opts).
        use cobalt_dsl::{
            BackwardWitness, Direction, ExprPat, Guard, GuardSpec, LabelArgPat, LhsPat,
            RegionGuard, StmtPat, TransformPattern, VarPat, Witness,
        };
        let not_use =
            Guard::not_label("mayUse", vec![LabelArgPat::Var(VarPat::pat("X"))]);
        Optimization::new(
            "dae",
            TransformPattern {
                direction: Direction::Backward,
                guard: GuardSpec::Region(RegionGuard {
                    psi1: Guard::and([
                        Guard::or([
                            Guard::Stmt(StmtPat::Assign(LhsPat::Var(VarPat::pat("X")), ExprPat::Any)),
                            Guard::Stmt(StmtPat::ReturnAny),
                        ]),
                        not_use.clone(),
                    ]),
                    psi2: not_use,
                }),
                from: StmtPat::Assign(LhsPat::Var(VarPat::pat("X")), ExprPat::Pat("E".into())),
                to: StmtPat::Skip,
                where_clause: Guard::True,
                witness: Witness::Backward(BackwardWitness::AgreeExcept(VarPat::pat("X"))),
            },
        )
    }

    #[test]
    fn removes_mutually_dead_loop_cycle() {
        // a and b keep each other "alive" around the loop but are never
        // observed: plain DAE removes nothing, recursive DAE removes
        // both.
        let src = "proc main(x) {
            decl a;
            decl b;
            decl i;
            i := x;
            a := b;
            b := a;
            i := i - 1;
            if i goto 4 else 8;
            return x;
        }";
        let prog = parse_program(src).unwrap();
        let engine = Engine::new(LabelEnv::standard());
        let main = prog.main().unwrap();

        // Plain DAE is stuck on the cycle.
        let ap = AnalyzedProc::new(main.clone()).unwrap();
        let (_, plain) = engine.apply(&ap, &dae_like()).unwrap();
        assert!(
            plain.iter().all(|s| s.index != 4 && s.index != 5),
            "plain DAE should not remove the cycle: {plain:?}"
        );

        // Recursive DAE removes it.
        let (optimized, removed) = apply_recursive(&engine, main, &dae_like()).unwrap();
        let removed_idx: Vec<usize> = removed.iter().map(|s| s.index).collect();
        assert!(removed_idx.contains(&4), "{}", pretty_proc(&optimized));
        assert!(removed_idx.contains(&5), "{}", pretty_proc(&optimized));
        assert!(matches!(optimized.stmts[4], Stmt::Skip));
        assert!(matches!(optimized.stmts[5], Stmt::Skip));

        // Semantics preserved.
        let new_prog = Program::new(vec![optimized]);
        for arg in [1, 3] {
            assert_eq!(
                Interp::new(&prog).run(arg).unwrap(),
                Interp::new(&new_prog).run(arg).unwrap()
            );
        }
    }

    #[test]
    fn does_not_remove_live_assignments() {
        let src = "proc main(x) {
            decl a;
            decl b;
            a := x;
            b := a;
            return b;
        }";
        let prog = parse_program(src).unwrap();
        let engine = Engine::new(LabelEnv::standard());
        let (optimized, removed) =
            apply_recursive(&engine, prog.main().unwrap(), &dae_like()).unwrap();
        assert!(removed.is_empty(), "{}", pretty_proc(&optimized));
    }

    #[test]
    fn self_use_in_dead_cycle_is_removed() {
        // The paper: "as long as it is only used by other dead
        // assignments (possibly including itself)".
        let src = "proc main(x) {
            decl a;
            decl i;
            i := x;
            a := a + 1;
            i := i - 1;
            if i goto 3 else 6;
            return x;
        }";
        let prog = parse_program(src).unwrap();
        let engine = Engine::new(LabelEnv::standard());
        let (optimized, removed) =
            apply_recursive(&engine, prog.main().unwrap(), &dae_like()).unwrap();
        assert!(
            removed.iter().any(|s| s.index == 3),
            "{}",
            pretty_proc(&optimized)
        );
        let new_prog = Program::new(vec![optimized]);
        for arg in [1, 4] {
            assert_eq!(
                Interp::new(&prog).run(arg).unwrap(),
                Interp::new(&new_prog).run(arg).unwrap()
            );
        }
    }

    #[test]
    fn coincides_with_plain_dae_on_acyclic_code() {
        let src = "proc main(x) {
            decl a;
            decl b;
            a := 1;
            b := a;
            a := x;
            return a;
        }";
        let prog = parse_program(src).unwrap();
        let engine = Engine::new(LabelEnv::standard());
        let main = prog.main().unwrap();
        let (_, recursive) = apply_recursive(&engine, main, &dae_like()).unwrap();
        // Iterated plain DAE (two rounds) removes a := 1 and b := a.
        let recursive_idx: std::collections::BTreeSet<usize> =
            recursive.iter().map(|s| s.index).collect();
        assert_eq!(recursive_idx, [2usize, 3].into_iter().collect());
    }
}
