//! The optimization execution engine (paper §5.2).
//!
//! Runs Cobalt optimizations directly — no re-implementation in another
//! language is needed: the engine computes the substitution-set dataflow
//! fixpoint for the optimization's guard, collects the legal
//! transformation sites `Δ = ⟦O_pat⟧(p)`, filters them through the
//! profitability heuristic, and applies the rewrites.

use crate::analyzed::AnalyzedProc;
use crate::budget::Budget;
use crate::dataflow::{
    backward_cont_facts_metered, backward_site_facts, forward_in_facts_metered, FactSet,
};
use crate::error::EngineError;
use cobalt_dsl::{
    Direction, GuardSpec, LabelEnv, LabelInst, MatchSite, Optimization, PureAnalysis, Subst,
};
use cobalt_il::{Proc, Program};

/// The execution engine: a label environment plus drivers for running
/// optimizations and pure analyses.
///
/// # Examples
///
/// Running constant propagation on the paper's §5.2 example:
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use cobalt_dsl::LabelEnv;
/// use cobalt_engine::{AnalyzedProc, Engine};
///
/// let engine = Engine::new(LabelEnv::standard());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    env: LabelEnv,
    lint_prepass: bool,
    budget: Budget,
}

impl Engine {
    /// Creates an engine with the given label environment and an
    /// unlimited [`Budget`].
    pub fn new(env: LabelEnv) -> Self {
        Engine {
            env,
            lint_prepass: false,
            budget: Budget::unlimited(),
        }
    }

    /// Bounds every fixpoint this engine runs by `budget`. Drivers that
    /// process several procedures [fork](Budget::fork) the budget per
    /// procedure so the step cap is per-procedure and therefore
    /// deterministic at any `--jobs` count.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The budget bounding this engine's fixpoints.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Enables the opt-in lint pre-pass in the resilient drivers: rules
    /// with error-severity lint diagnostics are quarantined as
    /// [`PassFailure`](crate::PassFailure)s before any round runs,
    /// instead of failing (or silently doing nothing) mid-pipeline.
    pub fn with_lint_prepass(mut self) -> Self {
        self.lint_prepass = true;
        self
    }

    /// Whether the resilient drivers lint rules before running them.
    pub fn lint_prepass_enabled(&self) -> bool {
        self.lint_prepass
    }

    /// The label environment in use.
    pub fn env(&self) -> &LabelEnv {
        &self.env
    }

    /// Computes `Δ = ⟦O_pat⟧(p)`: every legal transformation site of the
    /// optimization's pattern, before profitability filtering.
    ///
    /// Sites whose rewrite template fails to instantiate (e.g. a
    /// non-foldable expression under `fold(E)`) are excluded — such a
    /// transformation is undefined, hence not legal.
    ///
    /// # Errors
    ///
    /// Propagates guard-evaluation errors.
    pub fn legal_sites(
        &self,
        ap: &AnalyzedProc,
        opt: &Optimization,
    ) -> Result<Vec<MatchSite>, EngineError> {
        let pat = &opt.pattern;
        let mut meter = self.budget.meter();
        let site_facts: Vec<FactSet> = match (&pat.guard, pat.direction) {
            (GuardSpec::Local, _) => {
                // Node-local rewrite: every node is a candidate with the
                // empty substitution.
                (0..ap.proc.len())
                    .map(|_| std::iter::once(Subst::new()).collect())
                    .collect()
            }
            (GuardSpec::Region(guard), Direction::Forward) => {
                forward_in_facts_metered(ap, &self.env, guard, &mut meter)?
            }
            (GuardSpec::Region(guard), Direction::Backward) => {
                // Paper §4.1: a forward pure analysis may not feed a
                // backward transformation (interference). Backward
                // guards therefore see no semantic labels.
                let masked = ap.without_labels();
                let cont = backward_cont_facts_metered(&masked, &self.env, guard, &mut meter)?;
                backward_site_facts(&masked, &cont)
            }
        };
        let masked_ap;
        let eval_ap: &AnalyzedProc = if pat.direction == Direction::Backward {
            masked_ap = ap.without_labels();
            &masked_ap
        } else {
            ap
        };
        let mut sites = Vec::new();
        for (i, stmt) in eval_ap.proc.stmts.iter().enumerate() {
            let ctx = eval_ap.node_ctx(&self.env, i);
            let mut thetas: Vec<&Subst> = site_facts[i].iter().collect();
            thetas.sort();
            for theta in thetas {
                let Some(extended) = pat.from.try_match(stmt, theta) else {
                    continue;
                };
                if !pat.where_clause.eval(&ctx, &extended)? {
                    continue;
                }
                if pat.to.instantiate(&extended).is_err() {
                    continue;
                }
                sites.push(MatchSite {
                    index: i,
                    subst: extended,
                });
            }
        }
        Ok(sites)
    }

    /// Runs the full optimization on a prepared procedure: computes Δ,
    /// filters through `choose`, and applies the selected rewrites.
    /// Returns the transformed procedure and the sites applied.
    ///
    /// If `choose` selects several sites at the same index, the first
    /// (in selection order) wins, matching the paper's nondeterministic
    /// choice (footnote 4).
    ///
    /// # Errors
    ///
    /// Propagates guard and instantiation errors.
    pub fn apply(
        &self,
        ap: &AnalyzedProc,
        opt: &Optimization,
    ) -> Result<(Proc, Vec<MatchSite>), EngineError> {
        let delta = self.legal_sites(ap, opt)?;
        let selected = opt.choose.select(&delta, &ap.proc);
        let mut stmts = ap.proc.stmts.clone();
        let mut applied: Vec<MatchSite> = Vec::new();
        for site in selected {
            if applied.iter().any(|s| s.index == site.index) {
                continue;
            }
            stmts[site.index] = opt.pattern.to.instantiate(&site.subst)?;
            applied.push(site);
        }
        let proc = Proc {
            name: ap.proc.name.clone(),
            param: ap.proc.param.clone(),
            stmts,
        };
        Ok((proc, applied))
    }

    /// Runs a pure analysis, adding its label to every node whose guard
    /// holds (paper §2.4).
    ///
    /// # Errors
    ///
    /// Propagates guard-evaluation errors.
    pub fn run_pure_analysis(
        &self,
        ap: &mut AnalyzedProc,
        analysis: &PureAnalysis,
    ) -> Result<usize, EngineError> {
        let ins = forward_in_facts_metered(ap, &self.env, &analysis.guard, &mut self.budget.meter())?;
        let (name, args) = &analysis.defines;
        let mut added = 0;
        for (i, fact) in ins.iter().enumerate() {
            // Canonical label-insertion order (fact sets hash-iterate).
            let mut thetas: Vec<&Subst> = fact.iter().collect();
            thetas.sort();
            for theta in thetas {
                let concrete = args
                    .iter()
                    .map(|a| a.instantiate(theta))
                    .collect::<Result<Vec<_>, _>>()?;
                let inst = LabelInst {
                    name: name.clone(),
                    args: concrete,
                };
                if !ap.labels[i].contains(&inst) {
                    ap.labels[i].insert(inst);
                    added += 1;
                }
            }
        }
        Ok(added)
    }

    /// Optimizes one procedure with a pipeline: runs every pure analysis,
    /// then applies each optimization in order, repeating the whole
    /// sequence until a fixpoint or `max_rounds`.
    ///
    /// # Errors
    ///
    /// Propagates engine errors from any pass.
    pub fn optimize_proc(
        &self,
        proc: &Proc,
        analyses: &[PureAnalysis],
        opts: &[Optimization],
        max_rounds: usize,
    ) -> Result<(Proc, usize), EngineError> {
        let mut current = proc.clone();
        let mut total_applied = 0;
        for _ in 0..max_rounds {
            let mut round_applied = 0;
            for opt in opts {
                let mut ap = AnalyzedProc::new(current.clone())?;
                for a in analyses {
                    self.run_pure_analysis(&mut ap, a)?;
                }
                let (next, applied) = self.apply(&ap, opt)?;
                round_applied += applied.len();
                current = next;
            }
            total_applied += round_applied;
            if round_applied == 0 {
                break;
            }
        }
        Ok((current, total_applied))
    }

    /// Optimizes every procedure of a program; see
    /// [`optimize_proc`](Self::optimize_proc).
    ///
    /// # Errors
    ///
    /// Propagates engine errors from any procedure.
    pub fn optimize_program(
        &self,
        program: &Program,
        analyses: &[PureAnalysis],
        opts: &[Optimization],
        max_rounds: usize,
    ) -> Result<(Program, usize), EngineError> {
        let mut out = program.clone();
        let mut total = 0;
        for proc in &program.procs {
            // Fresh step counter per procedure: the cap bounds each
            // procedure's pipeline, not their interleaved sum.
            let worker = self.clone().with_budget(self.budget.fork());
            let (optimized, n) = worker.optimize_proc(proc, analyses, opts, max_rounds)?;
            out = out.with_proc_replaced(optimized);
            total += n;
        }
        Ok((out, total))
    }

    /// Applies an explicit set of sites (any subset of
    /// [`legal_sites`](Self::legal_sites)) to the procedure — the
    /// `app(s', p, Δ')` function of Definition 2. Used by the
    /// noninterference property tests, which apply random subsets.
    ///
    /// # Errors
    ///
    /// Fails if a site's template cannot be instantiated.
    pub fn apply_sites(
        &self,
        ap: &AnalyzedProc,
        opt: &Optimization,
        sites: &[MatchSite],
    ) -> Result<Proc, EngineError> {
        let mut stmts = ap.proc.stmts.clone();
        let mut seen = Vec::new();
        for site in sites {
            if seen.contains(&site.index) {
                continue;
            }
            seen.push(site.index);
            stmts[site.index] = opt.pattern.to.instantiate(&site.subst)?;
        }
        Ok(Proc {
            name: ap.proc.name.clone(),
            param: ap.proc.param.clone(),
            stmts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobalt_dsl::{
        BasePat, ConstPat, ExprPat, Guard, LabelArgPat, LhsPat, RegionGuard, StmtPat,
        TransformPattern, VarPat, Witness,
    };
    use cobalt_dsl::ForwardWitness;
    use cobalt_il::{parse_program, pretty_proc};

    fn const_prop() -> Optimization {
        Optimization::new(
            "const_prop",
            TransformPattern {
                direction: Direction::Forward,
                guard: GuardSpec::Region(RegionGuard {
                    psi1: Guard::Stmt(StmtPat::Assign(
                        LhsPat::Var(VarPat::pat("Y")),
                        ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
                    )),
                    psi2: Guard::not_label("mayDef", vec![LabelArgPat::Var(VarPat::pat("Y"))]),
                }),
                from: StmtPat::Assign(
                    LhsPat::Var(VarPat::pat("X")),
                    ExprPat::Base(BasePat::Var(VarPat::pat("Y"))),
                ),
                to: StmtPat::Assign(
                    LhsPat::Var(VarPat::pat("X")),
                    ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
                ),
                where_clause: Guard::True,
                witness: Witness::Forward(ForwardWitness::VarEqConst(
                    VarPat::pat("Y"),
                    ConstPat::pat("C"),
                )),
            },
        )
    }

    fn prep(src: &str) -> AnalyzedProc {
        let prog = parse_program(src).unwrap();
        AnalyzedProc::new(prog.main().unwrap().clone()).unwrap()
    }

    #[test]
    fn const_prop_rewrites_paper_example() {
        let engine = Engine::new(LabelEnv::standard());
        let ap = prep("proc main(x) { a := 2; b := 3; c := a; return c; }");
        let (proc, applied) = engine.apply(&ap, &const_prop()).unwrap();
        assert_eq!(applied.len(), 1);
        assert_eq!(proc.stmts[2].to_string(), "c := 2");
    }

    #[test]
    fn const_prop_blocked_by_branch() {
        let engine = Engine::new(LabelEnv::standard());
        let ap = prep(
            "proc main(x) {
                if x goto 2 else 1;
                a := 2;
                c := a;
                return c;
             }",
        );
        let (proc, applied) = engine.apply(&ap, &const_prop()).unwrap();
        assert!(applied.is_empty(), "{}", pretty_proc(&proc));
    }

    #[test]
    fn const_prop_chains_through_rounds() {
        // a := 2; b := a; c := b — two rounds propagate both.
        let engine = Engine::new(LabelEnv::standard());
        let prog = parse_program(
            "proc main(x) { a := 2; b := a; c := b; return c; }",
        )
        .unwrap();
        let (opt, n) = engine
            .optimize_proc(prog.main().unwrap(), &[], &[const_prop()], 5)
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(opt.stmts[1].to_string(), "b := 2");
        assert_eq!(opt.stmts[2].to_string(), "c := 2");
    }

    #[test]
    fn pointer_aliasing_blocks_const_prop() {
        // *p := 9 may change a (a's address is taken).
        let engine = Engine::new(LabelEnv::standard());
        let ap = prep(
            "proc main(x) {
                decl a;
                decl p;
                p := &a;
                a := 2;
                *p := 9;
                c := a;
                return c;
             }",
        );
        let (_, applied) = engine.apply(&ap, &const_prop()).unwrap();
        assert!(applied.is_empty());
    }

    #[test]
    fn choose_filters_sites() {
        let engine = Engine::new(LabelEnv::standard());
        let ap = prep(
            "proc main(x) { a := 2; c := a; d := a; return c; }",
        );
        let none = const_prop().with_choose(|_, _| Vec::new());
        let (proc, applied) = engine.apply(&ap, &none).unwrap();
        assert!(applied.is_empty());
        assert_eq!(proc.stmts[1].to_string(), "c := a");
        let delta = engine.legal_sites(&ap, &const_prop()).unwrap();
        assert_eq!(delta.len(), 2);
    }

    #[test]
    fn apply_sites_subset() {
        let engine = Engine::new(LabelEnv::standard());
        let ap = prep(
            "proc main(x) { a := 2; c := a; d := a; return c; }",
        );
        let opt = const_prop();
        let delta = engine.legal_sites(&ap, &opt).unwrap();
        let one = engine.apply_sites(&ap, &opt, &delta[..1]).unwrap();
        let changed = one
            .stmts
            .iter()
            .filter(|s| s.to_string().contains(":= 2"))
            .count();
        assert_eq!(changed, 2); // a := 2 itself plus one rewritten site
    }

    #[test]
    fn local_rewrite_constant_folding() {
        let fold = Optimization::new(
            "const_fold",
            TransformPattern {
                direction: Direction::Forward,
                guard: GuardSpec::Local,
                from: StmtPat::Assign(LhsPat::Var(VarPat::pat("X")), ExprPat::Pat("E".into())),
                to: StmtPat::Assign(LhsPat::Var(VarPat::pat("X")), ExprPat::Fold("E".into())),
                where_clause: Guard::True,
                witness: Witness::Forward(ForwardWitness::True),
            },
        );
        let engine = Engine::new(LabelEnv::standard());
        let ap = prep("proc main(x) { a := 2 + 3; b := x + 1; c := 1 / 0; return a; }");
        let (proc, applied) = engine.apply(&ap, &fold).unwrap();
        // Only the foldable site is legal; x + 1 and 1/0 are skipped.
        // (a := 2 + 3 folds; a "fold" of `2+3` alone — note X := E also
        // matches `a := 5`-style statements whose E is already a
        // constant, which fold to themselves.)
        assert_eq!(proc.stmts[0].to_string(), "a := 5");
        assert_eq!(proc.stmts[1].to_string(), "b := x + 1");
        assert_eq!(proc.stmts[2].to_string(), "c := 1 / 0");
        assert_eq!(applied.len(), 1);
    }

    #[test]
    fn pure_analysis_not_tainted() {
        use cobalt_dsl::PureAnalysis;
        // notTainted(X): decl X followed by ¬stmt(... := &X).
        let analysis = PureAnalysis {
            name: "taint".into(),
            guard: RegionGuard {
                psi1: Guard::Stmt(StmtPat::Decl(VarPat::pat("X"))),
                psi2: Guard::Stmt(StmtPat::Assign(
                    LhsPat::Any,
                    ExprPat::AddrOf(VarPat::pat("X")),
                ))
                .negate(),
            },
            defines: (
                "notTainted".into(),
                vec![LabelArgPat::Var(VarPat::pat("X"))],
            ),
            witness: ForwardWitness::NotPointedTo(VarPat::pat("X")),
        };
        let engine = Engine::new(LabelEnv::standard());
        let mut ap = prep(
            "proc main(x) {
                decl y;
                decl z;
                p := &y;
                a := z;
                return a;
             }",
        );
        let added = engine.run_pure_analysis(&mut ap, &analysis).unwrap();
        assert!(added > 0);
        let has = |i: usize, v: &str| {
            ap.labels[i]
                .iter()
                .any(|l| l.to_string() == format!("notTainted({v})"))
        };
        // After decl y (node 1): y is not tainted.
        assert!(has(1, "y"));
        // After p := &y (node 3): y is tainted, z is not.
        assert!(!has(3, "y"));
        assert!(has(3, "z"));
    }

    #[test]
    fn optimize_program_handles_all_procs() {
        let engine = Engine::new(LabelEnv::standard());
        let prog = parse_program(
            "proc main(x) { a := 2; c := a; return c; }
             proc f(n) { b := 3; d := b; return d; }",
        )
        .unwrap();
        let (out, n) = engine
            .optimize_program(&prog, &[], &[const_prop()], 3)
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(out.proc(&"f".into()).unwrap().stmts[1].to_string(), "d := 3");
    }
}
