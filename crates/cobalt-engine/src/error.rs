//! Error type for the execution engine.

use cobalt_dsl::{GuardError, InstError};
use cobalt_il::WellFormedError;
use std::error::Error;
use std::fmt;

/// An error raised while running an optimization or analysis.
#[derive(Debug)]
pub enum EngineError {
    /// The procedure was ill-formed (bad CFG).
    IllFormed(WellFormedError),
    /// A guard could not be evaluated.
    Guard(GuardError),
    /// A rewrite template could not be instantiated for a selected site
    /// (sites whose templates fail to instantiate are normally dropped
    /// from Δ; this arises only if a `choose` function invents one).
    Template(InstError),
    /// The analysis exhausted its [`Budget`](crate::Budget) — deadline,
    /// step cap, or cooperative cancellation. Says nothing about the
    /// program or the rule, only that the budget ran out; the resilient
    /// drivers quarantine the pass (sound — it is merely skipped).
    ResourceLimited(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::IllFormed(e) => write!(f, "engine: {e}"),
            EngineError::Guard(e) => write!(f, "engine: {e}"),
            EngineError::Template(e) => write!(f, "engine: {e}"),
            EngineError::ResourceLimited(reason) => {
                write!(f, "engine: resource limited: {reason}")
            }
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::IllFormed(e) => Some(e),
            EngineError::Guard(e) => Some(e),
            EngineError::Template(e) => Some(e),
            EngineError::ResourceLimited(_) => None,
        }
    }
}

impl From<WellFormedError> for EngineError {
    fn from(e: WellFormedError) -> Self {
        EngineError::IllFormed(e)
    }
}

impl From<GuardError> for EngineError {
    fn from(e: GuardError) -> Self {
        EngineError::Guard(e)
    }
}

impl From<InstError> for EngineError {
    fn from(e: InstError) -> Self {
        EngineError::Template(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EngineError::from(WellFormedError::NoMain);
        assert!(e.to_string().contains("main"));
        assert!(e.source().is_some());
        let g = EngineError::from(GuardError::new("boom"));
        assert!(g.to_string().contains("boom"));
    }
}
