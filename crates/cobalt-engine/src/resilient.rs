//! Fault-isolating pipeline drivers: graceful degradation for the
//! optimization engine.
//!
//! [`Engine::optimize_proc`](crate::Engine::optimize_proc) propagates
//! the first pass error and aborts the pipeline; a pass that *panics*
//! takes the whole process down. The resilient drivers here instead
//! isolate every pass (and every pure analysis) per round: a pass that
//! returns an error or panics is recorded as a typed [`PassFailure`],
//! quarantined for the remaining rounds, and the surviving passes keep
//! running on the last good program.
//!
//! Skipping an arbitrary subset of passes is *sound* by construction:
//! each optimization's `choose` heuristic already selects an arbitrary
//! subset of its legal sites (paper footnote 4), and noninterference
//! (§4.1, exercised by the E7 differential tests) guarantees that every
//! subset of legal transformations preserves semantics. Dropping a pass
//! entirely is just the empty subset, so a degraded pipeline is a less
//! optimized — never a less correct — compiler.

use crate::analyzed::AnalyzedProc;
use crate::engine::Engine;
use crate::error::EngineError;
use cobalt_dsl::{Optimization, PureAnalysis};
use cobalt_il::{Proc, Program};
use cobalt_support::fault;
use std::collections::HashSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How a quarantined pass failed — the typed dimension of a
/// [`PassFailure`], so callers (and the `--json` report) can
/// distinguish "ran out of budget" from "the pass is broken".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The pass exhausted the engine [`Budget`](crate::Budget)
    /// (deadline, step cap, or cancellation). Drives the exit-3 path.
    ResourceLimited,
    /// The pass returned an engine error (bad guard, lint rejection,
    /// injected fault, …).
    Error,
    /// The pass panicked and was caught.
    Panic,
}

impl FailureKind {
    /// The stable machine-readable name used in JSON reports and
    /// journal records.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::ResourceLimited => "resource-limited",
            FailureKind::Error => "error",
            FailureKind::Panic => "panic",
        }
    }

    /// Parses [`as_str`](Self::as_str) output (journal decode).
    pub fn parse(s: &str) -> Option<FailureKind> {
        match s {
            "resource-limited" => Some(FailureKind::ResourceLimited),
            "error" => Some(FailureKind::Error),
            "panic" => Some(FailureKind::Panic),
            _ => None,
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One isolated pass (or analysis) failure inside a resilient pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassFailure {
    /// What kind of failure this was.
    pub kind: FailureKind,
    /// The procedure being optimized when the failure occurred.
    pub proc: String,
    /// The failing pass or pure analysis, e.g. `"dae"` or
    /// `"analysis:taint"`.
    pub pass: String,
    /// The 0-based pipeline round in which it failed.
    pub round: usize,
    /// The error message or `panicked: …` description.
    pub reason: String,
}

impl fmt::Display for PassFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: pass `{}` failed in round {}: {}",
            self.proc, self.pass, self.round, self.reason
        )
    }
}

/// The outcome of a resilient pipeline run: how much work was done and
/// which passes had to be skipped.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Total rewrites applied across all procedures and rounds.
    pub applied: usize,
    /// Rounds completed (the maximum over procedures).
    pub rounds: usize,
    /// Procedures replayed from a fixpoint journal instead of being
    /// re-optimized (warm restart).
    pub cached: usize,
    /// Every isolated failure, in the order encountered. A pass is
    /// quarantined after its first failure, so each (proc, pass) pair
    /// appears at most once.
    pub failures: Vec<PassFailure>,
}

impl PipelineReport {
    /// Whether any pass had to be skipped.
    pub fn degraded(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Whether any failure was budget exhaustion — the condition that
    /// maps the run onto the resource-limited (exit 3) path.
    pub fn resource_limited(&self) -> bool {
        self.failures
            .iter()
            .any(|f| f.kind == FailureKind::ResourceLimited)
    }

    /// The distinct names of passes/analyses that were skipped, in
    /// first-failure order.
    pub fn skipped_passes(&self) -> Vec<&str> {
        let mut seen = HashSet::new();
        self.failures
            .iter()
            .filter(|f| seen.insert(f.pass.as_str()))
            .map(|f| f.pass.as_str())
            .collect()
    }

    /// A one-line summary, e.g.
    /// `4 rewrites in 2 rounds (degraded: skipped dae)`.
    pub fn summary(&self) -> String {
        let mut out = format!("{} rewrites in {} rounds", self.applied, self.rounds);
        if self.cached > 0 {
            out.push_str(&format!(", {} procs cached", self.cached));
        }
        if !self.failures.is_empty() {
            out.push_str(&format!(
                " (degraded: skipped {})",
                self.skipped_passes().join(", ")
            ));
        }
        out
    }

    /// A stable machine-readable rendering: one JSON object per line, a
    /// `summary` record first, then one `failure` record per isolated
    /// failure in order. Escaping follows the cobalt-lint rules
    /// ([`cobalt_lint::json_escape`]), so CI can assert on degradation
    /// behavior without parsing the free-form summary. Byte-identical
    /// at any `--jobs` count (nothing run-relative is included).
    pub fn json_lines(&self) -> String {
        let mut out = format!(
            "{{\"type\":\"summary\",\"applied\":{},\"rounds\":{},\"cached\":{},\
             \"degraded\":{},\"resource_limited\":{},\"skipped\":[{}]}}",
            self.applied,
            self.rounds,
            self.cached,
            self.degraded(),
            self.resource_limited(),
            self.skipped_passes()
                .iter()
                .map(|p| format!("\"{}\"", cobalt_lint::json_escape(p)))
                .collect::<Vec<_>>()
                .join(",")
        );
        for f in &self.failures {
            out.push('\n');
            out.push_str(&format!(
                "{{\"type\":\"failure\",\"kind\":\"{}\",\"proc\":\"{}\",\"pass\":\"{}\",\
                 \"round\":{},\"reason\":\"{}\"}}",
                f.kind,
                cobalt_lint::json_escape(&f.proc),
                cobalt_lint::json_escape(&f.pass),
                f.round,
                cobalt_lint::json_escape(&f.reason)
            ));
        }
        out
    }

    pub(crate) fn absorb(&mut self, other: PipelineReport) {
        self.applied += other.applied;
        self.rounds = self.rounds.max(other.rounds);
        self.cached += other.cached;
        self.failures.extend(other.failures);
    }
}

/// Runs `f` with panic isolation, flattening panics and engine errors
/// into a typed failure kind plus reason.
fn isolate<T>(f: impl FnOnce() -> Result<T, EngineError>) -> Result<T, (FailureKind, String)> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(e @ EngineError::ResourceLimited(_))) => {
            Err((FailureKind::ResourceLimited, e.to_string()))
        }
        Ok(Err(e)) => Err((FailureKind::Error, e.to_string())),
        Err(payload) => Err((
            FailureKind::Panic,
            format!("panicked: {}", panic_payload_message(payload.as_ref())),
        )),
    }
}

/// A quarantine reason naming the error-severity diagnostic codes,
/// e.g. `rejected by lint: [CL001, CL009]`.
fn lint_reason(diags: &cobalt_lint::Diagnostics) -> String {
    let codes: Vec<&str> = diags
        .iter()
        .filter(|d| d.severity == cobalt_lint::Severity::Error)
        .map(|d| d.code)
        .collect();
    format!("rejected by lint: [{}]", codes.join(", "))
}

fn panic_payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Engine {
    /// Optimizes one procedure like
    /// [`optimize_proc`](Engine::optimize_proc), but with per-pass
    /// fault isolation: a pass (or pure analysis) that returns an error
    /// or panics is skipped — recorded as a [`PassFailure`] and
    /// quarantined for the remaining rounds — while the other passes
    /// keep running on the last good version of the procedure. Never
    /// fails and never panics on account of a pass.
    pub fn optimize_proc_resilient(
        &self,
        proc: &Proc,
        analyses: &[PureAnalysis],
        opts: &[Optimization],
        max_rounds: usize,
    ) -> (Proc, PipelineReport) {
        let mut current = proc.clone();
        let mut report = PipelineReport::default();
        // Pass/analysis names quarantined after a failure.
        let mut dead: HashSet<String> = HashSet::new();
        let fail = |report: &mut PipelineReport,
                        dead: &mut HashSet<String>,
                        pass: String,
                        round: usize,
                        (kind, reason): (FailureKind, String)| {
            dead.insert(pass.clone());
            report.failures.push(PassFailure {
                kind,
                proc: proc.name.to_string(),
                pass,
                round,
                reason,
            });
        };
        // Opt-in lint pre-pass ([`Engine::with_lint_prepass`]):
        // structurally malformed rules are quarantined up front with
        // their diagnostic codes, instead of erroring — or silently
        // matching nothing — in every round. The linter itself runs
        // under the same isolation as a pass, so a lint panic (or an
        // injected `lint.rule` fault) degrades instead of aborting.
        if self.lint_prepass_enabled() {
            let ctx = cobalt_lint::LintContext::new(self.env()).with_analyses(analyses);
            let lint_opts = cobalt_lint::RuleLintOptions::structural();
            for analysis in analyses {
                let key = format!("analysis:{}", analysis.name);
                match isolate(|| Ok(cobalt_lint::lint_analysis(analysis, &ctx, &lint_opts))) {
                    Ok(diags) if diags.has_errors() => {
                        fail(
                            &mut report,
                            &mut dead,
                            key,
                            0,
                            (FailureKind::Error, lint_reason(&diags)),
                        );
                    }
                    Ok(_) => {}
                    Err(reason) => fail(&mut report, &mut dead, key, 0, reason),
                }
            }
            for opt in opts {
                match isolate(|| Ok(cobalt_lint::lint_optimization(opt, &ctx, &lint_opts))) {
                    Ok(diags) if diags.has_errors() => {
                        fail(
                            &mut report,
                            &mut dead,
                            opt.name.to_string(),
                            0,
                            (FailureKind::Error, lint_reason(&diags)),
                        );
                    }
                    Ok(_) => {}
                    Err(reason) => {
                        fail(&mut report, &mut dead, opt.name.to_string(), 0, reason);
                    }
                }
            }
        }
        for round in 0..max_rounds {
            let mut round_applied = 0;
            for opt in opts {
                if dead.contains(&opt.name) {
                    continue;
                }
                // Prepare the analyzed procedure. A failure here is a
                // program-level problem (ill-formed CFG), not a pass
                // failure; without it no pass can run this round.
                let prepared = isolate(|| AnalyzedProc::new(current.clone()));
                let mut ap = match prepared {
                    Ok(ap) => ap,
                    Err(reason) => {
                        fail(
                            &mut report,
                            &mut dead,
                            format!("prepare:{}", opt.name),
                            round,
                            reason,
                        );
                        continue;
                    }
                };
                // Run each pure analysis in isolation: a failed
                // analysis only costs its labels (guards see fewer
                // facts, so fewer — still sound — rewrites fire).
                for analysis in analyses {
                    let key = format!("analysis:{}", analysis.name);
                    if dead.contains(&key) {
                        continue;
                    }
                    let ran = isolate(|| {
                        fault::point_err("engine.analysis")
                            .map_err(|e| EngineError::Guard(cobalt_dsl::GuardError::new(
                                e.to_string(),
                            )))?;
                        self.run_pure_analysis(&mut ap, analysis)
                    });
                    if let Err(reason) = ran {
                        fail(&mut report, &mut dead, key, round, reason);
                    }
                }
                // Apply the pass itself in isolation.
                let applied = isolate(|| {
                    fault::point_err("engine.pass").map_err(|e| {
                        EngineError::Guard(cobalt_dsl::GuardError::new(e.to_string()))
                    })?;
                    self.apply(&ap, opt)
                });
                match applied {
                    Ok((next, sites)) => {
                        round_applied += sites.len();
                        current = next;
                    }
                    Err(reason) => {
                        fail(&mut report, &mut dead, opt.name.to_string(), round, reason);
                    }
                }
            }
            report.applied += round_applied;
            report.rounds = round + 1;
            if round_applied == 0 {
                break;
            }
        }
        (current, report)
    }

    /// Optimizes every procedure of a program with per-pass fault
    /// isolation; see
    /// [`optimize_proc_resilient`](Engine::optimize_proc_resilient).
    /// The merged [`PipelineReport`] names every skipped pass with the
    /// procedure it failed in.
    pub fn optimize_program_resilient(
        &self,
        program: &Program,
        analyses: &[PureAnalysis],
        opts: &[Optimization],
        max_rounds: usize,
    ) -> (Program, PipelineReport) {
        let mut out = program.clone();
        let mut report = PipelineReport::default();
        for proc in &program.procs {
            // Per-procedure step accounting (see `Budget::fork`).
            let worker = self.clone().with_budget(self.budget().fork());
            let (optimized, proc_report) =
                worker.optimize_proc_resilient(proc, analyses, opts, max_rounds);
            report.absorb(proc_report);
            out = out.with_proc_replaced(optimized);
        }
        (out, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobalt_dsl::{
        BasePat, ConstPat, Direction, ExprPat, ForwardWitness, Guard, GuardSpec, LabelArgPat,
        LabelEnv, LhsPat, RegionGuard, StmtPat, TransformPattern, VarPat, Witness,
    };
    use cobalt_il::parse_program;

    fn const_prop() -> Optimization {
        Optimization::new(
            "const_prop",
            TransformPattern {
                direction: Direction::Forward,
                guard: GuardSpec::Region(RegionGuard {
                    psi1: Guard::Stmt(StmtPat::Assign(
                        LhsPat::Var(VarPat::pat("Y")),
                        ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
                    )),
                    psi2: Guard::not_label("mayDef", vec![LabelArgPat::Var(VarPat::pat("Y"))]),
                }),
                from: StmtPat::Assign(
                    LhsPat::Var(VarPat::pat("X")),
                    ExprPat::Base(BasePat::Var(VarPat::pat("Y"))),
                ),
                to: StmtPat::Assign(
                    LhsPat::Var(VarPat::pat("X")),
                    ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
                ),
                where_clause: Guard::True,
                witness: Witness::Forward(ForwardWitness::VarEqConst(
                    VarPat::pat("Y"),
                    ConstPat::pat("C"),
                )),
            },
        )
    }

    /// A pass whose `where` clause calls `mayDef` with the wrong arity,
    /// so guard evaluation fails with an `EngineError` at the first
    /// matching site.
    fn erroring_pass() -> Optimization {
        let mut opt = const_prop();
        opt.pattern.where_clause = Guard::Label(
            "mayDef".into(),
            vec![
                LabelArgPat::Var(VarPat::pat("X")),
                LabelArgPat::Var(VarPat::pat("Y")),
            ],
        );
        opt
    }

    /// A pass whose `choose` panics outright.
    fn panicking_pass() -> Optimization {
        let mut opt = const_prop().with_choose(|_, _| panic!("choose exploded"));
        opt.name = "panicky".into();
        opt
    }

    fn sample() -> Program {
        parse_program("proc main(x) { a := 2; b := a; c := b; return c; }").unwrap()
    }

    #[test]
    fn resilient_matches_strict_driver_when_nothing_fails() {
        let engine = Engine::new(LabelEnv::standard());
        let prog = sample();
        let (strict, n) = engine
            .optimize_program(&prog, &[], &[const_prop()], 5)
            .unwrap();
        let (resilient, report) = engine.optimize_program_resilient(&prog, &[], &[const_prop()], 5);
        assert_eq!(
            cobalt_il::pretty_program(&strict),
            cobalt_il::pretty_program(&resilient)
        );
        assert_eq!(report.applied, n);
        assert!(!report.degraded());
        assert!(report.summary().contains("rewrites"));
    }

    #[test]
    fn erroring_pass_is_skipped_and_named() {
        let engine = Engine::new(LabelEnv::standard());
        let prog = sample();
        let mut bad = erroring_pass();
        bad.name = "inventive".into();
        let (out, report) =
            engine.optimize_program_resilient(&prog, &[], &[bad, const_prop()], 5);
        // The good pass still ran to fixpoint on the untouched program.
        assert_eq!(out.main().unwrap().stmts[1].to_string(), "b := 2");
        assert!(report.degraded());
        assert_eq!(report.skipped_passes(), vec!["inventive"]);
        assert_eq!(report.failures[0].round, 0);
        assert_eq!(report.failures[0].proc, "main");
        assert!(report.failures[0].to_string().contains("inventive"));
    }

    #[test]
    fn panicking_pass_is_isolated_and_quarantined() {
        let engine = Engine::new(LabelEnv::standard());
        let prog = sample();
        let (out, report) =
            engine.optimize_program_resilient(&prog, &[], &[panicking_pass(), const_prop()], 5);
        assert_eq!(out.main().unwrap().stmts[2].to_string(), "c := 2");
        assert!(report.degraded());
        assert_eq!(report.skipped_passes(), vec!["panicky"]);
        // Quarantine: the panic fired once, not once per round.
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].reason.contains("panicked"));
        assert!(report.failures[0].reason.contains("choose exploded"));
        assert!(report.summary().contains("skipped panicky"));
    }

    #[test]
    fn injected_pass_fault_degrades_gracefully() {
        let engine = Engine::new(LabelEnv::standard());
        let prog = sample();
        let (out, report) = cobalt_support::fault::with_faults("engine.pass:fail@1", || {
            engine.optimize_program_resilient(&prog, &[], &[const_prop()], 5)
        });
        // The first pass application was killed by the injected fault;
        // const_prop is quarantined, so the program is unchanged.
        assert!(report.degraded());
        assert_eq!(report.skipped_passes(), vec!["const_prop"]);
        assert!(report.failures[0].reason.contains("injected fault"));
        assert_eq!(
            cobalt_il::pretty_program(&out),
            cobalt_il::pretty_program(&prog)
        );
    }

    /// A rule whose template uses `C`, which nothing binds (CL001).
    fn lint_broken() -> Optimization {
        let mut opt = const_prop();
        opt.name = "broken".into();
        opt.pattern.guard = GuardSpec::Region(RegionGuard {
            psi1: Guard::True,
            psi2: Guard::True,
        });
        opt.pattern.witness = Witness::Forward(ForwardWitness::True);
        opt
    }

    #[test]
    fn lint_prepass_is_off_by_default_and_builder_enables_it() {
        let engine = Engine::new(LabelEnv::standard());
        assert!(!engine.lint_prepass_enabled());
        assert!(engine.with_lint_prepass().lint_prepass_enabled());
    }

    #[test]
    fn lint_prepass_quarantines_malformed_rule() {
        let engine = Engine::new(LabelEnv::standard()).with_lint_prepass();
        let prog = sample();
        let (out, report) =
            engine.optimize_program_resilient(&prog, &[], &[lint_broken(), const_prop()], 5);
        // The clean pass still ran to fixpoint.
        assert_eq!(out.main().unwrap().stmts[1].to_string(), "b := 2");
        assert!(report.degraded());
        assert_eq!(report.skipped_passes(), vec!["broken"]);
        assert!(
            report.failures[0].reason.contains("CL001"),
            "reason should name the diagnostic code: {}",
            report.failures[0].reason
        );
    }

    #[test]
    fn lint_prepass_quarantines_malformed_analysis() {
        let engine = Engine::new(LabelEnv::standard()).with_lint_prepass();
        let prog = sample();
        let analyses = [PureAnalysis {
            name: "bogus".into(),
            guard: RegionGuard {
                psi1: Guard::Stmt(StmtPat::Decl(VarPat::pat("X"))),
                psi2: Guard::True,
            },
            // Defines a fact over `Q`, which nothing binds (CL001).
            defines: ("facts".into(), vec![LabelArgPat::Var(VarPat::pat("Q"))]),
            witness: ForwardWitness::True,
        }];
        let (out, report) =
            engine.optimize_program_resilient(&prog, &analyses, &[const_prop()], 5);
        assert_eq!(out.main().unwrap().stmts[1].to_string(), "b := 2");
        assert_eq!(report.skipped_passes(), vec!["analysis:bogus"]);
        assert!(report.failures[0].reason.contains("rejected by lint"));
    }

    #[test]
    fn lint_prepass_panic_is_isolated() {
        let engine = Engine::new(LabelEnv::standard()).with_lint_prepass();
        let prog = sample();
        let (out, report) = cobalt_support::fault::with_faults("lint.rule:panic@1", || {
            engine.optimize_program_resilient(&prog, &[], &[const_prop()], 5)
        });
        // The linter blew up on the only pass, so it is quarantined and
        // the program comes back unchanged — but the pipeline finishes.
        assert!(report.degraded());
        assert_eq!(report.skipped_passes(), vec!["const_prop"]);
        assert!(report.failures[0].reason.contains("panicked"));
        assert_eq!(
            cobalt_il::pretty_program(&out),
            cobalt_il::pretty_program(&prog)
        );
    }

    #[test]
    fn injected_analysis_fault_only_costs_labels() {
        let engine = Engine::new(LabelEnv::standard());
        let prog = sample();
        let analyses = [PureAnalysis {
            name: "taint".into(),
            guard: RegionGuard {
                psi1: Guard::Stmt(StmtPat::Decl(VarPat::pat("X"))),
                psi2: Guard::Stmt(StmtPat::Assign(
                    LhsPat::Any,
                    ExprPat::AddrOf(VarPat::pat("X")),
                ))
                .negate(),
            },
            defines: (
                "notTainted".into(),
                vec![LabelArgPat::Var(VarPat::pat("X"))],
            ),
            witness: ForwardWitness::NotPointedTo(VarPat::pat("X")),
        }];
        let (out, report) = cobalt_support::fault::with_faults("engine.analysis:panic@1", || {
            engine.optimize_program_resilient(&prog, &analyses, &[const_prop()], 5)
        });
        // The analysis is skipped, the optimization still runs.
        assert!(report.degraded());
        assert_eq!(report.skipped_passes(), vec!["analysis:taint"]);
        assert_eq!(out.main().unwrap().stmts[1].to_string(), "b := 2");
    }
}
