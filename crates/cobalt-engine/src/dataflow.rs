//! The substitution-set dataflow analysis of paper §5.2.
//!
//! Facts are sets of substitutions `θ`, each representing a potential
//! witnessing region in progress. The flow function at a node keeps the
//! incoming substitutions whose `ψ2` still holds (the region stays
//! innocuous), and adds the substitutions under which `ψ1` holds (a new
//! region opens). Merge points intersect, because the guard semantics
//! quantifies over *all* CFG paths (Definition 1).
//!
//! The universe of substitutions is finite: every fact element
//! originates from some `ψ1` solution at some node, so the analysis
//! starts from that universe as ⊤ and iterates downward to the greatest
//! fixpoint.
//!
//! # Determinism
//!
//! Fact sets are [`FastSet`]s (the deterministic word-at-a-time hasher,
//! not SipHash's per-process random keys), and every place iteration
//! order can reach an observable result — the `ψ1` solution universe,
//! the label-insertion order of a pure analysis, the site order of
//! `Δ` — iterates in *canonical* order (substitutions sorted by key).
//! This is what makes `cobalt optimize --jobs N` byte-identical at any
//! worker count: per-procedure fixpoints are pure functions of the
//! procedure and the rules, with no iteration-order residue.
//!
//! # Governance
//!
//! Both fixpoints are metered: the `*_metered` variants spend one
//! [`Meter`](crate::Meter) step per node visit and return
//! [`EngineError::ResourceLimited`] when the engine's
//! [`Budget`](crate::Budget) is exhausted. The unmetered names keep the
//! pre-budget signatures (an unlimited meter). The `engine.fixpoint`
//! fault point fires at fixpoint entry and `engine.merge` at each
//! merge-point intersection, so degradation paths are testable
//! deterministically (`COBALT_FAULTS` grammar, DESIGN.md §8).

use crate::analyzed::AnalyzedProc;
use crate::budget::{Budget, Meter};
use crate::error::EngineError;
use cobalt_dsl::{GuardError, LabelEnv, RegionGuard, Subst};
use cobalt_support::fast_hash::FastSet;
use cobalt_support::fault;

/// A dataflow fact: a set of substitutions. Deterministic hashing; all
/// result-affecting iteration is additionally sorted (see the module
/// docs).
pub type FactSet = FastSet<Subst>;

/// An injected engine fault, shaped as an engine error so it flows
/// through the same degradation paths as a real failure.
fn fault_point(site: &str) -> Result<(), EngineError> {
    fault::point_err(site).map_err(|e| EngineError::Guard(GuardError::new(e.to_string())))
}

/// Computes, for each node `ι`, the *incoming* fact of a forward region
/// guard: the set of `θ` such that on every CFG path from the entry to
/// `ι` there is a `ψ1`-statement followed by zero or more
/// `ψ2`-statements followed by `ι`.
///
/// # Errors
///
/// Propagates guard-evaluation errors.
pub fn forward_in_facts(
    ap: &AnalyzedProc,
    env: &LabelEnv,
    guard: &RegionGuard,
) -> Result<Vec<FactSet>, EngineError> {
    forward_in_facts_metered(ap, env, guard, &mut Budget::unlimited().meter())
}

/// [`forward_in_facts`] under a budget: spends one meter step per node
/// visit.
///
/// # Errors
///
/// Propagates guard-evaluation errors;
/// [`EngineError::ResourceLimited`] on budget exhaustion.
pub fn forward_in_facts_metered(
    ap: &AnalyzedProc,
    env: &LabelEnv,
    guard: &RegionGuard,
    meter: &mut Meter,
) -> Result<Vec<FactSet>, EngineError> {
    fault_point("engine.fixpoint")?;
    meter.check()?;
    let n = ap.proc.len();
    let (sols, survivors) = node_locals(ap, env, guard)?;
    let universe: FactSet = sols.iter().flatten().cloned().collect();

    // out[ι] starts at ⊤ (the universe); entry's in-fact is ∅.
    let mut outs: Vec<FactSet> = vec![universe; n];
    let mut ins: Vec<FactSet> = vec![FactSet::default(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            meter.tick()?;
            let in_fact = if i == ap.cfg.entry() {
                FactSet::default()
            } else {
                fault_point("engine.merge")?;
                intersect_over(ap.cfg.predecessors(i).iter().map(|&p| &outs[p]))
            };
            let mut out_fact: FactSet = in_fact
                .iter()
                .filter(|t| survivors[i].contains(*t))
                .cloned()
                .collect();
            out_fact.extend(sols[i].iter().cloned());
            if out_fact != outs[i] {
                outs[i] = out_fact;
                changed = true;
            }
            ins[i] = in_fact;
        }
    }
    Ok(ins)
}

/// Computes, for each node `ι`, the *continuation* fact of a backward
/// region guard: the set of `θ` such that every CFG path starting at `ι`
/// consists of zero or more `ψ2`-statements followed by a
/// `ψ1`-statement (possibly `ι` itself).
///
/// A statement at `ι` may be transformed under `θ` iff `θ` is in the
/// intersection of the continuation facts of `ι`'s successors — see
/// [`backward_site_facts`].
///
/// # Errors
///
/// Propagates guard-evaluation errors.
pub fn backward_cont_facts(
    ap: &AnalyzedProc,
    env: &LabelEnv,
    guard: &RegionGuard,
) -> Result<Vec<FactSet>, EngineError> {
    backward_cont_facts_metered(ap, env, guard, &mut Budget::unlimited().meter())
}

/// [`backward_cont_facts`] under a budget: spends one meter step per
/// node visit.
///
/// # Errors
///
/// Propagates guard-evaluation errors;
/// [`EngineError::ResourceLimited`] on budget exhaustion.
pub fn backward_cont_facts_metered(
    ap: &AnalyzedProc,
    env: &LabelEnv,
    guard: &RegionGuard,
    meter: &mut Meter,
) -> Result<Vec<FactSet>, EngineError> {
    fault_point("engine.fixpoint")?;
    meter.check()?;
    let n = ap.proc.len();
    let (sols, survivors) = node_locals(ap, env, guard)?;
    let universe: FactSet = sols.iter().flatten().cloned().collect();

    let mut facts: Vec<FactSet> = vec![universe; n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            meter.tick()?;
            let succs = ap.cfg.successors(i);
            let from_succs = if succs.is_empty() {
                FactSet::default()
            } else {
                fault_point("engine.merge")?;
                intersect_over(succs.iter().map(|&s| &facts[s]))
            };
            let mut fact: FactSet = from_succs
                .iter()
                .filter(|t| survivors[i].contains(*t))
                .cloned()
                .collect();
            fact.extend(sols[i].iter().cloned());
            if fact != facts[i] {
                facts[i] = fact;
                changed = true;
            }
        }
    }
    Ok(facts)
}

/// Derives the per-node *transformable* facts from backward
/// continuation facts: `θ` is valid at `ι` iff it is in every
/// successor's continuation fact.
pub fn backward_site_facts(ap: &AnalyzedProc, cont: &[FactSet]) -> Vec<FactSet> {
    (0..ap.proc.len())
        .map(|i| {
            let succs = ap.cfg.successors(i);
            if succs.is_empty() {
                FactSet::default()
            } else {
                intersect_over(succs.iter().map(|&s| &cont[s]))
            }
        })
        .collect()
}

/// Per-node `ψ1` solutions and the subset of the universe whose `ψ2`
/// holds at the node.
fn node_locals(
    ap: &AnalyzedProc,
    env: &LabelEnv,
    guard: &RegionGuard,
) -> Result<(Vec<Vec<Subst>>, Vec<FactSet>), EngineError> {
    let n = ap.proc.len();
    let mut sols = Vec::with_capacity(n);
    for i in 0..n {
        let ctx = ap.node_ctx(env, i);
        sols.push(guard.psi1.solve(&ctx, &Subst::new())?);
    }
    let universe: Vec<Subst> = {
        let set: FactSet = sols.iter().flatten().cloned().collect();
        // Canonical order: ψ2 evaluation below is observable through
        // guard errors and fault counters, so it must not depend on
        // hash-iteration order.
        let mut v: Vec<Subst> = set.into_iter().collect();
        v.sort();
        v
    };
    let mut survivors = Vec::with_capacity(n);
    for i in 0..n {
        let ctx = ap.node_ctx(env, i);
        let mut keep = FactSet::default();
        for theta in &universe {
            if guard.psi2.eval(&ctx, theta)? {
                keep.insert(theta.clone());
            }
        }
        survivors.push(keep);
    }
    Ok((sols, survivors))
}

fn intersect_over<'a>(mut sets: impl Iterator<Item = &'a FactSet>) -> FactSet {
    let first = match sets.next() {
        Some(s) => s.clone(),
        None => return FactSet::default(),
    };
    sets.fold(first, |acc, s| acc.intersection(s).cloned().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobalt_dsl::{
        BasePat, ConstPat, ExprPat, Guard, LabelArgPat, LhsPat, StmtPat, VarPat,
    };
    use cobalt_il::parse_program;

    fn const_prop_guard() -> RegionGuard {
        RegionGuard {
            psi1: Guard::Stmt(StmtPat::Assign(
                LhsPat::Var(VarPat::pat("Y")),
                ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
            )),
            psi2: Guard::not_label("mayDef", vec![LabelArgPat::Var(VarPat::pat("Y"))]),
        }
    }

    fn analyzed(src: &str) -> AnalyzedProc {
        let prog = parse_program(src).unwrap();
        AnalyzedProc::new(prog.main().unwrap().clone()).unwrap()
    }

    #[test]
    fn paper_section_5_2_example() {
        // S1: a := 2; S2: b := 3; S3: c := a
        let ap = analyzed(
            "proc main(x) { a := 2; b := 3; c := a; return c; }",
        );
        let env = LabelEnv::standard();
        let ins = forward_in_facts(&ap, &env, &const_prop_guard()).unwrap();
        // After S1 (= into S2): exactly [Y ↦ a, C ↦ 2].
        let show = |f: &FactSet| {
            let mut v: Vec<String> = f.iter().map(|s| s.to_string()).collect();
            v.sort();
            v.join(" ")
        };
        assert_eq!(show(&ins[1]), "[C ↦ 2, Y ↦ a]");
        // After S2 (= into S3): both substitutions, as in the paper.
        assert_eq!(show(&ins[2]), "[C ↦ 2, Y ↦ a] [C ↦ 3, Y ↦ b]");
    }

    #[test]
    fn kill_on_redefinition() {
        let ap = analyzed(
            "proc main(x) { a := 2; a := x; c := a; return c; }",
        );
        let env = LabelEnv::standard();
        let ins = forward_in_facts(&ap, &env, &const_prop_guard()).unwrap();
        // a := x kills [Y ↦ a, C ↦ 2].
        assert!(ins[2].is_empty());
    }

    #[test]
    fn merge_intersects_across_branches() {
        // a := 2 on one branch only: no fact at the merge.
        let ap = analyzed(
            "proc main(x) {
                if x goto 2 else 1;
                a := 2;
                c := a;
                return c;
             }",
        );
        let env = LabelEnv::standard();
        let ins = forward_in_facts(&ap, &env, &const_prop_guard()).unwrap();
        assert!(ins[2].iter().all(|t| t.to_string() != "[C ↦ 2, Y ↦ a]"));

        // Same constant on both branches: fact survives the merge.
        let ap2 = analyzed(
            "proc main(x) {
                if x goto 3 else 1;
                a := 2;
                if 1 goto 4 else 4;
                a := 2;
                c := a;
                return c;
             }",
        );
        let ins2 = forward_in_facts(&ap2, &env, &const_prop_guard()).unwrap();
        assert!(ins2[4].iter().any(|t| t.to_string() == "[C ↦ 2, Y ↦ a]"));
    }

    #[test]
    fn loop_kills_fact_that_is_redefined_in_body() {
        // a := 2 before a loop that redefines a: at loop head the fact
        // must not hold (the back edge brings the killed state).
        let ap = analyzed(
            "proc main(x) {
                a := 2;
                c := a;
                a := x;
                if x goto 1 else 5;
                skip;
                return c;
             }",
        );
        let env = LabelEnv::standard();
        let ins = forward_in_facts(&ap, &env, &const_prop_guard()).unwrap();
        // Node 1 (c := a) is reached both from node 0 (fact holds) and
        // the back edge from node 3 (killed at node 2): intersection is
        // empty.
        assert!(ins[1].is_empty(), "{:?}", ins[1]);
    }

    fn dae_guard() -> RegionGuard {
        // ψ1 = (stmt(X := …) ∨ stmt(return …)) ∧ ¬mayUse(X)
        // ψ2 = ¬mayUse(X)
        let not_use = Guard::not_label("mayUse", vec![LabelArgPat::Var(VarPat::pat("X"))]);
        RegionGuard {
            psi1: Guard::and([
                Guard::or([
                    Guard::Stmt(StmtPat::Assign(
                        LhsPat::Var(VarPat::pat("X")),
                        ExprPat::Any,
                    )),
                    Guard::Stmt(StmtPat::ReturnAny),
                ]),
                not_use.clone(),
            ]),
            psi2: not_use,
        }
    }

    #[test]
    fn backward_dead_assignment_facts() {
        // y := 5 is dead: y is redefined at 2 without an intervening use.
        let ap = analyzed(
            "proc main(x) { decl y; y := 5; y := x; return y; }",
        );
        let env = LabelEnv::standard();
        let cont = backward_cont_facts(&ap, &env, &dae_guard()).unwrap();
        let sites = backward_site_facts(&ap, &cont);
        // At node 1 (y := 5) the substitution [X ↦ y] must be valid.
        assert!(
            sites[1].iter().any(|t| t.to_string() == "[X ↦ y]"),
            "{:?}",
            sites[1]
        );
        // At node 2 (y := x) it must NOT be valid: y is live (returned).
        assert!(sites[2].iter().all(|t| t.to_string() != "[X ↦ y]"));
    }

    #[test]
    fn backward_use_blocks_deadness() {
        let ap = analyzed(
            "proc main(x) { decl y; y := 5; z := y; y := x; return y; }",
        );
        let env = LabelEnv::standard();
        let cont = backward_cont_facts(&ap, &env, &dae_guard()).unwrap();
        let sites = backward_site_facts(&ap, &cont);
        // z := y uses y, so y := 5 is not dead.
        assert!(sites[1].iter().all(|t| t.to_string() != "[X ↦ y]"));
        // But z := y itself is dead (z never used afterwards).
        assert!(sites[2].iter().any(|t| t.to_string() == "[X ↦ z]"));
    }

    #[test]
    fn backward_return_enables_everything_unused() {
        let ap = analyzed("proc main(x) { y := 7; return x; }");
        let env = LabelEnv::standard();
        let cont = backward_cont_facts(&ap, &env, &dae_guard()).unwrap();
        let sites = backward_site_facts(&ap, &cont);
        // y := 7 is dead because return x doesn't use y.
        assert!(sites[0].iter().any(|t| t.to_string() == "[X ↦ y]"));
        // x is used by the return: not in the fact.
        assert!(sites[0].iter().all(|t| t.to_string() != "[X ↦ x]"));
    }
}
