//! Crash-safe, parallel optimization sessions: an [`OptimizeSession`]
//! wraps an [`Engine`] and an optional persistent fixpoint journal so
//! that a killed `cobalt optimize --journal` run resumes *warm* —
//! procedures whose pipeline already completed cleanly are replayed
//! from the journal as cached instead of being re-optimized — and runs
//! per-procedure pipelines on the shared worker pool
//! (`cobalt optimize --jobs N`). See `DESIGN.md` §13.
//!
//! # Fingerprints
//!
//! A journaled procedure result is only reused when its **content
//! fingerprint** matches: an FNV-64 hash over the input procedure's
//! pretty-printed body, every pure analysis and optimization of the
//! pipeline (their full `Debug` AST renderings, in order), the round
//! cap, the lint-prepass switch, and the budget's step cap. Any
//! semantic change to what the pipeline would compute invalidates the
//! entry. The wall-clock deadline is deliberately *not* an input: it
//! bounds a run, not a result — a procedure optimized under one
//! deadline is byte-identical under another (a procedure whose run was
//! *degraded* by any budget is never journaled at all).
//!
//! # Determinism
//!
//! Results are delivered by `pool::run_ordered` in procedure order, so
//! optimized-program bytes, pipeline reports, and journal bytes are
//! byte-identical at any `--jobs` count. Journal records contain
//! nothing run-relative (no timestamps, no worker ids).
//!
//! # Degradation
//!
//! Journal trouble — open failure, lock contention, a write error, an
//! injected `engine.journal` fault — switches the session to
//! unjournaled optimization: output, reports, and exit codes are
//! unchanged, only warmth is lost, and [`OptimizeSession::degraded`]
//! says why.

use crate::engine::Engine;
use crate::resilient::{FailureKind, PassFailure, PipelineReport};
use cobalt_dsl::{Optimization, PureAnalysis};
use cobalt_il::{parse_program, pretty_proc, Proc, Program};
use cobalt_support::fault;
use cobalt_support::journal::{
    escape_field, unescape_field, Fnv64, Journal, LoadReport, LockOutcome, ResumeMode,
};
use cobalt_support::pool::{self, Cancel, TaskResult};
use std::collections::HashMap;
use std::path::Path;
use std::time::Duration;

/// How long [`OptimizeSession::with_journal`] waits for the journal's
/// advisory lock before degrading to unjournaled optimization.
pub const DEFAULT_LOCK_WAIT: Duration = Duration::from_secs(5);

/// Version tag mixed into every fingerprint; bump on any change to the
/// fingerprint inputs or the record format so stale journals invalidate
/// wholesale instead of aliasing.
const FINGERPRINT_VERSION: &str = "cobalt-engine-fp-v1";

/// Record format version written as each record's first field.
const RECORD_VERSION: &str = "v1";

/// Stable content fingerprint of one procedure's optimization pipeline.
///
/// Inputs: the fingerprint version, the pretty-printed input procedure,
/// the `Debug` rendering of every pure analysis and optimization (in
/// pipeline order), `max_rounds`, the lint-prepass switch, and the
/// budget step cap. Nothing run-relative (deadline, jobs, paths).
pub fn fingerprint_proc(
    proc: &Proc,
    analyses: &[PureAnalysis],
    opts: &[Optimization],
    max_rounds: usize,
    lint_prepass: bool,
    max_steps: Option<u64>,
) -> u64 {
    let mut h = Fnv64::new();
    h.write(FINGERPRINT_VERSION.as_bytes()).write(b"\0");
    h.write(pretty_proc(proc).as_bytes()).write(b"\0");
    for a in analyses {
        h.write(format!("{a:?}").as_bytes()).write(b"\0");
    }
    h.write(b"|\0");
    for o in opts {
        h.write(format!("{o:?}").as_bytes()).write(b"\0");
    }
    h.write(format!("rounds={max_rounds};lint={lint_prepass};steps={max_steps:?}").as_bytes());
    h.finish()
}

/// One journaled procedure outcome, as parsed back from a record. Only
/// *clean* pipelines (no quarantined passes) are journaled, so a cached
/// replay never hides a degradation note.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct JournalEntry {
    pub fingerprint: u64,
    pub proc: String,
    pub applied: usize,
    pub rounds: usize,
    /// The optimized procedure, pretty-printed (re-parseable — the
    /// round trip is pinned by the IL tests).
    pub body: String,
}

impl JournalEntry {
    /// Encodes the entry as a journal payload: tab-separated
    /// `key=value` fields behind a version tag, values escaped.
    pub fn encode(&self) -> Vec<u8> {
        format!(
            "{RECORD_VERSION}\tfp={:016x}\tproc={}\tapplied={}\trounds={}\tbody={}",
            self.fingerprint,
            escape_field(&self.proc),
            self.applied,
            self.rounds,
            escape_field(&self.body),
        )
        .into_bytes()
    }

    /// Decodes a journal payload. `None` for records of an unknown
    /// version or shape — such records are *skipped* (treated as not
    /// cached), never trusted and never fatal.
    pub fn decode(payload: &[u8]) -> Option<JournalEntry> {
        let text = std::str::from_utf8(payload).ok()?;
        let mut fields = text.split('\t');
        if fields.next()? != RECORD_VERSION {
            return None;
        }
        let mut entry = JournalEntry {
            fingerprint: 0,
            proc: String::new(),
            applied: 0,
            rounds: 0,
            body: String::new(),
        };
        let mut seen = 0u32;
        for field in fields {
            let (key, value) = field.split_once('=')?;
            match key {
                "fp" => entry.fingerprint = u64::from_str_radix(value, 16).ok()?,
                "proc" => entry.proc = unescape_field(value)?,
                "applied" => entry.applied = value.parse().ok()?,
                "rounds" => entry.rounds = value.parse().ok()?,
                "body" => entry.body = unescape_field(value)?,
                _ => continue, // forward-compatible: unknown keys ignored
            }
            seen += 1;
        }
        if seen < 5 {
            return None;
        }
        Some(entry)
    }
}

/// A cached record plus its exact on-disk payload (kept so unchanged
/// outcomes are carried into the compacted journal byte-for-byte).
#[derive(Debug, Clone)]
struct Cached {
    entry: JournalEntry,
    raw: Vec<u8>,
}

/// A resumable, parallel optimization session. See the
/// [module docs](self).
#[derive(Debug)]
pub struct OptimizeSession {
    engine: Engine,
    jobs: usize,
    journal: Option<Journal>,
    cache: HashMap<u64, Cached>,
    /// Payloads belonging to this session's outcomes (reused raw
    /// records and fresh appends, in procedure order); what
    /// [`finish`](Self::finish) compacts the journal down to.
    session_payloads: Vec<Vec<u8>>,
    loaded: LoadReport,
    degraded: Option<String>,
}

impl OptimizeSession {
    /// A session without a journal, running procedures sequentially:
    /// optimization behaves exactly like
    /// [`Engine::optimize_program_resilient`].
    pub fn new(engine: Engine) -> OptimizeSession {
        OptimizeSession {
            engine,
            jobs: 1,
            journal: None,
            cache: HashMap::new(),
            session_payloads: Vec::new(),
            loaded: LoadReport::default(),
            degraded: None,
        }
    }

    /// Runs per-procedure pipelines on up to `jobs` pool workers.
    /// Output bytes are identical at any jobs count; only wall-clock
    /// changes.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> OptimizeSession {
        self.jobs = jobs.max(1);
        self
    }

    /// Attaches (creating if absent) the fixpoint journal at `path`
    /// under its advisory exclusive lock and builds the resume cache
    /// from its intact records.
    ///
    /// **Never fails**: any trouble — unopenable path, lock contention,
    /// an injected `engine.journal` fault — degrades the session to
    /// unjournaled optimization with output and exit codes unchanged
    /// ([`degraded`](Self::degraded) says why). This is deliberately
    /// laxer than the verification session's typed open error: a
    /// missing optimization cache must never block compilation.
    #[must_use]
    pub fn with_journal(self, path: impl AsRef<Path>, mode: ResumeMode) -> OptimizeSession {
        self.with_journal_wait(path, mode, DEFAULT_LOCK_WAIT)
    }

    /// [`with_journal`](Self::with_journal) with an explicit lock-wait
    /// budget (tests and impatient callers).
    #[must_use]
    pub fn with_journal_wait(
        mut self,
        path: impl AsRef<Path>,
        mode: ResumeMode,
        lock_wait: Duration,
    ) -> OptimizeSession {
        if let Err(e) = fault::point_err("engine.journal") {
            self.degraded = Some(format!("journal unavailable ({e})"));
            return self;
        }
        let mut opened = match Journal::open_locked(path, lock_wait) {
            Ok(LockOutcome::Acquired(opened)) => opened,
            Ok(LockOutcome::Contended { reason }) => {
                self.degraded = Some(format!("journal lock unavailable ({reason})"));
                return self;
            }
            Err(e) => {
                self.degraded = Some(format!("journal unavailable ({e})"));
                return self;
            }
        };
        match mode {
            ResumeMode::Fresh => {
                if let Err(e) = opened.journal.compact(&[] as &[&[u8]]) {
                    self.degraded = Some(format!("journal reset failed ({e})"));
                    return self;
                }
                opened.report = LoadReport::default();
            }
            ResumeMode::Resume => {
                for raw in &opened.records {
                    // Later records win: a record appended after an
                    // older result for the same pipeline supersedes it.
                    if let Some(entry) = JournalEntry::decode(raw) {
                        self.cache.insert(
                            entry.fingerprint,
                            Cached {
                                entry,
                                raw: raw.clone(),
                            },
                        );
                    }
                }
            }
        }
        self.loaded = opened.report;
        self.journal = Some(opened.journal);
        self
    }

    /// Why the session is running unjournaled, if it is.
    pub fn degraded(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    /// What the journal loader found on disk (corruption statistics).
    pub fn load_report(&self) -> &LoadReport {
        &self.loaded
    }

    /// Whether a journal is attached and healthy.
    pub fn is_journaled(&self) -> bool {
        self.journal.is_some()
    }

    /// Optimizes every procedure of `program` with per-pass fault
    /// isolation, replaying journaled procedures as cached and running
    /// the rest on the worker pool. The merged [`PipelineReport`]
    /// counts replayed procedures in
    /// [`cached`](PipelineReport::cached).
    ///
    /// Never fails: budget exhaustion, pass errors, panics, and journal
    /// trouble all degrade (the report says how).
    pub fn optimize_program(
        &mut self,
        program: &Program,
        analyses: &[PureAnalysis],
        opts: &[Optimization],
        max_rounds: usize,
    ) -> (Program, PipelineReport) {
        let n = program.procs.len();
        let mut out = program.clone();
        let mut report = PipelineReport::default();
        // One compacted payload slot per procedure, filled by cached
        // replays now and clean fresh results in the delivery sink —
        // procedure order regardless of jobs, so compaction bytes are
        // deterministic.
        let mut payload_slots: Vec<Option<Vec<u8>>> = vec![None; n];

        let max_steps = self.engine.budget().max_steps();
        let lint = self.engine.lint_prepass_enabled();
        let mut tasks: Vec<(usize, u64, Proc)> = Vec::new();
        for (i, proc) in program.procs.iter().enumerate() {
            let fp = fingerprint_proc(proc, analyses, opts, max_rounds, lint, max_steps);
            if let Some(replayed) = self.cache.get(&fp).and_then(|c| replay(proc, c)) {
                out = out.with_proc_replaced(replayed.0);
                report.absorb(replayed.1);
                payload_slots[i] = Some(self.cache[&fp].raw.clone());
                continue;
            }
            tasks.push((i, fp, proc.clone()));
        }

        if !tasks.is_empty() {
            // Cooperative cancellation shares the budget's flag (if
            // any), so a CLI-level cancel and a pool-level cancel are
            // one signal every meter observes.
            let cancel = match self.engine.budget().cancel_flag() {
                Some(flag) => Cancel::from_flag(flag),
                None => Cancel::new(),
            };
            let meta: Vec<(usize, u64, String)> = tasks
                .iter()
                .map(|(i, fp, p)| (*i, *fp, p.name.to_string()))
                .collect();
            let engine = self.engine.clone();
            let analyses_ref = analyses;
            let opts_ref = opts;
            pool::run_ordered(
                self.jobs,
                tasks,
                &cancel,
                |_idx, (_, _, proc), cancel| {
                    let budget = engine.budget().fork().with_cancel(cancel.flag());
                    let worker = engine.clone().with_budget(budget);
                    let (optimized, rep) =
                        worker.optimize_proc_resilient(proc, analyses_ref, opts_ref, max_rounds);
                    // A blown wall-clock deadline is fatal to the whole
                    // run (the deadline is absolute and shared): cancel
                    // the fleet instead of letting every remaining
                    // procedure rediscover it the slow way.
                    if rep.failures.iter().any(|f| {
                        f.kind == FailureKind::ResourceLimited && f.reason.contains("deadline")
                    }) {
                        cancel.trip();
                    }
                    (optimized, rep)
                },
                |idx, result| {
                    let (i, fp, name) = &meta[idx];
                    match result {
                        TaskResult::Done((optimized, rep)) => {
                            if rep.failures.is_empty() {
                                let entry = JournalEntry {
                                    fingerprint: *fp,
                                    proc: name.clone(),
                                    applied: rep.applied,
                                    rounds: rep.rounds,
                                    body: pretty_proc(&optimized),
                                };
                                let payload = entry.encode();
                                self.append(&payload);
                                payload_slots[*i] = Some(payload);
                            }
                            out = out.with_proc_replaced(optimized);
                            report.absorb(rep);
                        }
                        TaskResult::Panicked(msg) => {
                            // The supervised retry already happened; a
                            // procedure that dies twice is quarantined
                            // whole (its input text stays in `out`).
                            report.absorb(PipelineReport {
                                failures: vec![PassFailure {
                                    kind: FailureKind::Panic,
                                    proc: name.clone(),
                                    pass: "pipeline".into(),
                                    round: 0,
                                    reason: format!("panicked: {msg}"),
                                }],
                                ..PipelineReport::default()
                            });
                        }
                    }
                },
            );
        }

        self.session_payloads
            .extend(payload_slots.into_iter().flatten());
        (out, report)
    }

    /// Appends one record (with fsync), degrading to unjournaled on any
    /// trouble — a sick disk must not change what the optimizer emits.
    fn append(&mut self, payload: &[u8]) {
        let Some(journal) = self.journal.as_mut() else {
            return;
        };
        let wrote = fault::point_err("engine.journal")
            .map_err(std::io::Error::other)
            .and_then(|()| journal.append(payload))
            .and_then(|()| journal.sync());
        if let Err(e) = wrote {
            self.degraded = Some(format!("journal write failed ({e}); continuing unjournaled"));
            self.journal = None;
        }
    }

    /// Compacts the journal down to this session's outcomes and
    /// releases it. Compaction failure degrades (the appended records
    /// are still on disk and loadable); it never affects results.
    pub fn finish(&mut self) {
        if let Some(mut journal) = self.journal.take() {
            if let Err(e) = journal.compact(&self.session_payloads) {
                self.degraded = Some(format!("journal compaction failed ({e})"));
            }
        }
    }
}

/// Replays a cached entry for `proc`: parses the stored optimized body
/// and synthesizes the clean report. `None` (fall through to a fresh
/// run) if the record does not actually describe this procedure or its
/// body no longer parses.
fn replay(proc: &Proc, cached: &Cached) -> Option<(Proc, PipelineReport)> {
    if cached.entry.proc != proc.name.to_string() {
        return None;
    }
    let parsed = parse_program(&cached.entry.body).ok()?;
    let replayed = parsed.procs.into_iter().next()?;
    if replayed.name != proc.name {
        return None;
    }
    let report = PipelineReport {
        applied: cached.entry.applied,
        rounds: cached.entry.rounds,
        cached: 1,
        failures: Vec::new(),
    };
    Some((replayed, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobalt_dsl::LabelEnv;

    fn proc_of(src: &str) -> Proc {
        parse_program(src).unwrap().procs.remove(0)
    }

    #[test]
    fn record_codec_round_trips() {
        let entry = JournalEntry {
            fingerprint: 0xDEAD_BEEF_0BA1_7000,
            proc: "weird\tname\nwith\\escapes".into(),
            applied: 7,
            rounds: 3,
            body: "proc main(x) {\n    /* 0 */ return x;\n}\n".into(),
        };
        let decoded = JournalEntry::decode(&entry.encode()).unwrap();
        assert_eq!(decoded, entry);
    }

    #[test]
    fn unknown_versions_and_garbage_decode_to_none() {
        assert!(JournalEntry::decode(b"v0\tfp=00").is_none());
        assert!(JournalEntry::decode(b"not a record").is_none());
        assert!(JournalEntry::decode(&[0xFF, 0xFE]).is_none());
        // Missing required fields.
        assert!(JournalEntry::decode(b"v1\tfp=0000000000000001").is_none());
    }

    #[test]
    fn fingerprint_covers_pipeline_inputs() {
        let p = proc_of("proc main(x) { a := 2; return a; }");
        let q = proc_of("proc main(x) { a := 3; return a; }");
        let base = fingerprint_proc(&p, &[], &[], 5, false, None);
        assert_ne!(base, fingerprint_proc(&q, &[], &[], 5, false, None));
        assert_ne!(base, fingerprint_proc(&p, &[], &[], 6, false, None));
        assert_ne!(base, fingerprint_proc(&p, &[], &[], 5, true, None));
        assert_ne!(base, fingerprint_proc(&p, &[], &[], 5, false, Some(100)));
        assert_eq!(base, fingerprint_proc(&p, &[], &[], 5, false, None));
    }

    #[test]
    fn replay_rejects_name_mismatch_and_bad_bodies() {
        let p = proc_of("proc main(x) { return x; }");
        let good = Cached {
            entry: JournalEntry {
                fingerprint: 1,
                proc: "main".into(),
                applied: 0,
                rounds: 1,
                body: "proc main(x) { return x; }".into(),
            },
            raw: Vec::new(),
        };
        assert!(replay(&p, &good).is_some());
        let mut wrong_name = good.clone();
        wrong_name.entry.proc = "other".into();
        assert!(replay(&p, &wrong_name).is_none());
        let mut bad_body = good;
        bad_body.entry.body = "not a program".into();
        assert!(replay(&p, &bad_body).is_none());
    }

    #[test]
    fn unjournaled_session_matches_resilient_driver() {
        let prog = parse_program("proc main(x) { a := 2; b := a; return b; }").unwrap();
        let engine = Engine::new(LabelEnv::standard());
        let (direct, direct_report) = engine.optimize_program_resilient(&prog, &[], &[], 5);
        let mut session = OptimizeSession::new(engine);
        let (out, report) = session.optimize_program(&prog, &[], &[], 5);
        assert_eq!(
            cobalt_il::pretty_program(&direct),
            cobalt_il::pretty_program(&out)
        );
        assert_eq!(report.applied, direct_report.applied);
        assert_eq!(report.cached, 0);
        assert!(!session.is_journaled());
    }
}
