//! A procedure prepared for analysis: CFG, instantiation domain, and the
//! per-node semantic label sets `L_p(ι)`.

use crate::error::EngineError;
use cobalt_dsl::{Domain, LabelEnv, LabelInst, LabelSet, NodeCtx};
use cobalt_il::{Cfg, Index, Proc};

/// A procedure together with everything guard evaluation needs.
#[derive(Debug, Clone)]
pub struct AnalyzedProc {
    /// The procedure.
    pub proc: Proc,
    /// Its control-flow graph.
    pub cfg: Cfg,
    /// The instantiation domain for pattern variables.
    pub domain: Domain,
    /// Semantic labels per node, indexed by statement index.
    pub labels: Vec<LabelSet>,
}

impl AnalyzedProc {
    /// Prepares a procedure: builds the CFG and an empty labeling.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::IllFormed`] if the CFG cannot be built.
    pub fn new(proc: Proc) -> Result<Self, EngineError> {
        let cfg = Cfg::new(&proc)?;
        let domain = Domain::of_proc(&proc);
        let labels = vec![LabelSet::new(); proc.len()];
        Ok(AnalyzedProc {
            proc,
            cfg,
            domain,
            labels,
        })
    }

    /// The guard-evaluation context for node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node_ctx<'a>(&'a self, env: &'a LabelEnv, index: Index) -> NodeCtx<'a> {
        NodeCtx {
            stmt: &self.proc.stmts[index],
            labels: &self.labels[index],
            env,
            domain: &self.domain,
        }
    }

    /// Adds a semantic label to a node.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn add_label(&mut self, index: Index, label: LabelInst) {
        self.labels[index].insert(label);
    }

    /// A copy with all semantic labels cleared. Used when evaluating
    /// backward optimizations, which may not consume forward-analysis
    /// labels (paper §4.1).
    pub fn without_labels(&self) -> AnalyzedProc {
        AnalyzedProc {
            proc: self.proc.clone(),
            cfg: self.cfg.clone(),
            domain: self.domain.clone(),
            labels: vec![cobalt_dsl::LabelSet::new(); self.proc.len()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobalt_dsl::LabelArg;
    use cobalt_il::{parse_program, Var};

    fn sample() -> AnalyzedProc {
        let prog = parse_program("proc main(x) { decl y; y := 5; return y; }").unwrap();
        AnalyzedProc::new(prog.main().unwrap().clone()).unwrap()
    }

    #[test]
    fn builds_cfg_and_domain() {
        let ap = sample();
        assert_eq!(ap.cfg.len(), 3);
        assert_eq!(ap.domain.vars.len(), 2);
        assert_eq!(ap.labels.len(), 3);
    }

    #[test]
    fn labels_are_per_node() {
        let mut ap = sample();
        ap.add_label(1, LabelInst::new("notTainted", vec![LabelArg::Var(Var::new("y"))]));
        assert_eq!(ap.labels[1].len(), 1);
        assert!(ap.labels[0].is_empty());
    }

    #[test]
    fn rejects_ill_formed() {
        let prog = parse_program("proc main(x) { skip; }").unwrap();
        assert!(AnalyzedProc::new(prog.main().unwrap().clone()).is_err());
    }
}
