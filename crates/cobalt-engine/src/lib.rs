//! # cobalt-engine
//!
//! The execution engine for Cobalt optimizations — the reproduction of
//! the Whirlwind-based engine of *Lerner, Millstein & Chambers,
//! "Automatically Proving the Correctness of Compiler Optimizations"
//! (PLDI 2003)*, §5.2.
//!
//! Optimizations written in the Cobalt DSL are *directly executable*:
//! the engine runs a generic dataflow analysis whose facts are sets of
//! substitutions (potential witnessing regions), takes intersections at
//! merge points, finds the legal transformation sites at the fixpoint,
//! filters them through the optimization's profitability heuristic, and
//! applies the rewrites.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use cobalt_dsl::{
//!     BasePat, ConstPat, Direction, ExprPat, ForwardWitness, Guard, GuardSpec,
//!     LabelArgPat, LabelEnv, LhsPat, Optimization, RegionGuard, StmtPat,
//!     TransformPattern, VarPat, Witness,
//! };
//! use cobalt_engine::{AnalyzedProc, Engine};
//! use cobalt_il::parse_program;
//!
//! // Constant propagation (paper Example 1):
//! //   stmt(Y := C) followed by ¬mayDef(Y) until X := Y ⇒ X := C
//! let const_prop = Optimization::new(
//!     "const_prop",
//!     TransformPattern {
//!         direction: Direction::Forward,
//!         guard: GuardSpec::Region(RegionGuard {
//!             psi1: Guard::Stmt(StmtPat::Assign(
//!                 LhsPat::Var(VarPat::pat("Y")),
//!                 ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
//!             )),
//!             psi2: Guard::not_label("mayDef", vec![LabelArgPat::Var(VarPat::pat("Y"))]),
//!         }),
//!         from: StmtPat::Assign(
//!             LhsPat::Var(VarPat::pat("X")),
//!             ExprPat::Base(BasePat::Var(VarPat::pat("Y"))),
//!         ),
//!         to: StmtPat::Assign(
//!             LhsPat::Var(VarPat::pat("X")),
//!             ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
//!         ),
//!         where_clause: Guard::True,
//!         witness: Witness::Forward(ForwardWitness::VarEqConst(
//!             VarPat::pat("Y"),
//!             ConstPat::pat("C"),
//!         )),
//!     },
//! );
//!
//! let prog = parse_program("proc main(x) { a := 2; b := 3; c := a; return c; }")?;
//! let engine = Engine::new(LabelEnv::standard());
//! let ap = AnalyzedProc::new(prog.main().unwrap().clone())?;
//! let (optimized, applied) = engine.apply(&ap, &const_prop)?;
//! assert_eq!(optimized.stmts[2].to_string(), "c := 2");
//! assert_eq!(applied.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzed;
pub mod budget;
pub mod dataflow;
pub mod engine;
pub mod error;
pub mod recursive;
pub mod resilient;
pub mod session;

pub use analyzed::AnalyzedProc;
pub use budget::{Budget, Meter, METER_CHECK_INTERVAL};
pub use dataflow::{
    backward_cont_facts, backward_cont_facts_metered, backward_site_facts, forward_in_facts,
    forward_in_facts_metered, FactSet,
};
pub use engine::Engine;
pub use recursive::apply_recursive;
pub use error::EngineError;
pub use resilient::{FailureKind, PassFailure, PipelineReport};
pub use session::OptimizeSession;
