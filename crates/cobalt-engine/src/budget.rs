//! Resource governance for the dataflow engine.
//!
//! The prover's fixpoints have been budgeted since PR 2
//! (`cobalt-logic::Budget`); this module gives the *engine's* worklists
//! the same discipline. A [`Budget`] carries an optional wall-clock
//! deadline, an optional per-procedure step cap, and a cooperative
//! cancel flag; a [`Meter`] spends it, checking the clock and the flag
//! only every [`METER_CHECK_INTERVAL`] steps so the hot worklist loop
//! stays branch-cheap.
//!
//! A "step" is one node visit of a fixpoint sweep (or one iteration of
//! the recursive self-composition loop) — the unit in which engine work
//! actually accumulates. The step counter is **per fork**: drivers call
//! [`Budget::fork`] once per procedure, so `max_steps` bounds each
//! procedure's whole analysis pipeline independently of how procedures
//! are scheduled. That makes step-cap exhaustion deterministic at any
//! `--jobs` count, unlike a shared global counter whose interleaving
//! would vary. The *deadline* is absolute (fixed when the budget is
//! built), so every fork and every worker races the same instant.
//!
//! Exhaustion surfaces as
//! [`EngineError::ResourceLimited`](crate::EngineError::ResourceLimited),
//! which the resilient drivers turn into a quarantined
//! [`PassFailure`](crate::PassFailure) of kind
//! [`FailureKind::ResourceLimited`](crate::FailureKind) — the pass is
//! skipped, never misapplied (sound by §4.1 noninterference).

use crate::error::EngineError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often (in steps) a [`Meter`] consults the clock, the step
/// count, and the cancel flag. Matches the prover's metering cadence.
pub const METER_CHECK_INTERVAL: u32 = 16;

/// A resource budget for engine fixpoints. See the [module docs](self).
///
/// The default budget is unlimited; [`Meter::tick`] on it is one
/// increment and a compare. Cloning shares the step counter (meters of
/// one scope accumulate together); [`fork`](Self::fork) starts a fresh
/// counter for an independent scope (one procedure).
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
    spent: Arc<AtomicU64>,
}

impl Budget {
    /// An unlimited budget (the default).
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Adds a wall-clock deadline `d` from now. The deadline is
    /// absolute: clones and forks all race the same instant.
    #[must_use]
    pub fn with_deadline(mut self, d: Duration) -> Budget {
        // A duration too large for the clock (checked_add overflow) is
        // no deadline at all.
        self.deadline = Instant::now().checked_add(d);
        self
    }

    /// Caps the steps each fork (one procedure's analysis pipeline) may
    /// spend. Zero fails the first check.
    #[must_use]
    pub fn with_max_steps(mut self, n: u64) -> Budget {
        self.max_steps = Some(n);
        self
    }

    /// Attaches a cooperative cancel flag: set it from any thread and
    /// every meter observes it at its next check.
    #[must_use]
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Budget {
        self.cancel = Some(flag);
        self
    }

    /// Whether nothing bounds this budget (the fast path: meters on an
    /// unlimited budget never consult the clock).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_steps.is_none() && self.cancel.is_none()
    }

    /// The step cap, if any (a fingerprint input — it deterministically
    /// changes what a run produces, unlike the run-relative deadline).
    pub fn max_steps(&self) -> Option<u64> {
        self.max_steps
    }

    /// The cancel flag, if one is attached.
    pub fn cancel_flag(&self) -> Option<Arc<AtomicBool>> {
        self.cancel.clone()
    }

    /// A budget with the same deadline, cap, and cancel flag but a
    /// fresh step counter — an independent accounting scope.
    pub fn fork(&self) -> Budget {
        Budget {
            deadline: self.deadline,
            max_steps: self.max_steps,
            cancel: self.cancel.clone(),
            spent: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A meter spending this budget. Meters of one budget (or clone)
    /// share the step counter.
    pub fn meter(&self) -> Meter {
        Meter {
            budget: self.clone(),
            local: 0,
        }
    }
}

/// Runtime spending state over a [`Budget`]. Create with
/// [`Budget::meter`]; call [`tick`](Self::tick) once per worklist step.
#[derive(Debug)]
pub struct Meter {
    budget: Budget,
    local: u32,
}

impl Meter {
    /// Spends one step. Every [`METER_CHECK_INTERVAL`] steps the
    /// deadline, the step cap, and the cancel flag are consulted.
    ///
    /// # Errors
    ///
    /// [`EngineError::ResourceLimited`] once the budget is exhausted.
    #[inline]
    pub fn tick(&mut self) -> Result<(), EngineError> {
        self.local += 1;
        if self.local < METER_CHECK_INTERVAL {
            return Ok(());
        }
        self.check()
    }

    /// Checks the budget immediately (flushing locally accumulated
    /// steps). Fixpoint entry points call this once up front so
    /// degenerate budgets (`--timeout 0`, `--max-steps 0`) fail fast
    /// and deterministically instead of racing the first sweep.
    ///
    /// # Errors
    ///
    /// [`EngineError::ResourceLimited`] once the budget is exhausted.
    pub fn check(&mut self) -> Result<(), EngineError> {
        let local = u64::from(self.local);
        self.local = 0;
        if self.budget.is_unlimited() {
            return Ok(());
        }
        let spent = self
            .budget
            .spent
            .fetch_add(local, Ordering::Relaxed)
            .saturating_add(local);
        if let Some(max) = self.budget.max_steps {
            if spent > max || max == 0 {
                return Err(EngineError::ResourceLimited(format!(
                    "step cap exhausted ({max} steps)"
                )));
            }
        }
        if let Some(deadline) = self.budget.deadline {
            if Instant::now() >= deadline {
                return Err(EngineError::ResourceLimited(
                    "wall-clock deadline exceeded".into(),
                ));
            }
        }
        if let Some(cancel) = &self.budget.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Err(EngineError::ResourceLimited("cancelled".into()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let budget = Budget::unlimited();
        assert!(budget.is_unlimited());
        let mut meter = budget.meter();
        for _ in 0..10_000 {
            meter.tick().unwrap();
        }
        meter.check().unwrap();
    }

    #[test]
    fn step_cap_trips_after_the_cap() {
        let budget = Budget::unlimited().with_max_steps(64);
        let mut meter = budget.meter();
        let mut tripped = None;
        for i in 1..=200u64 {
            if meter.tick().is_err() {
                tripped = Some(i);
                break;
            }
        }
        // The cap is enforced at check granularity: the trip lands in
        // the first check interval past the cap.
        let at = tripped.expect("cap must trip");
        assert!(at > 64 && at <= 64 + u64::from(METER_CHECK_INTERVAL), "{at}");
        let e = meter.check().unwrap_err();
        assert!(e.to_string().contains("step cap"), "{e}");
    }

    #[test]
    fn zero_caps_fail_the_immediate_check() {
        let mut meter = Budget::unlimited().with_max_steps(0).meter();
        assert!(meter.check().is_err());
        let mut meter = Budget::unlimited()
            .with_deadline(Duration::ZERO)
            .meter();
        assert!(meter.check().is_err());
    }

    #[test]
    fn clones_share_steps_and_forks_do_not() {
        let budget = Budget::unlimited().with_max_steps(20);
        let mut a = budget.meter();
        let mut b = budget.clone().meter();
        for _ in 0..16 {
            a.tick().unwrap();
        }
        for _ in 0..16 {
            let _ = b.tick();
        }
        // b flushed into the shared counter: 32 > 20.
        assert!(b.check().is_err(), "clones share the counter");
        let mut c = budget.fork().meter();
        for _ in 0..16 {
            c.tick().unwrap();
        }
        assert!(c.check().is_ok(), "forks start a fresh counter");
    }

    #[test]
    fn cancel_flag_trips_cooperatively() {
        let flag = Arc::new(AtomicBool::new(false));
        let budget = Budget::unlimited().with_cancel(flag.clone());
        let mut meter = budget.meter();
        meter.check().unwrap();
        flag.store(true, Ordering::Relaxed);
        let e = meter.check().unwrap_err();
        assert!(e.to_string().contains("cancelled"), "{e}");
    }
}
