//! # cobalt-il
//!
//! The C-like intermediate language underlying the Cobalt optimization
//! framework — a from-scratch reproduction of the IL of
//! *Lerner, Millstein & Chambers, "Automatically Proving the Correctness
//! of Compiler Optimizations" (PLDI 2003)*, §3.1.
//!
//! The language is untyped and features unstructured control flow,
//! pointers to local variables (`&x`, `*x`), dynamic allocation
//! (`x := new`), and recursive procedures. This crate provides:
//!
//! * the [AST](ast) with [`Program`], [`Proc`], [`Stmt`], [`Expr`];
//! * a [parser](parse_program) and [pretty-printer](pretty_program) for a
//!   textual surface syntax;
//! * [control-flow graphs](Cfg) and [well-formedness checking](validate);
//! * a concrete [interpreter](Interp) implementing the paper's `→π`
//!   transition function and the intraprocedural `↪π` that steps over
//!   calls;
//! * a random [program generator](generate) used for differential
//!   soundness testing and benchmarking.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use cobalt_il::{parse_program, validate, Interp, Value};
//!
//! let prog = parse_program(
//!     "proc main(x) {
//!          decl y;
//!          y := x * x;
//!          return y;
//!      }",
//! )?;
//! validate(&prog)?;
//! assert_eq!(Interp::new(&prog).run(6)?, Value::Int(36));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod cfg;
pub mod error;
pub mod gen;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pretty;

pub use ast::{BaseExpr, Expr, Index, Lhs, OpKind, Proc, ProcName, Program, Stmt, Var};
pub use cfg::{validate, Cfg};
pub use error::{EvalError, ParseError, WellFormedError};
pub use gen::{generate, GenConfig};
pub use interp::{
    eval_base, eval_expr, eval_lhs, eval_op, Interp, Location, State, StepOutcome, TraceEntry,
    Value, DEFAULT_FUEL,
};
pub use parser::{parse_expr, parse_program, parse_stmt};
pub use pretty::{pretty_proc, pretty_program};
